//! `gmc-suite`: the workspace umbrella crate.
//!
//! Re-exports the whole GMC pipeline for convenient use in the root
//! examples and integration tests. See the individual crates for API
//! documentation:
//!
//! * [`gmc_expr`] — symbolic expressions, operands, properties, chains
//! * [`gmc_analysis`] — property inference
//! * [`gmc_pattern`] — discrimination-net pattern matching
//! * [`gmc_kernels`] — the kernel registry `K`
//! * [`gmc`] — the MCP and GMC algorithms and cost metrics
//! * [`gmc_plan`] — symbolic plans and the structure-keyed plan cache
//! * [`gmc_codegen`] — program IR and emitters
//! * [`gmc_linalg`] — the dense linear algebra substrate
//! * [`gmc_runtime`] — program execution and validation
//! * [`gmc_frontend`] — the input-language parser
//! * [`gmc_baselines`] — the nine competitor strategies
//! * [`gmc_experiments`] — the paper's evaluation harness
//! * [`gmc_obs`] — metrics registry, Prometheus renderer, slow-trace ring

pub use gmc;
pub use gmc_analysis;
pub use gmc_baselines;
pub use gmc_codegen;
pub use gmc_experiments;
pub use gmc_expr;
pub use gmc_frontend;
pub use gmc_kernels;
pub use gmc_linalg;
pub use gmc_obs;
pub use gmc_pattern;
pub use gmc_plan;
pub use gmc_runtime;
