//! Offline stand-in for the subset of the `criterion` bench API this
//! workspace uses: benchmark groups with `sample_size` /
//! `measurement_time` / `warm_up_time`, `bench_function`,
//! `bench_with_input`, `Bencher::iter`, [`BenchmarkId`], [`black_box`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Statistics are deliberately simple — one warm-up call, then
//! `sample_size` timed iterations, reporting min/mean/max per
//! iteration — but the harness contract (`harness = false` bench
//! targets with their own `main`) matches the real crate, so swapping
//! the real criterion back in later is a manifest-only change.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export point for `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// The top-level bench context handed to every target function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Accepted for compatibility; the shim has no CLI options.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(&id.into_benchmark_id().0, sample_size, f);
    }
}

/// A named group of benchmarks sharing sampling settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Accepted for compatibility; the shim times a fixed sample count
    /// instead of a wall-clock budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for compatibility; the shim always warms up with one
    /// untimed call.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id().0);
        run_benchmark(&label, self.sample_size, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.sample_size, |b| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
    };
    // One untimed warm-up sample, then the measured ones.
    f(&mut bencher);
    bencher.samples.clear();
    for _ in 0..sample_size.max(1) {
        f(&mut bencher);
    }
    // Each sample records its own batch size: `iter` batches fast
    // routines, and the choice can differ between samples of the same
    // benchmark.
    let per_iter: Vec<f64> = bencher
        .samples
        .iter()
        .map(|(d, iters)| d.as_secs_f64() / *iters as f64)
        .collect();
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(0.0f64, f64::max);
    println!(
        "{label:<60} [{} {} {}]",
        format_time(min),
        format_time(mean),
        format_time(max)
    );
}

fn format_time(secs: f64) -> String {
    if secs < 1e-6 {
        format!("{:.2} ns", secs * 1e9)
    } else if secs < 1e-3 {
        format!("{:.2} µs", secs * 1e6)
    } else if secs < 1.0 {
        format!("{:.2} ms", secs * 1e3)
    } else {
        format!("{secs:.3} s")
    }
}

/// Times closures inside one benchmark sample.
pub struct Bencher {
    /// `(elapsed, iterations timed)` per sample.
    samples: Vec<(Duration, u64)>,
}

impl Bencher {
    /// Times repeated calls of `f`, recording one sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed();
        // Batch very fast routines so timer resolution doesn't dominate.
        let iters = if once < Duration::from_micros(10) {
            100
        } else {
            1
        };
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.samples.push((start.elapsed(), iters));
    }
}

/// A benchmark identifier: a function name and/or a parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id with a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId(format!("{}/{}", function_name.into(), parameter))
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(format!("{parameter}"))
    }
}

/// Conversion into a [`BenchmarkId`] (strings or ready-made ids).
pub trait IntoBenchmarkId {
    /// Converts `self`.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self.to_string())
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId(self)
    }
}

/// Declares a group of benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
