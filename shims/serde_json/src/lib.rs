//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`], [`to_string_pretty`] and [`from_str`] over the serde
//! shim's value model.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

/// A serialization or parse failure.
#[derive(Clone, Debug)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Fails if a number is non-finite (JSON cannot represent it).
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), None, 0, &mut out)?;
    Ok(out)
}

/// Serializes `value` as two-space-indented JSON.
///
/// # Errors
///
/// Fails if a number is non-finite (JSON cannot represent it).
pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), Some(2), 0, &mut out)?;
    Ok(out)
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Fails on malformed JSON or a value-shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v).map_err(|e| Error(e.to_string()))
}

fn write_value(
    v: &Value,
    indent: Option<usize>,
    level: usize,
    out: &mut String,
) -> Result<(), Error> {
    let (open_sep, item_sep, close_sep): (String, String, String) = match indent {
        Some(w) => (
            format!("\n{}", " ".repeat(w * (level + 1))),
            format!(",\n{}", " ".repeat(w * (level + 1))),
            format!("\n{}", " ".repeat(w * level)),
        ),
        None => (String::new(), ",".to_string(), String::new()),
    };
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Number(n) => {
            if !n.is_finite() {
                return Err(Error(format!("number {n} is not representable in JSON")));
            }
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::String(s) => write_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i == 0 { &open_sep } else { &item_sep });
                write_value(item, indent, level + 1, out)?;
            }
            out.push_str(&close_sep);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                out.push_str(if i == 0 { &open_sep } else { &item_sep });
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(item, indent, level + 1, out)?;
            }
            out.push_str(&close_sep);
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str) -> bool {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(Value::Null),
            Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::String),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    self.skip_ws();
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut fields = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    self.skip_ws();
                    let val = self.value()?;
                    fields.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(Error(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error("dangling escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".to_string()))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|e| Error(format!("bad \\u escape: {e}")))?,
                                16,
                            )
                            .map_err(|e| Error(format!("bad \\u escape: {e}")))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by this
                            // workspace's data; reject them plainly.
                            out.push(char::from_u32(code).ok_or_else(|| {
                                Error(format!("unsupported \\u escape {code:#x}"))
                            })?);
                        }
                        other => return Err(Error(format!("bad escape `\\{}`", other as char))),
                    }
                }
                _ => return Err(Error("unterminated string".to_string())),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-') {
                self.pos += 1;
            } else {
                break;
            }
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Value::Number)
            .ok_or_else(|| Error(format!("bad number at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("A\"\\\n".to_string())),
            ("n".to_string(), Value::Number(42.0)),
            ("x".to_string(), Value::Number(-1.5)),
            (
                "tags".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            ("empty".to_string(), Value::Array(vec![])),
        ]);
        // Value itself has no Serialize impl in user code paths, so go
        // through the writer directly.
        let mut compact = String::new();
        write_value(&v, None, 0, &mut compact).unwrap();
        let mut pretty = String::new();
        write_value(&v, Some(2), 0, &mut pretty).unwrap();
        for text in [compact, pretty] {
            let mut p = Parser {
                bytes: text.as_bytes(),
                pos: 0,
            };
            p.skip_ws();
            let back = p.value().unwrap();
            assert_eq!(back, v, "text: {text}");
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Vec<u64>>("[1, 2] x").is_err());
        assert!(from_str::<Vec<u64>>("[1, 2.5]").is_err());
        assert_eq!(from_str::<Vec<u64>>("[1, 2]").unwrap(), vec![1, 2]);
    }
}
