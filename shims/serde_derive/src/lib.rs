//! `#[derive(Serialize, Deserialize)]` for the serde shim.
//!
//! Implemented without `syn`/`quote` (unavailable offline): a small
//! token scan extracts the struct name and field names, and the impls
//! are emitted as source text. Supported input: non-generic structs
//! with named fields — which is all the workspace derives on. Anything
//! else panics at expansion time with a clear message.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructShape {
    name: String,
    fields: Vec<String>,
}

fn parse_struct(input: TokenStream, trait_name: &str) -> StructShape {
    let mut tokens = input.into_iter().peekable();

    // Skip outer attributes (`#[...]`, including doc comments) and the
    // visibility qualifier.
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    match tokens.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        other => {
            panic!("#[derive({trait_name})] (serde shim) supports only structs, got {other:?}")
        }
    }

    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected struct name, got {other:?}"),
    };

    let body = match tokens.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => panic!(
            "#[derive({trait_name})] (serde shim) does not support generic structs; \
             `{name}` is generic"
        ),
        other => panic!(
            "#[derive({trait_name})] (serde shim) supports only named-field structs; \
             `{name}` has body {other:?}"
        ),
    };

    // Field grammar: (attrs)* (pub (group)?)? name ':' type ','?
    let mut fields = Vec::new();
    let mut toks = body.stream().into_iter().peekable();
    loop {
        // Skip attributes and visibility.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let field = match toks.next() {
            None => break,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("expected field name in `{name}`, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{field}`, got {other:?}"),
        }
        // Skip the type up to the next top-level comma (tracking angle
        // bracket depth so `Map<K, V>` does not split early).
        let mut angle_depth = 0i32;
        for t in toks.by_ref() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => break,
                _ => {}
            }
        }
        fields.push(field);
    }

    StructShape { name, fields }
}

/// Derives the serde shim's `Serialize` for a named-field struct.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input, "Serialize");
    let mut entries = String::new();
    for f in &shape.fields {
        entries.push_str(&format!(
            "(::std::string::String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f})),"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Object(::std::vec![{entries}])\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .expect("serde shim derive emitted invalid Rust")
}

/// Derives the serde shim's `Deserialize` for a named-field struct.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_struct(input, "Deserialize");
    let mut inits = String::new();
    for f in &shape.fields {
        inits.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value(v.get_field(\"{f}\")?)?,"
        ));
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value)\n\
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}",
        name = shape.name,
    )
    .parse()
    .expect("serde shim derive emitted invalid Rust")
}
