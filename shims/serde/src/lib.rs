//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The real serde's visitor-based data model is far larger than the
//! workspace needs (derived impls on plain named-field structs,
//! serialized to and from JSON by the sibling `serde_json` shim). This
//! shim therefore uses a simple value-tree model: [`Serialize`] lowers
//! to a [`Value`], [`Deserialize`] lifts from one, and the
//! `#[derive(Serialize, Deserialize)]` macros (from the sibling
//! `serde_derive` shim) generate field-by-field impls for structs with
//! named fields.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A serialized value tree (JSON-shaped).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object.
    ///
    /// # Errors
    ///
    /// Fails if `self` is not an object or lacks the field.
    pub fn get_field(&self, name: &str) -> Result<&Value, DeError> {
        match self {
            Value::Object(fields) => fields
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| DeError(format!("missing field `{name}`"))),
            other => Err(DeError(format!(
                "expected object with field `{name}`, got {other:?}"
            ))),
        }
    }
}

/// Deserialization failure: a human-readable description.
#[derive(Clone, Debug)]
pub struct DeError(pub String);

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can lower themselves to a [`Value`].
pub trait Serialize {
    /// Lowers `self` to a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can lift themselves from a [`Value`].
pub trait Deserialize: Sized {
    /// Lifts a value of `Self` out of a value tree.
    ///
    /// # Errors
    ///
    /// Fails with a description of the first mismatch encountered.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    // Integers must round-trip exactly through the f64
                    // number representation.
                    Value::Number(n) => {
                        let cast = *n as $t;
                        if cast as f64 == *n {
                            Ok(cast)
                        } else {
                            Err(DeError(format!(
                                "number {n} does not fit in {}",
                                stringify!($t)
                            )))
                        }
                    }
                    other => Err(DeError(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    // Floats accept any JSON number (f32 rounds).
                    Value::Number(n) => Ok(*n as $t),
                    other => Err(DeError(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_serde_float!(f32, f64);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::String((*self).to_owned())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
