//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] methods `gen_range` (over `Range`/`RangeInclusive` of the
//! integer types and `f64`) and `gen_bool`.
//!
//! The container this workspace builds in has no access to crates.io,
//! so the real `rand` cannot be fetched; this shim is a drop-in path
//! dependency with the same module layout. The generator is
//! xoshiro256** seeded via SplitMix64 — the same construction the real
//! `rand_xoshiro` crate uses — so streams are deterministic per seed
//! and of good statistical quality, though they do **not** reproduce
//! the real `StdRng` (ChaCha12) byte streams.

#![forbid(unsafe_code)]

/// Random number generators (shim: only [`rngs::StdRng`]).
pub mod rngs {
    /// A deterministic, seedable RNG standing in for `rand::rngs::StdRng`.
    ///
    /// Internally xoshiro256**; see the crate docs for the caveat that
    /// the stream differs from the real `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        pub(crate) fn from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl crate::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256**
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A random number generator: the single source of random `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction (shim: only `seed_from_u64`).
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng::from_u64(seed)
    }
}

/// User-facing random value generation, auto-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Converts 64 random bits to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range that can be sampled from — the shim's stand-in for
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, n)` without modulo bias (Lemire's method,
/// widening-multiply variant; the tiny rejection branch is skipped,
/// which for test-sized `n` is far below measurable bias).
fn below<R: RngCore>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every value is admissible.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (unit_f64(rng.next_u64()) as f32) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.gen_range(0u64..1_000_000)).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.gen_range(0u64..1_000_000)).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.gen_range(0u64..1_000_000)).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(2i32..=7);
            assert!((2..=7).contains(&y));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn inclusive_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 3];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..=2)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
