//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Option<S::Value> {
        // Matches the real crate's default 1-in-4 `None` weighting.
        if rng.below(4) == 0 {
            None
        } else {
            Some(self.inner.new_value(rng))
        }
    }
}

/// `Some` of a value from `inner` three times out of four, else `None`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
