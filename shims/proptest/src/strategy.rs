//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A recipe for generating random values of one type.
///
/// The shim generates without shrinking: [`Strategy::new_value`] draws
/// one value from the deterministic per-case RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates the leaves, and
    /// `recurse` builds one level of nesting on top of an inner
    /// strategy, applied up to `depth` times.
    ///
    /// `desired_size` and `expected_branch_size` are accepted for
    /// signature compatibility with the real crate but unused — the
    /// shim bounds growth purely by `depth`.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        // levels[k] generates trees of nesting exactly k; the final
        // strategy picks a level uniformly, giving depth variety.
        let mut levels = vec![self.boxed()];
        for k in 1..=depth as usize {
            levels.push(recurse(levels[k - 1].clone()).boxed());
        }
        Union::new(levels).boxed()
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

trait DynStrategy<T> {
    fn dyn_new_value(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_new_value(&self, rng: &mut TestRng) -> S::Value {
        self.new_value(rng)
    }
}

/// A type-erased, cheaply clonable [`Strategy`].
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.0.dyn_new_value(rng)
    }
}

/// Always produces a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// Uniform choice among strategies of a common value type (the result
/// of [`prop_oneof!`](crate::prop_oneof)).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// A union over `arms`, each equally likely.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        let k = rng.below(self.arms.len());
        self.arms[k].new_value(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (u128::from(rng.next_u64()) * span) >> 64;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let off = (u128::from(rng.next_u64()) * span) >> 64;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;

    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;

    fn new_value(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

/// String strategies: a `&str` is interpreted as a small regex subset
/// (see [`crate::string`]).
impl Strategy for &str {
    type Value = String;

    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.new_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (S0 0, S1 1)
    (S0 0, S1 1, S2 2)
    (S0 0, S1 1, S2 2, S3 3)
    (S0 0, S1 1, S2 2, S3 3, S4 4)
    (S0 0, S1 1, S2 2, S3 3, S4 4, S5 5)
}
