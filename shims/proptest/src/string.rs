//! String generation from a small regex subset.
//!
//! Supported: literal characters, character classes `[a-zA-Z0-9_]`
//! (ranges and singletons; no negation), and the quantifiers `?`, `+`
//! (1–8 repeats), `*` (0–8 repeats), `{n}` and `{n,m}`. This covers the
//! patterns used as strategies in this workspace (e.g. `"[A-H]"`).

use crate::test_runner::TestRng;

enum Atom {
    Literal(char),
    Class(Vec<(char, char)>),
}

struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    let mut pieces = Vec::new();
    while let Some(c) = chars.next() {
        let atom = match c {
            '[' => {
                let mut ranges = Vec::new();
                loop {
                    let lo = chars
                        .next()
                        .unwrap_or_else(|| panic!("unterminated character class in {pattern:?}"));
                    if lo == ']' {
                        break;
                    }
                    if chars.peek() == Some(&'-') {
                        chars.next();
                        let hi = match chars.next() {
                            Some(']') | None => {
                                panic!("unterminated range in character class in {pattern:?}")
                            }
                            Some(hi) => hi,
                        };
                        assert!(lo <= hi, "inverted range {lo}-{hi} in {pattern:?}");
                        ranges.push((lo, hi));
                    } else {
                        ranges.push((lo, lo));
                    }
                }
                assert!(!ranges.is_empty(), "empty character class in {pattern:?}");
                Atom::Class(ranges)
            }
            '\\' => Atom::Literal(
                chars
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}")),
            ),
            other => Atom::Literal(other),
        };
        let (min, max) = match chars.peek() {
            Some('?') => {
                chars.next();
                (0, 1)
            }
            Some('+') => {
                chars.next();
                (1, 8)
            }
            Some('*') => {
                chars.next();
                (0, 8)
            }
            Some('{') => {
                chars.next();
                let mut spec = String::new();
                for c in chars.by_ref() {
                    if c == '}' {
                        break;
                    }
                    spec.push(c);
                }
                match spec.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().expect("bad {m,n} quantifier"),
                        hi.trim().parse().expect("bad {m,n} quantifier"),
                    ),
                    None => {
                        let n = spec.trim().parse().expect("bad {n} quantifier");
                        (n, n)
                    }
                }
            }
            _ => (1, 1),
        };
        pieces.push(Piece { atom, min, max });
    }
    pieces
}

/// Generates one random string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let mut out = String::new();
    for piece in parse(pattern) {
        let n = piece.min + rng.below(piece.max - piece.min + 1);
        for _ in 0..n {
            match &piece.atom {
                Atom::Literal(c) => out.push(*c),
                Atom::Class(ranges) => {
                    let total: u32 = ranges
                        .iter()
                        .map(|(lo, hi)| *hi as u32 - *lo as u32 + 1)
                        .sum();
                    let mut k = rng.below(total as usize) as u32;
                    for (lo, hi) in ranges {
                        let span = *hi as u32 - *lo as u32 + 1;
                        if k < span {
                            out.push(char::from_u32(*lo as u32 + k).expect("valid scalar"));
                            break;
                        }
                        k -= span;
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::generate;
    use crate::test_runner::TestRng;

    #[test]
    fn char_class_stays_in_range() {
        let mut rng = TestRng::for_case("string::char_class", 0);
        for _ in 0..200 {
            let s = generate("[A-H]", &mut rng);
            assert_eq!(s.len(), 1);
            assert!(('A'..='H').contains(&s.chars().next().unwrap()));
        }
    }

    #[test]
    fn literals_and_quantifiers() {
        let mut rng = TestRng::for_case("string::quant", 0);
        for _ in 0..100 {
            let s = generate("ab[0-9]{2,4}c?", &mut rng);
            assert!(s.starts_with("ab"));
            let digits = s[2..].chars().take_while(char::is_ascii_digit).count();
            assert!((2..=4).contains(&digits));
        }
    }
}
