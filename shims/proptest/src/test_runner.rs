//! The per-test configuration and the deterministic case RNG.

/// Configuration accepted via `#![proptest_config(...)]`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// The RNG strategies draw from. Deterministic: case `i` of a given
/// test always sees the same stream, so failures reproduce exactly.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// The RNG for case number `case` of the test named `test_path`.
    pub fn for_case(test_path: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index, so
        // sibling tests and sibling cases get unrelated streams.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_path.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Next 64 random bits (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "TestRng::below(0)");
        ((u128::from(self.next_u64()) * n as u128) >> 64) as usize
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
