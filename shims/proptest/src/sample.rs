//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// The strategy returned by [`select`].
pub struct Select<T> {
    choices: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        self.choices[rng.below(self.choices.len())].clone()
    }
}

/// Picks uniformly from `choices`.
///
/// # Panics
///
/// Panics if `choices` is empty.
pub fn select<T: Clone>(choices: Vec<T>) -> Select<T> {
    assert!(!choices.is_empty(), "select over an empty list");
    Select { choices }
}
