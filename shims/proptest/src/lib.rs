//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! The container has no crates.io access, so this shim provides the
//! pieces the test suites rely on with the same paths and names:
//!
//! * the [`proptest!`] macro (including `#![proptest_config(...)]`),
//! * the [`strategy::Strategy`] trait with `prop_map`, `prop_recursive`
//!   and `boxed`,
//! * [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`],
//! * `any::<T>()` for the primitive types,
//! * range strategies (`0u64..100`, `-1.0f64..1.0`, …),
//! * tuple strategies up to arity 6,
//! * `&str` strategies over a small regex subset (char classes,
//!   literals, `{n}`/`{n,m}`/`?`/`+`/`*` quantifiers),
//! * `prop::option::of`, `prop::sample::select`, `prop::collection::vec`.
//!
//! Differences from the real crate: no shrinking (a failing case panics
//! with its inputs Debug-printed instead of being minimized), and case
//! generation is deterministic — case `i` of a test derives its RNG
//! seed from `i`, so failures reproduce exactly across runs.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Everything a proptest-based test file needs in scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::{collection, option, sample, strategy};
    }
}

/// Expands a block of property tests. Each `arg in strategy` pair draws
/// a fresh value per case; the body runs `config.cases` times (default
/// 256). No shrinking: the first failing case panics with its inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            for case in 0..config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::new_value(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Like `assert!`, inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Like `assert_eq!`, inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Like `assert_ne!`, inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Uniform choice between strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
