//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// The strategy returned by [`vec`].
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.len.end - self.len.start;
        let n = self.len.start + if span == 0 { 0 } else { rng.below(span) };
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}

/// A `Vec` of values from `element`, with a length drawn uniformly from
/// `len` (half-open, as in `prop::collection::vec(elem, 0..6)`).
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range");
    VecStrategy { element, len }
}
