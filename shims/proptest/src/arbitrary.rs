//! `any::<T>()` for the primitive types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "anything" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, moderately sized: plenty for numeric property tests.
        (rng.unit_f64() - 0.5) * 2.0e6
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        ((rng.unit_f64() - 0.5) * 2.0e6) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps failure output readable.
        (b' ' + rng.below(95) as u8) as char
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A strategy for any value of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}
