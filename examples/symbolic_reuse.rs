//! Symbolic plan reuse: compile a chain *structure* once, serve many
//! size points from the cached plan.
//!
//! One symbolic chain `X := A B C` over size variables `n, k, m` is
//! instantiated at three size points. The first request records a
//! symbolic plan; the second differs only in scale and hits the cache;
//! the third flips the ordering of the dimensions, landing in a new
//! size *region* whose optimal parenthesization differs.
//!
//! ```text
//! cargo run --release --example symbolic_reuse
//! ```

use gmc::InferenceMode;
use gmc_expr::DimBindings;
use gmc_frontend::parse;
use gmc_kernels::KernelRegistry;
use gmc_plan::PlanCache;

fn main() {
    let source = "\
Matrix A (n, k)
Matrix B (k, m)
Matrix C (m, n)
X := A * B * C
";
    let problem = parse(source).expect("well-formed problem");
    let symbolic = problem.symbolic.as_ref().expect("symbolic dimensions");
    let (target, chain) = &symbolic.chains[0];
    println!("chain structure: {target} := {chain}");
    println!("dimension variables: n, k, m\n");

    let registry = std::sync::Arc::new(KernelRegistry::blas_lapack());
    let cache = PlanCache::new(registry.clone(), InferenceMode::Compositional);

    let points = [
        ("tall inner dimension", 100, 2000, 100),
        ("same region, 2x scale", 200, 4000, 200),
        ("flipped ordering", 100, 200, 4000),
    ];
    for (label, n, k, m) in points {
        let bindings = DimBindings::new().with("n", n).with("k", k).with("m", m);
        let (solution, outcome) = cache.solve(chain, &bindings).expect("computable chain");
        println!("request {label}: n={n}, k={k}, m={m}");
        println!("  cache outcome:    {outcome}");
        println!("  parenthesization: {}", solution.parenthesization());
        println!("  kernels:          {}", solution.kernel_names().join(", "));
        println!("  cost:             {:.4e} flops", solution.flops());
        if let Some(summary) = cache.region_summary(chain, &bindings) {
            println!("  region plan:      {summary}");
        }
        println!();
    }

    println!("plan cache: {}", cache.stats());
    let plan = cache.plan_for(chain).expect("structure cached");
    println!(
        "regions recorded for this structure: {}",
        plan.region_count()
    );
    for (i, summary) in plan.region_summaries().enumerate() {
        println!("  region {i}: {summary}");
    }
}
