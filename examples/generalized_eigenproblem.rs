//! The generalized-eigenproblem reduction `A' := L⁻¹ A L⁻ᵀ` from paper
//! Sec. 3.2: symbolic property inference proves the result symmetric,
//! whereas a floating-point entry inspection after two linear solves
//! would find symmetry destroyed by rounding — forcing a 3× more
//! expensive nonsymmetric eigensolver downstream.
//!
//! ```text
//! cargo run --example generalized_eigenproblem
//! ```

use gmc::{FlopCount, GmcOptimizer};
use gmc_analysis::{infer_properties, is_symmetric};
use gmc_codegen::{Emitter, PseudoEmitter};
use gmc_expr::{Chain, Operand, Property};
use gmc_kernels::KernelRegistry;
use gmc_runtime::{execute, Env};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 250;
    let l = Operand::square("L", n).with_property(Property::LowerTriangular);
    let a = Operand::square("A", n).with_property(Property::Symmetric);

    let expr = l.inverse() * a.expr() * l.inverse_transpose();
    let chain = Chain::from_expr(&expr)?;
    println!("reduction chain: A' := {chain}\n");

    // Symbolic inference: the congruence of a symmetric matrix is
    // symmetric — independent of how it is computed.
    let props = infer_properties(&expr);
    println!("inferred properties of L^-1 A L^-T: {props}");
    assert!(is_symmetric(&expr));

    let registry = KernelRegistry::blas_lapack();
    let solution = GmcOptimizer::new(&registry, FlopCount).solve(&chain)?;
    println!("\nparenthesization: {}", solution.parenthesization());
    println!("kernels:          {:?}", solution.kernel_names());
    for line in PseudoEmitter.emit(&solution.program()).lines() {
        println!("    {line}");
    }

    // Numerically, symmetry is only approximate after two triangular
    // solves — exactly the paper's point about testing entries at
    // runtime.
    let env = Env::random_for_chain(&chain, 11);
    let mut exec_env = env.clone();
    let result = execute(&solution.program(), &mut exec_env)?;
    let exact = result.is_symmetric(0.0);
    let fuzzy = result.is_symmetric(1e-8);
    println!("\nnumeric check: exactly symmetric: {exact}; symmetric within 1e-8: {fuzzy}");
    println!(
        "-> a runtime entry-inspection would {}see the symmetry the\n\
         symbolic engine proved; the symbolic route keeps the cheaper\n\
         symmetric eigensolver applicable (paper Sec. 3.2).",
        if exact { "" } else { "NOT " }
    );
    Ok(())
}
