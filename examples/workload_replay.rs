//! Workload generation and latency-instrumented trace replay.
//!
//! A seeded `WorkloadSpec` (structure population with Zipf popularity,
//! binding distributions, arrival process, hit-ratio target) compiles
//! deterministically into a replayable trace; the trace is replayed
//! against a multi-worker serving front door with every distinct
//! request verified bit-identical against a cold optimizer solve, and
//! the server's latency histograms are read back as p50/p99 per
//! (structure, hit/miss) class.
//!
//! ```text
//! cargo run --release --example workload_replay
//! ```

use gmc_bench::replay::{replay_trace, ReplayOptions, Verify};
use gmc_bench::workload::{generate, WorkloadSpec};

fn main() {
    // A mixed workload: 6 structures under Zipf popularity, half the
    // traffic aimed at already-seen size regions (cache hits), a
    // sprinkle of exact duplicates (dispatcher coalescing).
    let mut spec = WorkloadSpec::preset("mixed", 42).expect("known preset");
    spec.requests = 200;
    let trace = generate(&spec).expect("valid spec");
    print!("{}", trace.describe());

    // The JSON form is the stable interchange format (`gmcc workload
    // gen/replay` speak it); same spec, same bytes, every time.
    let json = trace.to_json_string();
    println!(
        "trace JSON: {} bytes (deterministic for seed 42)\n",
        json.len()
    );

    let report = replay_trace(
        &trace,
        &ReplayOptions {
            workers: 4,
            verify: Verify::Sample(40),
            ..ReplayOptions::default()
        },
    )
    .expect("replay runs");
    assert!(
        report.is_clean(),
        "invariant violations: {:?}",
        report.violations
    );

    let stats = &report.stats;
    println!(
        "replayed {} requests in {:.3}s ({:.0} req/s), {} verified bit-identical",
        report.submitted,
        report.elapsed,
        report.submitted as f64 / report.elapsed.max(1e-9),
        report.verified,
    );
    println!(
        "served: {} completed = {} hits + {} misses + {} failed; {} coalesced",
        stats.served.completed,
        stats.served.hits,
        stats.served.misses,
        stats.served.failed,
        stats.coalesced,
    );
    println!(
        "latency (enqueue->complete): p50 {:>9} ns   p99 {:>9} ns   max {:>9} ns",
        stats.latency.total.quantile(0.5),
        stats.latency.total.quantile(0.99),
        stats.latency.total.max(),
    );
    println!(
        "queueing (enqueue->dispatch): p50 {:>9} ns   p99 {:>9} ns",
        stats.latency.queue.quantile(0.5),
        stats.latency.queue.quantile(0.99),
    );
    println!("\nper-(structure, class) latency:");
    for class in &stats.latency.classes {
        println!(
            "  {:<4} {:<4} count {:>4}   p50 {:>9} ns   p99 {:>9} ns",
            class.structure,
            if class.hit { "hit" } else { "miss" },
            class.snapshot.count(),
            class.snapshot.quantile(0.5),
            class.snapshot.quantile(0.99),
        );
    }
}
