//! The chain `L22⁻¹ L21 L11⁻¹ L10` from a blocked algorithm for the
//! inversion of a triangular matrix (paper Sec. 1, citing Bientinesi et
//! al.): every operand is lower triangular, so the whole chain should
//! compile to triangular kernels (TRSM/TRMM) — and the inferred result
//! keeps no triangularity because the blocks are rectangular slices.
//!
//! ```text
//! cargo run --example triangular_inverse
//! ```

use gmc::{FlopCount, GmcOptimizer};
use gmc_analysis::infer_properties;
use gmc_codegen::{Emitter, JuliaEmitter};
use gmc_expr::{Chain, Operand, Property};
use gmc_kernels::{KernelFamily, KernelRegistry};
use gmc_runtime::{validate_against_reference, Env};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let nb = 150; // block size

    let l22 = Operand::square("L22", nb).with_property(Property::LowerTriangular);
    let l21 = Operand::matrix("L21", nb, nb); // off-diagonal block: full
    let l11 = Operand::square("L11", nb).with_property(Property::LowerTriangular);
    let l10 = Operand::matrix("L10", nb, nb);

    let chain = Chain::from_expr(&(l22.inverse() * l21.expr() * l11.inverse() * l10.expr()))?;
    println!("blocked triangular-inverse chain: {chain}\n");

    let registry = KernelRegistry::blas_lapack();
    let solution = GmcOptimizer::new(&registry, FlopCount).solve(&chain)?;
    println!("parenthesization: {}", solution.parenthesization());
    println!("kernels:          {:?}", solution.kernel_names());

    // Both inverses must become triangular solves, never explicit
    // inversions.
    let families: Vec<KernelFamily> = solution.steps().iter().map(|s| s.op.family()).collect();
    assert_eq!(
        families
            .iter()
            .filter(|f| **f == KernelFamily::Trsm)
            .count(),
        2,
        "both inverses should map to TRSM"
    );

    println!("\ngenerated Julia:");
    for line in JuliaEmitter::default().emit(&solution.program()).lines() {
        println!("    {line}");
    }

    // Property inference on a purely triangular product, for contrast:
    // L22⁻¹ · L11 is lower triangular, and the engine knows it.
    let tri_product = l22.inverse() * l11.expr();
    let props = infer_properties(&tri_product);
    println!("\ninferred properties of L22^-1 L11: {props}");
    assert!(props.contains(Property::LowerTriangular));

    let env = Env::random_for_chain(&chain, 3);
    validate_against_reference(&solution.program(), &chain, &env, 1e-6)?;
    println!("validated against reference evaluation: OK");
    Ok(())
}
