//! Pluggable cost metrics (paper Sec. 3.3): the FLOP-optimal solution is
//! not always the time-optimal one. This example optimizes the paper's
//! `ABCDE` chain (sizes 130, 700, 383, 1340, 193, 900) under three
//! metrics — FLOPs, a calibrated time model, and a lexicographic vector
//! metric — and compares the outcomes.
//!
//! ```text
//! cargo run --example cost_metrics
//! ```

use gmc::{FlopCount, FlopsThenKernels, GmcOptimizer, TimeModel};
use gmc_expr::{Chain, Factor, Operand};
use gmc_kernels::KernelRegistry;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sizes = [130usize, 700, 383, 1340, 193, 900];
    let ops: Vec<Operand> = (0..5)
        .map(|i| {
            Operand::matrix(
                format!("{}", (b'A' + i as u8) as char),
                sizes[i],
                sizes[i + 1],
            )
        })
        .collect();
    let chain = Chain::new(ops.into_iter().map(Factor::plain).collect())?;
    println!("chain: {chain}  (sizes {sizes:?})\n");

    let registry = KernelRegistry::blas_lapack();

    // Metric 1: FLOPs (paper default). Expect (((AB)C)D)E at ~3.16e8.
    let flops = GmcOptimizer::new(&registry, FlopCount).solve(&chain)?;
    println!(
        "flops metric:     {}  -> {:.4e} flops",
        flops.parenthesization(),
        flops.flops()
    );

    // Metric 2: execution-time model. BLAS-2 kernels and small shapes
    // are penalized, which can move the optimum (paper Sec. 3.3).
    let time = GmcOptimizer::new(&registry, TimeModel::default()).solve(&chain)?;
    println!(
        "time model:       {}  -> {:.4e} flops, {:.3} ms modeled",
        time.parenthesization(),
        time.flops(),
        time.cost() * 1e3
    );

    // Metric 3: lexicographic (flops, then kernel count) — the vector
    // metric extension of paper Sec. 5.
    let lex = GmcOptimizer::new(&registry, FlopsThenKernels).solve(&chain)?;
    let c = lex.cost();
    println!(
        "lexicographic:    {}  -> ({:.4e} flops, {} kernels)",
        lex.parenthesization(),
        c.0,
        c.1 as usize
    );

    println!(
        "\nThe time-optimal parenthesization may spend more FLOPs than the\n\
         FLOP-optimal one; in the paper's measurements ((AB)(CD))E at\n\
         3.32e8 flops ran ~10% faster than (((AB)C)D)E at 3.16e8."
    );
    Ok(())
}
