//! The serving front door: a worker pool over the shared plan cache,
//! with pre-enumerated regions and a persisted plan store.
//!
//! The paper's Table 2 chain `X := A⁻¹ B Cᵀ` is registered once with a
//! `gmc-serve` server, pre-enumerating every size region it can reach
//! — so *every* request, at any sizes, is a cache hit. A burst of
//! mixed requests (including duplicates that coalesce into one
//! instantiate) is answered through the batching dispatcher, and the
//! warmed cache is saved to a plan store and re-loaded the way a
//! serving fleet would warm-start.
//!
//! ```text
//! cargo run --release --example serving
//! ```

use gmc::InferenceMode;
use gmc_expr::DimBindings;
use gmc_frontend::parse;
use gmc_kernels::KernelRegistry;
use gmc_plan::PlanCache;
use gmc_serve::{ServeConfig, Server};
use std::sync::Arc;

fn main() {
    let source = "\
Matrix A (n, n) <SPD>
Matrix B (n, m)
Matrix C (m, m) <LowerTriangular>
X := A^-1 * B * C^T
";
    let problem = parse(source).expect("well-formed problem");
    let (target, chain) = &problem.symbolic.as_ref().expect("symbolic").chains[0];
    println!("serving structure: {target} := {chain}\n");

    let registry = Arc::new(KernelRegistry::blas_lapack());
    let server = Server::start(
        registry.clone(),
        ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        },
    );
    let regions = server
        .register_pre_enumerated(target, chain.clone())
        .expect("small chain is enumerable");
    println!("pre-enumerated {regions} size regions: every request below is a hit\n");

    // A burst of requests, submitted as one batch: different size
    // points, different regions, and one duplicate that coalesces.
    let handle = server.handle();
    let points: Vec<(usize, usize)> = vec![(2000, 200), (200, 2000), (7, 7), (1, 40), (2000, 200)];
    let batch: Vec<(String, DimBindings)> = points
        .iter()
        .map(|&(n, m)| (target.clone(), DimBindings::new().with("n", n).with("m", m)))
        .collect();
    let replies: Vec<_> = handle
        .submit_batch(batch)
        .into_iter()
        .map(|t| t.wait())
        .collect();
    for ((n, m), reply) in points.iter().zip(&replies) {
        let served = reply.result.as_ref().expect("servable");
        println!("request n={n:<4} m={m:<4} -> {}", served.outcome);
        println!("  parenthesization: {}", served.parenthesization);
        println!("  kernels:          {}", served.kernels.join(", "));
        println!("  cost:             {:.4e} flops", served.flops);
    }
    println!("\nserver: {}", server.stats());

    // Persist the warmed plans and warm-start a fresh cache from them,
    // as a serving fleet sharing a plan store would.
    let store =
        std::env::temp_dir().join(format!("gmc_serving_example_{}.json", std::process::id()));
    server.cache().save(&store).expect("plan store saves");
    let fresh = PlanCache::new(registry, InferenceMode::default());
    let adopted = fresh.load(&store).expect("plan store loads");
    let bindings = DimBindings::new().with("n", 4000).with("m", 400);
    let (_, outcome) = fresh.solve(chain, &bindings).expect("servable");
    println!("\nplan store: {adopted} regions adopted by a fresh cache");
    println!("first request on the warm-started cache: {outcome}");
    std::fs::remove_file(&store).ok();
    server.shutdown();
}
