//! Quickstart: compile and run the paper's Table 2 chain `X := A⁻¹ B Cᵀ`
//! with `A` symmetric positive definite and `C` lower triangular.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use gmc::{FlopCount, GmcOptimizer};
use gmc_codegen::{Emitter, JuliaEmitter, PseudoEmitter};
use gmc_expr::{Chain, Operand, Property};
use gmc_kernels::KernelRegistry;
use gmc_runtime::{execute, reference_eval, Env};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the operands (sizes + properties) and the chain.
    let a = Operand::square("A", 300).with_property(Property::SymmetricPositiveDefinite);
    let b = Operand::matrix("B", 300, 40);
    let c = Operand::square("C", 40).with_property(Property::LowerTriangular);
    let chain = Chain::from_expr(&(a.inverse() * b.expr() * c.transpose()))?;
    println!("chain:  X := {chain}\n");

    // 2. Run the Generalized Matrix Chain algorithm.
    let registry = KernelRegistry::blas_lapack();
    let solution = GmcOptimizer::new(&registry, FlopCount).solve(&chain)?;
    println!("parenthesization: {}", solution.parenthesization());
    println!("kernels:          {:?}", solution.kernel_names());
    println!("flops:            {:.4e}\n", solution.flops());

    // 3. Emit code. The Julia emitter reproduces the paper's Table 2
    //    style, including in-place buffer reuse.
    println!("generated Julia:");
    for line in JuliaEmitter::default().emit(&solution.program()).lines() {
        println!("    {line}");
    }
    println!("\ngenerated pseudocode:");
    for line in PseudoEmitter.emit(&solution.program()).lines() {
        println!("    {line}");
    }

    // 4. Execute the program on random (property-respecting) inputs and
    //    compare with the naive reference evaluation.
    let env = Env::random_for_chain(&chain, 42);
    let mut exec_env = env.clone();
    let result = execute(&solution.program(), &mut exec_env)?;
    let reference = reference_eval(&chain, &env)?;
    println!(
        "\nexecuted: result {}x{}, max deviation from reference {:.2e}",
        result.rows(),
        result.cols(),
        result.max_abs_diff(&reference)
    );
    Ok(())
}
