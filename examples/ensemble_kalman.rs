//! The ensemble Kalman filter chain `Xᵇ S (Yᵇ)ᵀ R⁻¹` from the paper's
//! introduction (Sec. 1, citing Rao et al.): a realistic four-factor
//! generalized chain mixing rectangular operands with an inverted SPD
//! covariance matrix.
//!
//! ```text
//! cargo run --example ensemble_kalman
//! ```

use gmc::{FlopCount, GmcOptimizer};
use gmc_baselines::{Strategy, JULIA_NAIVE, MATLAB_NAIVE};
use gmc_codegen::{Emitter, PseudoEmitter};
use gmc_expr::{Chain, Operand, Property};
use gmc_kernels::KernelRegistry;
use gmc_runtime::{validate_against_reference, Env};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // State dimension n, ensemble size N, observation dimension m.
    let n = 400; // state
    let ens = 50; // ensemble members
    let m = 120; // observations

    let xb = Operand::matrix("Xb", n, ens); // background ensemble
    let s = Operand::square("S", ens); // ensemble-space weights
    let yb = Operand::matrix("Yb", m, ens); // observed ensemble
    let r = Operand::square("R", m).with_property(Property::SymmetricPositiveDefinite);

    let chain = Chain::from_expr(&(xb.expr() * s.expr() * yb.transpose() * r.inverse()))?;
    println!("Kalman gain chain: K := {chain}\n");

    let registry = KernelRegistry::blas_lapack();
    let solution = GmcOptimizer::new(&registry, FlopCount).solve(&chain)?;
    println!("GMC parenthesization: {}", solution.parenthesization());
    println!("GMC kernels:          {:?}", solution.kernel_names());
    println!("GMC flops:            {:.4e}\n", solution.flops());
    for line in PseudoEmitter.emit(&solution.program()).lines() {
        println!("    {line}");
    }

    // Compare against two naive library evaluations.
    for strategy in [&JULIA_NAIVE, &MATLAB_NAIVE] {
        let program = strategy.compile(&chain);
        println!(
            "\n{:<6} flops: {:.4e}  ({:.1}x GMC)",
            strategy.label(),
            program.flops(),
            program.flops() / solution.flops()
        );
    }

    // Numeric sanity: the generated program computes the same matrix as
    // an explicit-inverse, left-to-right evaluation.
    let env = Env::random_for_chain(&chain, 7);
    validate_against_reference(&solution.program(), &chain, &env, 1e-6)?;
    println!("\nvalidated against reference evaluation: OK");
    Ok(())
}
