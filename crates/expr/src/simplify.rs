//! Algebraic simplification of expressions.
//!
//! The GMC algorithm itself does not rewrite expressions (that is the
//! job of the surrounding Linnea compiler, paper Sec. 1); this module
//! provides the standard algebraic cleanups a frontend wants to run
//! before chain extraction:
//!
//! * identity elimination: `I·A → A`, `A·I → A`, `Iᵀ = I⁻¹ = I`
//! * zero propagation: `Z·A → Z'`, `A + Z → A`, `Zᵀ → Z'`
//! * symmetric transpose erasure: `Sᵀ → S` for symmetric `S`
//! * orthogonal inverse rewriting: `Q⁻¹ → Qᵀ` and `Q⁻ᵀ → Q` for
//!   orthogonal `Q` — turning solves into (much cheaper) multiplies.
//!
//! Simplification preserves the denoted value and the shape.

use crate::{Expr, ExprError, Operand, Property, Shape};

/// Simplifies an expression (see the module documentation for the rule
/// set). The input is validated and normalized first, so unary
/// operators sit on the leaves.
///
/// # Errors
///
/// Returns the same well-formedness errors as [`Expr::normalized`].
pub fn simplify(expr: &Expr) -> Result<Expr, ExprError> {
    let normalized = expr.normalized()?;
    let shape = normalized.shape()?;
    Ok(simplify_inner(&normalized, shape))
}

/// A fresh zero operand of the given shape (used when a product
/// collapses to zero).
fn zero_operand(shape: Shape) -> Expr {
    let mut op = Operand::with_shape(format!("0_{}x{}", shape.rows(), shape.cols()), shape);
    op = op.with_property(Property::Zero);
    op.expr()
}

fn is_identity_leaf(e: &Expr) -> bool {
    match e {
        Expr::Symbol(op) => op.properties().contains(Property::Identity),
        Expr::Transpose(i) | Expr::Inverse(i) | Expr::InverseTranspose(i) => is_identity_leaf(i),
        _ => false,
    }
}

fn is_zero_leaf(e: &Expr) -> bool {
    match e {
        Expr::Symbol(op) => op.properties().contains(Property::Zero),
        Expr::Transpose(i) => is_zero_leaf(i),
        _ => false,
    }
}

fn simplify_inner(expr: &Expr, shape: Shape) -> Expr {
    match expr {
        Expr::Symbol(_) => expr.clone(),
        Expr::Times(factors) => {
            // Zero annihilates the product.
            if factors.iter().any(is_zero_leaf) {
                return zero_operand(shape);
            }
            // Drop identity factors (they are square, so shapes are
            // unaffected); keep at least one factor.
            let kept: Vec<Expr> = factors
                .iter()
                .filter(|f| !is_identity_leaf(f))
                .map(|f| {
                    let s = f.shape().expect("validated");
                    simplify_inner(f, s)
                })
                .collect();
            if kept.is_empty() {
                // A product of identities is the identity.
                return factors[0].clone();
            }
            Expr::times(kept)
        }
        Expr::Plus(terms) => {
            let kept: Vec<Expr> = terms
                .iter()
                .filter(|t| !is_zero_leaf(t))
                .map(|t| simplify_inner(t, shape))
                .collect();
            if kept.is_empty() {
                return zero_operand(shape);
            }
            Expr::plus(kept)
        }
        Expr::Transpose(inner) => match &**inner {
            Expr::Symbol(op) if op.properties().contains(Property::Symmetric) => op.expr(),
            Expr::Symbol(op) if op.properties().contains(Property::Zero) => {
                zero_operand(op.shape().transposed())
            }
            _ => expr.clone(),
        },
        Expr::Inverse(inner) => match &**inner {
            Expr::Symbol(op) if op.properties().contains(Property::Identity) => op.expr(),
            // Q⁻¹ = Qᵀ for orthogonal Q: a solve becomes a multiply.
            Expr::Symbol(op) if op.properties().contains(Property::Orthogonal) => {
                if op.properties().contains(Property::Symmetric) {
                    op.expr()
                } else {
                    op.transpose()
                }
            }
            _ => expr.clone(),
        },
        Expr::InverseTranspose(inner) => match &**inner {
            Expr::Symbol(op) if op.properties().contains(Property::Identity) => op.expr(),
            // Q⁻ᵀ = (Qᵀ)ᵀ = Q for orthogonal Q.
            Expr::Symbol(op) if op.properties().contains(Property::Orthogonal) => op.expr(),
            Expr::Symbol(op) if op.properties().contains(Property::Symmetric) => op.inverse(),
            _ => expr.clone(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn identity(n: usize) -> Operand {
        Operand::square("I", n).with_property(Property::Identity)
    }

    fn zero(r: usize, c: usize) -> Operand {
        Operand::matrix("Z", r, c).with_property(Property::Zero)
    }

    #[test]
    fn identity_elimination_in_products() {
        let i = identity(4);
        let a = Operand::matrix("A", 4, 4);
        let b = Operand::matrix("B", 4, 7);
        let e = simplify(&(i.expr() * a.expr() * i.expr() * b.expr())).unwrap();
        assert_eq!(e.to_string(), "A B");
        // All-identity product stays the identity.
        let e = simplify(&(i.expr() * i.expr())).unwrap();
        assert_eq!(e, i.expr());
    }

    #[test]
    fn zero_annihilates_products() {
        let z = zero(4, 4);
        let b = Operand::matrix("B", 4, 7);
        let e = simplify(&(z.expr() * b.expr())).unwrap();
        assert_eq!(e.shape().unwrap(), Shape::new(4, 7));
        match &e {
            Expr::Symbol(op) => assert!(op.properties().contains(Property::Zero)),
            other => panic!("expected zero symbol, got {other}"),
        }
    }

    #[test]
    fn zero_dropped_from_sums() {
        let z = zero(4, 7);
        let a = Operand::matrix("A", 4, 7);
        let b = Operand::matrix("B", 4, 7);
        let e = simplify(&(a.expr() + z.expr() + b.expr())).unwrap();
        assert_eq!(e.to_string(), "A + B");
        // All-zero sum is zero.
        let e = simplify(&(z.expr() + z.expr())).unwrap();
        assert!(matches!(&e, Expr::Symbol(op) if op.properties().contains(Property::Zero)));
    }

    #[test]
    fn symmetric_transpose_erased() {
        let s = Operand::square("S", 5).with_property(Property::Symmetric);
        let b = Operand::matrix("B", 5, 3);
        let e = simplify(&(s.transpose() * b.expr())).unwrap();
        assert_eq!(e.to_string(), "S B");
    }

    #[test]
    fn orthogonal_inverse_becomes_transpose() {
        let q = Operand::square("Q", 5).with_property(Property::Orthogonal);
        let b = Operand::matrix("B", 5, 3);
        let e = simplify(&(q.inverse() * b.expr())).unwrap();
        assert_eq!(e.to_string(), "Q^T B");
        let e = simplify(&(q.inverse_transpose() * b.expr())).unwrap();
        assert_eq!(e.to_string(), "Q B");
    }

    #[test]
    fn identity_inverse_and_transpose() {
        let i = identity(4);
        let b = Operand::matrix("B", 4, 3);
        let e = simplify(&(i.inverse() * b.expr())).unwrap();
        // I⁻¹ = I; the identity is then dropped from the product.
        assert_eq!(e.to_string(), "B");
    }

    #[test]
    fn plain_expressions_unchanged() {
        let a = Operand::matrix("A", 4, 5);
        let b = Operand::matrix("B", 5, 3);
        let e = a.expr() * b.expr();
        assert_eq!(simplify(&e).unwrap(), e);
    }

    #[test]
    fn simplification_preserves_shape() {
        let i = identity(4);
        let z = zero(4, 4);
        let a = Operand::matrix("A", 4, 6);
        for e in [
            i.expr() * a.expr(),
            z.expr() * a.expr(),
            Expr::transpose(z.expr() * a.expr()),
        ] {
            let s = simplify(&e).unwrap();
            assert_eq!(e.shape().unwrap(), s.shape().unwrap(), "expr {e}");
        }
    }

    #[test]
    fn simplify_is_idempotent() {
        let i = identity(4);
        let q = Operand::square("Q", 4).with_property(Property::Orthogonal);
        let a = Operand::matrix("A", 4, 6);
        let e = i.expr() * q.inverse() * a.expr();
        let s1 = simplify(&e).unwrap();
        let s2 = simplify(&s1).unwrap();
        assert_eq!(s1, s2);
    }

    #[test]
    fn rejects_ill_formed() {
        let a = Operand::matrix("A", 2, 3);
        let b = Operand::matrix("B", 2, 3);
        assert!(simplify(&(a.expr() * b.expr())).is_err());
    }
}
