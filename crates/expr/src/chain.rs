//! Validated matrix chains — the input type of the GMC algorithm.

use crate::{Expr, ExprError, Operand, Shape};
use std::fmt;

/// The unary operator attached to a chain factor.
///
/// The four values form a little group under composition:
/// transposing an inverted operand yields [`UnaryOp::InverseTranspose`],
/// and so on. This is the "extended set of binary operators" view of
/// paper Sec. 3.1: a binary product of two factors each carrying one of
/// these four markers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum UnaryOp {
    /// The operand as is.
    #[default]
    None,
    /// `Aᵀ`.
    Transpose,
    /// `A⁻¹`.
    Inverse,
    /// `A⁻ᵀ`.
    InverseTranspose,
}

impl UnaryOp {
    /// Composes `self` with a subsequent transposition.
    #[must_use]
    pub fn then_transpose(self) -> UnaryOp {
        match self {
            UnaryOp::None => UnaryOp::Transpose,
            UnaryOp::Transpose => UnaryOp::None,
            UnaryOp::Inverse => UnaryOp::InverseTranspose,
            UnaryOp::InverseTranspose => UnaryOp::Inverse,
        }
    }

    /// Composes `self` with a subsequent inversion.
    #[must_use]
    pub fn then_inverse(self) -> UnaryOp {
        match self {
            UnaryOp::None => UnaryOp::Inverse,
            UnaryOp::Transpose => UnaryOp::InverseTranspose,
            UnaryOp::Inverse => UnaryOp::None,
            UnaryOp::InverseTranspose => UnaryOp::Transpose,
        }
    }

    /// Whether the operator involves an inversion.
    pub fn is_inverted(&self) -> bool {
        matches!(self, UnaryOp::Inverse | UnaryOp::InverseTranspose)
    }

    /// Whether the operator involves a transposition.
    pub fn is_transposed(&self) -> bool {
        matches!(self, UnaryOp::Transpose | UnaryOp::InverseTranspose)
    }

    /// The shape of `op(A)` for an operand of shape `s`.
    pub fn apply_to_shape(&self, s: Shape) -> Shape {
        if self.is_transposed() {
            s.transposed()
        } else {
            s
        }
    }

    /// The display suffix: `""`, `"^T"`, `"^-1"` or `"^-T"`.
    pub fn suffix(&self) -> &'static str {
        match self {
            UnaryOp::None => "",
            UnaryOp::Transpose => "^T",
            UnaryOp::Inverse => "^-1",
            UnaryOp::InverseTranspose => "^-T",
        }
    }
}

/// One factor `fᵢ` of a matrix chain: an operand with an optional unary
/// operator.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Factor {
    operand: Operand,
    op: UnaryOp,
}

impl Factor {
    /// Creates a factor.
    pub fn new(operand: Operand, op: UnaryOp) -> Self {
        Factor { operand, op }
    }

    /// A plain (unmodified) factor.
    pub fn plain(operand: Operand) -> Self {
        Factor::new(operand, UnaryOp::None)
    }

    /// A transposed factor.
    pub fn transposed(operand: Operand) -> Self {
        Factor::new(operand, UnaryOp::Transpose)
    }

    /// An inverted factor.
    pub fn inverted(operand: Operand) -> Self {
        Factor::new(operand, UnaryOp::Inverse)
    }

    /// An inverted-and-transposed factor.
    pub fn inverse_transposed(operand: Operand) -> Self {
        Factor::new(operand, UnaryOp::InverseTranspose)
    }

    /// The underlying operand.
    pub fn operand(&self) -> &Operand {
        &self.operand
    }

    /// The unary operator.
    pub fn op(&self) -> UnaryOp {
        self.op
    }

    /// The effective shape of the factor (operand shape with the unary
    /// operator applied).
    pub fn shape(&self) -> Shape {
        self.op.apply_to_shape(self.operand.shape())
    }

    /// Converts the factor back to an [`Expr`].
    pub fn expr(&self) -> Expr {
        match self.op {
            UnaryOp::None => self.operand.expr(),
            UnaryOp::Transpose => self.operand.transpose(),
            UnaryOp::Inverse => self.operand.inverse(),
            UnaryOp::InverseTranspose => self.operand.inverse_transpose(),
        }
    }
}

impl fmt::Display for Factor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.operand, self.op.suffix())
    }
}

impl fmt::Debug for Factor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Factor({self} : {})", self.shape())
    }
}

/// A well-formed matrix chain `M := f0 · f1 ··· f(n-1)` (paper Sec. 1.1).
///
/// Invariants enforced at construction:
///
/// * at least two factors,
/// * adjacent factors have matching inner dimensions,
/// * inverted factors are square.
///
/// # Example
///
/// ```
/// use gmc_expr::{Chain, Factor, Operand, UnaryOp};
///
/// # fn main() -> Result<(), gmc_expr::ExprError> {
/// let l = Operand::square("L", 10);
/// let b = Operand::matrix("B", 10, 4);
/// let chain = Chain::new(vec![Factor::inverted(l), Factor::plain(b)])?;
/// assert_eq!(chain.to_string(), "L^-1 B");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Chain {
    factors: Vec<Factor>,
    shape: Shape,
}

impl Chain {
    /// Creates a chain from factors, validating well-formedness.
    ///
    /// # Errors
    ///
    /// * [`ExprError::ChainTooShort`] if fewer than two factors are given,
    /// * [`ExprError::NonSquareInverse`] if an inverted factor is not square,
    /// * [`ExprError::ShapeMismatch`] if adjacent dimensions do not agree.
    pub fn new(factors: Vec<Factor>) -> Result<Self, ExprError> {
        if factors.len() < 2 {
            return Err(ExprError::ChainTooShort { len: factors.len() });
        }
        for f in &factors {
            if f.op().is_inverted() && !f.operand().shape().is_square() {
                return Err(ExprError::NonSquareInverse {
                    shape: f.operand().shape(),
                });
            }
        }
        let mut shape = factors[0].shape();
        for (i, f) in factors.iter().enumerate().skip(1) {
            let s = f.shape();
            shape = shape.times(s).ok_or_else(|| ExprError::ShapeMismatch {
                left: shape,
                right: s,
                context: format!(
                    "factor {} ({}) times factor {} ({})",
                    i - 1,
                    factors[i - 1],
                    i,
                    f
                ),
            })?;
        }
        Ok(Chain { factors, shape })
    }

    /// Extracts a chain from an expression.
    ///
    /// The expression is [normalized](Expr::normalized) first, so inputs
    /// like `(A B)ᵀ C` are accepted (they normalize to `Bᵀ Aᵀ C`).
    ///
    /// # Errors
    ///
    /// Returns [`ExprError::NotAChain`] if, after normalization, the
    /// expression is not a product of unary-operator factors (e.g. it
    /// contains a sum or an inverse of a sum), plus the errors of
    /// [`Chain::new`].
    pub fn from_expr(expr: &Expr) -> Result<Self, ExprError> {
        let normalized = expr.normalized()?;
        let factor_exprs: Vec<&Expr> = match &normalized {
            Expr::Times(fs) => fs.iter().collect(),
            other => vec![other],
        };
        let mut factors = Vec::with_capacity(factor_exprs.len());
        for fe in factor_exprs {
            let factor = match fe {
                Expr::Symbol(op) => Factor::plain(op.clone()),
                Expr::Transpose(inner) => match &**inner {
                    Expr::Symbol(op) => Factor::transposed(op.clone()),
                    other => {
                        return Err(ExprError::NotAChain {
                            offending: other.to_string(),
                        })
                    }
                },
                Expr::Inverse(inner) => match &**inner {
                    Expr::Symbol(op) => Factor::inverted(op.clone()),
                    other => {
                        return Err(ExprError::NotAChain {
                            offending: other.to_string(),
                        })
                    }
                },
                Expr::InverseTranspose(inner) => match &**inner {
                    Expr::Symbol(op) => Factor::inverse_transposed(op.clone()),
                    other => {
                        return Err(ExprError::NotAChain {
                            offending: other.to_string(),
                        })
                    }
                },
                other => {
                    return Err(ExprError::NotAChain {
                        offending: other.to_string(),
                    })
                }
            };
            factors.push(factor);
        }
        Chain::new(factors)
    }

    /// The number of factors `n`.
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// Chains are never empty (length ≥ 2 by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The factors, in order.
    pub fn factors(&self) -> &[Factor] {
        &self.factors
    }

    /// The `i`-th factor.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn factor(&self, i: usize) -> &Factor {
        &self.factors[i]
    }

    /// The shape of the full product.
    pub fn shape(&self) -> Shape {
        self.shape
    }

    /// The shape of the sub-chain `M[i..=j]`.
    ///
    /// # Panics
    ///
    /// Panics if `i > j` or `j >= self.len()`.
    pub fn sub_shape(&self, i: usize, j: usize) -> Shape {
        assert!(i <= j && j < self.factors.len(), "invalid sub-chain range");
        Shape::new(
            self.factors[i].shape().rows(),
            self.factors[j].shape().cols(),
        )
    }

    /// The classic MCP size array `sizes[0..=n]` where factor `i` has
    /// shape `sizes[i] × sizes[i+1]` (paper Sec. 2).
    ///
    /// This is always well defined for a valid chain because adjacent
    /// dimensions agree.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = Vec::with_capacity(self.factors.len() + 1);
        sizes.push(self.factors[0].shape().rows());
        for f in &self.factors {
            sizes.push(f.shape().cols());
        }
        sizes
    }

    /// Whether any factor is transposed or inverted, or any operand has
    /// properties — i.e. whether this instance exercises the *generalized*
    /// problem rather than the classic MCP.
    pub fn is_generalized(&self) -> bool {
        self.factors
            .iter()
            .any(|f| f.op() != UnaryOp::None || !f.operand().properties().is_empty())
    }

    /// Converts back to an [`Expr`] (a flat product).
    pub fn to_expr(&self) -> Expr {
        Expr::times(self.factors.iter().map(Factor::expr))
    }
}

impl fmt::Display for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, factor) in self.factors.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{factor}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Chain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Chain({self} : {})", self.shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Property;

    #[test]
    fn unary_op_group() {
        assert_eq!(UnaryOp::None.then_transpose(), UnaryOp::Transpose);
        assert_eq!(UnaryOp::Transpose.then_transpose(), UnaryOp::None);
        assert_eq!(UnaryOp::Inverse.then_transpose(), UnaryOp::InverseTranspose);
        assert_eq!(UnaryOp::InverseTranspose.then_inverse(), UnaryOp::Transpose);
        assert_eq!(UnaryOp::None.then_inverse(), UnaryOp::Inverse);
        assert_eq!(UnaryOp::Inverse.then_inverse(), UnaryOp::None);
        // Composition is involutive in both generators.
        for op in [
            UnaryOp::None,
            UnaryOp::Transpose,
            UnaryOp::Inverse,
            UnaryOp::InverseTranspose,
        ] {
            assert_eq!(op.then_transpose().then_transpose(), op);
            assert_eq!(op.then_inverse().then_inverse(), op);
        }
    }

    #[test]
    fn factor_shapes() {
        let a = Operand::matrix("A", 3, 5);
        assert_eq!(Factor::plain(a.clone()).shape(), Shape::new(3, 5));
        assert_eq!(Factor::transposed(a).shape(), Shape::new(5, 3));
    }

    #[test]
    fn chain_construction_and_accessors() {
        let a = Operand::matrix("A", 2, 3);
        let b = Operand::matrix("B", 3, 5);
        let c = Operand::matrix("C", 5, 5);
        let chain = Chain::new(vec![
            Factor::plain(a),
            Factor::plain(b),
            Factor::inverted(c),
        ])
        .unwrap();
        assert_eq!(chain.len(), 3);
        assert_eq!(chain.shape(), Shape::new(2, 5));
        assert_eq!(chain.sub_shape(0, 1), Shape::new(2, 5));
        assert_eq!(chain.sub_shape(1, 2), Shape::new(3, 5));
        assert_eq!(chain.sizes(), vec![2, 3, 5, 5]);
        assert!(chain.is_generalized());
    }

    #[test]
    fn chain_too_short() {
        let a = Operand::matrix("A", 2, 3);
        assert!(matches!(
            Chain::new(vec![Factor::plain(a)]),
            Err(ExprError::ChainTooShort { len: 1 })
        ));
    }

    #[test]
    fn chain_dimension_mismatch() {
        let a = Operand::matrix("A", 2, 3);
        let b = Operand::matrix("B", 4, 5);
        assert!(matches!(
            Chain::new(vec![Factor::plain(a), Factor::plain(b)]),
            Err(ExprError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn chain_inverted_rectangular_rejected() {
        let a = Operand::matrix("A", 2, 3);
        let b = Operand::matrix("B", 2, 5);
        // Aᵀ is 3x2... invert A (2x3): invalid.
        assert!(matches!(
            Chain::new(vec![Factor::inverted(a), Factor::plain(b)]),
            Err(ExprError::NonSquareInverse { .. })
        ));
    }

    #[test]
    fn transposed_factors_fix_dimensions() {
        // A is 3x2; Aᵀ is 2x3, so Aᵀ·B works with B 3x4.
        let a = Operand::matrix("A", 3, 2);
        let b = Operand::matrix("B", 3, 4);
        let chain = Chain::new(vec![Factor::transposed(a), Factor::plain(b)]).unwrap();
        assert_eq!(chain.shape(), Shape::new(2, 4));
        assert_eq!(chain.to_string(), "A^T B");
    }

    #[test]
    fn from_expr_simple() {
        let a = Operand::square("A", 4).with_property(Property::SymmetricPositiveDefinite);
        let b = Operand::matrix("B", 4, 6);
        let c = Operand::matrix("C", 6, 6).with_property(Property::LowerTriangular);
        let e = a.inverse() * b.expr() * c.transpose();
        let chain = Chain::from_expr(&e).unwrap();
        assert_eq!(chain.len(), 3);
        assert_eq!(chain.factor(0).op(), UnaryOp::Inverse);
        assert_eq!(chain.factor(1).op(), UnaryOp::None);
        assert_eq!(chain.factor(2).op(), UnaryOp::Transpose);
        assert_eq!(chain.to_string(), "A^-1 B C^T");
    }

    #[test]
    fn from_expr_normalizes() {
        let a = Operand::square("A", 4);
        let b = Operand::square("B", 4);
        let c = Operand::square("C", 4);
        // (A·B)ᵀ · C should become Bᵀ Aᵀ C.
        let e = Expr::transpose(a.expr() * b.expr()) * c.expr();
        let chain = Chain::from_expr(&e).unwrap();
        assert_eq!(chain.to_string(), "B^T A^T C");
    }

    #[test]
    fn from_expr_rejects_sums() {
        let a = Operand::square("A", 4);
        let b = Operand::square("B", 4);
        let e = (a.expr() + b.expr()) * b.expr();
        assert!(matches!(
            Chain::from_expr(&e),
            Err(ExprError::NotAChain { .. })
        ));
    }

    #[test]
    fn from_expr_rejects_single_symbol() {
        let a = Operand::square("A", 4);
        assert!(matches!(
            Chain::from_expr(&a.expr()),
            Err(ExprError::ChainTooShort { .. })
        ));
    }

    #[test]
    fn round_trip_to_expr() {
        let a = Operand::square("A", 4);
        let b = Operand::matrix("B", 4, 7);
        let chain = Chain::new(vec![Factor::inverse_transposed(a), Factor::plain(b)]).unwrap();
        let e = chain.to_expr();
        let chain2 = Chain::from_expr(&e).unwrap();
        assert_eq!(chain, chain2);
        assert_eq!(chain.to_string(), "A^-T B");
    }

    #[test]
    fn vector_chain() {
        // M v: matrix times column vector.
        let m = Operand::matrix("M", 8, 5);
        let v = Operand::col_vector("v", 5);
        let chain = Chain::new(vec![Factor::plain(m), Factor::plain(v)]).unwrap();
        assert_eq!(chain.shape(), Shape::col_vector(8));

        // Outer product v wᵀ.
        let v = Operand::col_vector("v", 5);
        let w = Operand::col_vector("w", 7);
        let chain = Chain::new(vec![Factor::plain(v), Factor::transposed(w)]).unwrap();
        assert_eq!(chain.shape(), Shape::new(5, 7));
    }

    #[test]
    fn classic_chain_not_generalized() {
        let a = Operand::matrix("A", 2, 3);
        let b = Operand::matrix("B", 3, 5);
        let chain = Chain::new(vec![Factor::plain(a), Factor::plain(b)]).unwrap();
        assert!(!chain.is_generalized());
    }
}
