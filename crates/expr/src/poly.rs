//! Multivariate cost polynomials over dimension variables.
//!
//! Symbolic FLOP counts (and any polynomial cost metric) are represented
//! as [`CostPoly`]: a sum of monomials in the chain's [`DimVar`]s with
//! `f64` coefficients. The GMC recurrence only needs addition and
//! comparison of costs; for polynomials the comparison is a *partial*
//! order, decided by dominance on the positive orthant: `p ≤ q` for all
//! dimension assignments `≥ 1` whenever `q − p`, re-expanded around the
//! point `(1, …, 1)` (substituting `v → 1 + v'` for every variable), has
//! only non-negative coefficients. Splits whose cost polynomials are not
//! comparable under this order are *deferred* by the symbolic optimizer
//! and decided at bind time.

use crate::dim::{Dim, DimBindings, DimError, DimVar};
use std::collections::BTreeMap;
use std::fmt;

/// A monomial: variables with positive exponents, sorted by variable.
type Monomial = Vec<(DimVar, u32)>;

/// A multivariate polynomial cost in the dimension variables.
///
/// # Example
///
/// ```
/// use gmc_expr::{CostPoly, Dim, DimBindings};
///
/// // 2·n·m + n²
/// let n = CostPoly::from_dim(Dim::var("n"));
/// let m = CostPoly::from_dim(Dim::var("m"));
/// let p = n.mul(&m).scale(2.0).add(&n.mul(&n));
/// let b = DimBindings::new().with("n", 3).with("m", 4);
/// assert_eq!(p.eval(&b).unwrap(), 33.0);
/// // n² + 2nm dominates n² on the positive orthant…
/// assert!(n.mul(&n).dominated_by(&p));
/// // …but n² and m² are incomparable.
/// assert!(!n.mul(&n).dominated_by(&m.mul(&m)));
/// assert!(!m.mul(&m).dominated_by(&n.mul(&n)));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CostPoly {
    terms: BTreeMap<Monomial, f64>,
}

impl CostPoly {
    /// The zero polynomial.
    pub fn zero() -> CostPoly {
        CostPoly::default()
    }

    /// A constant polynomial.
    pub fn constant(c: f64) -> CostPoly {
        let mut p = CostPoly::zero();
        if c != 0.0 {
            p.terms.insert(Vec::new(), c);
        }
        p
    }

    /// The polynomial `d` (a constant or a single variable).
    pub fn from_dim(d: Dim) -> CostPoly {
        match d {
            Dim::Const(v) => CostPoly::constant(v as f64),
            Dim::Var(v) => {
                let mut p = CostPoly::zero();
                p.terms.insert(vec![(v, 1)], 1.0);
                p
            }
        }
    }

    /// Whether the polynomial is identically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty()
    }

    /// The coefficient of the constant monomial.
    pub fn constant_term(&self) -> f64 {
        self.terms.get(&Vec::new()).copied().unwrap_or(0.0)
    }

    /// The total degree of the polynomial (0 for constants and zero).
    pub fn degree(&self) -> u32 {
        self.terms
            .keys()
            .map(|m| m.iter().map(|(_, e)| e).sum())
            .max()
            .unwrap_or(0)
    }

    /// The distinct variables appearing with non-zero coefficient.
    pub fn vars(&self) -> Vec<DimVar> {
        let mut out: Vec<DimVar> = Vec::new();
        for m in self.terms.keys() {
            for (v, _) in m {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
        }
        out.sort();
        out
    }

    /// Sum of two polynomials.
    #[must_use]
    pub fn add(&self, other: &CostPoly) -> CostPoly {
        let mut out = self.clone();
        for (m, c) in &other.terms {
            let e = out.terms.entry(m.clone()).or_insert(0.0);
            *e += c;
            if *e == 0.0 {
                out.terms.remove(m);
            }
        }
        out
    }

    /// Difference `self − other`.
    #[must_use]
    pub fn sub(&self, other: &CostPoly) -> CostPoly {
        self.add(&other.scale(-1.0))
    }

    /// Product of two polynomials.
    #[must_use]
    pub fn mul(&self, other: &CostPoly) -> CostPoly {
        let mut out = CostPoly::zero();
        for (ma, ca) in &self.terms {
            for (mb, cb) in &other.terms {
                let m = merge_monomials(ma, mb);
                let e = out.terms.entry(m.clone()).or_insert(0.0);
                *e += ca * cb;
                if *e == 0.0 {
                    out.terms.remove(&m);
                }
            }
        }
        out
    }

    /// Scalar multiple.
    #[must_use]
    pub fn scale(&self, s: f64) -> CostPoly {
        if s == 0.0 {
            return CostPoly::zero();
        }
        CostPoly {
            terms: self.terms.iter().map(|(m, c)| (m.clone(), c * s)).collect(),
        }
    }

    /// Evaluates the polynomial under `bindings`.
    ///
    /// Note that this is *reference* evaluation for reports and tests:
    /// the plan-cache hot path evaluates kernel costs through the exact
    /// per-kernel FLOP formulas instead, so that instantiated costs are
    /// bit-identical to the concrete optimizer's.
    ///
    /// # Errors
    ///
    /// Propagates [`DimError::UnboundVar`] for unbound variables.
    pub fn eval(&self, bindings: &DimBindings) -> Result<f64, DimError> {
        let mut total = 0.0;
        for (m, c) in &self.terms {
            let mut v = *c;
            for (var, e) in m {
                let x = bindings.get(*var).ok_or(DimError::UnboundVar(*var))? as f64;
                for _ in 0..*e {
                    v *= x;
                }
            }
            total += v;
        }
        Ok(total)
    }

    /// Whether `self ≤ other` for every assignment of values `≥ 1` to
    /// the variables (dominance on the positive orthant).
    ///
    /// Decided by a sufficient criterion that is exact for the FLOP
    /// polynomials arising here: expand `other − self` around the point
    /// `(1, …, 1)` (substitute `v → 1 + v'`); if every coefficient of
    /// the shifted polynomial is non-negative, the difference is
    /// non-negative and monotone for all `v ≥ 1`.
    pub fn dominated_by(&self, other: &CostPoly) -> bool {
        other.sub(self).shifted_coeffs_nonneg()
    }

    /// Whether `self ≤ other` everywhere *and* `self < other` for every
    /// assignment `≥ 1` (the shifted difference has a strictly positive
    /// constant term, its minimum over the orthant).
    pub fn strictly_dominated_by(&self, other: &CostPoly) -> bool {
        let diff = other.sub(self);
        let shifted = diff.shifted();
        shifted.terms.values().all(|&c| c >= 0.0) && shifted.constant_term() > 0.0
    }

    /// Re-expands the polynomial in `v' = v − 1` for every variable.
    fn shifted(&self) -> CostPoly {
        let mut out = CostPoly::zero();
        for (m, c) in &self.terms {
            // Π (1 + v')^e expands via repeated multiplication.
            let mut term = CostPoly::constant(*c);
            for (var, e) in m {
                let one_plus = CostPoly::constant(1.0).add(&CostPoly::from_dim(Dim::Var(*var)));
                for _ in 0..*e {
                    term = term.mul(&one_plus);
                }
            }
            out = out.add(&term);
        }
        out
    }

    fn shifted_coeffs_nonneg(&self) -> bool {
        self.shifted().terms.values().all(|&c| c >= 0.0)
    }
}

fn merge_monomials(a: &Monomial, b: &Monomial) -> Monomial {
    let mut out: BTreeMap<DimVar, u32> = BTreeMap::new();
    for (v, e) in a.iter().chain(b.iter()) {
        *out.entry(*v).or_insert(0) += e;
    }
    out.into_iter().collect()
}

impl fmt::Display for CostPoly {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.terms.is_empty() {
            return write!(f, "0");
        }
        // Highest-degree terms first reads like big-O notation.
        let mut terms: Vec<(&Monomial, &f64)> = self.terms.iter().collect();
        terms.sort_by(|(ma, _), (mb, _)| {
            let da: u32 = ma.iter().map(|(_, e)| e).sum();
            let db: u32 = mb.iter().map(|(_, e)| e).sum();
            db.cmp(&da).then_with(|| ma.cmp(mb))
        });
        for (i, (m, c)) in terms.into_iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            if m.is_empty() {
                write!(f, "{c}")?;
            } else {
                if (*c - 1.0).abs() > f64::EPSILON {
                    write!(f, "{c:.4} ")?;
                }
                for (j, (v, e)) in m.iter().enumerate() {
                    if j > 0 {
                        write!(f, " ")?;
                    }
                    if *e == 1 {
                        write!(f, "{v}")?;
                    } else {
                        write!(f, "{v}^{e}")?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(name: &str) -> CostPoly {
        CostPoly::from_dim(Dim::var(name))
    }

    #[test]
    fn arithmetic_and_eval() {
        let n = v("pn");
        let m = v("pm");
        // (n + m)·n = n² + nm
        let p = n.add(&m).mul(&n);
        let b = DimBindings::new().with("pn", 2).with("pm", 5);
        assert_eq!(p.eval(&b).unwrap(), 4.0 + 10.0);
        assert_eq!(p.degree(), 2);
        assert_eq!(p.sub(&p), CostPoly::zero());
        assert!(p.sub(&p).is_zero());
    }

    #[test]
    fn dominance_with_mixed_signs_in_raw_basis() {
        // m²·n − m·n has a negative raw coefficient but is non-negative
        // for m, n ≥ 1: the shifted expansion certifies it.
        let m = v("pm");
        let n = v("pn");
        let big = m.mul(&m).mul(&n);
        let small = m.mul(&n);
        assert!(small.dominated_by(&big));
        assert!(!big.dominated_by(&small));
    }

    #[test]
    fn incomparable_polynomials() {
        let n = v("pn");
        let m = v("pm");
        assert!(!n.dominated_by(&m));
        assert!(!m.dominated_by(&n));
        // 2mn vs m² + n²: by AM–GM m²+n² ≥ 2mn, and the criterion
        // certifies it is NOT decidable coefficient-wise (it requires
        // the square completion), so dominance conservatively fails.
        let p = m.mul(&n).scale(2.0);
        let q = m.mul(&m).add(&n.mul(&n));
        assert!(!p.dominated_by(&q));
    }

    #[test]
    fn strict_dominance_needs_positive_gap_at_one() {
        let n = v("pn");
        // n ≤ n²: equality at n = 1, so not strict.
        assert!(n.dominated_by(&n.mul(&n)));
        assert!(!n.strictly_dominated_by(&n.mul(&n)));
        // n + 1 strictly dominates n… in the other direction.
        let n_plus = n.add(&CostPoly::constant(1.0));
        assert!(n.strictly_dominated_by(&n_plus));
    }

    #[test]
    fn reflexive_dominance() {
        let p = v("pn").mul(&v("pm")).scale(2.0);
        assert!(p.dominated_by(&p));
        assert!(!p.strictly_dominated_by(&p));
    }

    #[test]
    fn display_is_readable() {
        let n = v("pn");
        let m = v("pm");
        let p = n.mul(&n).mul(&m).scale(2.0).add(&CostPoly::constant(3.0));
        let s = p.to_string();
        assert!(s.contains("pn^2"), "{s}");
        assert!(s.contains("3"), "{s}");
        assert_eq!(CostPoly::zero().to_string(), "0");
    }

    #[test]
    fn constants_fold() {
        let p = CostPoly::from_dim(Dim::Const(4)).mul(&CostPoly::from_dim(Dim::Const(5)));
        assert_eq!(p, CostPoly::constant(20.0));
        assert_eq!(p.eval(&DimBindings::new()).unwrap(), 20.0);
    }
}
