//! Named matrix operands.

use crate::{Expr, Property, PropertySet, Shape};
use std::fmt;
use std::sync::Arc;

/// Whether an operand is a problem input or a temporary created by the
/// GMC algorithm (`create_tmp`, paper Fig. 4 line 9).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OperandKind {
    /// An operand supplied by the user.
    Input,
    /// An intermediate result introduced by the optimizer.
    Temporary,
}

#[derive(Debug, PartialEq, Eq, Hash)]
struct OperandInner {
    name: String,
    shape: Shape,
    properties: PropertySet,
    kind: OperandKind,
}

/// A named matrix (or vector) with a [`Shape`] and a [`PropertySet`].
///
/// Operands are cheaply cloneable (reference counted). Two operands are
/// equal when their name, shape, properties and kind agree; within one
/// problem, names are expected to be unique.
///
/// # Example
///
/// ```
/// use gmc_expr::{Operand, Property, Shape};
///
/// let l = Operand::square("L", 100).with_property(Property::LowerTriangular);
/// assert_eq!(l.name(), "L");
/// assert_eq!(l.shape(), Shape::new(100, 100));
/// assert!(l.properties().contains(Property::LowerTriangular));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Operand {
    inner: Arc<OperandInner>,
}

impl Operand {
    /// Creates a general matrix operand with no properties.
    pub fn matrix(name: impl Into<String>, rows: usize, cols: usize) -> Self {
        Operand::with_shape(name, Shape::new(rows, cols))
    }

    /// Creates a square matrix operand with no properties.
    pub fn square(name: impl Into<String>, n: usize) -> Self {
        Operand::with_shape(name, Shape::square(n))
    }

    /// Creates a column vector operand (`n×1`).
    pub fn col_vector(name: impl Into<String>, n: usize) -> Self {
        Operand::with_shape(name, Shape::col_vector(n))
    }

    /// Creates a row vector operand (`1×n`).
    pub fn row_vector(name: impl Into<String>, n: usize) -> Self {
        Operand::with_shape(name, Shape::row_vector(n))
    }

    /// Creates an operand from an explicit [`Shape`].
    pub fn with_shape(name: impl Into<String>, shape: Shape) -> Self {
        Operand {
            inner: Arc::new(OperandInner {
                name: name.into(),
                shape,
                properties: PropertySet::new(),
                kind: OperandKind::Input,
            }),
        }
    }

    /// Creates a temporary operand, as produced by the optimizer for
    /// intermediate results.
    pub fn temporary(name: impl Into<String>, shape: Shape, properties: PropertySet) -> Self {
        Operand {
            inner: Arc::new(OperandInner {
                name: name.into(),
                shape,
                properties,
                kind: OperandKind::Temporary,
            }),
        }
    }

    /// Adds a property, returning the updated operand.
    ///
    /// # Panics
    ///
    /// Panics if the property requires a square matrix (e.g.
    /// [`Property::Symmetric`]) and the operand is not square.
    #[must_use]
    pub fn with_property(self, p: Property) -> Self {
        assert!(
            !p.requires_square() || self.shape().is_square(),
            "property {p} requires a square matrix, but {} has shape {}",
            self.name(),
            self.shape()
        );
        let mut properties = self.inner.properties;
        properties.insert(p);
        Operand {
            inner: Arc::new(OperandInner {
                name: self.inner.name.clone(),
                shape: self.inner.shape,
                properties,
                kind: self.inner.kind,
            }),
        }
    }

    /// Adds several properties at once. See [`with_property`](Self::with_property).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`with_property`](Self::with_property).
    #[must_use]
    pub fn with_properties(self, ps: impl IntoIterator<Item = Property>) -> Self {
        ps.into_iter().fold(self, Operand::with_property)
    }

    /// The operand's name.
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The operand's shape.
    pub fn shape(&self) -> Shape {
        self.inner.shape
    }

    /// The operand's properties (closed under implication).
    pub fn properties(&self) -> PropertySet {
        self.inner.properties
    }

    /// Whether this operand is an input or a temporary.
    pub fn kind(&self) -> OperandKind {
        self.inner.kind
    }

    /// Whether the operand is a vector (`n×1` or `1×n`).
    pub fn is_vector(&self) -> bool {
        self.inner.shape.is_vector()
    }

    /// Wraps the operand in an [`Expr::Symbol`].
    pub fn expr(&self) -> Expr {
        Expr::Symbol(self.clone())
    }

    /// The expression `selfᵀ`.
    pub fn transpose(&self) -> Expr {
        Expr::Transpose(Box::new(self.expr()))
    }

    /// The expression `self⁻¹`.
    pub fn inverse(&self) -> Expr {
        Expr::Inverse(Box::new(self.expr()))
    }

    /// The expression `self⁻ᵀ`.
    pub fn inverse_transpose(&self) -> Expr {
        Expr::InverseTranspose(Box::new(self.expr()))
    }
}

impl fmt::Debug for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Operand({} {} {:?})",
            self.inner.name, self.inner.shape, self.inner.properties
        )
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.inner.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let a = Operand::matrix("A", 3, 4);
        assert_eq!(a.name(), "A");
        assert_eq!(a.shape(), Shape::new(3, 4));
        assert_eq!(a.kind(), OperandKind::Input);
        assert!(a.properties().is_empty());

        let v = Operand::col_vector("v", 9);
        assert!(v.is_vector());
        let w = Operand::row_vector("w", 9);
        assert_eq!(w.shape(), Shape::new(1, 9));
    }

    #[test]
    fn with_properties_closure() {
        let a = Operand::square("A", 5)
            .with_properties([Property::LowerTriangular, Property::UpperTriangular]);
        assert!(a.properties().contains(Property::Diagonal));
    }

    #[test]
    #[should_panic(expected = "requires a square matrix")]
    fn square_property_on_rectangular_panics() {
        let _ = Operand::matrix("A", 3, 4).with_property(Property::Symmetric);
    }

    #[test]
    fn equality_is_structural() {
        let a1 = Operand::square("A", 5).with_property(Property::Symmetric);
        let a2 = Operand::square("A", 5).with_property(Property::Symmetric);
        assert_eq!(a1, a2);
        let a3 = Operand::square("A", 6).with_property(Property::Symmetric);
        assert_ne!(a1, a3);
    }

    #[test]
    fn temporaries() {
        let t = Operand::temporary(
            "T0",
            Shape::new(4, 4),
            PropertySet::new().with(Property::Symmetric),
        );
        assert_eq!(t.kind(), OperandKind::Temporary);
        assert!(t.properties().contains(Property::Symmetric));
    }

    #[test]
    fn clone_is_cheap_and_shared() {
        let a = Operand::square("A", 5);
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.inner, &b.inner));
    }
}
