//! Error types for symbolic expression construction and validation.

use crate::{Property, Shape};
use std::fmt;

/// Errors produced while building, normalizing or validating expressions
/// and chains.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExprError {
    /// Two factors of a product have mismatching inner dimensions.
    ShapeMismatch {
        /// Shape of the left factor.
        left: Shape,
        /// Shape of the right factor.
        right: Shape,
        /// Human-readable description of where the mismatch occurred.
        context: String,
    },
    /// The operands of a sum have different shapes.
    SumShapeMismatch {
        /// Shape of the first summand.
        first: Shape,
        /// Shape of the offending summand.
        other: Shape,
    },
    /// Inversion applied to a non-square expression.
    NonSquareInverse {
        /// The offending shape.
        shape: Shape,
    },
    /// A chain was requested from an expression that is not a product of
    /// (possibly transposed/inverted) operands.
    NotAChain {
        /// Description of the offending sub-expression.
        offending: String,
    },
    /// The chain has fewer than two factors (paper Sec. 1.1 requires
    /// well-formed chains of length two or higher).
    ChainTooShort {
        /// Number of factors found.
        len: usize,
    },
    /// A property that requires a square matrix was attached to a
    /// non-square operand.
    InvalidProperty {
        /// The property in question.
        property: Property,
        /// The operand's shape.
        shape: Shape,
        /// The operand's name.
        operand: String,
    },
    /// An empty product or sum was encountered.
    EmptyExpression,
}

impl fmt::Display for ExprError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExprError::ShapeMismatch {
                left,
                right,
                context,
            } => write!(
                f,
                "dimension mismatch in product: {left} times {right} ({context})"
            ),
            ExprError::SumShapeMismatch { first, other } => {
                write!(f, "dimension mismatch in sum: {first} plus {other}")
            }
            ExprError::NonSquareInverse { shape } => {
                write!(f, "cannot invert non-square expression of shape {shape}")
            }
            ExprError::NotAChain { offending } => {
                write!(f, "expression is not a matrix chain: {offending}")
            }
            ExprError::ChainTooShort { len } => {
                write!(f, "matrix chain must have length two or higher, got {len}")
            }
            ExprError::InvalidProperty {
                property,
                shape,
                operand,
            } => write!(
                f,
                "property {property} requires a square matrix, but operand {operand} has shape {shape}"
            ),
            ExprError::EmptyExpression => write!(f, "empty product or sum"),
        }
    }
}

impl std::error::Error for ExprError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = ExprError::ShapeMismatch {
            left: Shape::new(2, 3),
            right: Shape::new(4, 5),
            context: "factor 1 times factor 2".into(),
        };
        let msg = e.to_string();
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));

        let e = ExprError::ChainTooShort { len: 1 };
        assert!(e.to_string().contains("two or higher"));

        let e = ExprError::NonSquareInverse {
            shape: Shape::new(3, 4),
        };
        assert!(e.to_string().contains("non-square"));
    }
}
