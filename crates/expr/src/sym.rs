//! Symbolic chains: matrix chains whose operand dimensions may be
//! variables.
//!
//! A [`SymChain`] is the symbolic analogue of [`Chain`]: a sequence of
//! factors (operand + unary operator) whose shapes are [`SymShape`]s.
//! Well-formedness is checked *structurally* — adjacent inner dimensions
//! must be the same [`Dim`], and inverted factors must be structurally
//! square — so a valid symbolic chain yields a valid concrete [`Chain`]
//! under **every** positive binding of its variables
//! ([`SymChain::bind`]).

use crate::chain::{Chain, Factor, UnaryOp};
use crate::dim::{Dim, DimBindings, DimError, DimVar};
use crate::shape::SymShape;
use crate::{ExprError, Operand, Property, PropertySet};
use std::fmt;

/// A named operand with a symbolic shape and properties.
///
/// # Example
///
/// ```
/// use gmc_expr::{Dim, DimBindings, Property, SymOperand};
///
/// let a = SymOperand::new("A", Dim::var("n"), Dim::var("n"))
///     .with_property(Property::SymmetricPositiveDefinite)
///     .unwrap();
/// let op = a.bind(&DimBindings::new().with("n", 100)).unwrap();
/// assert_eq!(op.shape().rows(), 100);
/// assert!(op.properties().contains(Property::Symmetric));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SymOperand {
    name: String,
    shape: SymShape,
    properties: PropertySet,
}

impl SymOperand {
    /// Creates a general symbolic operand with no properties.
    pub fn new(name: impl Into<String>, rows: impl Into<Dim>, cols: impl Into<Dim>) -> Self {
        SymOperand {
            name: name.into(),
            shape: SymShape::new(rows.into(), cols.into()),
            properties: PropertySet::new(),
        }
    }

    /// Creates a structurally square operand.
    pub fn square(name: impl Into<String>, n: impl Into<Dim>) -> Self {
        let n = n.into();
        SymOperand::new(name, n, n)
    }

    /// Creates a column vector operand (`n×1`).
    pub fn col_vector(name: impl Into<String>, n: impl Into<Dim>) -> Self {
        SymOperand::new(name, n, Dim::Const(1))
    }

    /// Adds a property.
    ///
    /// # Errors
    ///
    /// Returns [`SymChainError::PropertyNeedsSquare`] if the property
    /// requires a square matrix and the shape is not structurally
    /// square (a shape that is only *sometimes* square cannot carry the
    /// property, since it must hold under every binding).
    pub fn with_property(mut self, p: Property) -> Result<Self, SymChainError> {
        if p.requires_square() && !self.shape.is_square_structural() {
            return Err(SymChainError::PropertyNeedsSquare {
                property: p,
                operand: self.name,
                shape: self.shape,
            });
        }
        self.properties.insert(p);
        Ok(self)
    }

    /// Adds several properties; see [`with_property`](Self::with_property).
    ///
    /// # Errors
    ///
    /// Same as [`with_property`](Self::with_property).
    pub fn with_properties(
        self,
        ps: impl IntoIterator<Item = Property>,
    ) -> Result<Self, SymChainError> {
        ps.into_iter().try_fold(self, SymOperand::with_property)
    }

    /// The operand's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operand's symbolic shape.
    pub fn shape(&self) -> SymShape {
        self.shape
    }

    /// The operand's properties.
    pub fn properties(&self) -> PropertySet {
        self.properties
    }

    /// Resolves the operand to a concrete [`Operand`].
    ///
    /// # Errors
    ///
    /// Propagates [`DimError`] for unbound variables or zero sizes.
    pub fn bind(&self, bindings: &DimBindings) -> Result<Operand, DimError> {
        let shape = self.shape.bind(bindings)?;
        // Structural squareness guarantees square-only properties stay
        // valid after binding, so `with_properties` cannot panic here.
        Ok(Operand::with_shape(&self.name, shape).with_properties(self.properties.iter()))
    }
}

impl fmt::Display for SymOperand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// One factor of a symbolic chain: an operand with a unary operator.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SymFactor {
    operand: SymOperand,
    op: UnaryOp,
}

impl SymFactor {
    /// Creates a factor.
    pub fn new(operand: SymOperand, op: UnaryOp) -> Self {
        SymFactor { operand, op }
    }

    /// A plain (unmodified) factor.
    pub fn plain(operand: SymOperand) -> Self {
        SymFactor::new(operand, UnaryOp::None)
    }

    /// The underlying operand.
    pub fn operand(&self) -> &SymOperand {
        &self.operand
    }

    /// The unary operator.
    pub fn op(&self) -> UnaryOp {
        self.op
    }

    /// The effective symbolic shape (operand shape with the unary
    /// operator applied).
    pub fn shape(&self) -> SymShape {
        if self.op.is_transposed() {
            self.operand.shape().transposed()
        } else {
            self.operand.shape()
        }
    }
}

impl fmt::Display for SymFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", self.operand, self.op.suffix())
    }
}

/// A structurally well-formed symbolic matrix chain.
///
/// # Example
///
/// ```
/// use gmc_expr::{Dim, DimBindings, SymChain, SymFactor, SymOperand};
///
/// let a = SymOperand::new("A", Dim::var("n"), Dim::var("k"));
/// let b = SymOperand::new("B", Dim::var("k"), Dim::var("m"));
/// let chain = SymChain::new(vec![SymFactor::plain(a), SymFactor::plain(b)]).unwrap();
/// let bound = chain
///     .bind(&DimBindings::new().with("n", 10).with("k", 20).with("m", 5))
///     .unwrap();
/// assert_eq!(bound.to_string(), "A B");
/// assert_eq!(bound.shape().rows(), 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SymChain {
    factors: Vec<SymFactor>,
}

impl SymChain {
    /// Creates a symbolic chain, validating structural well-formedness:
    /// at least two factors, structurally matching adjacent inner
    /// dimensions, structurally square inverted factors.
    ///
    /// # Errors
    ///
    /// [`SymChainError::TooShort`], [`SymChainError::NonSquareInverse`]
    /// or [`SymChainError::ShapeMismatch`].
    pub fn new(factors: Vec<SymFactor>) -> Result<Self, SymChainError> {
        if factors.len() < 2 {
            return Err(SymChainError::TooShort { len: factors.len() });
        }
        for f in &factors {
            if f.op().is_inverted() && !f.operand().shape().is_square_structural() {
                return Err(SymChainError::NonSquareInverse {
                    operand: f.operand().name().to_owned(),
                    shape: f.operand().shape(),
                });
            }
        }
        for w in factors.windows(2) {
            let (l, r) = (w[0].shape(), w[1].shape());
            if l.cols() != r.rows() {
                return Err(SymChainError::ShapeMismatch {
                    left: l,
                    right: r,
                    context: format!("{} times {}", w[0], w[1]),
                });
            }
        }
        // Operands are identified by name downstream (aliasing decides
        // e.g. SYRK applicability on AᵀA), so repeated names must refer
        // to one and the same operand.
        for (a, fa) in factors.iter().enumerate() {
            for fb in &factors[a + 1..] {
                if fa.operand().name() == fb.operand().name() && fa.operand() != fb.operand() {
                    return Err(SymChainError::InconsistentOperand {
                        name: fa.operand().name().to_owned(),
                    });
                }
            }
        }
        // Names of the form `T<i>_<j>` are reserved for the optimizer's
        // temporaries; an input operand shadowing one would corrupt the
        // name-keyed provenance maps of the symbolic planner.
        for f in &factors {
            if is_reserved_temp_name(f.operand().name()) {
                return Err(SymChainError::ReservedName {
                    name: f.operand().name().to_owned(),
                });
            }
        }
        Ok(SymChain { factors })
    }

    /// Lifts a concrete chain to a symbolic one (all dimensions
    /// constant). Useful for feeding concrete problems through the
    /// symbolic pipeline.
    ///
    /// # Errors
    ///
    /// Applies the full [`SymChain::new`] validation: concrete chains
    /// may legally use reserved `T<i>_<j>` operand names or repeat a
    /// name for different operands, but the symbolic pipeline's
    /// name-keyed bookkeeping cannot represent them.
    pub fn from_chain(chain: &Chain) -> Result<SymChain, SymChainError> {
        let factors = chain
            .factors()
            .iter()
            .map(|f| {
                let o = f.operand();
                let sym = SymOperand {
                    name: o.name().to_owned(),
                    shape: o.shape().to_sym(),
                    properties: o.properties(),
                };
                SymFactor::new(sym, f.op())
            })
            .collect();
        SymChain::new(factors)
    }

    /// The number of factors `n`.
    pub fn len(&self) -> usize {
        self.factors.len()
    }

    /// Chains are never empty (length ≥ 2 by construction).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The factors, in order.
    pub fn factors(&self) -> &[SymFactor] {
        &self.factors
    }

    /// The `i`-th factor.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    pub fn factor(&self, i: usize) -> &SymFactor {
        &self.factors[i]
    }

    /// The symbolic boundary dimensions `d0..=dn`: factor `i` has
    /// effective shape `d[i] × d[i+1]` (the symbolic analogue of
    /// [`Chain::sizes`]).
    pub fn dims(&self) -> Vec<Dim> {
        let mut dims = Vec::with_capacity(self.factors.len() + 1);
        dims.push(self.factors[0].shape().rows());
        for f in &self.factors {
            dims.push(f.shape().cols());
        }
        dims
    }

    /// The symbolic shape of the sub-chain `M[i..=j]`.
    ///
    /// # Panics
    ///
    /// Panics if `i > j` or `j >= self.len()`.
    pub fn sub_shape(&self, i: usize, j: usize) -> SymShape {
        assert!(i <= j && j < self.factors.len(), "invalid sub-chain range");
        SymShape::new(
            self.factors[i].shape().rows(),
            self.factors[j].shape().cols(),
        )
    }

    /// The distinct dimension variables, in first-occurrence order.
    pub fn vars(&self) -> Vec<DimVar> {
        let mut out = Vec::new();
        for d in self.dims() {
            if let Dim::Var(v) = d {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    /// Whether any dimension is a variable.
    pub fn is_symbolic(&self) -> bool {
        self.dims().iter().any(Dim::is_var)
    }

    /// Resolves the chain to a concrete [`Chain`] under `bindings`.
    ///
    /// # Errors
    ///
    /// [`SymChainError::Dim`] for unbound variables or zero sizes;
    /// [`SymChainError::Expr`] is unreachable for structurally valid
    /// chains but propagated defensively.
    pub fn bind(&self, bindings: &DimBindings) -> Result<Chain, SymChainError> {
        let factors = self
            .factors
            .iter()
            .map(|f| Ok(Factor::new(f.operand().bind(bindings)?, f.op())))
            .collect::<Result<Vec<_>, DimError>>()?;
        Chain::new(factors).map_err(SymChainError::Expr)
    }

    /// Resolves only the boundary dimensions to concrete sizes (the
    /// concrete analogue of [`dims`](Self::dims)).
    ///
    /// # Errors
    ///
    /// Propagates [`DimError`] for unbound variables or zero sizes.
    pub fn bind_dims(&self, bindings: &DimBindings) -> Result<Vec<usize>, DimError> {
        self.dims().iter().map(|d| d.bind(bindings)).collect()
    }
}

impl fmt::Display for SymChain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, factor) in self.factors.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{factor}")?;
        }
        Ok(())
    }
}

/// Errors produced while building or binding symbolic chains.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum SymChainError {
    /// Fewer than two factors.
    TooShort {
        /// Number of factors found.
        len: usize,
    },
    /// An inverted factor is not structurally square.
    NonSquareInverse {
        /// The operand's name.
        operand: String,
        /// The operand's symbolic shape.
        shape: SymShape,
    },
    /// Adjacent factors have structurally different inner dimensions.
    ShapeMismatch {
        /// Effective shape of the left factor.
        left: SymShape,
        /// Effective shape of the right factor.
        right: SymShape,
        /// Where the mismatch occurred.
        context: String,
    },
    /// A square-only property on a non-structurally-square operand.
    PropertyNeedsSquare {
        /// The property in question.
        property: Property,
        /// The operand's name.
        operand: String,
        /// The operand's symbolic shape.
        shape: SymShape,
    },
    /// Two factors use the same operand name for different operands.
    InconsistentOperand {
        /// The conflicting name.
        name: String,
    },
    /// An operand uses a name reserved for optimizer temporaries
    /// (`T<i>_<j>`).
    ReservedName {
        /// The offending name.
        name: String,
    },
    /// A dimension failed to resolve.
    Dim(DimError),
    /// Concrete chain construction failed after binding (defensive;
    /// unreachable for structurally valid chains).
    Expr(ExprError),
}

impl fmt::Display for SymChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymChainError::TooShort { len } => {
                write!(f, "symbolic chain must have length two or higher, got {len}")
            }
            SymChainError::NonSquareInverse { operand, shape } => write!(
                f,
                "cannot invert `{operand}`: shape {shape} is not structurally square"
            ),
            SymChainError::ShapeMismatch {
                left,
                right,
                context,
            } => write!(
                f,
                "structural dimension mismatch: {left} times {right} ({context})"
            ),
            SymChainError::PropertyNeedsSquare {
                property,
                operand,
                shape,
            } => write!(
                f,
                "property {property} requires a structurally square matrix, but `{operand}` has shape {shape}"
            ),
            SymChainError::InconsistentOperand { name } => write!(
                f,
                "operand name `{name}` is used for two different operands"
            ),
            SymChainError::ReservedName { name } => write!(
                f,
                "operand name `{name}` is reserved for optimizer temporaries"
            ),
            SymChainError::Dim(e) => e.fmt(f),
            SymChainError::Expr(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for SymChainError {}

impl From<DimError> for SymChainError {
    fn from(e: DimError) -> Self {
        SymChainError::Dim(e)
    }
}

/// Whether `name` matches the optimizer's temporary naming scheme
/// `T<digits>_<digits>`.
fn is_reserved_temp_name(name: &str) -> bool {
    let Some(rest) = name.strip_prefix('T') else {
        return false;
    };
    let Some((i, j)) = rest.split_once('_') else {
        return false;
    };
    !i.is_empty()
        && !j.is_empty()
        && i.bytes().all(|b| b.is_ascii_digit())
        && j.bytes().all(|b| b.is_ascii_digit())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n() -> Dim {
        Dim::var("sc_n")
    }

    fn m() -> Dim {
        Dim::var("sc_m")
    }

    #[test]
    fn structural_validation() {
        let a = SymOperand::new("A", n(), m());
        let b = SymOperand::new("B", m(), n());
        assert!(SymChain::new(vec![SymFactor::plain(a.clone()), SymFactor::plain(b)]).is_ok());
        // n×m times n×m mismatches structurally even though a binding
        // with n = m would make it fit.
        let c = SymOperand::new("C", n(), m());
        assert!(matches!(
            SymChain::new(vec![SymFactor::plain(a.clone()), SymFactor::plain(c)]),
            Err(SymChainError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            SymChain::new(vec![SymFactor::plain(a.clone())]),
            Err(SymChainError::TooShort { len: 1 })
        ));
        assert!(matches!(
            SymChain::new(vec![
                SymFactor::new(a, UnaryOp::Inverse),
                SymFactor::plain(SymOperand::new("B", m(), n())),
            ]),
            Err(SymChainError::NonSquareInverse { .. })
        ));
    }

    #[test]
    fn square_properties_need_structural_squareness() {
        assert!(SymOperand::square("S", n())
            .with_property(Property::Symmetric)
            .is_ok());
        assert!(matches!(
            SymOperand::new("A", n(), m()).with_property(Property::Symmetric),
            Err(SymChainError::PropertyNeedsSquare { .. })
        ));
    }

    #[test]
    fn bind_produces_equivalent_concrete_chain() {
        let a = SymOperand::square("A", n())
            .with_property(Property::LowerTriangular)
            .unwrap();
        let b = SymOperand::new("B", n(), m());
        let chain = SymChain::new(vec![
            SymFactor::new(a, UnaryOp::Inverse),
            SymFactor::plain(b),
        ])
        .unwrap();
        assert!(chain.is_symbolic());
        assert_eq!(chain.vars().len(), 2);
        let bound = chain
            .bind(&DimBindings::new().with("sc_n", 10).with("sc_m", 4))
            .unwrap();
        assert_eq!(bound.to_string(), "A^-1 B");
        assert_eq!(bound.sizes(), vec![10, 10, 4]);
        assert!(bound
            .factor(0)
            .operand()
            .properties()
            .contains(Property::LowerTriangular));
        // Missing binding errors.
        assert!(matches!(
            chain.bind(&DimBindings::new().with("sc_n", 10)),
            Err(SymChainError::Dim(DimError::UnboundVar(_)))
        ));
    }

    #[test]
    fn dims_and_transposes() {
        // Aᵀ with A m×n has effective shape n×m.
        let a = SymOperand::new("A", m(), n());
        let b = SymOperand::new("B", m(), Dim::Const(7));
        let chain = SymChain::new(vec![
            SymFactor::new(a, UnaryOp::Transpose),
            SymFactor::plain(b),
        ])
        .unwrap();
        assert_eq!(chain.dims(), vec![n(), m(), Dim::Const(7)]);
        assert_eq!(chain.sub_shape(0, 1), SymShape::new(n(), Dim::Const(7)));
        let sizes = chain
            .bind_dims(&DimBindings::new().with("sc_n", 3).with("sc_m", 5))
            .unwrap();
        assert_eq!(sizes, vec![3, 5, 7]);
    }

    #[test]
    fn reserved_temporary_names_rejected() {
        let a = SymOperand::square("T0_1", n());
        let b = SymOperand::square("B", n());
        assert!(matches!(
            SymChain::new(vec![SymFactor::plain(a), SymFactor::plain(b)]),
            Err(SymChainError::ReservedName { .. })
        ));
        // Non-temp-shaped names starting with T are fine.
        let t = SymOperand::square("T", n());
        let tx = SymOperand::square("T0_x", n());
        assert!(SymChain::new(vec![SymFactor::plain(t), SymFactor::plain(tx)]).is_ok());
    }

    #[test]
    fn round_trip_from_concrete() {
        let a = Operand::square("A", 5).with_property(Property::Symmetric);
        let b = Operand::matrix("B", 5, 7);
        let chain = Chain::new(vec![Factor::plain(a), Factor::plain(b)]).unwrap();
        let sym = SymChain::from_chain(&chain).unwrap();
        assert!(!sym.is_symbolic());
        let back = sym.bind(&DimBindings::new()).unwrap();
        assert_eq!(back, chain);
    }

    #[test]
    fn from_chain_applies_full_validation() {
        // Concrete chains may use reserved temp names or reuse a name
        // for different operands; the symbolic lift must reject both.
        let t = Operand::square("T0_1", 5);
        let b = Operand::matrix("B", 5, 7);
        let chain = Chain::new(vec![Factor::plain(t), Factor::plain(b)]).unwrap();
        assert!(matches!(
            SymChain::from_chain(&chain),
            Err(SymChainError::ReservedName { .. })
        ));
        let a1 = Operand::square("A", 5);
        let a2 = Operand::matrix("A", 5, 7);
        let chain = Chain::new(vec![Factor::plain(a1), Factor::plain(a2)]).unwrap();
        assert!(matches!(
            SymChain::from_chain(&chain),
            Err(SymChainError::InconsistentOperand { .. })
        ));
    }
}
