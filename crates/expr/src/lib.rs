//! Symbolic matrix expressions for the Generalized Matrix Chain algorithm.
//!
//! This crate provides the symbolic substrate of the GMC compiler pipeline
//! (Barthels, Copik, Bientinesi — CGO 2018):
//!
//! * [`Shape`] — matrix dimensions (vectors are `n×1` / `1×n` matrices),
//! * [`Property`] / [`PropertySet`] — structural annotations such as
//!   *lower triangular* or *symmetric positive definite* (paper Fig. 2),
//! * [`Operand`] — a named matrix with a shape and properties,
//! * [`Expr`] — expression trees over the grammar of paper Fig. 1
//!   (products, sums, transpose, inverse, inverse-transpose),
//! * [`Chain`] — a validated matrix chain `f0 · f1 ··· f(n-1)` where every
//!   factor is an operand with an optional unary operator; this is the
//!   input type of the GMC algorithm.
//!
//! # Example
//!
//! Build the chain `X := A⁻¹ B Cᵀ` from the paper's Table 2, where `A` is
//! symmetric positive definite and `C` is lower triangular:
//!
//! ```
//! use gmc_expr::{Chain, Expr, Operand, Property, Shape};
//!
//! # fn main() -> Result<(), gmc_expr::ExprError> {
//! let a = Operand::matrix("A", 1000, 1000)
//!     .with_property(Property::SymmetricPositiveDefinite);
//! let b = Operand::matrix("B", 1000, 800);
//! let c = Operand::matrix("C", 800, 800).with_property(Property::LowerTriangular);
//!
//! let expr = a.inverse() * b.expr() * c.transpose();
//! let chain = Chain::from_expr(&expr)?;
//! assert_eq!(chain.len(), 3);
//! assert_eq!(chain.shape(), Shape::new(1000, 800));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod chain;
mod dim;
mod error;
mod expr;
mod operand;
mod poly;
mod properties;
mod shape;
mod simplify;
mod sym;

pub use chain::{Chain, Factor, UnaryOp};
pub use dim::{Dim, DimBindings, DimError, DimVar};
pub use error::ExprError;
pub use expr::Expr;
pub use operand::{Operand, OperandKind};
pub use poly::CostPoly;
pub use properties::{ParsePropertyError, Property, PropertySet};
pub use shape::{GenShape, Shape, ShapeError, SymShape};
pub use simplify::simplify;
pub use sym::{SymChain, SymChainError, SymFactor, SymOperand};
