//! Symbolic matrix dimensions.
//!
//! A [`Dim`] is either a concrete size (`Const`) or a size *variable*
//! (`Var`), following the symbolic generalization of the GMC problem
//! ("Compilation of Generalized Matrix Chains with Symbolic Sizes"):
//! a chain whose operand dimensions are variables can be compiled once
//! and instantiated for many concrete size assignments.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned dimension variable, e.g. the `n` of `Matrix A (n, m)`.
///
/// Variables are identified by name and interned process-wide, so
/// `DimVar` is a cheap `Copy` handle: two variables with the same name
/// are the same variable.
///
/// # Example
///
/// ```
/// use gmc_expr::DimVar;
///
/// let n = DimVar::new("n");
/// assert_eq!(n, DimVar::new("n"));
/// assert_ne!(n, DimVar::new("m"));
/// assert_eq!(n.name(), "n");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DimVar(u32);

struct Interner {
    names: Vec<&'static str>,
    ids: std::collections::HashMap<&'static str, u32>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            names: Vec::new(),
            ids: std::collections::HashMap::new(),
        })
    })
}

/// The interner holds no invariants that a panic could break (it only
/// ever appends), so a poisoned lock is safe to recover.
fn lock_interner() -> std::sync::MutexGuard<'static, Interner> {
    interner().lock().unwrap_or_else(|e| e.into_inner())
}

impl DimVar {
    /// Interns `name` and returns its variable handle.
    ///
    /// Interning is process-wide and permanent: each *distinct* name
    /// costs one allocation for the lifetime of the process. Servers
    /// accepting untrusted input should therefore draw variable names
    /// from a bounded vocabulary (or reject unbounded fresh names)
    /// rather than interning arbitrary per-request strings.
    pub fn new(name: &str) -> DimVar {
        let mut i = lock_interner();
        if let Some(&id) = i.ids.get(name) {
            return DimVar(id);
        }
        // One allocation per distinct variable name, retained for the
        // process lifetime (this *is* the interner's storage).
        let leaked: &'static str = Box::leak(name.to_owned().into_boxed_str());
        let id = i.names.len() as u32;
        i.names.push(leaked);
        i.ids.insert(leaked, id);
        DimVar(id)
    }

    /// The variable's name.
    pub fn name(&self) -> &'static str {
        lock_interner().names[self.0 as usize]
    }
}

impl fmt::Debug for DimVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "DimVar({})", self.name())
    }
}

impl fmt::Display for DimVar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A matrix dimension: a concrete size or a size variable.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Dim {
    /// A concrete size.
    Const(usize),
    /// A symbolic size variable.
    Var(DimVar),
}

impl Dim {
    /// A variable dimension by name (interned).
    pub fn var(name: &str) -> Dim {
        Dim::Var(DimVar::new(name))
    }

    /// The concrete value, if this dimension is a constant.
    pub fn as_const(&self) -> Option<usize> {
        match self {
            Dim::Const(v) => Some(*v),
            Dim::Var(_) => None,
        }
    }

    /// Whether this dimension is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Dim::Var(_))
    }

    /// Resolves the dimension under `bindings`.
    ///
    /// # Errors
    ///
    /// [`DimError::UnboundVar`] if the dimension is an unbound variable,
    /// [`DimError::ZeroDim`] if it resolves to zero.
    pub fn bind(&self, bindings: &DimBindings) -> Result<usize, DimError> {
        let v = match self {
            Dim::Const(v) => *v,
            Dim::Var(var) => bindings.get(*var).ok_or(DimError::UnboundVar(*var))?,
        };
        if v == 0 {
            return Err(DimError::ZeroDim(*self));
        }
        Ok(v)
    }
}

impl From<usize> for Dim {
    fn from(v: usize) -> Dim {
        Dim::Const(v)
    }
}

impl From<DimVar> for Dim {
    fn from(v: DimVar) -> Dim {
        Dim::Var(v)
    }
}

impl fmt::Debug for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Const(v) => write!(f, "{v}"),
            Dim::Var(v) => write!(f, "{v}"),
        }
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Dim::Const(v) => write!(f, "{v}"),
            Dim::Var(v) => write!(f, "{v}"),
        }
    }
}

/// An assignment of concrete sizes to dimension variables.
///
/// # Example
///
/// ```
/// use gmc_expr::{Dim, DimBindings};
///
/// let b = DimBindings::new().with("n", 100).with("m", 50);
/// assert_eq!(Dim::var("n").bind(&b), Ok(100));
/// assert!(Dim::var("q").bind(&b).is_err());
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct DimBindings {
    values: BTreeMap<DimVar, usize>,
}

impl DimBindings {
    /// An empty binding set.
    pub fn new() -> Self {
        DimBindings::default()
    }

    /// Binds a variable (by name) to a value.
    pub fn set(&mut self, name: &str, value: usize) {
        self.values.insert(DimVar::new(name), value);
    }

    /// Binds a variable handle to a value.
    pub fn set_var(&mut self, var: DimVar, value: usize) {
        self.values.insert(var, value);
    }

    /// Builder-style [`set`](Self::set).
    #[must_use]
    pub fn with(mut self, name: &str, value: usize) -> Self {
        self.set(name, value);
        self
    }

    /// Looks up a variable's value.
    pub fn get(&self, var: DimVar) -> Option<usize> {
        self.values.get(&var).copied()
    }

    /// Iterates over `(variable, value)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (DimVar, usize)> + '_ {
        self.values.iter().map(|(v, s)| (*v, *s))
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

impl fmt::Display for DimBindings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (v, s)) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}={s}")?;
        }
        write!(f, "}}")
    }
}

/// Errors produced when resolving symbolic dimensions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DimError {
    /// A dimension variable has no binding.
    UnboundVar(DimVar),
    /// A dimension resolved to zero (empty matrices are not meaningful
    /// chain operands).
    ZeroDim(Dim),
}

impl fmt::Display for DimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimError::UnboundVar(v) => write!(f, "dimension variable `{v}` is not bound"),
            DimError::ZeroDim(d) => write!(f, "dimension `{d}` resolved to zero"),
        }
    }
}

impl std::error::Error for DimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let a = DimVar::new("alpha");
        let b = DimVar::new("alpha");
        assert_eq!(a, b);
        assert_eq!(a.name(), "alpha");
        assert_ne!(a, DimVar::new("beta"));
    }

    #[test]
    fn dim_binding() {
        let b = DimBindings::new().with("n", 7);
        assert_eq!(Dim::Const(3).bind(&b), Ok(3));
        assert_eq!(Dim::var("n").bind(&b), Ok(7));
        assert_eq!(
            Dim::var("zz_unbound").bind(&b),
            Err(DimError::UnboundVar(DimVar::new("zz_unbound")))
        );
        let z = DimBindings::new().with("n", 0);
        assert!(matches!(Dim::var("n").bind(&z), Err(DimError::ZeroDim(_))));
        assert!(matches!(Dim::Const(0).bind(&b), Err(DimError::ZeroDim(_))));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Dim::Const(12).to_string(), "12");
        assert_eq!(Dim::var("n").to_string(), "n");
        let b = DimBindings::new().with("m", 5).with("n", 9);
        let s = b.to_string();
        assert!(s.contains("m=5") && s.contains("n=9"));
    }
}
