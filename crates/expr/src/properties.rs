//! Matrix properties and property sets.
//!
//! Properties annotate operands (paper Fig. 2) and are propagated through
//! expression trees by the inference engine in `gmc-analysis` (paper
//! Sec. 3.2). A [`PropertySet`] is a small bitset with an *implication
//! closure*: e.g. a symmetric positive definite matrix is also symmetric
//! and full rank, and a matrix that is both lower and upper triangular is
//! diagonal.

use std::fmt;
use std::str::FromStr;

/// A structural property of a matrix.
///
/// The first five variants are the properties used by the paper's
/// evaluation (Sec. 4); the remaining ones are natural extensions that
/// the inference engine and specialized kernels understand.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(u16)]
pub enum Property {
    /// Non-zero entries only on the main diagonal.
    Diagonal = 0,
    /// Zero above the main diagonal.
    LowerTriangular = 1,
    /// Zero below the main diagonal.
    UpperTriangular = 2,
    /// Equal to its own transpose.
    Symmetric = 3,
    /// Symmetric with strictly positive eigenvalues.
    SymmetricPositiveDefinite = 4,
    /// The identity matrix.
    Identity = 5,
    /// The zero matrix.
    Zero = 6,
    /// `QᵀQ = I`.
    Orthogonal = 7,
    /// A permutation of the identity's rows.
    Permutation = 8,
    /// Triangular with an implicit unit diagonal.
    UnitDiagonal = 9,
    /// Full rank (invertible when square). Assumed for operands that are
    /// inverted, and inferred for e.g. `AᵀA` of a full-rank `A`.
    FullRank = 10,
}

/// All property variants, in discriminant order.
pub(crate) const ALL_PROPERTIES: [Property; 11] = [
    Property::Diagonal,
    Property::LowerTriangular,
    Property::UpperTriangular,
    Property::Symmetric,
    Property::SymmetricPositiveDefinite,
    Property::Identity,
    Property::Zero,
    Property::Orthogonal,
    Property::Permutation,
    Property::UnitDiagonal,
    Property::FullRank,
];

impl Property {
    /// Every property, in a stable order.
    pub fn all() -> impl Iterator<Item = Property> {
        ALL_PROPERTIES.iter().copied()
    }

    /// The canonical spelling used by the input grammar (paper Fig. 2),
    /// e.g. `"LowerTriangular"`.
    pub fn name(&self) -> &'static str {
        match self {
            Property::Diagonal => "Diagonal",
            Property::LowerTriangular => "LowerTriangular",
            Property::UpperTriangular => "UpperTriangular",
            Property::Symmetric => "Symmetric",
            Property::SymmetricPositiveDefinite => "SPD",
            Property::Identity => "Identity",
            Property::Zero => "Zero",
            Property::Orthogonal => "Orthogonal",
            Property::Permutation => "Permutation",
            Property::UnitDiagonal => "UnitDiagonal",
            Property::FullRank => "FullRank",
        }
    }

    /// Whether the property only makes sense for square matrices.
    pub fn requires_square(&self) -> bool {
        !matches!(self, Property::Zero | Property::FullRank)
    }

    fn bit(self) -> u16 {
        1 << (self as u16)
    }
}

impl fmt::Display for Property {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for Property {
    type Err = ParsePropertyError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "Diagonal" => Ok(Property::Diagonal),
            "LowerTriangular" => Ok(Property::LowerTriangular),
            "UpperTriangular" => Ok(Property::UpperTriangular),
            "Symmetric" => Ok(Property::Symmetric),
            "SPD" | "SymmetricPositiveDefinite" => Ok(Property::SymmetricPositiveDefinite),
            "Identity" => Ok(Property::Identity),
            "Zero" => Ok(Property::Zero),
            "Orthogonal" => Ok(Property::Orthogonal),
            "Permutation" => Ok(Property::Permutation),
            "UnitDiagonal" => Ok(Property::UnitDiagonal),
            "FullRank" => Ok(Property::FullRank),
            _ => Err(ParsePropertyError {
                input: s.to_owned(),
            }),
        }
    }
}

/// Error returned when parsing an unknown property name.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePropertyError {
    input: String,
}

impl fmt::Display for ParsePropertyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown matrix property `{}`", self.input)
    }
}

impl std::error::Error for ParsePropertyError {}

/// A set of [`Property`] values, stored as a bitset.
///
/// The set is kept *closed under implication*: inserting
/// [`Property::SymmetricPositiveDefinite`] also yields
/// [`Property::Symmetric`] and [`Property::FullRank`], and a set
/// containing both triangularities collapses to [`Property::Diagonal`].
///
/// # Example
///
/// ```
/// use gmc_expr::{Property, PropertySet};
///
/// let p = PropertySet::from_iter([Property::LowerTriangular, Property::UpperTriangular]);
/// assert!(p.contains(Property::Diagonal));
///
/// let spd = PropertySet::new().with(Property::SymmetricPositiveDefinite);
/// assert!(spd.contains(Property::Symmetric));
/// assert!(spd.contains(Property::FullRank));
/// ```
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct PropertySet {
    bits: u16,
}

impl PropertySet {
    /// Creates an empty property set.
    pub fn new() -> Self {
        PropertySet::default()
    }

    /// Whether the set contains `p` (directly or by implication, since
    /// sets are kept closed).
    pub fn contains(&self, p: Property) -> bool {
        self.bits & p.bit() != 0
    }

    /// Inserts `p` and recomputes the implication closure. Returns
    /// whether the set changed.
    pub fn insert(&mut self, p: Property) -> bool {
        let before = self.bits;
        self.bits |= p.bit();
        self.close();
        self.bits != before
    }

    /// Builder-style [`insert`](Self::insert).
    #[must_use]
    pub fn with(mut self, p: Property) -> Self {
        self.insert(p);
        self
    }

    /// Removes `p` *without* removing properties it implied; use with
    /// care. Mostly useful in tests.
    pub fn remove(&mut self, p: Property) {
        self.bits &= !p.bit();
    }

    /// The union of two sets (closure of the bit union).
    #[must_use]
    pub fn union(&self, other: PropertySet) -> PropertySet {
        let mut s = PropertySet {
            bits: self.bits | other.bits,
        };
        s.close();
        s
    }

    /// The intersection of two sets. Intersections of closed sets are
    /// closed, so no re-closure is needed.
    #[must_use]
    pub fn intersection(&self, other: PropertySet) -> PropertySet {
        PropertySet {
            bits: self.bits & other.bits,
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.bits == 0
    }

    /// Number of properties in the set.
    pub fn len(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Iterates over the contained properties in discriminant order.
    pub fn iter(&self) -> impl Iterator<Item = Property> + '_ {
        let bits = self.bits;
        ALL_PROPERTIES
            .iter()
            .copied()
            .filter(move |p| bits & p.bit() != 0)
    }

    /// Whether the set is logically consistent: e.g. a matrix cannot be
    /// both [`Property::Zero`] and [`Property::FullRank`].
    pub fn is_consistent(&self) -> bool {
        if self.contains(Property::Zero)
            && (self.contains(Property::FullRank)
                || self.contains(Property::Identity)
                || self.contains(Property::UnitDiagonal))
        {
            return false;
        }
        true
    }

    /// Computes the implication closure in place.
    ///
    /// Rules (iterated to a fixpoint, which is reached in at most two
    /// passes for this rule set):
    ///
    /// * `Identity ⇒ Diagonal, SPD, Orthogonal, Permutation, UnitDiagonal`
    /// * `SPD ⇒ Symmetric, FullRank`
    /// * `Permutation ⇒ Orthogonal`
    /// * `Orthogonal ⇒ FullRank`
    /// * `Diagonal ⇒ LowerTriangular, UpperTriangular, Symmetric`
    /// * `LowerTriangular ∧ UpperTriangular ⇒ Diagonal`
    /// * `Symmetric ∧ (LowerTriangular ∨ UpperTriangular) ⇒ Diagonal`
    /// * `Zero ⇒ Diagonal, Symmetric` (the zero matrix is trivially both)
    fn close(&mut self) {
        loop {
            let before = self.bits;
            if self.contains(Property::Identity) {
                self.bits |= Property::Diagonal.bit()
                    | Property::SymmetricPositiveDefinite.bit()
                    | Property::Orthogonal.bit()
                    | Property::Permutation.bit()
                    | Property::UnitDiagonal.bit();
            }
            if self.contains(Property::SymmetricPositiveDefinite) {
                self.bits |= Property::Symmetric.bit() | Property::FullRank.bit();
            }
            if self.contains(Property::Permutation) {
                self.bits |= Property::Orthogonal.bit();
            }
            if self.contains(Property::Orthogonal) {
                self.bits |= Property::FullRank.bit();
            }
            if self.contains(Property::Diagonal) {
                self.bits |= Property::LowerTriangular.bit()
                    | Property::UpperTriangular.bit()
                    | Property::Symmetric.bit();
            }
            if self.contains(Property::LowerTriangular) && self.contains(Property::UpperTriangular)
            {
                self.bits |= Property::Diagonal.bit();
            }
            if self.contains(Property::Symmetric)
                && (self.contains(Property::LowerTriangular)
                    || self.contains(Property::UpperTriangular))
            {
                self.bits |= Property::Diagonal.bit();
            }
            if self.contains(Property::Zero) {
                self.bits |= Property::Diagonal.bit() | Property::Symmetric.bit();
            }
            if self.bits == before {
                break;
            }
        }
    }
}

impl FromIterator<Property> for PropertySet {
    fn from_iter<I: IntoIterator<Item = Property>>(iter: I) -> Self {
        let mut s = PropertySet::new();
        for p in iter {
            s.insert(p);
        }
        s
    }
}

impl Extend<Property> for PropertySet {
    fn extend<I: IntoIterator<Item = Property>>(&mut self, iter: I) {
        for p in iter {
            self.insert(p);
        }
    }
}

impl fmt::Debug for PropertySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for PropertySet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, p) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set() {
        let s = PropertySet::new();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(!s.contains(Property::Diagonal));
        assert!(s.is_consistent());
    }

    #[test]
    fn insert_and_contains() {
        let mut s = PropertySet::new();
        assert!(s.insert(Property::LowerTriangular));
        assert!(s.contains(Property::LowerTriangular));
        // Re-inserting reports no change.
        assert!(!s.insert(Property::LowerTriangular));
    }

    #[test]
    fn spd_implies_symmetric_and_full_rank() {
        let s = PropertySet::new().with(Property::SymmetricPositiveDefinite);
        assert!(s.contains(Property::Symmetric));
        assert!(s.contains(Property::FullRank));
        assert!(!s.contains(Property::Diagonal));
    }

    #[test]
    fn both_triangular_implies_diagonal() {
        let s = PropertySet::from_iter([Property::LowerTriangular, Property::UpperTriangular]);
        assert!(s.contains(Property::Diagonal));
        assert!(s.contains(Property::Symmetric)); // diagonal ⇒ symmetric
    }

    #[test]
    fn symmetric_triangular_is_diagonal() {
        let s = PropertySet::from_iter([Property::Symmetric, Property::LowerTriangular]);
        assert!(s.contains(Property::Diagonal));
        assert!(s.contains(Property::UpperTriangular));
    }

    #[test]
    fn identity_closure() {
        let s = PropertySet::new().with(Property::Identity);
        for p in [
            Property::Diagonal,
            Property::LowerTriangular,
            Property::UpperTriangular,
            Property::Symmetric,
            Property::SymmetricPositiveDefinite,
            Property::Orthogonal,
            Property::Permutation,
            Property::UnitDiagonal,
            Property::FullRank,
        ] {
            assert!(s.contains(p), "identity should imply {p}");
        }
    }

    #[test]
    fn zero_is_consistent_alone_but_not_with_full_rank() {
        let z = PropertySet::new().with(Property::Zero);
        assert!(z.is_consistent());
        assert!(z.contains(Property::Diagonal));
        let bad = z.with(Property::FullRank);
        assert!(!bad.is_consistent());
    }

    #[test]
    fn union_and_intersection() {
        let a = PropertySet::new().with(Property::LowerTriangular);
        let b = PropertySet::new().with(Property::UpperTriangular);
        let u = a.union(b);
        assert!(u.contains(Property::Diagonal)); // closure applied
        let i = a.intersection(b);
        assert!(i.is_empty());
    }

    #[test]
    fn iter_in_order() {
        let s = PropertySet::from_iter([Property::Symmetric, Property::FullRank]);
        let v: Vec<_> = s.iter().collect();
        assert_eq!(v, vec![Property::Symmetric, Property::FullRank]);
    }

    #[test]
    fn parse_round_trip() {
        for p in Property::all() {
            let parsed: Property = p.name().parse().unwrap();
            assert_eq!(parsed, p);
        }
        assert!("Banded".parse::<Property>().is_err());
        // Long form of SPD also accepted.
        assert_eq!(
            "SymmetricPositiveDefinite".parse::<Property>().unwrap(),
            Property::SymmetricPositiveDefinite
        );
    }

    #[test]
    fn display() {
        let s = PropertySet::from_iter([Property::SymmetricPositiveDefinite]);
        let text = s.to_string();
        assert!(text.starts_with('<') && text.ends_with('>'));
        assert!(text.contains("SPD"));
        assert!(text.contains("Symmetric"));
    }

    #[test]
    fn requires_square() {
        assert!(Property::Diagonal.requires_square());
        assert!(!Property::Zero.requires_square());
        assert!(!Property::FullRank.requires_square());
    }
}
