//! Matrix shapes, generic over the dimension type.
//!
//! [`GenShape<D>`] is a pair of dimensions; the two instantiations used
//! throughout the pipeline are [`Shape`] (`D = usize`, fully concrete)
//! and [`SymShape`] (`D = Dim`, dimensions may be variables). Concrete
//! shapes keep the exact API they had before the refactor; symbolic
//! shapes answer structural questions (squareness, vector-ness) only
//! when they are decidable from the dimension pattern, and
//! [`SymShape::bind`] resolves them to concrete shapes.

use crate::dim::{Dim, DimBindings, DimError};
use std::fmt;

/// The dimensions of a matrix, generic over the dimension type `D`.
///
/// Vectors are represented as matrices of size `n×1` (column vectors) or
/// `1×n` (row vectors), exactly as in Sec. 1.1 of the paper. Scalars
/// (`1×1`) are representable but the GMC algorithm does not treat them
/// specially, since scalars commute and are excluded from chains.
///
/// # Example
///
/// ```
/// use gmc_expr::Shape;
///
/// let s = Shape::new(100, 50);
/// assert_eq!(s.rows(), 100);
/// assert_eq!(s.cols(), 50);
/// assert!(!s.is_square());
/// assert_eq!(s.transposed(), Shape::new(50, 100));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GenShape<D> {
    rows: D,
    cols: D,
}

/// A fully concrete shape (the dimension type is `usize`).
pub type Shape = GenShape<usize>;

/// A shape whose dimensions may be symbolic ([`Dim`]).
pub type SymShape = GenShape<Dim>;

/// Error returned by [`Shape::try_new`] for degenerate dimensions.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ShapeError {
    /// The offending row count.
    pub rows: usize,
    /// The offending column count.
    pub cols: usize,
}

impl fmt::Display for ShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "matrix dimensions must be positive, got {}x{}",
            self.rows, self.cols
        )
    }
}

impl std::error::Error for ShapeError {}

impl<D> GenShape<D> {
    /// Builds a shape from its dimensions without validation; concrete
    /// callers should prefer [`Shape::new`] / [`Shape::try_new`].
    pub const fn from_dims(rows: D, cols: D) -> Self {
        GenShape { rows, cols }
    }

    /// A reference to the row dimension.
    pub fn rows_dim(&self) -> &D {
        &self.rows
    }

    /// A reference to the column dimension.
    pub fn cols_dim(&self) -> &D {
        &self.cols
    }

    /// Maps both dimensions through `f` (e.g. `usize → Dim`).
    pub fn map<E>(self, mut f: impl FnMut(D) -> E) -> GenShape<E> {
        GenShape {
            rows: f(self.rows),
            cols: f(self.cols),
        }
    }
}

impl Shape {
    /// Creates a shape with the given number of rows and columns.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero; empty matrices are not
    /// meaningful operands for the matrix chain problem. Fallible
    /// callers (e.g. parsers of untrusted input) should use
    /// [`try_new`](Self::try_new).
    pub fn new(rows: usize, cols: usize) -> Self {
        Shape::try_new(rows, cols).expect("matrix dimensions must be positive")
    }

    /// Creates a shape, rejecting zero dimensions with an error instead
    /// of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if either dimension is zero.
    pub fn try_new(rows: usize, cols: usize) -> Result<Self, ShapeError> {
        if rows == 0 || cols == 0 {
            return Err(ShapeError { rows, cols });
        }
        Ok(Shape { rows, cols })
    }

    /// Creates the shape of a square `n×n` matrix.
    pub fn square(n: usize) -> Self {
        Shape::new(n, n)
    }

    /// Creates the shape of a column vector of length `n` (`n×1`).
    pub fn col_vector(n: usize) -> Self {
        Shape::new(n, 1)
    }

    /// Creates the shape of a row vector of length `n` (`1×n`).
    pub fn row_vector(n: usize) -> Self {
        Shape::new(1, n)
    }

    /// The number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the shape is square (`rows == cols`).
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Whether the shape is a column vector (`n×1`, n > 1).
    pub fn is_col_vector(&self) -> bool {
        self.cols == 1 && self.rows > 1
    }

    /// Whether the shape is a row vector (`1×n`, n > 1).
    pub fn is_row_vector(&self) -> bool {
        self.rows == 1 && self.cols > 1
    }

    /// Whether the shape is a vector of either orientation.
    pub fn is_vector(&self) -> bool {
        self.is_col_vector() || self.is_row_vector()
    }

    /// Whether the shape is a `1×1` scalar.
    pub fn is_scalar(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    /// The shape of the transpose.
    pub fn transposed(&self) -> Shape {
        Shape {
            rows: self.cols,
            cols: self.rows,
        }
    }

    /// The number of entries (`rows · cols`).
    ///
    /// This is the "size" measure used by Armadillo's chain heuristic
    /// (paper Sec. 4) when comparing candidate intermediate results.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Always false: shapes have positive dimensions.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The shape of the product `self · rhs`, if the inner dimensions
    /// agree.
    pub fn times(&self, rhs: Shape) -> Option<Shape> {
        (self.cols == rhs.rows).then(|| Shape::new(self.rows, rhs.cols))
    }

    /// This shape with both dimensions lifted to constant [`Dim`]s.
    pub fn to_sym(self) -> SymShape {
        self.map(Dim::Const)
    }
}

impl SymShape {
    /// Creates a symbolic shape from two dimensions.
    pub fn new(rows: Dim, cols: Dim) -> Self {
        SymShape { rows, cols }
    }

    /// The shape of a structurally square `n×n` matrix.
    pub fn square(n: Dim) -> Self {
        SymShape { rows: n, cols: n }
    }

    /// The row dimension.
    pub fn rows(&self) -> Dim {
        self.rows
    }

    /// The column dimension.
    pub fn cols(&self) -> Dim {
        self.cols
    }

    /// The shape of the transpose.
    pub fn transposed(&self) -> SymShape {
        SymShape {
            rows: self.cols,
            cols: self.rows,
        }
    }

    /// Whether the shape is *structurally* square: both dimensions are
    /// the same [`Dim`]. A `n×m` shape may still be square under a
    /// binding with `n = m`; structural squareness is the property that
    /// holds under **every** binding.
    pub fn is_square_structural(&self) -> bool {
        self.rows == self.cols
    }

    /// Whether the shape contains a dimension variable.
    pub fn is_symbolic(&self) -> bool {
        self.rows.is_var() || self.cols.is_var()
    }

    /// Resolves the shape under `bindings`.
    ///
    /// # Errors
    ///
    /// Propagates [`DimError`] for unbound variables or zero sizes.
    pub fn bind(&self, bindings: &DimBindings) -> Result<Shape, DimError> {
        Ok(Shape {
            rows: self.rows.bind(bindings)?,
            cols: self.cols.bind(bindings)?,
        })
    }

    /// The shape of the product `self · rhs`, if the inner dimensions
    /// agree *structurally*.
    pub fn times(&self, rhs: SymShape) -> Option<SymShape> {
        (self.cols == rhs.rows).then(|| SymShape::new(self.rows, rhs.cols))
    }
}

impl<D: fmt::Display> fmt::Debug for GenShape<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

impl<D: fmt::Display> fmt::Display for GenShape<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

impl From<(usize, usize)> for Shape {
    fn from((rows, cols): (usize, usize)) -> Self {
        Shape::new(rows, cols)
    }
}

impl From<(Dim, Dim)> for SymShape {
    fn from((rows, cols): (Dim, Dim)) -> Self {
        SymShape::new(rows, cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let s = Shape::new(3, 4);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.cols(), 4);
        assert_eq!(Shape::square(5), Shape::new(5, 5));
        assert_eq!(Shape::col_vector(7), Shape::new(7, 1));
        assert_eq!(Shape::row_vector(7), Shape::new(1, 7));
    }

    #[test]
    fn classification() {
        assert!(Shape::square(4).is_square());
        assert!(!Shape::new(4, 3).is_square());
        assert!(Shape::col_vector(4).is_col_vector());
        assert!(!Shape::col_vector(4).is_row_vector());
        assert!(Shape::row_vector(4).is_row_vector());
        assert!(Shape::row_vector(4).is_vector());
        assert!(Shape::col_vector(4).is_vector());
        assert!(!Shape::new(2, 2).is_vector());
        assert!(Shape::new(1, 1).is_scalar());
        // A 1x1 matrix is scalar, not a vector.
        assert!(!Shape::new(1, 1).is_vector());
    }

    #[test]
    fn transpose_and_product() {
        assert_eq!(Shape::new(2, 9).transposed(), Shape::new(9, 2));
        assert_eq!(
            Shape::new(2, 3).times(Shape::new(3, 5)),
            Some(Shape::new(2, 5))
        );
        assert_eq!(Shape::new(2, 3).times(Shape::new(4, 5)), None);
    }

    #[test]
    fn len_is_entry_count() {
        assert_eq!(Shape::new(6, 7).len(), 42);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        let _ = Shape::new(0, 3);
    }

    #[test]
    fn try_new_reports_zero_dimensions() {
        assert_eq!(Shape::try_new(0, 3), Err(ShapeError { rows: 0, cols: 3 }));
        assert_eq!(Shape::try_new(3, 0), Err(ShapeError { rows: 3, cols: 0 }));
        let s = Shape::try_new(3, 4).unwrap();
        assert_eq!(s, Shape::new(3, 4));
        let msg = ShapeError { rows: 0, cols: 3 }.to_string();
        assert!(msg.contains("0x3"));
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(10, 20).to_string(), "10x20");
        assert_eq!(format!("{:?}", Shape::new(1, 2)), "1x2");
    }

    #[test]
    fn from_tuple() {
        let s: Shape = (4, 5).into();
        assert_eq!(s, Shape::new(4, 5));
    }

    #[test]
    fn symbolic_shape_basics() {
        let n = Dim::var("sh_n");
        let m = Dim::var("sh_m");
        let s = SymShape::new(n, m);
        assert_eq!(s.transposed(), SymShape::new(m, n));
        assert!(SymShape::square(n).is_square_structural());
        assert!(!s.is_square_structural());
        assert!(s.is_symbolic());
        assert!(!Shape::new(2, 3).to_sym().is_symbolic());
        assert_eq!(s.to_string(), "sh_nxsh_m");
        assert_eq!(s.times(SymShape::new(m, n)), Some(SymShape::new(n, n)));
        assert_eq!(s.times(SymShape::new(n, n)), None);
    }

    #[test]
    fn symbolic_bind() {
        let s = SymShape::new(Dim::var("sh_n"), Dim::Const(4));
        let b = DimBindings::new().with("sh_n", 9);
        assert_eq!(s.bind(&b).unwrap(), Shape::new(9, 4));
        assert!(s.bind(&DimBindings::new()).is_err());
        let z = DimBindings::new().with("sh_n", 0);
        assert!(s.bind(&z).is_err());
    }

    #[test]
    fn generic_map_round_trips() {
        let s = Shape::new(2, 3).to_sym();
        assert_eq!(s, SymShape::new(Dim::Const(2), Dim::Const(3)));
        let back = s.bind(&DimBindings::new()).unwrap();
        assert_eq!(back, Shape::new(2, 3));
    }
}
