//! Matrix shapes.

use std::fmt;

/// The dimensions of a matrix.
///
/// Vectors are represented as matrices of size `n×1` (column vectors) or
/// `1×n` (row vectors), exactly as in Sec. 1.1 of the paper. Scalars
/// (`1×1`) are representable but the GMC algorithm does not treat them
/// specially, since scalars commute and are excluded from chains.
///
/// # Example
///
/// ```
/// use gmc_expr::Shape;
///
/// let s = Shape::new(100, 50);
/// assert_eq!(s.rows(), 100);
/// assert_eq!(s.cols(), 50);
/// assert!(!s.is_square());
/// assert_eq!(s.transposed(), Shape::new(50, 100));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Shape {
    rows: usize,
    cols: usize,
}

impl Shape {
    /// Creates a shape with the given number of rows and columns.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero; empty matrices are not
    /// meaningful operands for the matrix chain problem.
    pub fn new(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Shape { rows, cols }
    }

    /// Creates the shape of a square `n×n` matrix.
    pub fn square(n: usize) -> Self {
        Shape::new(n, n)
    }

    /// Creates the shape of a column vector of length `n` (`n×1`).
    pub fn col_vector(n: usize) -> Self {
        Shape::new(n, 1)
    }

    /// Creates the shape of a row vector of length `n` (`1×n`).
    pub fn row_vector(n: usize) -> Self {
        Shape::new(1, n)
    }

    /// The number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// The number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether the shape is square (`rows == cols`).
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Whether the shape is a column vector (`n×1`, n > 1).
    pub fn is_col_vector(&self) -> bool {
        self.cols == 1 && self.rows > 1
    }

    /// Whether the shape is a row vector (`1×n`, n > 1).
    pub fn is_row_vector(&self) -> bool {
        self.rows == 1 && self.cols > 1
    }

    /// Whether the shape is a vector of either orientation.
    pub fn is_vector(&self) -> bool {
        self.is_col_vector() || self.is_row_vector()
    }

    /// Whether the shape is a `1×1` scalar.
    pub fn is_scalar(&self) -> bool {
        self.rows == 1 && self.cols == 1
    }

    /// The shape of the transpose.
    pub fn transposed(&self) -> Shape {
        Shape {
            rows: self.cols,
            cols: self.rows,
        }
    }

    /// The number of entries (`rows · cols`).
    ///
    /// This is the "size" measure used by Armadillo's chain heuristic
    /// (paper Sec. 4) when comparing candidate intermediate results.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Always false: shapes have positive dimensions.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The shape of the product `self · rhs`, if the inner dimensions
    /// agree.
    pub fn times(&self, rhs: Shape) -> Option<Shape> {
        (self.cols == rhs.rows).then(|| Shape::new(self.rows, rhs.cols))
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)
    }
}

impl From<(usize, usize)> for Shape {
    fn from((rows, cols): (usize, usize)) -> Self {
        Shape::new(rows, cols)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let s = Shape::new(3, 4);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.cols(), 4);
        assert_eq!(Shape::square(5), Shape::new(5, 5));
        assert_eq!(Shape::col_vector(7), Shape::new(7, 1));
        assert_eq!(Shape::row_vector(7), Shape::new(1, 7));
    }

    #[test]
    fn classification() {
        assert!(Shape::square(4).is_square());
        assert!(!Shape::new(4, 3).is_square());
        assert!(Shape::col_vector(4).is_col_vector());
        assert!(!Shape::col_vector(4).is_row_vector());
        assert!(Shape::row_vector(4).is_row_vector());
        assert!(Shape::row_vector(4).is_vector());
        assert!(Shape::col_vector(4).is_vector());
        assert!(!Shape::new(2, 2).is_vector());
        assert!(Shape::new(1, 1).is_scalar());
        // A 1x1 matrix is scalar, not a vector.
        assert!(!Shape::new(1, 1).is_vector());
    }

    #[test]
    fn transpose_and_product() {
        assert_eq!(Shape::new(2, 9).transposed(), Shape::new(9, 2));
        assert_eq!(
            Shape::new(2, 3).times(Shape::new(3, 5)),
            Some(Shape::new(2, 5))
        );
        assert_eq!(Shape::new(2, 3).times(Shape::new(4, 5)), None);
    }

    #[test]
    fn len_is_entry_count() {
        assert_eq!(Shape::new(6, 7).len(), 42);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dimension_panics() {
        let _ = Shape::new(0, 3);
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(10, 20).to_string(), "10x20");
        assert_eq!(format!("{:?}", Shape::new(1, 2)), "1x2");
    }

    #[test]
    fn from_tuple() {
        let s: Shape = (4, 5).into();
        assert_eq!(s, Shape::new(4, 5));
    }
}
