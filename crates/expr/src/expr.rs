//! Symbolic expression trees.

use crate::{ExprError, Operand, Shape};
use std::fmt;
use std::ops::{Add, Mul};

/// A symbolic linear algebra expression, following the grammar of paper
/// Fig. 1:
///
/// ```text
/// expr → symbol | expr + expr | expr · expr | expr⁻¹ | exprᵀ | expr⁻ᵀ
/// ```
///
/// Products and sums are stored n-ary (flattened) to make sub-chain
/// extraction natural. The grammar does not imply well-formedness;
/// [`Expr::shape`] performs dimension checking, and [`Expr::normalized`]
/// pushes unary operators down to the leaves:
///
/// ```
/// use gmc_expr::{Expr, Operand};
///
/// # fn main() -> Result<(), gmc_expr::ExprError> {
/// let a = Operand::square("A", 4);
/// let b = Operand::square("B", 4);
/// // (A·B)ᵀ normalizes to Bᵀ·Aᵀ
/// let e = Expr::transpose(a.expr() * b.expr()).normalized()?;
/// assert_eq!(e.to_string(), "B^T A^T");
/// # Ok(())
/// # }
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A named operand.
    Symbol(Operand),
    /// An n-ary product `e0 · e1 ··· ek`, in order.
    Times(Vec<Expr>),
    /// An n-ary sum `e0 + e1 + ··· + ek`.
    Plus(Vec<Expr>),
    /// `eᵀ`.
    Transpose(Box<Expr>),
    /// `e⁻¹`.
    Inverse(Box<Expr>),
    /// `e⁻ᵀ` (inverse of the transpose, equal to the transpose of the
    /// inverse).
    InverseTranspose(Box<Expr>),
}

impl Expr {
    /// Builds a product, flattening nested products.
    ///
    /// # Panics
    ///
    /// Panics if `factors` is empty.
    pub fn times(factors: impl IntoIterator<Item = Expr>) -> Expr {
        let mut flat = Vec::new();
        for f in factors {
            match f {
                Expr::Times(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        assert!(!flat.is_empty(), "product must have at least one factor");
        if flat.len() == 1 {
            flat.pop().expect("len checked")
        } else {
            Expr::Times(flat)
        }
    }

    /// Builds a sum, flattening nested sums.
    ///
    /// # Panics
    ///
    /// Panics if `terms` is empty.
    pub fn plus(terms: impl IntoIterator<Item = Expr>) -> Expr {
        let mut flat = Vec::new();
        for t in terms {
            match t {
                Expr::Plus(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        assert!(!flat.is_empty(), "sum must have at least one term");
        if flat.len() == 1 {
            flat.pop().expect("len checked")
        } else {
            Expr::Plus(flat)
        }
    }

    /// Builds `eᵀ`, simplifying double transposition and fusing with
    /// inversion: `(eᵀ)ᵀ = e`, `(e⁻¹)ᵀ = e⁻ᵀ`, `(e⁻ᵀ)ᵀ = e⁻¹`.
    pub fn transpose(e: Expr) -> Expr {
        match e {
            Expr::Transpose(inner) => *inner,
            Expr::Inverse(inner) => Expr::InverseTranspose(inner),
            Expr::InverseTranspose(inner) => Expr::Inverse(inner),
            other => Expr::Transpose(Box::new(other)),
        }
    }

    /// Builds `e⁻¹`, simplifying double inversion and fusing with
    /// transposition: `(e⁻¹)⁻¹ = e`, `(eᵀ)⁻¹ = e⁻ᵀ`, `(e⁻ᵀ)⁻¹ = eᵀ`.
    pub fn inverse(e: Expr) -> Expr {
        match e {
            Expr::Inverse(inner) => *inner,
            Expr::Transpose(inner) => Expr::InverseTranspose(inner),
            Expr::InverseTranspose(inner) => Expr::Transpose(inner),
            other => Expr::Inverse(Box::new(other)),
        }
    }

    /// Builds `e⁻ᵀ` with the analogous simplifications.
    pub fn inverse_transpose(e: Expr) -> Expr {
        match e {
            Expr::InverseTranspose(inner) => *inner,
            Expr::Transpose(inner) => Expr::Inverse(inner),
            Expr::Inverse(inner) => Expr::Transpose(inner),
            other => Expr::InverseTranspose(Box::new(other)),
        }
    }

    /// Computes the shape of the expression, validating dimension
    /// compatibility along the way.
    ///
    /// # Errors
    ///
    /// Returns [`ExprError::ShapeMismatch`] for products with mismatched
    /// inner dimensions, [`ExprError::SumShapeMismatch`] for sums of
    /// different shapes, and [`ExprError::NonSquareInverse`] when an
    /// inverse is applied to a non-square sub-expression.
    pub fn shape(&self) -> Result<Shape, ExprError> {
        match self {
            Expr::Symbol(op) => Ok(op.shape()),
            Expr::Times(factors) => {
                let mut iter = factors.iter();
                let first = iter.next().ok_or(ExprError::EmptyExpression)?;
                let mut acc = first.shape()?;
                for (i, f) in iter.enumerate() {
                    let s = f.shape()?;
                    acc = acc.times(s).ok_or_else(|| ExprError::ShapeMismatch {
                        left: acc,
                        right: s,
                        context: format!("factor {} times factor {}", i, i + 1),
                    })?;
                }
                Ok(acc)
            }
            Expr::Plus(terms) => {
                let mut iter = terms.iter();
                let first = iter.next().ok_or(ExprError::EmptyExpression)?;
                let s0 = first.shape()?;
                for t in iter {
                    let s = t.shape()?;
                    if s != s0 {
                        return Err(ExprError::SumShapeMismatch {
                            first: s0,
                            other: s,
                        });
                    }
                }
                Ok(s0)
            }
            Expr::Transpose(inner) => Ok(inner.shape()?.transposed()),
            Expr::Inverse(inner) | Expr::InverseTranspose(inner) => {
                let s = inner.shape()?;
                if !s.is_square() {
                    return Err(ExprError::NonSquareInverse { shape: s });
                }
                Ok(s)
            }
        }
    }

    /// Normalizes the expression: unary operators are pushed down to the
    /// leaves, products and sums are flattened, and double applications
    /// cancel.
    ///
    /// Rules applied (recursively, to a fixpoint):
    ///
    /// * `(e0 ··· ek)ᵀ → ekᵀ ··· e0ᵀ`
    /// * `(e0 ··· ek)⁻¹ → ek⁻¹ ··· e0⁻¹` (every factor must be square)
    /// * `(e0 + ··· + ek)ᵀ → e0ᵀ + ··· + ekᵀ`
    /// * `(eᵀ)ᵀ → e`, `(e⁻¹)⁻¹ → e`, `(eᵀ)⁻¹ → e⁻ᵀ`, …
    ///
    /// The inverse of a sum is *not* rewritten (there is no distributive
    /// law); it remains as an `Inverse` node.
    ///
    /// # Errors
    ///
    /// Returns the same well-formedness errors as [`Expr::shape`]; in
    /// particular, distributing an inverse over a product of non-square
    /// factors yields [`ExprError::NonSquareInverse`].
    pub fn normalized(&self) -> Result<Expr, ExprError> {
        // Validate shapes once up front so normalization cannot turn an
        // ill-formed expression into a well-formed one.
        self.shape()?;
        self.normalize_inner()
    }

    fn normalize_inner(&self) -> Result<Expr, ExprError> {
        match self {
            Expr::Symbol(_) => Ok(self.clone()),
            Expr::Times(factors) => {
                let parts = factors
                    .iter()
                    .map(Expr::normalize_inner)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Expr::times(parts))
            }
            Expr::Plus(terms) => {
                let parts = terms
                    .iter()
                    .map(Expr::normalize_inner)
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Expr::plus(parts))
            }
            Expr::Transpose(inner) => {
                let inner = inner.normalize_inner()?;
                match inner {
                    Expr::Times(factors) => {
                        let rev = factors
                            .into_iter()
                            .rev()
                            .map(|f| Expr::transpose(f).normalize_inner())
                            .collect::<Result<Vec<_>, _>>()?;
                        Ok(Expr::times(rev))
                    }
                    Expr::Plus(terms) => {
                        let ts = terms
                            .into_iter()
                            .map(|t| Expr::transpose(t).normalize_inner())
                            .collect::<Result<Vec<_>, _>>()?;
                        Ok(Expr::plus(ts))
                    }
                    other => Ok(Expr::transpose(other)),
                }
            }
            Expr::Inverse(inner) => {
                let inner = inner.normalize_inner()?;
                match inner {
                    Expr::Times(factors) => {
                        for f in &factors {
                            let s = f.shape()?;
                            if !s.is_square() {
                                return Err(ExprError::NonSquareInverse { shape: s });
                            }
                        }
                        let rev = factors
                            .into_iter()
                            .rev()
                            .map(|f| Expr::inverse(f).normalize_inner())
                            .collect::<Result<Vec<_>, _>>()?;
                        Ok(Expr::times(rev))
                    }
                    other => Ok(Expr::inverse(other)),
                }
            }
            Expr::InverseTranspose(inner) => {
                // e⁻ᵀ = (e⁻¹)ᵀ; reuse the two rewrites above.
                let inv = Expr::Inverse(inner.clone()).normalize_inner()?;
                Expr::Transpose(Box::new(inv)).normalize_inner()
            }
        }
    }

    /// Iterates over all operands appearing in the expression, in
    /// left-to-right order (with repetition).
    pub fn symbols(&self) -> Vec<&Operand> {
        let mut out = Vec::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols<'a>(&'a self, out: &mut Vec<&'a Operand>) {
        match self {
            Expr::Symbol(op) => out.push(op),
            Expr::Times(es) | Expr::Plus(es) => {
                for e in es {
                    e.collect_symbols(out);
                }
            }
            Expr::Transpose(e) | Expr::Inverse(e) | Expr::InverseTranspose(e) => {
                e.collect_symbols(out)
            }
        }
    }

    /// The number of nodes in the expression tree (symbols and operators).
    pub fn node_count(&self) -> usize {
        match self {
            Expr::Symbol(_) => 1,
            Expr::Times(es) | Expr::Plus(es) => 1 + es.iter().map(Expr::node_count).sum::<usize>(),
            Expr::Transpose(e) | Expr::Inverse(e) | Expr::InverseTranspose(e) => 1 + e.node_count(),
        }
    }

    /// Whether this expression is a bare symbol, possibly under a single
    /// unary operator — i.e. a valid chain *factor*.
    pub fn is_factor(&self) -> bool {
        match self {
            Expr::Symbol(_) => true,
            Expr::Transpose(e) | Expr::Inverse(e) | Expr::InverseTranspose(e) => {
                matches!(**e, Expr::Symbol(_))
            }
            _ => false,
        }
    }

    fn precedence(&self) -> u8 {
        match self {
            Expr::Plus(_) => 0,
            Expr::Times(_) => 1,
            Expr::Transpose(_) | Expr::Inverse(_) | Expr::InverseTranspose(_) => 2,
            Expr::Symbol(_) => 3,
        }
    }

    fn fmt_with_parens(&self, f: &mut fmt::Formatter<'_>, min_prec: u8) -> fmt::Result {
        let needs_parens = self.precedence() < min_prec;
        if needs_parens {
            write!(f, "(")?;
        }
        match self {
            Expr::Symbol(op) => write!(f, "{op}")?,
            Expr::Times(es) => {
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ")?;
                    }
                    e.fmt_with_parens(f, 2)?;
                }
            }
            Expr::Plus(es) => {
                for (i, e) in es.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    e.fmt_with_parens(f, 1)?;
                }
            }
            Expr::Transpose(e) => {
                e.fmt_with_parens(f, 3)?;
                write!(f, "^T")?;
            }
            Expr::Inverse(e) => {
                e.fmt_with_parens(f, 3)?;
                write!(f, "^-1")?;
            }
            Expr::InverseTranspose(e) => {
                e.fmt_with_parens(f, 3)?;
                write!(f, "^-T")?;
            }
        }
        if needs_parens {
            write!(f, ")")?;
        }
        Ok(())
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_with_parens(f, 0)
    }
}

impl fmt::Debug for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Expr({self})")
    }
}

impl Mul for Expr {
    type Output = Expr;

    fn mul(self, rhs: Expr) -> Expr {
        Expr::times([self, rhs])
    }
}

impl Add for Expr {
    type Output = Expr;

    fn add(self, rhs: Expr) -> Expr {
        Expr::plus([self, rhs])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Property;

    fn sq(name: &str, n: usize) -> Operand {
        Operand::square(name, n)
    }

    #[test]
    fn product_flattening() {
        let a = sq("A", 3).expr();
        let b = sq("B", 3).expr();
        let c = sq("C", 3).expr();
        let e = (a * b) * c;
        match &e {
            Expr::Times(fs) => assert_eq!(fs.len(), 3),
            other => panic!("expected flattened product, got {other:?}"),
        }
    }

    #[test]
    fn shape_of_product() {
        let a = Operand::matrix("A", 2, 3).expr();
        let b = Operand::matrix("B", 3, 5).expr();
        assert_eq!((a.clone() * b).shape().unwrap(), Shape::new(2, 5));
        let bad = a * Operand::matrix("C", 4, 4).expr();
        assert!(matches!(bad.shape(), Err(ExprError::ShapeMismatch { .. })));
    }

    #[test]
    fn shape_of_sum() {
        let a = Operand::matrix("A", 2, 3).expr();
        let b = Operand::matrix("B", 2, 3).expr();
        assert_eq!((a.clone() + b).shape().unwrap(), Shape::new(2, 3));
        let bad = a + Operand::matrix("C", 3, 2).expr();
        assert!(matches!(
            bad.shape(),
            Err(ExprError::SumShapeMismatch { .. })
        ));
    }

    #[test]
    fn unary_simplifications() {
        let a = sq("A", 3);
        assert_eq!(Expr::transpose(a.transpose()), a.expr());
        assert_eq!(Expr::inverse(a.inverse()), a.expr());
        assert_eq!(Expr::transpose(a.inverse()), a.inverse_transpose());
        assert_eq!(Expr::inverse(a.transpose()), a.inverse_transpose());
        assert_eq!(Expr::inverse_transpose(a.inverse_transpose()), a.expr());
        assert_eq!(Expr::inverse_transpose(a.transpose()), a.inverse());
        assert_eq!(Expr::inverse_transpose(a.inverse()), a.transpose());
    }

    #[test]
    fn normalize_transpose_of_product() {
        let a = Operand::matrix("A", 2, 3);
        let b = Operand::matrix("B", 3, 5);
        let e = Expr::transpose(a.expr() * b.expr()).normalized().unwrap();
        assert_eq!(e.to_string(), "B^T A^T");
        assert_eq!(e.shape().unwrap(), Shape::new(5, 2));
    }

    #[test]
    fn normalize_inverse_of_product() {
        let a = sq("A", 4);
        let b = sq("B", 4);
        let e = Expr::inverse(a.expr() * b.expr()).normalized().unwrap();
        assert_eq!(e.to_string(), "B^-1 A^-1");
    }

    #[test]
    fn normalize_inverse_of_rectangular_product_fails() {
        // A·B is square (2x3 · 3x2 = 2x2) but the factors are not, so
        // the inverse cannot be distributed.
        let a = Operand::matrix("A", 2, 3);
        let b = Operand::matrix("B", 3, 2);
        let e = Expr::inverse(a.expr() * b.expr());
        assert!(matches!(
            e.normalized(),
            Err(ExprError::NonSquareInverse { .. })
        ));
    }

    #[test]
    fn normalize_transpose_of_sum() {
        let a = Operand::matrix("A", 2, 3);
        let b = Operand::matrix("B", 2, 3);
        let e = Expr::transpose(a.expr() + b.expr()).normalized().unwrap();
        assert_eq!(e.to_string(), "A^T + B^T");
    }

    #[test]
    fn normalize_inverse_transpose_of_product() {
        let a = sq("A", 4);
        let b = sq("B", 4);
        // (AB)⁻ᵀ = A⁻ᵀ? No: (AB)⁻ᵀ = ((AB)⁻¹)ᵀ = (B⁻¹A⁻¹)ᵀ = A⁻ᵀ B⁻ᵀ.
        let e = Expr::inverse_transpose(a.expr() * b.expr())
            .normalized()
            .unwrap();
        assert_eq!(e.to_string(), "A^-T B^-T");
    }

    #[test]
    fn normalize_is_idempotent() {
        let a = sq("A", 4);
        let b = sq("B", 4);
        let c = Operand::matrix("C", 4, 7);
        let e = Expr::transpose(Expr::inverse(a.expr() * b.expr())) * c.expr();
        let n1 = e.normalized().unwrap();
        let n2 = n1.normalized().unwrap();
        assert_eq!(n1, n2);
    }

    #[test]
    fn normalization_preserves_shape() {
        let a = Operand::matrix("A", 2, 3);
        let b = Operand::matrix("B", 3, 5);
        let e = Expr::transpose(a.expr() * b.expr());
        let n = e.normalized().unwrap();
        assert_eq!(e.shape().unwrap(), n.shape().unwrap());
    }

    #[test]
    fn display_precedence() {
        let a = sq("A", 3);
        let b = sq("B", 3);
        let sum_times = (a.expr() + b.expr()) * b.expr();
        assert_eq!(sum_times.to_string(), "(A + B) B");
        let t = Expr::transpose(a.expr() + b.expr());
        assert_eq!(t.to_string(), "(A + B)^T");
        let chain = a.inverse() * b.expr() * a.transpose();
        assert_eq!(chain.to_string(), "A^-1 B A^T");
    }

    #[test]
    fn symbols_in_order() {
        let a = sq("A", 3);
        let b = sq("B", 3);
        let e = a.inverse() * b.expr() * a.transpose();
        let names: Vec<_> = e.symbols().iter().map(|o| o.name()).collect();
        assert_eq!(names, vec!["A", "B", "A"]);
    }

    #[test]
    fn node_count() {
        let a = sq("A", 3);
        let b = sq("B", 3);
        // Times(Inverse(A), B) = 1 + (1+1) + 1 = 4
        let e = a.inverse() * b.expr();
        assert_eq!(e.node_count(), 4);
    }

    #[test]
    fn is_factor() {
        let a = sq("A", 3);
        assert!(a.expr().is_factor());
        assert!(a.transpose().is_factor());
        assert!(a.inverse().is_factor());
        assert!(a.inverse_transpose().is_factor());
        let b = sq("B", 3);
        assert!(!(a.expr() * b.expr()).is_factor());
        assert!(!Expr::transpose(a.expr() * b.expr()).is_factor());
    }

    #[test]
    fn spd_operand_in_expr() {
        let a = sq("A", 3).with_property(Property::SymmetricPositiveDefinite);
        let e = a.inverse();
        assert_eq!(e.shape().unwrap(), Shape::square(3));
    }
}
