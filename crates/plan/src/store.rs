//! Plan persistence: serialize recorded plans so a serving fleet can
//! warm-start from a shared plan store.
//!
//! A snapshot captures, per cached structure, the [`StructureKey`] and
//! every recorded region plan — cells, candidates and exact FLOP
//! formulas included — so a loaded cache answers its first request for
//! any stored region as a **hit**, with no symbolic re-solve.
//!
//! Two pieces of a [`crate::plan::Candidate`] are *not* stored because
//! they are derivable: the cost polynomials (`op_poly` is exactly
//! `formula.poly()`; `total_poly` is only consulted while a region is
//! being recorded, never at instantiate time) and the per-cell
//! temporary names (always `T<i>_<j>`). Snapshots are deterministic —
//! structures and regions are sorted — so saving a loaded cache
//! reproduces the stored bytes.
//!
//! A snapshot is tied to the kernel registry and inference mode it was
//! recorded under: candidates reference kernels by registration index,
//! so loading validates the full registry kernel-name list and the
//! mode before adopting any plan.

use crate::cache::{PlanCache, PlanError};
use crate::key::{FactorSig, KeyDim, StructureKey};
use crate::plan::{Candidate, CellPlan, DeferredProps, OperandRef, RegionPlan};
use gmc::InferenceMode;
use gmc_expr::{Dim, Property, PropertySet};
use gmc_kernels::FlopFormula;
use gmc_kernels::{InvKind, Uplo};
use gmc_pattern::Var;
use serde::{DeError, Deserialize, Serialize, Value};
use std::path::Path;
use std::sync::Arc;

const FORMAT: &str = "gmc-plan-store/v1";

// ---------------------------------------------------------------------
// Value helpers for foreign leaf types (orphan rules prevent trait
// impls on them; the plan types' Serialize/Deserialize impls below call
// these directly).
// ---------------------------------------------------------------------

fn usize_value(v: usize) -> Value {
    Value::Number(v as f64)
}

fn dim_value(d: Dim) -> Value {
    match d {
        Dim::Const(v) => usize_value(v),
        Dim::Var(v) => Value::String(v.name().to_owned()),
    }
}

fn dim_from(v: &Value) -> Result<Dim, DeError> {
    match v {
        Value::Number(_) => Ok(Dim::Const(usize::from_value(v)?)),
        Value::String(name) => Ok(Dim::var(name)),
        other => Err(DeError(format!("expected dimension, got {other:?}"))),
    }
}

fn props_value(ps: PropertySet) -> Value {
    Value::Number(crate::key::props_bits(ps) as f64)
}

fn props_from(v: &Value) -> Result<PropertySet, DeError> {
    let bits = u16::from_value(v)?;
    let mut ps = PropertySet::new();
    for p in Property::all() {
        if bits & (1 << (p as u16)) != 0 {
            ps.insert(p);
        }
    }
    // Recorded sets are implication-closed, so re-inserting the members
    // must reproduce the bits exactly; anything else is corruption.
    if crate::key::props_bits(ps) != bits {
        return Err(DeError(format!(
            "property bits {bits:#x} are not an implication-closed set"
        )));
    }
    Ok(ps)
}

fn inv_kind_value(kind: InvKind) -> Value {
    Value::String(
        match kind {
            InvKind::General => "general",
            InvKind::Spd => "spd",
            InvKind::Triangular(Uplo::Lower) => "tri_lower",
            InvKind::Triangular(Uplo::Upper) => "tri_upper",
            InvKind::Diagonal => "diagonal",
        }
        .to_owned(),
    )
}

fn inv_kind_from(v: &Value) -> Result<InvKind, DeError> {
    match String::from_value(v)?.as_str() {
        "general" => Ok(InvKind::General),
        "spd" => Ok(InvKind::Spd),
        "tri_lower" => Ok(InvKind::Triangular(Uplo::Lower)),
        "tri_upper" => Ok(InvKind::Triangular(Uplo::Upper)),
        "diagonal" => Ok(InvKind::Diagonal),
        other => Err(DeError(format!("unknown inverse kind `{other}`"))),
    }
}

fn tagged(tag: &str, mut fields: Vec<(String, Value)>) -> Value {
    let mut all = vec![("t".to_owned(), Value::String(tag.to_owned()))];
    all.append(&mut fields);
    Value::Object(all)
}

fn tag_of(v: &Value) -> Result<String, DeError> {
    String::from_value(v.get_field("t")?)
}

fn formula_value(f: &FlopFormula) -> Value {
    let d = |name: &str, dim: Dim| (name.to_owned(), dim_value(dim));
    match f {
        FlopFormula::Gemm { m, k, n } => tagged("gemm", vec![d("m", *m), d("k", *k), d("n", *n)]),
        FlopFormula::Level3 { m, n } => tagged("level3", vec![d("m", *m), d("n", *n)]),
        FlopFormula::Syrk { m, k } => tagged("syrk", vec![d("m", *m), d("k", *k)]),
        FlopFormula::Gesv { m, n } => tagged("gesv", vec![d("m", *m), d("n", *n)]),
        FlopFormula::Posv { m, n } => tagged("posv", vec![d("m", *m), d("n", *n)]),
        FlopFormula::EntryCount { r, c } => tagged("entries", vec![d("r", *r), d("c", *c)]),
        FlopFormula::TwiceEntryCount { r, c } => tagged("entries2", vec![d("r", *r), d("c", *c)]),
        FlopFormula::SquareN { n } => tagged("square_n", vec![d("n", *n)]),
        FlopFormula::TwiceSquareN { n } => tagged("square_n2", vec![d("n", *n)]),
        FlopFormula::TwiceN { n } => tagged("twice_n", vec![d("n", *n)]),
        FlopFormula::Zero => tagged("zero", vec![]),
        FlopFormula::Inv { kind, n } => tagged(
            "inv",
            vec![("kind".to_owned(), inv_kind_value(*kind)), d("n", *n)],
        ),
        FlopFormula::InvPair { m } => tagged("inv_pair", vec![d("m", *m)]),
    }
}

fn formula_from(v: &Value) -> Result<FlopFormula, DeError> {
    let d = |name: &str| dim_from(v.get_field(name)?);
    Ok(match tag_of(v)?.as_str() {
        "gemm" => FlopFormula::Gemm {
            m: d("m")?,
            k: d("k")?,
            n: d("n")?,
        },
        "level3" => FlopFormula::Level3 {
            m: d("m")?,
            n: d("n")?,
        },
        "syrk" => FlopFormula::Syrk {
            m: d("m")?,
            k: d("k")?,
        },
        "gesv" => FlopFormula::Gesv {
            m: d("m")?,
            n: d("n")?,
        },
        "posv" => FlopFormula::Posv {
            m: d("m")?,
            n: d("n")?,
        },
        "entries" => FlopFormula::EntryCount {
            r: d("r")?,
            c: d("c")?,
        },
        "entries2" => FlopFormula::TwiceEntryCount {
            r: d("r")?,
            c: d("c")?,
        },
        "square_n" => FlopFormula::SquareN { n: d("n")? },
        "square_n2" => FlopFormula::TwiceSquareN { n: d("n")? },
        "twice_n" => FlopFormula::TwiceN { n: d("n")? },
        "zero" => FlopFormula::Zero,
        "inv" => FlopFormula::Inv {
            kind: inv_kind_from(v.get_field("kind")?)?,
            n: d("n")?,
        },
        "inv_pair" => FlopFormula::InvPair { m: d("m")? },
        other => return Err(DeError(format!("unknown formula tag `{other}`"))),
    })
}

fn operand_ref_value(r: OperandRef) -> Value {
    match r {
        OperandRef::Factor(t) => usize_value(t),
        OperandRef::Temp(i, j) => Value::Array(vec![usize_value(i), usize_value(j)]),
    }
}

fn operand_ref_from(v: &Value) -> Result<OperandRef, DeError> {
    match v {
        Value::Number(_) => Ok(OperandRef::Factor(usize::from_value(v)?)),
        Value::Array(items) if items.len() == 2 => Ok(OperandRef::Temp(
            usize::from_value(&items[0])?,
            usize::from_value(&items[1])?,
        )),
        other => Err(DeError(format!("expected operand ref, got {other:?}"))),
    }
}

fn candidate_value(c: &Candidate) -> Value {
    let var_binds: Vec<Value> = c
        .var_binds
        .iter()
        .map(|(var, r)| Value::Array(vec![usize_value(var.index()), operand_ref_value(*r)]))
        .collect();
    Value::Object(vec![
        ("k".to_owned(), usize_value(c.k)),
        ("kernel".to_owned(), usize_value(c.kernel_idx)),
        ("spec".to_owned(), Value::Number(c.specificity as f64)),
        ("formula".to_owned(), formula_value(&c.formula)),
        ("binds".to_owned(), Value::Array(var_binds)),
    ])
}

fn candidate_from(v: &Value) -> Result<Candidate, DeError> {
    let formula = formula_from(v.get_field("formula")?)?;
    let binds = match v.get_field("binds")? {
        Value::Array(items) => items
            .iter()
            .map(|item| match item {
                Value::Array(pair) if pair.len() == 2 => {
                    let idx = usize::from_value(&pair[0])?;
                    if idx >= 16 {
                        return Err(DeError(format!(
                            "pattern variable index {idx} out of range"
                        )));
                    }
                    Ok((Var::new(idx as u8), operand_ref_from(&pair[1])?))
                }
                other => Err(DeError(format!("expected [var, ref] pair, got {other:?}"))),
            })
            .collect::<Result<Vec<_>, _>>()?,
        other => return Err(DeError(format!("expected binds array, got {other:?}"))),
    };
    let op_poly = formula.poly();
    Ok(Candidate {
        k: usize::from_value(v.get_field("k")?)?,
        kernel_idx: usize::from_value(v.get_field("kernel")?)?,
        specificity: u8::from_value(v.get_field("spec")?)?,
        formula,
        op_poly,
        // Total polynomials are only consulted while recording a
        // region (to decide symbolic resolution); a stored plan is
        // already classified, so they are not persisted.
        total_poly: None,
        var_binds: binds,
    })
}

fn cell_value(cell: &CellPlan) -> Value {
    match cell {
        CellPlan::Leaf => tagged("leaf", vec![]),
        CellPlan::Unsolvable => tagged("unsolvable", vec![]),
        CellPlan::Dynamic => tagged("dynamic", vec![]),
        CellPlan::Resolved { cand, props } => tagged(
            "resolved",
            vec![
                ("cand".to_owned(), candidate_value(cand)),
                ("props".to_owned(), props_value(*props)),
            ],
        ),
        CellPlan::Deferred { cands, props } => {
            let props_v = match props {
                DeferredProps::Stable(p) => {
                    tagged("stable", vec![("p".to_owned(), props_value(*p))])
                }
                DeferredProps::PerSplit(by_split) => tagged(
                    "per_split",
                    vec![(
                        "p".to_owned(),
                        Value::Array(
                            by_split
                                .iter()
                                .map(|(k, p)| Value::Array(vec![usize_value(*k), props_value(*p)]))
                                .collect(),
                        ),
                    )],
                ),
            };
            tagged(
                "deferred",
                vec![
                    (
                        "cands".to_owned(),
                        Value::Array(cands.iter().map(candidate_value).collect()),
                    ),
                    ("props".to_owned(), props_v),
                ],
            )
        }
    }
}

fn cell_from(v: &Value) -> Result<CellPlan, DeError> {
    Ok(match tag_of(v)?.as_str() {
        "leaf" => CellPlan::Leaf,
        "unsolvable" => CellPlan::Unsolvable,
        "dynamic" => CellPlan::Dynamic,
        "resolved" => CellPlan::Resolved {
            cand: Box::new(candidate_from(v.get_field("cand")?)?),
            props: props_from(v.get_field("props")?)?,
        },
        "deferred" => {
            let cands = match v.get_field("cands")? {
                Value::Array(items) => items
                    .iter()
                    .map(candidate_from)
                    .collect::<Result<Vec<_>, _>>()?,
                other => return Err(DeError(format!("expected candidates, got {other:?}"))),
            };
            let props_v = v.get_field("props")?;
            let props = match tag_of(props_v)?.as_str() {
                "stable" => DeferredProps::Stable(props_from(props_v.get_field("p")?)?),
                "per_split" => {
                    let by_split = match props_v.get_field("p")? {
                        Value::Array(items) => items
                            .iter()
                            .map(|item| match item {
                                Value::Array(pair) if pair.len() == 2 => {
                                    Ok((usize::from_value(&pair[0])?, props_from(&pair[1])?))
                                }
                                other => Err(DeError(format!(
                                    "expected [split, props] pair, got {other:?}"
                                ))),
                            })
                            .collect::<Result<Vec<_>, _>>()?,
                        other => {
                            return Err(DeError(format!("expected per-split props, got {other:?}")))
                        }
                    };
                    DeferredProps::PerSplit(by_split)
                }
                other => return Err(DeError(format!("unknown props tag `{other}`"))),
            };
            CellPlan::Deferred { cands, props }
        }
        other => return Err(DeError(format!("unknown cell tag `{other}`"))),
    })
}

fn key_dim_value(d: KeyDim) -> Value {
    match d {
        KeyDim::Const(v) => usize_value(v),
        KeyDim::Var(i) => Value::String(format!("${i}")),
    }
}

fn key_dim_from(v: &Value) -> Result<KeyDim, DeError> {
    match v {
        Value::Number(_) => Ok(KeyDim::Const(usize::from_value(v)?)),
        Value::String(s) => s
            .strip_prefix('$')
            .and_then(|i| i.parse::<u16>().ok())
            .map(KeyDim::Var)
            .ok_or_else(|| DeError(format!("bad key dimension `{s}`"))),
        other => Err(DeError(format!("expected key dimension, got {other:?}"))),
    }
}

impl Serialize for StructureKey {
    fn to_value(&self) -> Value {
        let factors: Vec<Value> = self
            .factors
            .iter()
            .map(|f| {
                Value::Object(vec![
                    ("u".to_owned(), Value::Number(f.unary as f64)),
                    ("r".to_owned(), key_dim_value(f.rows)),
                    ("c".to_owned(), key_dim_value(f.cols)),
                    ("p".to_owned(), Value::Number(f.props as f64)),
                    ("o".to_owned(), Value::Number(f.operand_class as f64)),
                ])
            })
            .collect();
        Value::Object(vec![
            ("deep".to_owned(), Value::Bool(self.deep_inference)),
            ("factors".to_owned(), Value::Array(factors)),
        ])
    }
}

impl Deserialize for StructureKey {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let factors = match v.get_field("factors")? {
            Value::Array(items) => items
                .iter()
                .map(|f| {
                    Ok(FactorSig {
                        unary: u8::from_value(f.get_field("u")?)?,
                        rows: key_dim_from(f.get_field("r")?)?,
                        cols: key_dim_from(f.get_field("c")?)?,
                        props: u16::from_value(f.get_field("p")?)?,
                        operand_class: u16::from_value(f.get_field("o")?)?,
                    })
                })
                .collect::<Result<Vec<_>, DeError>>()?,
            other => return Err(DeError(format!("expected factor array, got {other:?}"))),
        };
        Ok(StructureKey {
            deep_inference: bool::from_value(v.get_field("deep")?)?,
            factors,
        })
    }
}

impl Serialize for RegionPlan {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("n".to_owned(), usize_value(self.n)),
            (
                "vars".to_owned(),
                Value::Array(
                    self.vars
                        .iter()
                        .map(|v| Value::String(v.name().to_owned()))
                        .collect(),
                ),
            ),
            (
                "cells".to_owned(),
                Value::Array(self.cells.iter().map(cell_value).collect()),
            ),
        ])
    }
}

impl Deserialize for RegionPlan {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let n = usize::from_value(v.get_field("n")?)?;
        if n < 2 {
            return Err(DeError(format!("region plan chain length {n} < 2")));
        }
        let cells = match v.get_field("cells")? {
            Value::Array(items) => items
                .iter()
                .map(cell_from)
                .collect::<Result<Vec<_>, DeError>>()?,
            other => return Err(DeError(format!("expected cell array, got {other:?}"))),
        };
        if cells.len() != n * (n + 1) / 2 {
            return Err(DeError(format!(
                "region plan for n={n} must have {} cells, got {}",
                n * (n + 1) / 2,
                cells.len()
            )));
        }
        validate_cells(n, &cells)?;
        let vars: Vec<gmc_expr::DimVar> = Vec::<String>::from_value(v.get_field("vars")?)?
            .iter()
            .map(|name| gmc_expr::DimVar::new(name))
            .collect();
        // The recorded variable list is what binding translation maps
        // onto, so it must be duplicate-free and cover every variable
        // any stored formula references — otherwise a request would
        // leave formula variables unbound (worker panic) or silently
        // swap sizes.
        let var_set: std::collections::BTreeSet<_> = vars.iter().copied().collect();
        if var_set.len() != vars.len() {
            return Err(DeError(
                "region plan records duplicate variables".to_owned(),
            ));
        }
        for cell in &cells {
            let cands: &[Candidate] = match cell {
                CellPlan::Resolved { cand, .. } => std::slice::from_ref(cand),
                CellPlan::Deferred { cands, .. } => cands,
                _ => &[],
            };
            for cand in cands {
                for dim in formula_dims(&cand.formula) {
                    if let Dim::Var(var) = dim {
                        if !var_set.contains(&var) {
                            return Err(DeError(format!(
                                "formula references variable `{var}` outside the region's \
                                 recorded variables"
                            )));
                        }
                    }
                }
            }
        }
        Ok(RegionPlan {
            n,
            cells,
            // Temporary names are derivable (`T<i>_<j>`), so they are
            // rebuilt rather than stored.
            temp_names: crate::plan::build_temp_names(n),
            vars,
        })
    }
}

/// Every dimension a formula references (for load-time validation).
fn formula_dims(f: &FlopFormula) -> Vec<Dim> {
    match f {
        FlopFormula::Gemm { m, k, n } => vec![*m, *k, *n],
        FlopFormula::Level3 { m, n } | FlopFormula::Gesv { m, n } | FlopFormula::Posv { m, n } => {
            vec![*m, *n]
        }
        FlopFormula::Syrk { m, k } => vec![*m, *k],
        FlopFormula::EntryCount { r, c } | FlopFormula::TwiceEntryCount { r, c } => {
            vec![*r, *c]
        }
        FlopFormula::SquareN { n }
        | FlopFormula::TwiceSquareN { n }
        | FlopFormula::TwiceN { n }
        | FlopFormula::Inv { n, .. } => vec![*n],
        FlopFormula::InvPair { m } => vec![*m],
        FlopFormula::Zero => Vec::new(),
    }
}

/// Structural validation of deserialized cells, so a corrupt snapshot
/// is rejected at load time instead of panicking (or indexing out of
/// bounds) inside a serving worker on its first request.
fn validate_cells(n: usize, cells: &[CellPlan]) -> Result<(), DeError> {
    let cell_at = |i: usize, j: usize| &cells[crate::plan::cell_index(n, i, j)];
    // A candidate of cell (i, j) with split k may reference chain
    // factors (anywhere — operand aliasing keys refs to the *first*
    // occurrence) or exactly its two children's temporaries, (i, k)
    // and (k+1, j); a child temporary only exists for an interior
    // child the plan actually computes (Resolved or Deferred — a
    // Dynamic descendant would have made this cell Dynamic too).
    let check_candidate = |cand: &Candidate, i: usize, j: usize| -> Result<(), DeError> {
        if cand.k < i || cand.k >= j {
            return Err(DeError(format!(
                "cell ({i},{j}): candidate split {} out of range",
                cand.k
            )));
        }
        // Both children of the split must be computable: a diagonal
        // leaf, or an interior Resolved/Deferred cell (a Dynamic or
        // Unsolvable child cannot appear under a non-Dynamic parent in
        // a genuine recording, and instantiate would panic on one).
        for (a, b) in [(i, cand.k), (cand.k + 1, j)] {
            if a < b
                && !matches!(
                    cell_at(a, b),
                    CellPlan::Resolved { .. } | CellPlan::Deferred { .. }
                )
            {
                return Err(DeError(format!(
                    "cell ({i},{j}) split {}: child ({a},{b}) is not computable",
                    cand.k
                )));
            }
        }
        for (_, r) in &cand.var_binds {
            let ok = match *r {
                OperandRef::Factor(t) => t < n,
                OperandRef::Temp(a, b) => {
                    a < b
                        && ((a, b) == (i, cand.k) || (a, b) == (cand.k + 1, j))
                        && matches!(
                            cell_at(a, b),
                            CellPlan::Resolved { .. } | CellPlan::Deferred { .. }
                        )
                }
            };
            if !ok {
                return Err(DeError(format!(
                    "cell ({i},{j}) split {}: operand reference {r:?} is not a factor or a \
                     computed child temporary",
                    cand.k
                )));
            }
        }
        Ok(())
    };
    let mut idx = 0;
    for i in 0..n {
        for j in i..n {
            let cell = &cells[idx];
            idx += 1;
            match cell {
                CellPlan::Leaf if i != j => {
                    return Err(DeError(format!("interior cell ({i},{j}) marked as leaf")))
                }
                _ if i == j && !matches!(cell, CellPlan::Leaf) => {
                    return Err(DeError(format!("diagonal cell ({i},{i}) must be a leaf")))
                }
                CellPlan::Resolved { cand, .. } => check_candidate(cand, i, j)?,
                CellPlan::Deferred { cands, props } => {
                    if cands.is_empty() {
                        return Err(DeError(format!("cell ({i},{j}): no deferred candidates")));
                    }
                    for cand in cands {
                        check_candidate(cand, i, j)?;
                    }
                    if let DeferredProps::PerSplit(by_split) = props {
                        for cand in cands {
                            if !by_split.iter().any(|(k, _)| *k == cand.k) {
                                return Err(DeError(format!(
                                    "cell ({i},{j}): split {} has no recorded properties",
                                    cand.k
                                )));
                            }
                        }
                    }
                }
                _ => {}
            }
        }
    }
    Ok(())
}

fn inference_name(mode: InferenceMode) -> &'static str {
    match mode {
        InferenceMode::Compositional => "compositional",
        InferenceMode::Deep => "deep",
    }
}

impl PlanCache {
    /// Serializes every recorded plan to a deterministic JSON snapshot
    /// (structures sorted by key, regions by signature): the plan
    /// store a serving fleet warm-starts from.
    pub fn snapshot_json(&self) -> String {
        let mut structures: Vec<Value> = Vec::new();
        let mut entries = self.structures();
        entries.sort_by_cached_key(|(key, _)| serde_json::to_string(key).expect("key serializes"));
        for (key, plan) in entries {
            let mut regions: Vec<(&Vec<i8>, &Arc<RegionPlan>)> = plan.regions.iter().collect();
            regions.sort_by_key(|(sig, _)| (*sig).clone());
            let regions: Vec<Value> = regions
                .into_iter()
                .map(|(sig, region)| {
                    Value::Object(vec![
                        ("signature".to_owned(), sig.to_value()),
                        ("plan".to_owned(), region.to_value()),
                    ])
                })
                .collect();
            structures.push(Value::Object(vec![
                ("key".to_owned(), key.to_value()),
                ("regions".to_owned(), Value::Array(regions)),
            ]));
        }
        let kernels: Vec<Value> = self
            .registry()
            .kernels()
            .iter()
            .map(|k| Value::String(k.name().to_owned()))
            .collect();
        let doc = Value::Object(vec![
            ("format".to_owned(), Value::String(FORMAT.to_owned())),
            (
                "inference".to_owned(),
                Value::String(inference_name(self.inference()).to_owned()),
            ),
            ("kernels".to_owned(), Value::Array(kernels)),
            ("structures".to_owned(), Value::Array(structures)),
        ]);
        serde_json::to_string_pretty(&doc).expect("plan snapshots contain only finite numbers")
    }

    /// Merges a snapshot produced by [`snapshot_json`](Self::snapshot_json)
    /// into this cache. Returns the number of regions adopted (regions
    /// already present are kept as they are).
    ///
    /// # Errors
    ///
    /// [`PlanError::Store`] if the snapshot is malformed, was recorded
    /// under a different inference mode, or under a registry whose
    /// kernel list (names and order) differs from this cache's —
    /// candidates reference kernels by registration index, so a
    /// mismatched registry would silently serve wrong kernels.
    pub fn load_snapshot_json(&self, json: &str) -> Result<usize, PlanError> {
        let doc: Value = serde_json::from_str(json).map_err(|e| PlanError::Store(e.to_string()))?;
        let store_err = |e: DeError| PlanError::Store(e.to_string());
        let format =
            String::from_value(doc.get_field("format").map_err(store_err)?).map_err(store_err)?;
        if format != FORMAT {
            return Err(PlanError::Store(format!(
                "unsupported snapshot format `{format}` (expected `{FORMAT}`)"
            )));
        }
        let mode = String::from_value(doc.get_field("inference").map_err(store_err)?)
            .map_err(store_err)?;
        if mode != inference_name(self.inference()) {
            return Err(PlanError::Store(format!(
                "snapshot was recorded under {mode} inference, cache uses {}",
                inference_name(self.inference())
            )));
        }
        let kernels = Vec::<String>::from_value(doc.get_field("kernels").map_err(store_err)?)
            .map_err(store_err)?;
        let registry_kernels: Vec<String> = self
            .registry()
            .kernels()
            .iter()
            .map(|k| k.name().to_owned())
            .collect();
        if kernels != registry_kernels {
            return Err(PlanError::Store(
                "snapshot kernel registry differs from this cache's registry".to_owned(),
            ));
        }
        let n_kernels = registry_kernels.len();

        let structures = match doc.get_field("structures").map_err(store_err)? {
            Value::Array(items) => items,
            other => {
                return Err(PlanError::Store(format!(
                    "expected structures array, got {other:?}"
                )))
            }
        };
        let mut adopted = 0usize;
        for entry in structures {
            let key = StructureKey::from_value(entry.get_field("key").map_err(store_err)?)
                .map_err(store_err)?;
            let regions = match entry.get_field("regions").map_err(store_err)? {
                Value::Array(items) => items,
                other => {
                    return Err(PlanError::Store(format!(
                        "expected regions array, got {other:?}"
                    )))
                }
            };
            // Cross-checks against the structure key: the plan must
            // describe a chain of the key's length, with one variable
            // per distinct canonical variable slot, or binding
            // translation and factor references would index past the
            // request chain at serve time.
            let key_vars: std::collections::BTreeSet<u16> = key
                .factors
                .iter()
                .flat_map(|f| [f.rows, f.cols])
                .filter_map(|d| match d {
                    KeyDim::Var(i) => Some(i),
                    KeyDim::Const(_) => None,
                })
                .collect();
            for region in regions {
                let sig = Vec::<i8>::from_value(region.get_field("signature").map_err(store_err)?)
                    .map_err(store_err)?;
                let plan = RegionPlan::from_value(region.get_field("plan").map_err(store_err)?)
                    .map_err(store_err)?;
                if plan.n != key.factors.len() {
                    return Err(PlanError::Store(format!(
                        "region plan for {} factors stored under a {}-factor key",
                        plan.n,
                        key.factors.len()
                    )));
                }
                if plan.vars.len() != key_vars.len() {
                    return Err(PlanError::Store(format!(
                        "region plan records {} variables, key has {}",
                        plan.vars.len(),
                        key_vars.len()
                    )));
                }
                if let Some(idx) = plan.max_kernel_index() {
                    if idx >= n_kernels {
                        return Err(PlanError::Store(format!(
                            "candidate references kernel index {idx}, registry has {n_kernels}"
                        )));
                    }
                }
                if self.adopt_region(key.clone(), sig, Arc::new(plan)) {
                    adopted += 1;
                }
            }
        }
        Ok(adopted)
    }

    /// Saves the snapshot to `path` (see [`snapshot_json`](Self::snapshot_json)).
    /// The write goes to a sibling temporary file first and is renamed
    /// into place, so a crash mid-save never leaves a truncated store.
    ///
    /// # Errors
    ///
    /// [`PlanError::Store`] on I/O failure.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), PlanError> {
        let path = path.as_ref();
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = std::path::PathBuf::from(tmp);
        std::fs::write(&tmp, self.snapshot_json() + "\n")
            .map_err(|e| PlanError::Store(format!("cannot write {}: {e}", tmp.display())))?;
        std::fs::rename(&tmp, path).map_err(|e| {
            PlanError::Store(format!("cannot move snapshot to {}: {e}", path.display()))
        })
    }

    /// Loads and merges the snapshot at `path`; returns the number of
    /// regions adopted.
    ///
    /// # Errors
    ///
    /// [`PlanError::Store`] on I/O failure or snapshot mismatch (see
    /// [`load_snapshot_json`](Self::load_snapshot_json)).
    pub fn load(&self, path: impl AsRef<Path>) -> Result<usize, PlanError> {
        let path = path.as_ref();
        let json = std::fs::read_to_string(path)
            .map_err(|e| PlanError::Store(format!("cannot read {}: {e}", path.display())))?;
        self.load_snapshot_json(&json)
    }
}

impl RegionPlan {
    /// The largest kernel registration index any candidate references,
    /// for load-time validation against the registry.
    fn max_kernel_index(&self) -> Option<usize> {
        self.cells
            .iter()
            .flat_map(|cell| -> Box<dyn Iterator<Item = usize> + '_> {
                match cell {
                    CellPlan::Resolved { cand, .. } => Box::new(std::iter::once(cand.kernel_idx)),
                    CellPlan::Deferred { cands, .. } => {
                        Box::new(cands.iter().map(|c| c.kernel_idx))
                    }
                    _ => Box::new(std::iter::empty()),
                }
            })
            .max()
    }
}
