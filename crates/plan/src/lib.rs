//! Symbolic GMC plans: compile a matrix-chain *structure* once over
//! dimension variables, cache the result, and instantiate it per
//! request at concrete sizes.
//!
//! The concrete GMC optimizer (`gmc::GmcOptimizer`) solves one chain
//! with fixed operand sizes. A production front door, however, sees
//! *streams* of requests that share a chain structure and differ only
//! in sizes — and the follow-up literature ("Compilation of Generalized
//! Matrix Chains with Symbolic Sizes"; "On the Parenthesisations of
//! Matrix Chains") shows that few parenthesizations are ever optimal,
//! so one symbolic solve can serve many concrete instantiations. This
//! crate provides that layer:
//!
//! * [`PlanCache`] — keyed by (chain structure, operand properties,
//!   dimension-variable pattern) and, per structure, by size *region*
//!   (the ordering pattern of the bound dimensions). The cache is
//!   concurrent: structures are sharded by key hash, shard snapshots
//!   are immutable and `Arc`-swapped copy-on-write, so cache hits are
//!   pure reads that any number of threads take simultaneously while
//!   misses record behind per-shard write mutexes (see
//!   [`PlanCache`]'s docs). Plans persist: [`PlanCache::save`] /
//!   [`PlanCache::load`] snapshot the recorded plans to JSON so a
//!   serving fleet warm-starts with every stored region a hit, and
//!   [`PlanCache::pre_enumerate_regions`] records *every* reachable
//!   region of a small chain up front.
//! * Symbolic solving — where FLOP-polynomial comparison is decidable
//!   (dominance on the positive orthant), DP cells are *resolved* at
//!   compile time; ambiguous splits are *deferred* and decided at bind
//!   time by evaluating the cached exact FLOP formulas.
//! * Bit-identical instantiation — the served solution matches a
//!   from-scratch concrete solve exactly: same `f64` cost, same
//!   parenthesization, same kernel sequence, in both inference modes.
//!
//! # Example
//!
//! ```
//! use gmc::InferenceMode;
//! use gmc_expr::{Dim, DimBindings, Property, SymChain, SymFactor, SymOperand, UnaryOp};
//! use gmc_kernels::KernelRegistry;
//! use gmc_plan::{PlanCache, PlanOutcome};
//!
//! // X := A⁻¹ B Cᵀ with symbolic sizes (paper Table 2, symbolically).
//! let n = Dim::var("n");
//! let m = Dim::var("m");
//! let a = SymOperand::square("A", n)
//!     .with_property(Property::SymmetricPositiveDefinite)
//!     .unwrap();
//! let b = SymOperand::new("B", n, m);
//! let c = SymOperand::square("C", m)
//!     .with_property(Property::LowerTriangular)
//!     .unwrap();
//! let chain = SymChain::new(vec![
//!     SymFactor::new(a, UnaryOp::Inverse),
//!     SymFactor::plain(b),
//!     SymFactor::new(c, UnaryOp::Transpose),
//! ])
//! .unwrap();
//!
//! let registry = std::sync::Arc::new(KernelRegistry::blas_lapack());
//! let cache = PlanCache::new(registry, InferenceMode::Compositional);
//!
//! // Cold: symbolic solve, recorded.
//! let big = DimBindings::new().with("n", 2000).with("m", 200);
//! let (sol, outcome) = cache.solve(&chain, &big).unwrap();
//! assert_eq!(outcome, PlanOutcome::MissStructure);
//! assert_eq!(sol.kernel_names(), vec!["TRMM_RLT", "POSV_LN"]);
//!
//! // Warm: same region, new sizes — cached instantiate.
//! let bigger = DimBindings::new().with("n", 4000).with("m", 400);
//! let (sol, outcome) = cache.solve(&chain, &bigger).unwrap();
//! assert_eq!(outcome, PlanOutcome::Hit);
//! assert_eq!(sol.kernel_names(), vec!["TRMM_RLT", "POSV_LN"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod key;
mod plan;
mod store;
pub mod sync;

pub use cache::{
    CacheStats, PlanCache, PlanError, PlanOutcome, ShardStats, SolveTiming, SymbolicPlan,
};
pub use key::{region_signature, structure_key, undecided_shape_questions, StructureKey};
pub use plan::{PlanSummary, RegionPlan};
