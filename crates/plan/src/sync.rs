//! Poison-recovering lock helpers, shared by the plan cache and the
//! serving layer built on top of it.
//!
//! Every lock in these crates guards state with no cross-field
//! invariant a panic could break mid-update (snapshots are swapped
//! whole, maps are inserted-into atomically), so a poisoned lock is
//! always safe to recover rather than propagate.

use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Read-locks `lock`, recovering from poisoning.
pub fn read_lock<T>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// Write-locks `lock`, recovering from poisoning.
pub fn write_lock<T>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// Locks `lock`, recovering from poisoning.
pub fn mutex_lock<T>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}
