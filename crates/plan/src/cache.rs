//! The structure-keyed plan cache.

use crate::key::{region_signature, structure_key, StructureKey};
use crate::plan::{instantiate, record_region, PlanSummary, PlanWorkspace, RegionPlan};
use gmc::{GmcError, GmcSolution, InferenceMode};
use gmc_expr::{DimBindings, SymChain, SymChainError};
use gmc_kernels::{FlatTermScratch, KernelRegistry};
use std::collections::HashMap;
use std::fmt;

/// How a request was served by the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanOutcome {
    /// First request for this chain structure: a full symbolic solve
    /// was recorded.
    MissStructure,
    /// Known structure, new size region: a new region plan was recorded.
    MissRegion,
    /// Cached region plan instantiated — the fast path.
    Hit,
}

impl fmt::Display for PlanOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanOutcome::MissStructure => write!(f, "miss (new structure)"),
            PlanOutcome::MissRegion => write!(f, "miss (new region)"),
            PlanOutcome::Hit => write!(f, "hit"),
        }
    }
}

/// Cumulative cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests that recorded a brand-new structure plan.
    pub structure_misses: u64,
    /// Requests that recorded a new region for a known structure.
    pub region_misses: u64,
    /// Requests served by instantiating a cached region plan.
    pub hits: u64,
}

impl CacheStats {
    /// Total number of requests observed.
    pub fn requests(&self) -> u64 {
        self.structure_misses + self.region_misses + self.hits
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests: {} hits, {} region misses, {} structure misses",
            self.requests(),
            self.hits,
            self.region_misses,
            self.structure_misses
        )
    }
}

/// Errors surfaced by [`PlanCache::solve`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum PlanError {
    /// The chain failed to bind (unbound variable, zero size, …).
    Chain(SymChainError),
    /// No kernel sequence computes the chain (same condition as the
    /// concrete optimizer's error).
    Solve(GmcError),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Chain(e) => e.fmt(f),
            PlanError::Solve(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<SymChainError> for PlanError {
    fn from(e: SymChainError) -> Self {
        PlanError::Chain(e)
    }
}

impl From<GmcError> for PlanError {
    fn from(e: GmcError) -> Self {
        PlanError::Solve(e)
    }
}

/// A symbolic plan for one chain structure: one recorded [`RegionPlan`]
/// per size region encountered so far.
#[derive(Debug, Default)]
pub struct SymbolicPlan {
    regions: HashMap<Vec<i8>, RegionPlan>,
}

impl SymbolicPlan {
    /// Number of size regions recorded for this structure.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Iterates over the recorded regions' classification summaries.
    pub fn region_summaries(&self) -> impl Iterator<Item = PlanSummary> + '_ {
        self.regions.values().map(RegionPlan::summary)
    }
}

/// A plan cache: compile a chain *structure* once, serve every request
/// that differs only in sizes by instantiating the cached symbolic
/// plan.
///
/// Keyed by (chain structure ⨯ operand properties ⨯ dimension-variable
/// pattern) at the outer level and by size *region* (the ordering
/// pattern of the bound dimensions) at the inner level. Instantiation
/// reproduces the concrete optimizer bit for bit — same cost, same
/// parenthesization, same kernel sequence — while skipping all pattern
/// matching and (for symbolically resolved cells) the candidate scan.
///
/// The cache is tied to one [`KernelRegistry`] and one
/// [`InferenceMode`]; the cost metric is the paper's FLOP count, the
/// one metric with an exact symbolic (polynomial) form.
///
/// # Example
///
/// ```
/// use gmc::InferenceMode;
/// use gmc_expr::{Dim, DimBindings, SymChain, SymFactor, SymOperand};
/// use gmc_kernels::KernelRegistry;
/// use gmc_plan::{PlanCache, PlanOutcome};
///
/// let registry = KernelRegistry::blas_lapack();
/// let mut cache = PlanCache::new(&registry, InferenceMode::Compositional);
///
/// let (n, k, m) = (Dim::var("n"), Dim::var("k"), Dim::var("m"));
/// let chain = SymChain::new(vec![
///     SymFactor::plain(SymOperand::new("A", n, k)),
///     SymFactor::plain(SymOperand::new("B", k, m)),
/// ])
/// .unwrap();
///
/// let b1 = DimBindings::new().with("n", 10).with("k", 20).with("m", 30);
/// let (sol, outcome) = cache.solve(&chain, &b1).unwrap();
/// assert_eq!(outcome, PlanOutcome::MissStructure);
/// assert_eq!(sol.kernel_names(), vec!["GEMM_NN"]);
///
/// // Same ordering pattern, different sizes: cached instantiate.
/// let b2 = DimBindings::new().with("n", 100).with("k", 200).with("m", 300);
/// let (sol, outcome) = cache.solve(&chain, &b2).unwrap();
/// assert_eq!(outcome, PlanOutcome::Hit);
/// assert_eq!(sol.flops(), 2.0 * 100.0 * 300.0 * 200.0);
/// ```
#[derive(Debug)]
pub struct PlanCache<'r> {
    registry: &'r KernelRegistry,
    inference: InferenceMode,
    plans: HashMap<StructureKey, SymbolicPlan>,
    stats: CacheStats,
    scratch: FlatTermScratch,
    workspace: PlanWorkspace,
}

impl<'r> PlanCache<'r> {
    /// Creates an empty cache over `registry` with the given inference
    /// mode.
    pub fn new(registry: &'r KernelRegistry, inference: InferenceMode) -> Self {
        PlanCache {
            registry,
            inference,
            plans: HashMap::new(),
            stats: CacheStats::default(),
            scratch: FlatTermScratch::new(),
            workspace: PlanWorkspace::default(),
        }
    }

    /// The inference mode this cache compiles under.
    pub fn inference(&self) -> InferenceMode {
        self.inference
    }

    /// Cumulative hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Number of distinct chain structures cached.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// The cached plan for a chain structure, if any.
    pub fn plan_for(&self, chain: &SymChain) -> Option<&SymbolicPlan> {
        self.plans.get(&structure_key(chain, self.inference))
    }

    /// The classification summary of the region serving `bindings`, if
    /// that region has been recorded.
    pub fn region_summary(&self, chain: &SymChain, bindings: &DimBindings) -> Option<PlanSummary> {
        let sizes = chain.bind_dims(bindings).ok()?;
        self.plans
            .get(&structure_key(chain, self.inference))?
            .regions
            .get(&region_signature(&sizes))
            .map(RegionPlan::summary)
    }

    /// Solves `chain` at `bindings`, through the cache.
    ///
    /// The returned solution is bit-identical (cost, parenthesization,
    /// kernel sequence) to `GmcOptimizer::new(registry,
    /// FlopCount).with_inference(mode).solve(&chain.bind(bindings)?)`.
    ///
    /// # Errors
    ///
    /// [`PlanError::Chain`] if the binding is incomplete or degenerate;
    /// [`PlanError::Solve`] if no kernel sequence computes the chain
    /// (the unsolvability is itself cached per region).
    pub fn solve(
        &mut self,
        chain: &SymChain,
        bindings: &DimBindings,
    ) -> Result<(GmcSolution<f64>, PlanOutcome), PlanError> {
        let concrete = chain.bind(bindings)?;
        let key = structure_key(chain, self.inference);
        let sig = region_signature(&concrete.sizes());

        let structure_known = self.plans.contains_key(&key);
        let plan = self.plans.entry(key).or_default();

        if let Some(region) = plan.regions.get(&sig) {
            self.stats.hits += 1;
            let solution = instantiate(
                self.registry,
                self.inference,
                region,
                &concrete,
                bindings,
                &mut self.scratch,
                &mut self.workspace,
            )?;
            return Ok((solution, PlanOutcome::Hit));
        }

        let (region, solution) = record_region(
            self.registry,
            self.inference,
            chain,
            &concrete,
            &mut self.scratch,
        );
        plan.regions.insert(sig, region);
        let outcome = if structure_known {
            self.stats.region_misses += 1;
            PlanOutcome::MissRegion
        } else {
            self.stats.structure_misses += 1;
            PlanOutcome::MissStructure
        };
        Ok((solution?, outcome))
    }
}
