//! The structure-keyed plan cache: concurrent, sharded, copy-on-write.
//!
//! # Concurrency architecture
//!
//! The cache is designed so the serving hot path (a cache **hit**) is a
//! pure read that many threads can take simultaneously:
//!
//! * Structures are **sharded** by the hash of their [`StructureKey`];
//!   each shard holds an immutable snapshot
//!   (`Arc<HashMap<StructureKey, Arc<SymbolicPlan>>>`) behind a
//!   many-reader lock that is only ever held for the pointer
//!   clone/swap, never across a solve.
//! * A hit clones the shard snapshot (one `Arc` bump), looks up the
//!   region plan, and instantiates it on a **thread-local** workspace
//!   (DP tables + pattern-matching scratch), so concurrent hits share
//!   no mutable state and allocate no fresh tables.
//! * Misses go through a per-shard **write mutex**: the miss records
//!   the region plan, rebuilds the shard map copy-on-write (structure
//!   entries are `Arc`-shared with the old snapshot; only the touched
//!   structure's region map is cloned) and swaps the snapshot in. A
//!   thread that lost the race to record the same region finds it
//!   present after acquiring the mutex and serves it as a hit — the
//!   recording is coalesced, never duplicated, and no update is lost.

use crate::key::{region_signature, structure_key, StructureKey};
use crate::plan::{instantiate, record_region, PlanSummary, PlanWorkspace, RegionPlan};
use gmc::{GmcError, GmcSolution, InferenceMode};
use gmc_expr::{Dim, DimBindings, SymChain, SymChainError};
use gmc_kernels::{FlatTermScratch, KernelRegistry};
use std::cell::RefCell;
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// How a request was served by the cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlanOutcome {
    /// First request for this chain structure: a full symbolic solve
    /// was recorded.
    MissStructure,
    /// Known structure, new size region: a new region plan was recorded.
    MissRegion,
    /// Cached region plan instantiated — the fast path.
    Hit,
}

impl PlanOutcome {
    /// Whether the request was served from a cached region plan.
    pub fn is_hit(&self) -> bool {
        matches!(self, PlanOutcome::Hit)
    }

    /// A stable machine-readable label (the serving wire format and
    /// the replay harness both key on these).
    pub fn label(&self) -> &'static str {
        match self {
            PlanOutcome::MissStructure => "miss_structure",
            PlanOutcome::MissRegion => "miss_region",
            PlanOutcome::Hit => "hit",
        }
    }
}

impl fmt::Display for PlanOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanOutcome::MissStructure => write!(f, "miss (new structure)"),
            PlanOutcome::MissRegion => write!(f, "miss (new region)"),
            PlanOutcome::Hit => write!(f, "hit"),
        }
    }
}

/// Cumulative cache counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests that recorded a brand-new structure plan.
    pub structure_misses: u64,
    /// Requests that recorded a new region for a known structure.
    pub region_misses: u64,
    /// Requests served by instantiating a cached region plan.
    pub hits: u64,
}

impl CacheStats {
    /// Total number of requests observed.
    pub fn requests(&self) -> u64 {
        self.structure_misses + self.region_misses + self.hits
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} requests: {} hits, {} region misses, {} structure misses",
            self.requests(),
            self.hits,
            self.region_misses,
            self.structure_misses
        )
    }
}

/// Per-shard cache introspection, from [`PlanCache::shard_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Shard index (0-based, stable for the life of the cache).
    pub shard: usize,
    /// Distinct chain structures currently cached in this shard.
    pub structures: usize,
    /// Total size regions recorded across the shard's structures.
    pub regions: usize,
    /// Requests served from a cached region.
    pub hits: u64,
    /// Requests that recorded a new region for a known structure.
    pub region_misses: u64,
    /// Requests that recorded a brand-new structure.
    pub structure_misses: u64,
    /// Misses that lost the recording race and were served as hits
    /// after waiting on the shard's write mutex.
    pub coalesced_waiters: u64,
    /// Copy-on-write snapshot publications (cache writes).
    pub snapshot_swaps: u64,
}

/// Nanosecond timing of one [`PlanCache::solve_traced`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SolveTiming {
    /// Time locating the cached region: binding, structure keying,
    /// snapshot reads and (on the slow path) the write-mutex wait.
    pub lookup_ns: u64,
    /// Time instantiating the cached plan or recording a new one.
    pub work_ns: u64,
}

/// Errors surfaced by [`PlanCache::solve`].
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum PlanError {
    /// The chain failed to bind (unbound variable, zero size, …).
    Chain(SymChainError),
    /// No kernel sequence computes the chain (same condition as the
    /// concrete optimizer's error).
    Solve(GmcError),
    /// The chain is too large for exhaustive region pre-enumeration.
    Enumeration(String),
    /// A plan-store snapshot failed to save, load or validate.
    Store(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Chain(e) => e.fmt(f),
            PlanError::Solve(e) => e.fmt(f),
            PlanError::Enumeration(msg) => write!(f, "region pre-enumeration: {msg}"),
            PlanError::Store(msg) => write!(f, "plan store: {msg}"),
        }
    }
}

impl std::error::Error for PlanError {}

impl From<SymChainError> for PlanError {
    fn from(e: SymChainError) -> Self {
        PlanError::Chain(e)
    }
}

impl From<GmcError> for PlanError {
    fn from(e: GmcError) -> Self {
        PlanError::Solve(e)
    }
}

impl From<gmc_expr::DimError> for PlanError {
    fn from(e: gmc_expr::DimError) -> Self {
        PlanError::Chain(SymChainError::from(e))
    }
}

/// Per-structure request counters, `Arc`-shared across every
/// copy-on-write clone of the owning [`SymbolicPlan`] so counts
/// survive snapshot swaps.
#[derive(Debug, Default)]
pub(crate) struct StructCounters {
    pub(crate) hits: AtomicU64,
    pub(crate) misses: AtomicU64,
}

/// A symbolic plan for one chain structure: one recorded [`RegionPlan`]
/// per size region encountered so far. Region plans are `Arc`-shared
/// between cache snapshots, so cloning a `SymbolicPlan` is cheap.
#[derive(Clone, Debug, Default)]
pub struct SymbolicPlan {
    pub(crate) regions: HashMap<Vec<i8>, Arc<RegionPlan>>,
    pub(crate) counters: Arc<StructCounters>,
}

impl SymbolicPlan {
    /// Number of size regions recorded for this structure.
    pub fn region_count(&self) -> usize {
        self.regions.len()
    }

    /// Requests served from this structure's cached regions.
    pub fn hits(&self) -> u64 {
        self.counters.hits.load(Ordering::Relaxed)
    }

    /// Requests that recorded a new region for this structure.
    pub fn misses(&self) -> u64 {
        self.counters.misses.load(Ordering::Relaxed)
    }

    /// Iterates over the recorded regions' classification summaries.
    pub fn region_summaries(&self) -> impl Iterator<Item = PlanSummary> + '_ {
        self.regions.values().map(|r| r.summary())
    }
}

/// One shard: an immutable snapshot swapped under a write mutex, plus
/// its own request counters (summed for [`PlanCache::stats`], exposed
/// individually through [`PlanCache::shard_stats`]).
#[derive(Debug, Default)]
struct Shard {
    /// The current snapshot. The lock is held only to clone or swap the
    /// `Arc`, never across a record or instantiate.
    map: RwLock<Arc<StructMap>>,
    /// Serializes recording within the shard, so concurrent misses on
    /// the same region coalesce into one symbolic solve.
    write: Mutex<()>,
    hits: AtomicU64,
    region_misses: AtomicU64,
    structure_misses: AtomicU64,
    /// Lost-race misses served as hits after waiting on `write`.
    coalesced_waiters: AtomicU64,
    /// Copy-on-write snapshot publications.
    snapshot_swaps: AtomicU64,
}

type StructMap = HashMap<StructureKey, Arc<SymbolicPlan>>;

use crate::sync::{mutex_lock, read_lock, write_lock};

impl Shard {
    fn snapshot(&self) -> Arc<StructMap> {
        Arc::clone(&read_lock(&self.map))
    }

    /// Publishes `region` under `(key, sig)` copy-on-write, returning
    /// the structure's (snapshot-surviving) counters. Caller must hold
    /// the shard's write mutex.
    fn publish(
        &self,
        key: StructureKey,
        sig: Vec<i8>,
        region: Arc<RegionPlan>,
    ) -> Arc<StructCounters> {
        self.snapshot_swaps.fetch_add(1, Ordering::Relaxed);
        let current = self.snapshot();
        let mut next: StructMap = (*current).clone();
        let plan = Arc::make_mut(next.entry(key).or_default());
        plan.regions.insert(sig, region);
        let counters = Arc::clone(&plan.counters);
        *write_lock(&self.map) = Arc::new(next);
        counters
    }
}

thread_local! {
    /// Per-thread solve state: pattern-matching scratch and the DP
    /// workspace. Thread-local rather than cache-held so concurrent
    /// workers instantiate allocation-free without sharing any mutable
    /// state (and without a lock on the hot path).
    static SCRATCH: RefCell<(FlatTermScratch, PlanWorkspace)> =
        RefCell::new((FlatTermScratch::new(), PlanWorkspace::default()));
}

/// Splits `started → lookup_done → now` into a [`SolveTiming`]; both
/// `None` (the untraced path) yields zeros.
fn timing(started: Option<Instant>, lookup_done: Option<Instant>) -> SolveTiming {
    match (started, lookup_done) {
        (Some(started), Some(lookup_done)) => SolveTiming {
            lookup_ns: saturating_ns(lookup_done.duration_since(started)),
            work_ns: saturating_ns(lookup_done.elapsed()),
        },
        _ => SolveTiming::default(),
    }
}

/// A `Duration` as whole nanoseconds, saturating at `u64::MAX`.
fn saturating_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn with_scratch<R>(f: impl FnOnce(&mut FlatTermScratch, &mut PlanWorkspace) -> R) -> R {
    SCRATCH.with(|cell| {
        let mut guard = cell.borrow_mut();
        let (scratch, workspace) = &mut *guard;
        f(scratch, workspace)
    })
}

/// Number of shards. A fixed power of two: enough to keep writers from
/// serializing behind one mutex, small enough that full-cache
/// operations (snapshots, len) stay trivial.
const SHARDS: usize = 16;

/// Hard cap on the number of representative bindings
/// [`PlanCache::pre_enumerate_regions`] will try.
const MAX_ENUMERATION_ASSIGNMENTS: usize = 20_000;

/// Largest chain length eligible for region pre-enumeration.
const MAX_ENUMERATION_FACTORS: usize = 8;

/// A plan cache: compile a chain *structure* once, serve every request
/// that differs only in sizes by instantiating the cached symbolic
/// plan. Safe to share across threads (`&self` everywhere): hits are
/// pure reads of an immutable snapshot, misses record behind per-shard
/// write mutexes (see the module docs for the architecture).
///
/// Keyed by (chain structure ⨯ operand properties ⨯ dimension-variable
/// pattern) at the outer level and by size *region* (the ordering
/// pattern of the bound dimensions) at the inner level. Instantiation
/// reproduces the concrete optimizer bit for bit — same cost, same
/// parenthesization, same kernel sequence — while skipping all pattern
/// matching and (for symbolically resolved cells) the candidate scan.
///
/// The cache is tied to one [`KernelRegistry`] and one
/// [`InferenceMode`]; the cost metric is the paper's FLOP count, the
/// one metric with an exact symbolic (polynomial) form.
///
/// # Example
///
/// ```
/// use gmc::InferenceMode;
/// use gmc_expr::{Dim, DimBindings, SymChain, SymFactor, SymOperand};
/// use gmc_kernels::KernelRegistry;
/// use gmc_plan::{PlanCache, PlanOutcome};
/// use std::sync::Arc;
///
/// let registry = Arc::new(KernelRegistry::blas_lapack());
/// let cache = PlanCache::new(registry, InferenceMode::Compositional);
///
/// let (n, k, m) = (Dim::var("n"), Dim::var("k"), Dim::var("m"));
/// let chain = SymChain::new(vec![
///     SymFactor::plain(SymOperand::new("A", n, k)),
///     SymFactor::plain(SymOperand::new("B", k, m)),
/// ])
/// .unwrap();
///
/// let b1 = DimBindings::new().with("n", 10).with("k", 20).with("m", 30);
/// let (sol, outcome) = cache.solve(&chain, &b1).unwrap();
/// assert_eq!(outcome, PlanOutcome::MissStructure);
/// assert_eq!(sol.kernel_names(), vec!["GEMM_NN"]);
///
/// // Same ordering pattern, different sizes: cached instantiate.
/// let b2 = DimBindings::new().with("n", 100).with("k", 200).with("m", 300);
/// let (sol, outcome) = cache.solve(&chain, &b2).unwrap();
/// assert_eq!(outcome, PlanOutcome::Hit);
/// assert_eq!(sol.flops(), 2.0 * 100.0 * 300.0 * 200.0);
/// ```
#[derive(Debug)]
pub struct PlanCache {
    registry: Arc<KernelRegistry>,
    inference: InferenceMode,
    shards: Vec<Shard>,
}

impl PlanCache {
    /// Creates an empty cache over `registry` with the given inference
    /// mode.
    pub fn new(registry: Arc<KernelRegistry>, inference: InferenceMode) -> Self {
        PlanCache {
            registry,
            inference,
            shards: (0..SHARDS).map(|_| Shard::default()).collect(),
        }
    }

    /// The inference mode this cache compiles under.
    pub fn inference(&self) -> InferenceMode {
        self.inference
    }

    /// The kernel registry this cache compiles against.
    pub fn registry(&self) -> &Arc<KernelRegistry> {
        &self.registry
    }

    /// Cumulative hit/miss counters (summed over the shards).
    pub fn stats(&self) -> CacheStats {
        let mut stats = CacheStats::default();
        for shard in &self.shards {
            stats.structure_misses += shard.structure_misses.load(Ordering::Relaxed);
            stats.region_misses += shard.region_misses.load(Ordering::Relaxed);
            stats.hits += shard.hits.load(Ordering::Relaxed);
        }
        stats
    }

    /// Per-shard introspection: request counters plus current structure
    /// and region counts, one entry per shard in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, s)| {
                let snap = s.snapshot();
                ShardStats {
                    shard,
                    structures: snap.len(),
                    regions: snap.values().map(|p| p.region_count()).sum(),
                    hits: s.hits.load(Ordering::Relaxed),
                    region_misses: s.region_misses.load(Ordering::Relaxed),
                    structure_misses: s.structure_misses.load(Ordering::Relaxed),
                    coalesced_waiters: s.coalesced_waiters.load(Ordering::Relaxed),
                    snapshot_swaps: s.snapshot_swaps.load(Ordering::Relaxed),
                }
            })
            .collect()
    }

    /// Number of distinct chain structures cached.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.snapshot().len()).sum()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.snapshot().is_empty())
    }

    fn shard_for(&self, key: &StructureKey) -> &Shard {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        &self.shards[(hasher.finish() as usize) % SHARDS]
    }

    /// The cached plan for a chain structure, if any (a snapshot:
    /// regions recorded later do not appear in it).
    pub fn plan_for(&self, chain: &SymChain) -> Option<Arc<SymbolicPlan>> {
        let key = structure_key(chain, self.inference);
        self.shard_for(&key).snapshot().get(&key).cloned()
    }

    /// Every cached structure, as `(key, plan)` snapshots.
    pub(crate) fn structures(&self) -> Vec<(StructureKey, Arc<SymbolicPlan>)> {
        let mut out = Vec::new();
        for shard in &self.shards {
            let snap = shard.snapshot();
            out.extend(snap.iter().map(|(k, p)| (k.clone(), Arc::clone(p))));
        }
        out
    }

    /// Publishes a deserialized region plan (plan-store loading).
    /// Returns whether the region was actually adopted (`false` if it
    /// was already present).
    pub(crate) fn adopt_region(
        &self,
        key: StructureKey,
        sig: Vec<i8>,
        region: Arc<RegionPlan>,
    ) -> bool {
        let shard = self.shard_for(&key);
        let _guard = mutex_lock(&shard.write);
        if shard
            .snapshot()
            .get(&key)
            .is_some_and(|p| p.regions.contains_key(&sig))
        {
            return false;
        }
        shard.publish(key, sig, region);
        true
    }

    /// The classification summary of the region serving `bindings`, if
    /// that region has been recorded.
    pub fn region_summary(&self, chain: &SymChain, bindings: &DimBindings) -> Option<PlanSummary> {
        let sizes = chain.bind_dims(bindings).ok()?;
        self.plan_for(chain)?
            .regions
            .get(&region_signature(&sizes))
            .map(|r| r.summary())
    }

    /// Solves `chain` at `bindings`, through the cache.
    ///
    /// The returned solution is bit-identical (cost, parenthesization,
    /// kernel sequence) to `GmcOptimizer::new(&registry,
    /// FlopCount).with_inference(mode).solve(&chain.bind(bindings)?)`.
    ///
    /// Takes `&self`: any number of threads may call this
    /// concurrently. Hits never block; concurrent misses on one shard
    /// serialize their recordings, and a thread that finds its region
    /// already recorded when its turn comes serves it as a hit instead
    /// of recording twice.
    ///
    /// # Errors
    ///
    /// [`PlanError::Chain`] if the binding is incomplete or degenerate;
    /// [`PlanError::Solve`] if no kernel sequence computes the chain
    /// (the unsolvability is itself cached per region).
    pub fn solve(
        &self,
        chain: &SymChain,
        bindings: &DimBindings,
    ) -> Result<(GmcSolution<f64>, PlanOutcome), PlanError> {
        self.solve_impl(chain, bindings, None)
            .map(|(solution, outcome, _)| (solution, outcome))
    }

    /// Like [`PlanCache::solve`], additionally reporting where the call
    /// spent its time ([`SolveTiming`]). Costs two extra clock reads
    /// over the untraced path; the untraced path itself pays only a
    /// branch.
    pub fn solve_traced(
        &self,
        chain: &SymChain,
        bindings: &DimBindings,
    ) -> Result<(GmcSolution<f64>, PlanOutcome, SolveTiming), PlanError> {
        self.solve_impl(chain, bindings, Some(Instant::now()))
    }

    fn solve_impl(
        &self,
        chain: &SymChain,
        bindings: &DimBindings,
        started: Option<Instant>,
    ) -> Result<(GmcSolution<f64>, PlanOutcome, SolveTiming), PlanError> {
        let concrete = chain.bind(bindings)?;
        let key = structure_key(chain, self.inference);
        let sig = region_signature(&concrete.sizes());
        let shard = self.shard_for(&key);

        // Fast path: hit on the immutable snapshot — a pure read.
        let snapshot = shard.snapshot();
        if let Some(plan) = snapshot.get(&key) {
            if let Some(region) = plan.regions.get(&sig) {
                shard.hits.fetch_add(1, Ordering::Relaxed);
                plan.counters.hits.fetch_add(1, Ordering::Relaxed);
                let lookup_done = started.map(|_| Instant::now());
                let solution = self.instantiate_region(region, chain, &concrete, bindings)?;
                return Ok((solution, PlanOutcome::Hit, timing(started, lookup_done)));
            }
        }
        drop(snapshot);

        // Slow path: record behind the shard's write mutex.
        let guard = mutex_lock(&shard.write);
        let snapshot = shard.snapshot();
        let structure_known = snapshot.contains_key(&key);
        if let Some(plan) = snapshot.get(&key) {
            if let Some(region) = plan.regions.get(&sig) {
                // Another thread recorded this region while we waited:
                // the recording coalesced, serve it as a hit.
                drop(guard);
                shard.hits.fetch_add(1, Ordering::Relaxed);
                shard.coalesced_waiters.fetch_add(1, Ordering::Relaxed);
                plan.counters.hits.fetch_add(1, Ordering::Relaxed);
                let lookup_done = started.map(|_| Instant::now());
                let solution = self.instantiate_region(region, chain, &concrete, bindings)?;
                return Ok((solution, PlanOutcome::Hit, timing(started, lookup_done)));
            }
        }

        let lookup_done = started.map(|_| Instant::now());
        let (region, solution) = with_scratch(|scratch, _| {
            record_region(&self.registry, self.inference, chain, &concrete, scratch)
        });
        let counters = shard.publish(key, sig, Arc::new(region));
        counters.misses.fetch_add(1, Ordering::Relaxed);
        drop(guard);
        let outcome = if structure_known {
            shard.region_misses.fetch_add(1, Ordering::Relaxed);
            PlanOutcome::MissRegion
        } else {
            shard.structure_misses.fetch_add(1, Ordering::Relaxed);
            PlanOutcome::MissStructure
        };
        Ok((solution?, outcome, timing(started, lookup_done)))
    }

    fn instantiate_region(
        &self,
        region: &RegionPlan,
        sym: &SymChain,
        concrete: &gmc_expr::Chain,
        bindings: &DimBindings,
    ) -> Result<GmcSolution<f64>, GmcError> {
        // Structure keys canonicalize variable *names*, so the request
        // chain may spell the same structure with different variables
        // than the chain this region was recorded from — but the
        // cached formulas reference the recording chain's variables.
        // Key equality guarantees the two first-occurrence variable
        // sequences line up positionally, so translate the bindings
        // when (and only when) the variables differ.
        let request_vars = sym.vars();
        let translated = if request_vars == region.vars {
            None
        } else {
            debug_assert_eq!(request_vars.len(), region.vars.len());
            let mut b = DimBindings::new();
            for (recorded, requested) in region.vars.iter().zip(&request_vars) {
                let value = bindings
                    .get(*requested)
                    .expect("the request chain bound successfully, so its variables are bound");
                b.set_var(*recorded, value);
            }
            Some(b)
        };
        let eval_bindings = translated.as_ref().unwrap_or(bindings);
        with_scratch(|scratch, workspace| {
            instantiate(
                &self.registry,
                self.inference,
                region,
                concrete,
                eval_bindings,
                scratch,
                workspace,
            )
        })
    }

    /// Records a plan for **every** size region `chain` can reach, so
    /// each subsequent request for this structure is a cache hit.
    ///
    /// Every structural branch of the optimizer depends only on order
    /// comparisons between bound boundary dimensions (and against 1),
    /// so regions are enumerated by sweeping the dimension variables
    /// over a small set of representative values that realizes every
    /// ordering pattern — every weak ordering of the variables
    /// interleaved with the chain's constant dimensions. Recording at
    /// representative (small) sizes is sound because plans are
    /// region-invariant: a plan recorded at sizes `(2, 3)` serves
    /// `(2000, 3000)` identically.
    ///
    /// Returns the number of regions newly recorded (regions already
    /// cached, including unsolvable ones, are skipped).
    ///
    /// # Errors
    ///
    /// [`PlanError::Enumeration`] if the chain is too large to
    /// enumerate (more than 8 factors, or a variable/constant pattern
    /// needing more than 20 000 representative bindings — the
    /// follow-up literature's observation that few parenthesisations
    /// are ever optimal is what makes small chains enumerable).
    pub fn pre_enumerate_regions(&self, chain: &SymChain) -> Result<usize, PlanError> {
        if chain.len() > MAX_ENUMERATION_FACTORS {
            return Err(PlanError::Enumeration(format!(
                "chain has {} factors, pre-enumeration is limited to {}",
                chain.len(),
                MAX_ENUMERATION_FACTORS
            )));
        }
        let vars = chain.vars();
        let consts: BTreeSet<usize> = chain
            .dims()
            .iter()
            .filter_map(Dim::as_const)
            .filter(|&c| c > 0)
            .collect();

        // Representative values: enough below-, between- and
        // above-constant slots that any weak ordering of the variables
        // against each other, the constants and 1 is realizable.
        let mut values: BTreeSet<usize> = (1..=vars.len() + 1).collect();
        for &c in &consts {
            for v in c.saturating_sub(vars.len()).max(1)..=c + vars.len() {
                values.insert(v);
            }
        }
        let values: Vec<usize> = values.into_iter().collect();

        let total = values
            .len()
            .checked_pow(vars.len() as u32)
            .filter(|&t| t <= MAX_ENUMERATION_ASSIGNMENTS)
            .ok_or_else(|| {
                PlanError::Enumeration(format!(
                    "{} variables over {} representative values exceed the {} binding limit",
                    vars.len(),
                    values.len(),
                    MAX_ENUMERATION_ASSIGNMENTS
                ))
            })?;

        let key = structure_key(chain, self.inference);
        let shard = self.shard_for(&key);
        let mut recorded = 0usize;
        let mut seen: BTreeSet<Vec<i8>> = BTreeSet::new();
        // Odometer over value indices, one digit per variable.
        let mut digits = vec![0usize; vars.len()];
        for _ in 0..total.max(1) {
            let mut bindings = DimBindings::new();
            for (var, &d) in vars.iter().zip(&digits) {
                bindings.set_var(*var, values[d]);
            }
            let sizes = chain.bind_dims(&bindings)?;
            let sig = region_signature(&sizes);
            if seen.insert(sig.clone()) {
                let guard = mutex_lock(&shard.write);
                let known = shard
                    .snapshot()
                    .get(&key)
                    .is_some_and(|p| p.regions.contains_key(&sig));
                if !known {
                    let concrete = chain.bind(&bindings)?;
                    // Unsolvable regions are recorded too: the cached
                    // plan *is* the (negative) answer.
                    let (region, _solution) = with_scratch(|scratch, _| {
                        record_region(&self.registry, self.inference, chain, &concrete, scratch)
                    });
                    shard.publish(key.clone(), sig, Arc::new(region));
                    recorded += 1;
                }
                drop(guard);
            }
            // Advance the odometer.
            for d in digits.iter_mut() {
                *d += 1;
                if *d < values.len() {
                    break;
                }
                *d = 0;
            }
        }
        Ok(recorded)
    }
}
