//! Cache keys: chain structure and size regions.
//!
//! The plan cache is keyed at two levels:
//!
//! 1. **Structure** ([`StructureKey`]): the shape of the problem modulo
//!    operand names and concrete variable values — per factor the unary
//!    operator, the property set, the dimension pattern (constants kept,
//!    variables renamed to first-occurrence indices) and the operand
//!    *aliasing* pattern (which factors share an operand, which decides
//!    e.g. SYRK applicability on `AᵀA` but not `AᵀB`).
//! 2. **Region** ([`region_signature`]): the full ordering pattern of
//!    the bound boundary dimensions (pairwise comparisons plus
//!    comparisons against 1). Every shape question the pipeline asks —
//!    squareness, the SPD rank condition `rows ≥ cols`, vector-ness —
//!    is an order comparison between boundary dimensions (see
//!    `gmc_analysis::symbolic`), so within one region the candidate
//!    kernel sets, inferred property sets and all structural branches
//!    of the optimizer are invariant; only the numeric cost values
//!    change.

use gmc::InferenceMode;
use gmc_expr::{Dim, DimVar, PropertySet, SymChain};
use std::collections::HashMap;

/// A canonical dimension in a structure key: a concrete constant or the
/// first-occurrence index of a variable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub(crate) enum KeyDim {
    Const(usize),
    Var(u16),
}

/// Per-factor structural signature.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub(crate) struct FactorSig {
    pub(crate) unary: u8,
    pub(crate) rows: KeyDim,
    pub(crate) cols: KeyDim,
    pub(crate) props: u16,
    /// First-occurrence index of the factor's operand (same index ⇔
    /// same operand appears again, e.g. the two `A`s of `AᵀA`).
    pub(crate) operand_class: u16,
}

/// The structure-level cache key of a symbolic chain.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct StructureKey {
    pub(crate) deep_inference: bool,
    pub(crate) factors: Vec<FactorSig>,
}

/// The bitset encoding of a property set — also the persisted form in
/// the plan store, so key and snapshot can never diverge.
pub(crate) fn props_bits(ps: PropertySet) -> u16 {
    ps.iter().fold(0u16, |acc, p| acc | (1 << (p as u16)))
}

/// Computes the structure key of `chain` under `mode`.
pub fn structure_key(chain: &SymChain, mode: InferenceMode) -> StructureKey {
    let mut var_ids: HashMap<DimVar, u16> = HashMap::new();
    let mut canon = |d: Dim| match d {
        Dim::Const(v) => KeyDim::Const(v),
        Dim::Var(v) => {
            let next = var_ids.len() as u16;
            KeyDim::Var(*var_ids.entry(v).or_insert(next))
        }
    };
    let mut operand_ids: HashMap<&str, u16> = HashMap::new();
    let factors = chain
        .factors()
        .iter()
        .map(|f| {
            let shape = f.operand().shape();
            let next = operand_ids.len() as u16;
            let operand_class = *operand_ids.entry(f.operand().name()).or_insert(next);
            FactorSig {
                unary: f.op() as u8,
                rows: canon(shape.rows()),
                cols: canon(shape.cols()),
                props: props_bits(f.operand().properties()),
                operand_class,
            }
        })
        .collect();
    StructureKey {
        deep_inference: mode == InferenceMode::Deep,
        factors,
    }
}

/// Counts the shape questions about `chain`'s sub-results that are
/// *undecidable* from the dimension pattern alone — the questions
/// (squareness, vector-ness, the SPD rank condition, evaluated in the
/// three-valued logic of [`gmc_analysis::symbolic`]) that the region
/// signature exists to answer.
///
/// Zero means every structural branch of the optimizer is already
/// decided symbolically and a single region covers all bindings; each
/// undecided question is a way bindings can split into distinct
/// regions. The CLI reports this as `regions split on ≤ N shape
/// questions`.
pub fn undecided_shape_questions(chain: &SymChain) -> usize {
    use gmc_analysis::symbolic::{is_square, is_vector, rank_condition};
    let mut undecided = 0;
    for i in 0..chain.len() {
        for j in i..chain.len() {
            let s = chain.sub_shape(i, j);
            for answer in [is_square(s), is_vector(s), rank_condition(s)] {
                if !answer.is_decided() {
                    undecided += 1;
                }
            }
        }
    }
    undecided
}

/// The region signature of a concrete boundary-dimension vector: the
/// ordering of every dimension against 1 followed by every pairwise
/// ordering, encoded as `-1 / 0 / 1` per comparison.
pub fn region_signature(sizes: &[usize]) -> Vec<i8> {
    let cmp = |a: usize, b: usize| -> i8 {
        match a.cmp(&b) {
            std::cmp::Ordering::Less => -1,
            std::cmp::Ordering::Equal => 0,
            std::cmp::Ordering::Greater => 1,
        }
    };
    let mut sig = Vec::with_capacity(sizes.len() * (sizes.len() + 1) / 2);
    for &s in sizes {
        sig.push(cmp(s, 1));
    }
    for (i, &a) in sizes.iter().enumerate() {
        for &b in &sizes[i + 1..] {
            sig.push(cmp(a, b));
        }
    }
    sig
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_expr::{SymFactor, SymOperand, UnaryOp};

    fn chain_of(names: [&str; 2], dims: [Dim; 3]) -> SymChain {
        let a = SymOperand::new(names[0], dims[0], dims[1]);
        let b = SymOperand::new(names[1], dims[1], dims[2]);
        SymChain::new(vec![SymFactor::plain(a), SymFactor::plain(b)]).unwrap()
    }

    #[test]
    fn key_is_name_independent_but_alias_sensitive() {
        let (n, m, k) = (Dim::var("key_n"), Dim::var("key_m"), Dim::var("key_k"));
        let c1 = chain_of(["A", "B"], [n, m, k]);
        let c2 = chain_of(["P", "Q"], [n, m, k]);
        assert_eq!(
            structure_key(&c1, InferenceMode::Compositional),
            structure_key(&c2, InferenceMode::Compositional)
        );
        // Same name twice (AᵀA-style aliasing) differs from two
        // distinct operands.
        let a = SymOperand::new("A", m, n);
        let aliased = SymChain::new(vec![
            SymFactor::new(a.clone(), UnaryOp::Transpose),
            SymFactor::plain(a),
        ])
        .unwrap();
        let b = SymOperand::new("B", m, n);
        let distinct = SymChain::new(vec![
            SymFactor::new(SymOperand::new("A", m, n), UnaryOp::Transpose),
            SymFactor::plain(b),
        ])
        .unwrap();
        assert_ne!(
            structure_key(&aliased, InferenceMode::Compositional),
            structure_key(&distinct, InferenceMode::Compositional)
        );
    }

    #[test]
    fn key_renames_vars_canonically() {
        let c1 = chain_of(
            ["A", "B"],
            [Dim::var("key_x"), Dim::var("key_y"), Dim::var("key_x")],
        );
        let c2 = chain_of(
            ["A", "B"],
            [Dim::var("key_p"), Dim::var("key_q"), Dim::var("key_p")],
        );
        let c3 = chain_of(
            ["A", "B"],
            [Dim::var("key_p"), Dim::var("key_q"), Dim::var("key_q")],
        );
        let mode = InferenceMode::Compositional;
        assert_eq!(structure_key(&c1, mode), structure_key(&c2, mode));
        assert_ne!(structure_key(&c1, mode), structure_key(&c3, mode));
        assert_ne!(
            structure_key(&c1, mode),
            structure_key(&c1, InferenceMode::Deep)
        );
    }

    #[test]
    fn undecided_questions_reflect_dimension_pattern() {
        // Fully concrete chain: everything decided, one region.
        let c = chain_of(["A", "B"], [Dim::Const(4), Dim::Const(5), Dim::Const(6)]);
        assert_eq!(undecided_shape_questions(&c), 0);
        // Distinct variables leave squareness/vector-ness/rank open.
        let (n, m, k) = (Dim::var("uq_n"), Dim::var("uq_m"), Dim::var("uq_k"));
        let c = chain_of(["A", "B"], [n, m, k]);
        assert!(undecided_shape_questions(&c) > 0);
        // A structurally square chain over one variable decides
        // squareness and rank, but vector-ness still depends on whether
        // the variable binds to 1.
        let sq = chain_of(["A", "B"], [n, n, n]);
        assert!(undecided_shape_questions(&sq) < undecided_shape_questions(&c));
    }

    #[test]
    fn region_signature_separates_orderings() {
        let a = region_signature(&[10, 20, 30]);
        let b = region_signature(&[100, 200, 300]);
        let c = region_signature(&[30, 20, 10]);
        let d = region_signature(&[1, 20, 30]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
        // Equal values vs distinct values differ.
        assert_ne!(region_signature(&[5, 5]), region_signature(&[5, 6]));
    }
}
