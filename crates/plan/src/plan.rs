//! Region plans: the symbolic solve (recording) and the bind-time
//! instantiation that replays it at concrete sizes.
//!
//! # How equivalence with the concrete optimizer is guaranteed
//!
//! Within one size region (see [`crate::key`]) the concrete optimizer's
//! *structural* behaviour is invariant: which kernels match each
//! sub-product, which property sets the temporaries carry, which splits
//! are computable. Only the numeric cost values change with the
//! binding. The recorder therefore runs the concrete DP once per
//! region, capturing per cell the full candidate set `(split, kernel,
//! FLOP formula)`; instantiation re-ranks those candidates with the
//! exact per-kernel FLOP formulas (bit-identical to
//! [`gmc_kernels::KernelOp::flops`]) under the *same* two-stage
//! selection the optimizer uses (per split: streaming min by cost, then
//! specificity, then registration order; across splits: strict
//! improvement, earliest split wins ties). The result is bit-identical
//! to a from-scratch concrete solve.
//!
//! On top of that, cells are classified:
//!
//! * **Resolved** — one candidate's cost *polynomial* dominates every
//!   alternative on the positive orthant (with ties broken the same way
//!   the optimizer breaks them), so the decision is binding-independent
//!   and instantiation skips the candidate scan entirely.
//! * **Deferred** — polynomially ambiguous; candidates are re-ranked
//!   numerically at bind time.
//! * **Dynamic** — a descendant's property set is split-dependent
//!   (possible under compositional inference), so the cached candidate
//!   set cannot be trusted; the cell is re-matched live at bind time.

use gmc::{GmcError, GmcSolution, InferenceMode, Step};
use gmc_analysis::infer_properties;
use gmc_expr::{Chain, CostPoly, DimBindings, Expr, Operand, PropertySet, SymChain, SymShape};
use gmc_kernels::{FlatTermScratch, FlopFormula, KernelOp, KernelRegistry};
use gmc_pattern::{Bindings, Var};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::fmt;

const X: Var = Var::new(0);
const Y: Var = Var::new(1);

/// Where a kernel operand comes from when re-instantiating a cached
/// candidate: a chain factor or a DP-cell temporary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum OperandRef {
    Factor(usize),
    Temp(usize, usize),
}

/// One cached kernel candidate of a DP cell.
#[derive(Clone, Debug)]
pub(crate) struct Candidate {
    pub(crate) k: usize,
    pub(crate) kernel_idx: usize,
    pub(crate) specificity: u8,
    pub(crate) formula: FlopFormula,
    pub(crate) op_poly: CostPoly,
    pub(crate) total_poly: Option<CostPoly>,
    pub(crate) var_binds: Vec<(Var, OperandRef)>,
}

/// How a deferred cell's temporary gets its property set at bind time.
///
/// Within one size region the child expressions of every candidate
/// split are invariant (a deferred cell has no unstable descendant —
/// those would have made it [`CellPlan::Dynamic`]), so the inference
/// result per split is region-invariant and recorded once; the old
/// implementation re-ran winner-only property inference on every cache
/// hit instead.
#[derive(Clone, Debug)]
pub(crate) enum DeferredProps {
    /// Every candidate split infers the same property set.
    Stable(PropertySet),
    /// Property set by candidate split `k` (compositional inference
    /// with split-dependent winner properties).
    PerSplit(Vec<(usize, PropertySet)>),
}

impl DeferredProps {
    fn for_split(&self, k: usize) -> PropertySet {
        match self {
            DeferredProps::Stable(p) => *p,
            DeferredProps::PerSplit(by_split) => {
                by_split
                    .iter()
                    .find(|(split, _)| *split == k)
                    .expect("winner split is a recorded candidate split")
                    .1
            }
        }
    }
}

/// The cached decision state of one DP cell.
#[derive(Clone, Debug)]
pub(crate) enum CellPlan {
    /// Diagonal cell (a chain factor).
    Leaf,
    /// No split of this sub-chain is kernel-computable (invariant
    /// within the region).
    Unsolvable,
    /// The winning split and kernel are binding-independent.
    Resolved {
        cand: Box<Candidate>,
        props: PropertySet,
    },
    /// Candidates are re-ranked numerically at bind time; the
    /// temporary's properties come from the recorded per-split results.
    Deferred {
        cands: Vec<Candidate>,
        props: DeferredProps,
    },
    /// Re-matched live at bind time (split-dependent descendant
    /// properties under compositional inference).
    Dynamic,
}

/// A recorded plan for one size region of one chain structure.
#[derive(Debug)]
pub struct RegionPlan {
    pub(crate) n: usize,
    pub(crate) cells: Vec<CellPlan>,
    /// Pre-materialized temporary names `T<i>_<j>` per cell, so a cache
    /// hit clones instead of re-formatting each destination name.
    pub(crate) temp_names: Vec<String>,
    /// The *recording* chain's distinct dimension variables in
    /// first-occurrence order. Structure keys canonicalize variable
    /// names, so a request chain may use different names for the same
    /// structure; its bindings are translated onto these variables
    /// positionally before any cached formula is evaluated.
    pub(crate) vars: Vec<gmc_expr::DimVar>,
}

/// The `T<i>_<j>` temporary names of every cell of an `n`-chain, in
/// cell-index order — the single source of the naming scheme for the
/// recorder and the plan store.
pub(crate) fn build_temp_names(n: usize) -> Vec<String> {
    let mut names = vec![String::new(); n * (n + 1) / 2];
    for i in 0..n {
        for j in i..n {
            names[cell_index(n, i, j)] = format!("T{i}_{j}");
        }
    }
    names
}

/// Cell classification counts of a [`RegionPlan`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlanSummary {
    /// Interior cells whose decision is fully symbolic.
    pub resolved: usize,
    /// Interior cells decided numerically at bind time.
    pub deferred: usize,
    /// Interior cells re-matched live at bind time.
    pub dynamic: usize,
    /// Interior cells with no computable split.
    pub unsolvable: usize,
}

impl fmt::Display for PlanSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} resolved, {} deferred, {} dynamic, {} unsolvable",
            self.resolved, self.deferred, self.dynamic, self.unsolvable
        )
    }
}

impl RegionPlan {
    /// Classification counts over the interior (non-diagonal) cells.
    pub fn summary(&self) -> PlanSummary {
        let mut s = PlanSummary::default();
        for c in &self.cells {
            match c {
                CellPlan::Leaf => {}
                CellPlan::Unsolvable => s.unsolvable += 1,
                CellPlan::Resolved { .. } => s.resolved += 1,
                CellPlan::Deferred { .. } => s.deferred += 1,
                CellPlan::Dynamic => s.dynamic += 1,
            }
        }
        s
    }

    /// Whether every interior cell is symbolically resolved (the whole
    /// parenthesization and kernel sequence are binding-independent
    /// within this region).
    pub fn is_fully_resolved(&self) -> bool {
        let s = self.summary();
        s.deferred == 0 && s.dynamic == 0 && s.unsolvable == 0
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        cell_index(self.n, i, j)
    }
}

#[inline]
pub(crate) fn cell_index(n: usize, i: usize, j: usize) -> usize {
    debug_assert!(i <= j && j < n);
    i * (2 * n - i + 1) / 2 + (j - i)
}

/// Reusable state for the instantiate hot path, held by the cache so a
/// cache hit allocates no fresh DP tables or candidate-scan buffers.
/// (The per-cell temporaries, operations and kernel-name strings that
/// remain are part of the returned solution itself.)
#[derive(Debug, Default)]
pub(crate) struct PlanWorkspace {
    solved: Solved,
    costs: Vec<f64>,
    entries: Vec<Ranked>,
}

/// Shared DP result state for the recorder and the instantiation walk.
#[derive(Debug, Default)]
struct Solved {
    n: usize,
    cost: Vec<Option<f64>>,
    expr: Vec<Option<Expr>>,
    split: Vec<usize>,
    op: Vec<Option<KernelOp>>,
    kernel: Vec<String>,
    op_cost: Vec<f64>,
}

impl Solved {
    fn new(n: usize) -> Solved {
        let mut s = Solved {
            n: 0,
            cost: Vec::new(),
            expr: Vec::new(),
            split: Vec::new(),
            op: Vec::new(),
            kernel: Vec::new(),
            op_cost: Vec::new(),
        };
        s.reset(n);
        s
    }

    /// Clears the state for a chain of length `n`, reusing the existing
    /// allocations where large enough — the instantiate hot path holds
    /// one `Solved` per [`crate::PlanCache`] and resets it per request,
    /// mirroring `gmc::GmcWorkspace` on the concrete hot path.
    fn reset(&mut self, n: usize) {
        let len = n * (n + 1) / 2;
        self.n = n;
        self.cost.clear();
        self.cost.resize(len, None);
        self.expr.clear();
        self.expr.resize(len, None);
        self.split.clear();
        self.split.resize(len, 0);
        self.op.clear();
        self.op.resize(len, None);
        self.kernel.clear();
        self.kernel.resize(len, String::new());
        self.op_cost.clear();
        self.op_cost.resize(len, 0.0);
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        cell_index(self.n, i, j)
    }

    fn seed_leaves(&mut self, chain: &Chain) {
        for i in 0..self.n {
            let idx = self.idx(i, i);
            self.expr[idx] = Some(chain.factor(i).expr());
            self.cost[idx] = Some(0.0);
        }
    }

    fn operand_for(&self, r: OperandRef, chain: &Chain) -> Operand {
        match r {
            OperandRef::Factor(t) => chain.factor(t).operand().clone(),
            OperandRef::Temp(i, j) => match &self.expr[self.idx(i, j)] {
                Some(Expr::Symbol(op)) => op.clone(),
                other => unreachable!("temporary cell must hold a symbol, got {other:?}"),
            },
        }
    }
}

/// A candidate row for the shared two-stage winner selection.
#[derive(Debug)]
struct Ranked {
    k: usize,
    kernel_idx: usize,
    spec: u8,
    cost: f64,
}

/// The exact selection the concrete optimizer performs, over a
/// pre-enumerated candidate list (entries grouped by ascending `k`, in
/// discrimination-net streaming order within a group): per split the
/// streaming min by `(cost, specificity desc, registration asc)`, then
/// across splits strict improvement with the earliest split winning
/// ties. Returns the winning entry index and the accumulated total.
fn select_two_stage(
    entries: &[Ranked],
    mut base: impl FnMut(usize) -> f64,
) -> Option<(usize, f64)> {
    let mut best: Option<(f64, usize)> = None;
    let mut idx = 0;
    while idx < entries.len() {
        let k = entries[idx].k;
        let mut end = idx;
        while end < entries.len() && entries[end].k == k {
            end += 1;
        }
        let mut group: Option<usize> = None;
        for e in idx..end {
            let replace = match group {
                None => true,
                Some(gi) => {
                    let inc = &entries[gi];
                    let c = &entries[e];
                    let ord = inc
                        .cost
                        .partial_cmp(&c.cost)
                        .unwrap_or(Ordering::Equal)
                        .then_with(|| c.spec.cmp(&inc.spec));
                    ord == Ordering::Greater
                        || (ord == Ordering::Equal && c.kernel_idx < inc.kernel_idx)
                }
            };
            if replace {
                group = Some(e);
            }
        }
        let gi = group.expect("non-empty split group");
        let total = base(k) + entries[gi].cost;
        let better = match &best {
            None => true,
            Some((t, _)) => total < *t,
        };
        if better {
            best = Some((total, gi));
        }
        idx = end;
    }
    best.map(|(t, i)| (i, t))
}

fn infer_cell_props(
    inference: InferenceMode,
    chain: &Chain,
    le: &Expr,
    re: &Expr,
    i: usize,
    j: usize,
) -> PropertySet {
    match inference {
        InferenceMode::Compositional => infer_properties(&Expr::times([le.clone(), re.clone()])),
        InferenceMode::Deep => {
            let unfolded = Expr::times((i..=j).map(|t| chain.factor(t).expr()).collect::<Vec<_>>());
            infer_properties(&unfolded)
        }
    }
}

fn extract_solution(chain: &Chain, s: &Solved) -> Result<GmcSolution<f64>, GmcError> {
    let n = s.n;
    let Some(total_cost) = s.cost[s.idx(0, n - 1)] else {
        return Err(GmcError::not_computable(chain.to_string()));
    };
    let mut steps = Vec::with_capacity(n - 1);
    push_steps(s, 0, n - 1, &mut steps);
    let total_flops = steps.iter().map(|st: &Step<f64>| st.op.flops()).sum();
    let paren = parenthesization(chain, s, 0, n - 1);
    Ok(GmcSolution::from_parts(
        steps,
        total_cost,
        total_flops,
        paren,
    ))
}

fn push_steps(s: &Solved, i: usize, j: usize, out: &mut Vec<Step<f64>>) {
    if i == j {
        return;
    }
    let idx = s.idx(i, j);
    let k = s.split[idx];
    push_steps(s, i, k, out);
    push_steps(s, k + 1, j, out);
    let dest = match s.expr[idx].as_ref().expect("solved cell has a temporary") {
        Expr::Symbol(op) => op.clone(),
        other => unreachable!("temporary must be a symbol, got {other}"),
    };
    out.push(Step {
        dest,
        op: s.op[idx].clone().expect("solved cell has an operation"),
        kernel: s.kernel[idx].clone(),
        cost: s.op_cost[idx],
    });
}

fn parenthesization(chain: &Chain, s: &Solved, i: usize, j: usize) -> String {
    if i == j {
        return chain.factor(i).to_string();
    }
    let k = s.split[s.idx(i, j)];
    format!(
        "({} {})",
        parenthesization(chain, s, i, k),
        parenthesization(chain, s, k + 1, j)
    )
}

/// Same-split tie-break: would `a` be preferred over `b` by the
/// streaming within-split scan when their costs are equal?
fn within_split_tie_favors(a: &Candidate, b: &Candidate) -> bool {
    a.specificity > b.specificity || (a.specificity == b.specificity && a.kernel_idx < b.kernel_idx)
}

/// Records the region plan for `chain` (the concrete binding of `sym`)
/// and returns it together with the solve result.
pub(crate) fn record_region(
    registry: &KernelRegistry,
    inference: InferenceMode,
    sym: &SymChain,
    chain: &Chain,
    scratch: &mut FlatTermScratch,
) -> (RegionPlan, Result<GmcSolution<f64>, GmcError>) {
    let n = chain.len();
    let len = n * (n + 1) / 2;
    let dims = sym.dims();
    let mut solved = Solved::new(n);
    solved.seed_leaves(chain);
    let mut plan_cells: Vec<CellPlan> = vec![CellPlan::Leaf; len];
    let mut total_polys: Vec<Option<CostPoly>> = vec![None; len];
    let mut unstable: Vec<bool> = vec![false; len];
    let temp_names = build_temp_names(n);

    // Operand name → symbolic shape (for formulas) and → provenance
    // (for re-instantiation). Factors first; temporaries as created.
    let mut sym_shapes: HashMap<String, SymShape> = HashMap::new();
    let mut refs: HashMap<String, OperandRef> = HashMap::new();
    for (t, f) in sym.factors().iter().enumerate() {
        sym_shapes
            .entry(f.operand().name().to_owned())
            .or_insert_with(|| f.operand().shape());
        refs.entry(f.operand().name().to_owned())
            .or_insert(OperandRef::Factor(t));
    }

    for i in 0..n {
        total_polys[cell_index(n, i, i)] = Some(CostPoly::zero());
    }

    struct RawCand {
        k: usize,
        kernel_idx: usize,
        spec: u8,
        op: KernelOp,
        cost: f64,
        var_binds: Vec<(Var, OperandRef)>,
    }

    for l in 1..n {
        for i in 0..(n - l) {
            let j = i + l;
            let idx = cell_index(n, i, j);

            let dynamic =
                (i..j).any(|k| unstable[cell_index(n, i, k)] || unstable[cell_index(n, k + 1, j)]);

            // Enumerate every candidate of every computable split.
            let mut raw: Vec<RawCand> = Vec::new();
            for k in i..j {
                let (li, ri) = (cell_index(n, i, k), cell_index(n, k + 1, j));
                if solved.cost[li].is_none() || solved.cost[ri].is_none() {
                    continue;
                }
                let le = solved.expr[li].clone().expect("computable cell");
                let re = solved.expr[ri].clone().expect("computable cell");
                registry.for_each_product_match(&le, &re, scratch, |kernel_idx, kernel, b| {
                    let op = kernel.instantiate(b);
                    let cost = op.flops();
                    let mut var_binds = Vec::with_capacity(2);
                    for v in [X, Y] {
                        if let Some(operand) = b.get(v) {
                            let r = refs
                                .get(operand.name())
                                .copied()
                                .expect("bound operand is a factor or temporary");
                            var_binds.push((v, r));
                        }
                    }
                    raw.push(RawCand {
                        k,
                        kernel_idx,
                        spec: kernel.specificity(),
                        op,
                        cost,
                        var_binds,
                    });
                });
            }

            if raw.is_empty() {
                plan_cells[idx] = if dynamic {
                    CellPlan::Dynamic
                } else {
                    CellPlan::Unsolvable
                };
                unstable[idx] = dynamic;
                continue;
            }

            // Winner selection, exactly as the concrete optimizer.
            let entries: Vec<Ranked> = raw
                .iter()
                .map(|c| Ranked {
                    k: c.k,
                    kernel_idx: c.kernel_idx,
                    spec: c.spec,
                    cost: c.cost,
                })
                .collect();
            let (wi, total) = select_two_stage(&entries, |k| {
                let cl = solved.cost[cell_index(n, i, k)].expect("computable split");
                let cr = solved.cost[cell_index(n, k + 1, j)].expect("computable split");
                cl + cr
            })
            .expect("non-empty candidate list");
            let wk = raw[wi].k;
            let wle = solved.expr[cell_index(n, i, wk)].clone().expect("winner");
            let wre = solved.expr[cell_index(n, wk + 1, j)]
                .clone()
                .expect("winner");
            let props = infer_cell_props(inference, chain, &wle, &wre, i, j);
            let temp =
                Operand::temporary(temp_names[idx].clone(), raw[wi].op.result_shape(), props);
            // A sub-chain result always has shape d[i] × d[j+1],
            // independent of how it is parenthesized.
            sym_shapes.insert(temp.name().to_owned(), SymShape::new(dims[i], dims[j + 1]));
            refs.insert(temp.name().to_owned(), OperandRef::Temp(i, j));
            solved.cost[idx] = Some(total);
            solved.expr[idx] = Some(temp.expr());
            solved.split[idx] = wk;
            solved.op[idx] = Some(raw[wi].op.clone());
            solved.kernel[idx] = registry.kernels()[raw[wi].kernel_idx].name().to_owned();
            solved.op_cost[idx] = raw[wi].cost;

            if dynamic {
                plan_cells[idx] = CellPlan::Dynamic;
                unstable[idx] = true;
                continue;
            }

            // Lift candidates to symbolic form.
            let mut cands: Vec<Candidate> = raw
                .iter()
                .map(|c| {
                    let formula = FlopFormula::from_op(&c.op, |name| sym_shapes[name]);
                    let op_poly = formula.poly();
                    let total_poly = match (
                        &total_polys[cell_index(n, i, c.k)],
                        &total_polys[cell_index(n, c.k + 1, j)],
                    ) {
                        (Some(l), Some(r)) => Some(l.add(r).add(&op_poly)),
                        _ => None,
                    };
                    Candidate {
                        k: c.k,
                        kernel_idx: c.kernel_idx,
                        specificity: c.spec,
                        formula,
                        op_poly,
                        total_poly,
                        var_binds: c.var_binds.clone(),
                    }
                })
                .collect();

            // Prune same-split candidates that are polynomially
            // dominated by a tie-favored sibling — they can never be
            // the within-split winner at any binding.
            let mut keep = vec![true; cands.len()];
            for b in 0..cands.len() {
                for a in 0..cands.len() {
                    if a == b || !keep[a] || cands[a].k != cands[b].k {
                        continue;
                    }
                    if cands[a].op_poly.dominated_by(&cands[b].op_poly)
                        && within_split_tie_favors(&cands[a], &cands[b])
                    {
                        keep[b] = false;
                        break;
                    }
                }
            }
            let winner_key = (cands[wi].k, cands[wi].kernel_idx);
            let mut iter_keep = keep.iter();
            cands.retain(|_| *iter_keep.next().expect("keep mask aligned"));
            let w = cands
                .iter()
                .position(|c| (c.k, c.kernel_idx) == winner_key)
                .expect("winner survives pruning");

            // Symbolic resolution: the ρ-winner surely wins at every
            // binding in the region. Against same-split rivals the
            // op-cost polynomial decides (ties fall to the streaming
            // scan's specificity/registration order). Against other
            // splits the *total* polynomials decide: an earlier split
            // wins on non-strict dominance (the DP keeps the earliest
            // split on cost ties), a later split only on strict
            // dominance (its cost must beat the earlier split
            // everywhere).
            let winner_resolved = cands[w].total_poly.is_some()
                && cands.iter().enumerate().all(|(ci, c)| {
                    if ci == w {
                        return true;
                    }
                    if c.k == cands[w].k {
                        cands[w].op_poly.dominated_by(&c.op_poly)
                            && within_split_tie_favors(&cands[w], c)
                    } else {
                        c.total_poly.as_ref().is_some_and(|ct| {
                            let wt = cands[w].total_poly.as_ref().expect("checked above");
                            if cands[w].k < c.k {
                                wt.dominated_by(ct)
                            } else {
                                wt.strictly_dominated_by(ct)
                            }
                        })
                    }
                });

            if winner_resolved {
                total_polys[idx] = cands[w].total_poly.clone();
                plan_cells[idx] = CellPlan::Resolved {
                    cand: Box::new(cands.swap_remove(w)),
                    props,
                };
                unstable[idx] = false;
                continue;
            }

            // Deferred: record the winner-only property inference per
            // candidate split. A deferred cell has no unstable
            // descendant, so each split's child expressions — and hence
            // its inferred property set — are region-invariant; bind
            // time only looks the winner's split up.
            let deferred_props = match inference {
                InferenceMode::Deep => DeferredProps::Stable(props),
                InferenceMode::Compositional => {
                    let mut splits: Vec<usize> = cands.iter().map(|c| c.k).collect();
                    splits.dedup();
                    let by_split: Vec<(usize, PropertySet)> = splits
                        .iter()
                        .map(|&k| {
                            let le = solved.expr[cell_index(n, i, k)].as_ref().expect("split");
                            let re = solved.expr[cell_index(n, k + 1, j)]
                                .as_ref()
                                .expect("split");
                            (k, infer_cell_props(inference, chain, le, re, i, j))
                        })
                        .collect();
                    if by_split.iter().all(|(_, p)| *p == props) {
                        DeferredProps::Stable(props)
                    } else {
                        DeferredProps::PerSplit(by_split)
                    }
                }
            };
            unstable[idx] = matches!(deferred_props, DeferredProps::PerSplit(_));
            plan_cells[idx] = CellPlan::Deferred {
                cands,
                props: deferred_props,
            };
        }
    }

    let solution = extract_solution(chain, &solved);
    (
        RegionPlan {
            n,
            cells: plan_cells,
            temp_names,
            vars: sym.vars(),
        },
        solution,
    )
}

/// Replays a recorded region plan at a concrete binding.
///
/// `chain` must be `sym.bind(bindings)` and the binding must fall into
/// the plan's region (`region_signature(chain.sizes())` matching the
/// plan's key); the cache layer guarantees both.
pub(crate) fn instantiate(
    registry: &KernelRegistry,
    inference: InferenceMode,
    region: &RegionPlan,
    chain: &Chain,
    bindings: &DimBindings,
    scratch: &mut FlatTermScratch,
    workspace: &mut PlanWorkspace,
) -> Result<GmcSolution<f64>, GmcError> {
    let n = region.n;
    debug_assert_eq!(n, chain.len());
    debug_assert_eq!(region.cells.len(), n * (n + 1) / 2);
    let PlanWorkspace {
        solved,
        costs,
        entries,
    } = workspace;
    solved.reset(n);
    solved.seed_leaves(chain);

    for l in 1..n {
        for i in 0..(n - l) {
            let j = i + l;
            let idx = cell_index(n, i, j);
            match &region.cells[region.index(i, j)] {
                CellPlan::Leaf => unreachable!("interior cell marked as leaf"),
                CellPlan::Unsolvable => {}
                CellPlan::Resolved { cand, props } => {
                    let op_cost = cand
                        .formula
                        .eval(bindings)
                        .expect("plan formulas only reference bound chain dimensions");
                    let cl = solved.cost[cell_index(n, i, cand.k)].expect("resolved child");
                    let cr = solved.cost[cell_index(n, cand.k + 1, j)].expect("resolved child");
                    let total = (cl + cr) + op_cost;
                    apply_candidate(
                        registry,
                        solved,
                        chain,
                        idx,
                        &region.temp_names[idx],
                        cand,
                        total,
                        op_cost,
                        *props,
                    );
                }
                CellPlan::Deferred { cands, props } => {
                    costs.clear();
                    entries.clear();
                    for c in cands {
                        let cost = c
                            .formula
                            .eval(bindings)
                            .expect("plan formulas only reference bound chain dimensions");
                        costs.push(cost);
                        entries.push(Ranked {
                            k: c.k,
                            kernel_idx: c.kernel_idx,
                            spec: c.specificity,
                            cost,
                        });
                    }
                    let (wi, total) = select_two_stage(entries, |k| {
                        let cl = solved.cost[cell_index(n, i, k)].expect("deferred child");
                        let cr = solved.cost[cell_index(n, k + 1, j)].expect("deferred child");
                        cl + cr
                    })
                    .expect("deferred cells have candidates");
                    let cand = &cands[wi];
                    let props = props.for_split(cand.k);
                    apply_candidate(
                        registry,
                        solved,
                        chain,
                        idx,
                        &region.temp_names[idx],
                        cand,
                        total,
                        costs[wi],
                        props,
                    );
                }
                CellPlan::Dynamic => {
                    // Live matching, mirroring the concrete optimizer's
                    // `fill_cell`.
                    let mut best: Option<(f64, usize, gmc_kernels::ProductMatch<'_, f64>)> = None;
                    for k in i..j {
                        let (li, ri) = (cell_index(n, i, k), cell_index(n, k + 1, j));
                        let (Some(cl), Some(cr)) = (solved.cost[li], solved.cost[ri]) else {
                            continue;
                        };
                        let (Some(le), Some(re)) = (&solved.expr[li], &solved.expr[ri]) else {
                            continue;
                        };
                        let Some(m) = registry.best_product_match(le, re, scratch, |op| op.flops())
                        else {
                            continue;
                        };
                        let total = (cl + cr) + m.cost;
                        let better = match &best {
                            None => true,
                            Some((t, _, _)) => total < *t,
                        };
                        if better {
                            best = Some((total, k, m));
                        }
                    }
                    let Some((total, k, m)) = best else {
                        continue;
                    };
                    let le = solved.expr[cell_index(n, i, k)].as_ref().expect("winner");
                    let re = solved.expr[cell_index(n, k + 1, j)]
                        .as_ref()
                        .expect("winner");
                    let props = infer_cell_props(inference, chain, le, re, i, j);
                    let temp = Operand::temporary(
                        region.temp_names[idx].clone(),
                        m.op.result_shape(),
                        props,
                    );
                    solved.cost[idx] = Some(total);
                    solved.expr[idx] = Some(temp.expr());
                    solved.split[idx] = k;
                    solved.kernel[idx] = m.kernel.name().to_owned();
                    solved.op_cost[idx] = m.cost;
                    solved.op[idx] = Some(m.op);
                }
            }
        }
    }

    extract_solution(chain, solved)
}

/// Materializes a cached candidate's operation for the current binding
/// and writes the winning cell state at `idx`. `temp_name` is the
/// cell's pre-materialized `T<i>_<j>` destination name.
#[allow(clippy::too_many_arguments)]
fn apply_candidate(
    registry: &KernelRegistry,
    solved: &mut Solved,
    chain: &Chain,
    idx: usize,
    temp_name: &str,
    cand: &Candidate,
    total: f64,
    op_cost: f64,
    props: PropertySet,
) {
    let mut b = Bindings::new();
    for (v, r) in &cand.var_binds {
        b.bind(*v, &solved.operand_for(*r, chain));
    }
    let op = registry.kernels()[cand.kernel_idx].instantiate(&b);
    let temp = Operand::temporary(temp_name.to_owned(), op.result_shape(), props);
    solved.cost[idx] = Some(total);
    solved.expr[idx] = Some(temp.expr());
    solved.split[idx] = cand.k;
    solved.kernel[idx] = registry.kernels()[cand.kernel_idx].name().to_owned();
    solved.op_cost[idx] = op_cost;
    solved.op[idx] = Some(op);
}
