//! Region pre-enumeration: after `pre_enumerate_regions`, *every*
//! request for the structure — any positive binding — is a cache hit,
//! and the served solutions stay bit-identical to concrete solves.

use gmc::{FlopCount, GmcOptimizer, InferenceMode};
use gmc_expr::{Dim, DimBindings, Property, SymChain, SymFactor, SymOperand, UnaryOp};
use gmc_kernels::KernelRegistry;
use gmc_plan::{PlanCache, PlanError, PlanOutcome};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

fn plain(name: &str, r: Dim, c: Dim) -> SymFactor {
    SymFactor::plain(SymOperand::new(name, r, c))
}

fn assert_all_hits(chain: &SymChain, cache: &PlanCache, seed: u64) {
    let registry = cache.registry().clone();
    let optimizer = GmcOptimizer::new(&registry, FlopCount).with_inference(cache.inference());
    let mut rng = StdRng::seed_from_u64(seed);
    let sizes = [1usize, 2, 3, 6, 7, 8, 13, 40, 100, 2000];
    for _ in 0..60 {
        let mut b = DimBindings::new();
        for v in chain.vars() {
            b.set_var(v, sizes[rng.gen_range(0..sizes.len())]);
        }
        let (got, outcome) = cache.solve(chain, &b).unwrap();
        assert_eq!(
            outcome,
            PlanOutcome::Hit,
            "binding {b} of {chain} must hit after pre-enumeration"
        );
        let want = optimizer.solve(&chain.bind(&b).unwrap()).unwrap();
        assert_eq!(want.cost().to_bits(), got.cost().to_bits());
        assert_eq!(want.parenthesization(), got.parenthesization());
        assert_eq!(want.kernel_names(), got.kernel_names());
    }
}

#[test]
fn dense_symbolic_chain_every_request_hits() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let (n, m, k) = (Dim::var("pe_n"), Dim::var("pe_m"), Dim::var("pe_k"));
    let chain = SymChain::new(vec![plain("A", n, m), plain("B", m, k), plain("C", k, n)]).unwrap();
    for mode in [InferenceMode::Compositional, InferenceMode::Deep] {
        let cache = PlanCache::new(registry.clone(), mode);
        let recorded = cache.pre_enumerate_regions(&chain).unwrap();
        assert!(recorded > 1, "a 3-variable chain has several regions");
        assert_all_hits(&chain, &cache, 0xE1);
        // Idempotent: a second enumeration records nothing new.
        assert_eq!(cache.pre_enumerate_regions(&chain).unwrap(), 0);
    }
}

#[test]
fn mixed_constant_and_variable_dims_enumerate() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let (n, m) = (Dim::var("pe2_n"), Dim::var("pe2_m"));
    // The constant 7 interleaves with the variables: orderings against
    // it (and against 1) split regions too.
    let chain = SymChain::new(vec![
        plain("A", n, Dim::Const(7)),
        plain("B", Dim::Const(7), m),
        plain("C", m, n),
    ])
    .unwrap();
    let cache = PlanCache::new(registry, InferenceMode::Compositional);
    let recorded = cache.pre_enumerate_regions(&chain).unwrap();
    assert!(recorded > 1);
    assert_all_hits(&chain, &cache, 0xE2);
}

#[test]
fn structured_chain_enumerates_with_properties() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let (n, m) = (Dim::var("pe3_n"), Dim::var("pe3_m"));
    let spd = SymOperand::square("S", n)
        .with_property(Property::SymmetricPositiveDefinite)
        .unwrap();
    let tri = SymOperand::square("L", m)
        .with_property(Property::LowerTriangular)
        .unwrap();
    let chain = SymChain::new(vec![
        SymFactor::new(spd, UnaryOp::Inverse),
        plain("B", n, m),
        SymFactor::new(tri, UnaryOp::Transpose),
    ])
    .unwrap();
    let cache = PlanCache::new(registry, InferenceMode::Compositional);
    cache.pre_enumerate_regions(&chain).unwrap();
    assert_all_hits(&chain, &cache, 0xE3);
}

#[test]
fn fully_concrete_chain_is_one_region() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let chain = SymChain::new(vec![
        plain("A", Dim::Const(10), Dim::Const(20)),
        plain("B", Dim::Const(20), Dim::Const(5)),
    ])
    .unwrap();
    let cache = PlanCache::new(registry, InferenceMode::Compositional);
    assert_eq!(cache.pre_enumerate_regions(&chain).unwrap(), 1);
    let (_, outcome) = cache.solve(&chain, &DimBindings::new()).unwrap();
    assert_eq!(outcome, PlanOutcome::Hit);
}

#[test]
fn oversized_chains_are_rejected() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    // Nine factors exceed the factor limit.
    let dims: Vec<Dim> = (0..10).map(|i| Dim::var(&format!("pe4_d{i}"))).collect();
    let factors: Vec<SymFactor> = (0..9)
        .map(|i| plain(&format!("M{i}"), dims[i], dims[i + 1]))
        .collect();
    let chain = SymChain::new(factors).unwrap();
    let cache = PlanCache::new(registry.clone(), InferenceMode::Compositional);
    assert!(matches!(
        cache.pre_enumerate_regions(&chain),
        Err(PlanError::Enumeration(_))
    ));
    // Eight factors with eight distinct variables blow the binding
    // budget instead.
    let factors: Vec<SymFactor> = (0..8)
        .map(|i| plain(&format!("M{i}"), dims[i], dims[i + 1]))
        .collect();
    let chain = SymChain::new(factors).unwrap();
    assert!(matches!(
        cache.pre_enumerate_regions(&chain),
        Err(PlanError::Enumeration(_))
    ));
}
