//! Plan-store persistence: snapshots round-trip byte-for-byte, a
//! warm-started cache answers its first request as a hit with
//! bit-identical results, and mismatched snapshots are rejected.

use gmc::{FlopCount, GmcOptimizer, InferenceMode};
use gmc_expr::{Dim, DimBindings, Property, SymChain, SymFactor, SymOperand, UnaryOp};
use gmc_kernels::KernelRegistry;
use gmc_plan::{PlanCache, PlanError, PlanOutcome};
use std::sync::Arc;

fn plain(name: &str, r: Dim, c: Dim) -> SymFactor {
    SymFactor::plain(SymOperand::new(name, r, c))
}

fn sample_workload() -> Vec<(SymChain, Vec<DimBindings>)> {
    let (n, m, k) = (Dim::var("ps_n"), Dim::var("ps_m"), Dim::var("ps_k"));
    let dense = SymChain::new(vec![plain("A", n, m), plain("B", m, k), plain("C", k, n)]).unwrap();
    let dense_binds = vec![
        DimBindings::new()
            .with("ps_n", 10)
            .with("ps_m", 200)
            .with("ps_k", 30),
        DimBindings::new()
            .with("ps_n", 300)
            .with("ps_m", 20)
            .with("ps_k", 100),
        DimBindings::new()
            .with("ps_n", 5)
            .with("ps_m", 5)
            .with("ps_k", 5),
    ];
    let spd = SymOperand::square("S", n)
        .with_property(Property::SymmetricPositiveDefinite)
        .unwrap();
    let tri = SymOperand::square("L", m)
        .with_property(Property::LowerTriangular)
        .unwrap();
    let structured = SymChain::new(vec![
        SymFactor::new(spd, UnaryOp::Inverse),
        plain("B", n, m),
        SymFactor::new(tri, UnaryOp::Transpose),
    ])
    .unwrap();
    let structured_binds = vec![
        DimBindings::new().with("ps_n", 2000).with("ps_m", 200),
        DimBindings::new().with("ps_n", 100).with("ps_m", 800),
    ];
    vec![(dense, dense_binds), (structured, structured_binds)]
}

#[test]
fn snapshot_round_trips_and_warm_start_hits() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    for mode in [InferenceMode::Compositional, InferenceMode::Deep] {
        let work = sample_workload();
        let warm = PlanCache::new(registry.clone(), mode);
        for (chain, binds) in &work {
            for b in binds {
                warm.solve(chain, b).unwrap();
            }
        }
        let snapshot = warm.snapshot_json();

        // Loading into a fresh cache adopts every region…
        let cold = PlanCache::new(registry.clone(), mode);
        let adopted = cold.load_snapshot_json(&snapshot).unwrap();
        let recorded: u64 = {
            let s = warm.stats();
            s.structure_misses + s.region_misses
        };
        assert_eq!(adopted as u64, recorded);

        // …the loaded cache re-serializes to the identical bytes…
        assert_eq!(cold.snapshot_json(), snapshot, "snapshot must round-trip");

        // …and the warm-started cache answers its *first* request as a
        // hit, bit-identical to a from-scratch solve.
        let optimizer = GmcOptimizer::new(&registry, FlopCount).with_inference(mode);
        for (chain, binds) in &work {
            for b in binds {
                let (got, outcome) = cold.solve(chain, b).unwrap();
                assert_eq!(outcome, PlanOutcome::Hit, "warm start must hit");
                let want = optimizer.solve(&chain.bind(b).unwrap()).unwrap();
                assert_eq!(want.cost().to_bits(), got.cost().to_bits());
                assert_eq!(want.parenthesization(), got.parenthesization());
                assert_eq!(want.kernel_names(), got.kernel_names());
            }
        }
        // Scaled sizes in a stored region hit too.
        let (chain, binds) = &work[0];
        let scaled = DimBindings::new()
            .with("ps_n", 20)
            .with("ps_m", 400)
            .with("ps_k", 60);
        let (_, outcome) = cold.solve(chain, &scaled).unwrap();
        assert_eq!(outcome, PlanOutcome::Hit);
        assert!(binds.len() >= 2);
    }
}

#[test]
fn save_and_load_through_a_file() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let warm = PlanCache::new(registry.clone(), InferenceMode::Compositional);
    let (chain, binds) = &sample_workload()[0];
    for b in binds {
        warm.solve(chain, b).unwrap();
    }
    let path = std::env::temp_dir().join(format!("gmc_plan_store_{}.json", std::process::id()));
    warm.save(&path).unwrap();

    let cold = PlanCache::new(registry, InferenceMode::Compositional);
    let adopted = cold.load(&path).unwrap();
    assert!(adopted >= binds.len() - 1); // bindings may share regions
    let (_, outcome) = cold.solve(chain, &binds[0]).unwrap();
    assert_eq!(outcome, PlanOutcome::Hit);
    std::fs::remove_file(&path).ok();
}

#[test]
fn mismatched_snapshots_are_rejected() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let warm = PlanCache::new(registry.clone(), InferenceMode::Compositional);
    let (chain, binds) = &sample_workload()[0];
    warm.solve(chain, &binds[0]).unwrap();
    let snapshot = warm.snapshot_json();

    // Wrong inference mode.
    let deep = PlanCache::new(registry.clone(), InferenceMode::Deep);
    assert!(matches!(
        deep.load_snapshot_json(&snapshot),
        Err(PlanError::Store(_))
    ));

    // Wrong registry (different kernel list).
    let mcp = PlanCache::new(
        Arc::new(KernelRegistry::mcp_only()),
        InferenceMode::Compositional,
    );
    assert!(matches!(
        mcp.load_snapshot_json(&snapshot),
        Err(PlanError::Store(_))
    ));

    // Malformed input.
    let fresh = PlanCache::new(registry, InferenceMode::Compositional);
    assert!(matches!(
        fresh.load_snapshot_json("{ not json"),
        Err(PlanError::Store(_))
    ));
    assert!(matches!(
        fresh.load_snapshot_json("{\"format\": \"other/v9\"}"),
        Err(PlanError::Store(_))
    ));
    // A failed load adopts nothing.
    assert!(fresh.is_empty());
}

#[test]
fn reloading_a_snapshot_adopts_nothing_new() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let warm = PlanCache::new(registry.clone(), InferenceMode::Compositional);
    let (chain, binds) = &sample_workload()[0];
    for b in binds {
        warm.solve(chain, b).unwrap();
    }
    let snapshot = warm.snapshot_json();
    let cold = PlanCache::new(registry, InferenceMode::Compositional);
    let first = cold.load_snapshot_json(&snapshot).unwrap();
    assert!(first > 0);
    // Every region is already present now: nothing more to adopt.
    assert_eq!(cold.load_snapshot_json(&snapshot).unwrap(), 0);
}

#[test]
fn corrupt_candidate_indices_are_rejected_at_load() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let warm = PlanCache::new(registry.clone(), InferenceMode::Compositional);
    let (chain, binds) = &sample_workload()[0];
    warm.solve(chain, &binds[0]).unwrap();
    let snapshot = warm.snapshot_json();
    assert!(snapshot.contains("\"k\": "), "snapshot records splits");

    // An out-of-range split index must fail load-time validation, not
    // panic inside a serving worker on the first request.
    let corrupt = snapshot.replacen("\"k\": 0", "\"k\": 99", 1);
    assert_ne!(corrupt, snapshot);
    let fresh = PlanCache::new(registry.clone(), InferenceMode::Compositional);
    assert!(matches!(
        fresh.load_snapshot_json(&corrupt),
        Err(PlanError::Store(_))
    ));
    assert!(fresh.is_empty());

    // A variable list that no longer covers the stored formulas (here:
    // every `ps_m` renamed to `ps_n`, creating a duplicate) must also
    // be rejected at load time.
    let corrupt = snapshot.replace("\"ps_m\"", "\"ps_n\"");
    assert_ne!(corrupt, snapshot);
    let fresh = PlanCache::new(registry, InferenceMode::Compositional);
    assert!(matches!(
        fresh.load_snapshot_json(&corrupt),
        Err(PlanError::Store(_))
    ));
    assert!(fresh.is_empty());
}

#[test]
fn missing_file_is_a_store_error() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let cache = PlanCache::new(registry, InferenceMode::Compositional);
    assert!(matches!(
        cache.load("/nonexistent/gmc-plan-store.json"),
        Err(PlanError::Store(_))
    ));
}
