//! Thread-stress test of the shared plan cache: N threads × mixed
//! structures × mixed bindings, asserting (a) every served solution is
//! bit-identical to a from-scratch concrete solve, (b) no update is
//! lost and no recording is duplicated — each (structure, region) pair
//! is recorded exactly once no matter how many threads miss on it
//! concurrently.

use gmc::{FlopCount, GmcOptimizer, GmcSolution, InferenceMode};
use gmc_expr::{Dim, DimBindings, Property, SymChain, SymFactor, SymOperand, UnaryOp};
use gmc_kernels::KernelRegistry;
use gmc_plan::{region_signature, structure_key, PlanCache};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;
use std::sync::Arc;

fn plain(name: &str, r: Dim, c: Dim) -> SymFactor {
    SymFactor::plain(SymOperand::new(name, r, c))
}

/// The mixed workload: three distinct structures with several size
/// regions each.
fn workload() -> Vec<(SymChain, Vec<DimBindings>)> {
    let (n, m, k) = (Dim::var("cc_n"), Dim::var("cc_m"), Dim::var("cc_k"));

    let dense = SymChain::new(vec![plain("A", n, m), plain("B", m, k), plain("C", k, n)]).unwrap();
    let dense_binds = [
        (10, 200, 30),
        (12, 240, 36),
        (300, 20, 100),
        (5, 5, 5),
        (1, 50, 20),
        (1000, 500, 2000),
    ]
    .iter()
    .map(|&(nv, mv, kv)| {
        DimBindings::new()
            .with("cc_n", nv)
            .with("cc_m", mv)
            .with("cc_k", kv)
    })
    .collect();

    let spd = SymOperand::square("S", n)
        .with_property(Property::SymmetricPositiveDefinite)
        .unwrap();
    let tri = SymOperand::square("L", m)
        .with_property(Property::LowerTriangular)
        .unwrap();
    let structured = SymChain::new(vec![
        SymFactor::new(spd, UnaryOp::Inverse),
        plain("B", n, m),
        SymFactor::new(tri, UnaryOp::Transpose),
    ])
    .unwrap();
    let structured_binds = [(2000, 200), (100, 800), (7, 7), (3, 1), (64, 64)]
        .iter()
        .map(|&(nv, mv)| DimBindings::new().with("cc_n", nv).with("cc_m", mv))
        .collect();

    let a = SymOperand::new("A", n, n);
    let gram = SymChain::new(vec![
        SymFactor::new(a.clone(), UnaryOp::Transpose),
        SymFactor::plain(a),
        plain("B", n, m),
    ])
    .unwrap();
    let gram_binds = [(20, 15), (200, 3), (4, 400), (9, 9)]
        .iter()
        .map(|&(nv, mv)| DimBindings::new().with("cc_n", nv).with("cc_m", mv))
        .collect();

    vec![
        (dense, dense_binds),
        (structured, structured_binds),
        (gram, gram_binds),
    ]
}

#[test]
fn concurrent_mixed_traffic_is_equivalent_and_loses_no_updates() {
    const THREADS: usize = 8;
    const REQUESTS_PER_THREAD: usize = 120;

    let registry = Arc::new(KernelRegistry::blas_lapack());
    let work = workload();

    for mode in [InferenceMode::Compositional, InferenceMode::Deep] {
        // Reference answers, computed sequentially from scratch.
        let optimizer = GmcOptimizer::new(&registry, FlopCount).with_inference(mode);
        let expected: Vec<Vec<GmcSolution<f64>>> = work
            .iter()
            .map(|(chain, binds)| {
                binds
                    .iter()
                    .map(|b| optimizer.solve(&chain.bind(b).unwrap()).unwrap())
                    .collect()
            })
            .collect();

        let cache = PlanCache::new(registry.clone(), mode);
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let cache = &cache;
                let work = &work;
                let expected = &expected;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xCC + t as u64);
                    for _ in 0..REQUESTS_PER_THREAD {
                        let ci = rng.gen_range(0..work.len());
                        let (chain, binds) = &work[ci];
                        let bi = rng.gen_range(0..binds.len());
                        let (got, _outcome) = cache.solve(chain, &binds[bi]).unwrap();
                        let want = &expected[ci][bi];
                        assert_eq!(want.cost().to_bits(), got.cost().to_bits());
                        assert_eq!(want.parenthesization(), got.parenthesization());
                        assert_eq!(want.kernel_names(), got.kernel_names());
                    }
                });
            }
        });

        // No lost updates, no duplicated recordings: every distinct
        // (structure, region) pair was recorded exactly once, every
        // other request was a hit, and the counters account for every
        // request.
        let stats = cache.stats();
        let total = (THREADS * REQUESTS_PER_THREAD) as u64;
        assert_eq!(
            stats.requests(),
            total,
            "dropped or double-counted requests"
        );

        let mut distinct_pairs: BTreeSet<(String, Vec<i8>)> = BTreeSet::new();
        for (chain, binds) in &work {
            let key = format!("{:?}", structure_key(chain, mode));
            for b in binds {
                distinct_pairs
                    .insert((key.clone(), region_signature(&chain.bind_dims(b).unwrap())));
            }
            let regions_per_chain: BTreeSet<Vec<i8>> = binds
                .iter()
                .map(|b| region_signature(&chain.bind_dims(b).unwrap()))
                .collect();
            assert_eq!(
                cache
                    .plan_for(chain)
                    .expect("structure recorded")
                    .region_count(),
                regions_per_chain.len(),
                "lost or duplicated region for {chain}"
            );
        }
        assert_eq!(stats.structure_misses, work.len() as u64);
        assert_eq!(
            stats.structure_misses + stats.region_misses,
            distinct_pairs.len() as u64,
            "each region must be recorded exactly once"
        );
        assert_eq!(stats.hits, total - distinct_pairs.len() as u64);
    }
}
