//! Plan-cache vs concrete-optimizer equivalence on handcrafted chains:
//! every served solution must match a from-scratch `GmcOptimizer::solve`
//! bit for bit (cost, parenthesization, kernel sequence), across size
//! regions, inference modes and cache temperatures.

use gmc::{FlopCount, GmcOptimizer, InferenceMode};
use gmc_expr::{Dim, DimBindings, Property, SymChain, SymFactor, SymOperand, UnaryOp};
use gmc_kernels::KernelRegistry;
use gmc_plan::{PlanCache, PlanOutcome};

fn check_equivalent(chain: &SymChain, bindings_list: &[DimBindings]) {
    let registry = std::sync::Arc::new(KernelRegistry::blas_lapack());
    for mode in [InferenceMode::Compositional, InferenceMode::Deep] {
        let optimizer = GmcOptimizer::new(&registry, FlopCount).with_inference(mode);
        let cache = PlanCache::new(registry.clone(), mode);
        // Two passes so every binding is also exercised as a pure hit.
        for pass in 0..2 {
            for b in bindings_list {
                let concrete = chain.bind(b).expect("binding covers all variables");
                let reference = optimizer.solve(&concrete);
                let served = cache.solve(chain, b);
                match (reference, served) {
                    (Ok(want), Ok((got, outcome))) => {
                        assert_eq!(
                            want.cost().to_bits(),
                            got.cost().to_bits(),
                            "cost diverged for {concrete} under {mode:?} ({outcome})"
                        );
                        assert_eq!(
                            want.parenthesization(),
                            got.parenthesization(),
                            "paren diverged for {concrete} under {mode:?}"
                        );
                        assert_eq!(
                            want.kernel_names(),
                            got.kernel_names(),
                            "kernels diverged for {concrete} under {mode:?}"
                        );
                        assert_eq!(want.flops(), got.flops());
                        if pass == 1 {
                            assert_eq!(outcome, PlanOutcome::Hit, "second pass must hit");
                        }
                    }
                    (Err(_), Err(_)) => {}
                    (want, got) => {
                        panic!("solvability diverged for {concrete} under {mode:?}: concrete {want:?}, plan {got:?}")
                    }
                }
            }
        }
    }
}

fn plain(name: &str, r: Dim, c: Dim) -> SymFactor {
    SymFactor::plain(SymOperand::new(name, r, c))
}

#[test]
fn dense_chain_regions_flip_parenthesization() {
    let (n, m, k) = (Dim::var("eq_n"), Dim::var("eq_m"), Dim::var("eq_k"));
    let chain = SymChain::new(vec![plain("A", n, m), plain("B", m, k), plain("C", k, n)]).unwrap();
    let b = |nv, mv, kv| {
        DimBindings::new()
            .with("eq_n", nv)
            .with("eq_m", mv)
            .with("eq_k", kv)
    };
    check_equivalent(
        &chain,
        &[
            b(10, 200, 30),
            b(12, 240, 36), // same region, different sizes
            b(300, 20, 100),
            b(5, 5, 5),   // all-equal region
            b(1, 50, 20), // row-vector-ish boundary (dimension 1)
            b(40, 1, 7),
        ],
    );
}

#[test]
fn structured_chain_with_properties_and_inverse() {
    let (n, m) = (Dim::var("eq2_n"), Dim::var("eq2_m"));
    let a = SymOperand::square("A", n)
        .with_property(Property::SymmetricPositiveDefinite)
        .unwrap();
    let b = SymOperand::new("B", n, m);
    let c = SymOperand::square("C", m)
        .with_property(Property::LowerTriangular)
        .unwrap();
    let chain = SymChain::new(vec![
        SymFactor::new(a, UnaryOp::Inverse),
        SymFactor::plain(b),
        SymFactor::new(c, UnaryOp::Transpose),
    ])
    .unwrap();
    let bind = |nv, mv| DimBindings::new().with("eq2_n", nv).with("eq2_m", mv);
    check_equivalent(
        &chain,
        &[bind(2000, 200), bind(100, 800), bind(7, 7), bind(3, 1)],
    );
}

#[test]
fn aliased_gram_chain_uses_syrk() {
    // Aᵀ A B: SYRK applies only because both factors are the same A.
    let (n, m) = (Dim::var("eq3_n"), Dim::var("eq3_m"));
    let a = SymOperand::new("A", n, n);
    let b = SymOperand::new("B", n, m);
    let chain = SymChain::new(vec![
        SymFactor::new(a.clone(), UnaryOp::Transpose),
        SymFactor::plain(a),
        SymFactor::plain(b),
    ])
    .unwrap();
    let bind = |nv, mv| DimBindings::new().with("eq3_n", nv).with("eq3_m", mv);
    check_equivalent(&chain, &[bind(20, 15), bind(200, 3), bind(4, 400)]);
}

#[test]
fn vector_chain_gemv_cascade() {
    let (n, m) = (Dim::var("eq4_n"), Dim::var("eq4_m"));
    let chain = SymChain::new(vec![
        plain("M1", n, n),
        plain("M2", n, n),
        plain("v1", n, Dim::Const(1)),
        SymFactor::new(SymOperand::new("v2", m, Dim::Const(1)), UnaryOp::Transpose),
    ])
    .unwrap();
    let bind = |nv, mv| DimBindings::new().with("eq4_n", nv).with("eq4_m", mv);
    check_equivalent(&chain, &[bind(500, 400), bind(30, 700), bind(2, 2)]);
}

#[test]
fn triangular_propagation_chain() {
    // L1 L2 B with both factors lower triangular: temp property
    // propagation decides TRMM applicability downstream.
    let (n, m) = (Dim::var("eq5_n"), Dim::var("eq5_m"));
    let l1 = SymOperand::square("L1", n)
        .with_property(Property::LowerTriangular)
        .unwrap();
    let l2 = SymOperand::square("L2", n)
        .with_property(Property::LowerTriangular)
        .unwrap();
    let b = SymOperand::new("B", n, m);
    let chain = SymChain::new(vec![
        SymFactor::plain(l1),
        SymFactor::plain(l2),
        SymFactor::plain(b),
    ])
    .unwrap();
    let bind = |nv, mv| DimBindings::new().with("eq5_n", nv).with("eq5_m", mv);
    check_equivalent(&chain, &[bind(100, 80), bind(10, 1000), bind(50, 50)]);
}

#[test]
fn uncomputable_chains_stay_uncomputable() {
    let registry = std::sync::Arc::new(
        KernelRegistry::builder()
            .only_families([gmc_kernels::KernelFamily::Gemm])
            .build(),
    );
    let n = Dim::var("eq6_n");
    let a = SymOperand::square("A", n);
    let b = SymOperand::new("B", n, Dim::Const(4));
    let chain = SymChain::new(vec![
        SymFactor::new(a, UnaryOp::Inverse),
        SymFactor::plain(b),
    ])
    .unwrap();
    let cache = PlanCache::new(registry, InferenceMode::Compositional);
    let bindings = DimBindings::new().with("eq6_n", 10);
    assert!(cache.solve(&chain, &bindings).is_err());
    // The unsolvable region is cached; a second request errors again
    // (served from the cached region).
    assert!(cache.solve(&chain, &bindings).is_err());
    assert_eq!(cache.stats().requests(), 2);
    assert_eq!(cache.stats().hits, 1);
}

#[test]
fn longer_dense_chain_with_shared_vars() {
    let (n, m) = (Dim::var("eq7_n"), Dim::var("eq7_m"));
    let chain = SymChain::new(vec![
        plain("A", n, m),
        plain("B", m, n),
        plain("C", n, m),
        plain("D", m, n),
        plain("E", n, m),
    ])
    .unwrap();
    let bind = |nv, mv| DimBindings::new().with("eq7_n", nv).with("eq7_m", mv);
    check_equivalent(
        &chain,
        &[
            bind(10, 100),
            bind(100, 10),
            bind(33, 33),
            bind(1, 9),
            bind(17, 170),
        ],
    );
}

#[test]
fn renamed_variables_share_plans_correctly() {
    // Structure keys canonicalize variable names, so A(n,m)·B(m,k)·C(k,n)
    // and A(p,q)·B(q,r)·C(r,p) share one cached plan. The cached FLOP
    // formulas reference the *recording* chain's variables; serving the
    // renamed chain must translate the bindings, not crash or mis-cost.
    let registry = std::sync::Arc::new(KernelRegistry::blas_lapack());
    let (n, m, k) = (Dim::var("rn_n"), Dim::var("rn_m"), Dim::var("rn_k"));
    let (p, q, r) = (Dim::var("rn_p"), Dim::var("rn_q"), Dim::var("rn_r"));
    let first = SymChain::new(vec![plain("A", n, m), plain("B", m, k), plain("C", k, n)]).unwrap();
    let renamed =
        SymChain::new(vec![plain("A", p, q), plain("B", q, r), plain("C", r, p)]).unwrap();
    for mode in [InferenceMode::Compositional, InferenceMode::Deep] {
        assert_eq!(
            gmc_plan::structure_key(&first, mode),
            gmc_plan::structure_key(&renamed, mode),
            "the chains must share a structure key for this test to bite"
        );
        let optimizer = GmcOptimizer::new(&registry, FlopCount).with_inference(mode);
        let cache = PlanCache::new(registry.clone(), mode);
        let b1 = DimBindings::new()
            .with("rn_n", 10)
            .with("rn_m", 200)
            .with("rn_k", 30);
        cache.solve(&first, &b1).unwrap();
        // Different sizes than the recording, same region ordering.
        let b2 = DimBindings::new()
            .with("rn_p", 13)
            .with("rn_q", 260)
            .with("rn_r", 39);
        let (got, outcome) = cache.solve(&renamed, &b2).unwrap();
        assert_eq!(
            outcome,
            PlanOutcome::Hit,
            "{mode:?}: renamed chain must hit"
        );
        let want = optimizer.solve(&renamed.bind(&b2).unwrap()).unwrap();
        assert_eq!(want.cost().to_bits(), got.cost().to_bits(), "{mode:?}");
        assert_eq!(want.parenthesization(), got.parenthesization());
        assert_eq!(want.kernel_names(), got.kernel_names());
    }
}

#[test]
fn renamed_variables_work_across_the_plan_store() {
    // Record under one naming, persist, load, serve a renamed chain.
    let registry = std::sync::Arc::new(KernelRegistry::blas_lapack());
    let (n, m) = (Dim::var("rs_n"), Dim::var("rs_m"));
    let recorded = SymChain::new(vec![plain("A", n, m), plain("B", m, n)]).unwrap();
    let warm = PlanCache::new(registry.clone(), InferenceMode::Compositional);
    warm.solve(
        &recorded,
        &DimBindings::new().with("rs_n", 10).with("rs_m", 80),
    )
    .unwrap();

    let cold = PlanCache::new(registry.clone(), InferenceMode::Compositional);
    cold.load_snapshot_json(&warm.snapshot_json()).unwrap();
    let (x, y) = (Dim::var("rs_x"), Dim::var("rs_y"));
    let renamed = SymChain::new(vec![plain("A", x, y), plain("B", y, x)]).unwrap();
    let b = DimBindings::new().with("rs_x", 7).with("rs_y", 900);
    let (got, outcome) = cold.solve(&renamed, &b).unwrap();
    assert_eq!(outcome, PlanOutcome::Hit);
    let want = GmcOptimizer::new(&registry, FlopCount)
        .solve(&renamed.bind(&b).unwrap())
        .unwrap();
    assert_eq!(want.cost().to_bits(), got.cost().to_bits());
    assert_eq!(want.kernel_names(), got.kernel_names());
}
