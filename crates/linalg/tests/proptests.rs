//! Property-based tests for the dense linear algebra substrate: every
//! structured routine must agree with the naive reference on random
//! inputs, solves must round-trip, and factorizations must reconstruct.

use gmc_linalg::blas3::{gemm, gemm_ref, symm, syrk, trmm, trsm, Side};
use gmc_linalg::{blas1, blas2, diag, lapack, random, Matrix, Triangle};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..12, 1usize..12, 1usize..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GEMM with every transpose combination equals the reference
    /// product of explicitly transposed operands.
    #[test]
    fn gemm_matches_reference((m, k, n) in dims(), ta in any::<bool>(), tb in any::<bool>(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = if ta {
            random::general(&mut rng, k, m)
        } else {
            random::general(&mut rng, m, k)
        };
        let b = if tb {
            random::general(&mut rng, n, k)
        } else {
            random::general(&mut rng, k, n)
        };
        let got = gemm(1.0, &a, ta, &b, tb);
        let a_eff = if ta { a.transposed() } else { a.clone() };
        let b_eff = if tb { b.transposed() } else { b.clone() };
        let want = gemm_ref(&a_eff, &b_eff);
        prop_assert!(got.approx_eq(&want, 1e-10));
    }

    /// `(A·B)ᵀ = Bᵀ·Aᵀ` numerically.
    #[test]
    fn gemm_transpose_identity((m, k, n) in dims(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random::general(&mut rng, m, k);
        let b = random::general(&mut rng, k, n);
        let left = gemm(1.0, &a, false, &b, false).transposed();
        let right = gemm(1.0, &b, true, &a, true);
        prop_assert!(left.approx_eq(&right, 1e-10));
    }

    /// TRMM equals GEMM with the (cleaned) triangular operand.
    #[test]
    fn trmm_matches_gemm(n in 1usize..12, m in 1usize..12, lower in any::<bool>(), trans in any::<bool>(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let t = if lower {
            random::lower_triangular(&mut rng, n)
        } else {
            random::upper_triangular(&mut rng, n)
        };
        let tri = if lower { Triangle::Lower } else { Triangle::Upper };
        let b = random::general(&mut rng, n, m);
        let got = trmm(Side::Left, tri, trans, false, 1.0, &t, &b);
        let t_eff = if trans { t.transposed() } else { t.clone() };
        prop_assert!(got.approx_eq(&gemm_ref(&t_eff, &b), 1e-10));
        // Right side.
        let c = random::general(&mut rng, m, n);
        let got = trmm(Side::Right, tri, trans, false, 1.0, &t, &c);
        prop_assert!(got.approx_eq(&gemm_ref(&c, &t_eff), 1e-10));
    }

    /// TRSM inverts TRMM for every flag combination.
    #[test]
    fn trsm_round_trips(n in 1usize..12, m in 1usize..10, lower in any::<bool>(), trans in any::<bool>(), unit in any::<bool>(), left in any::<bool>(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut t = if lower {
            random::lower_triangular(&mut rng, n)
        } else {
            random::upper_triangular(&mut rng, n)
        };
        if unit {
            for i in 0..n {
                t[(i, i)] = 1.0;
            }
        }
        let tri = if lower { Triangle::Lower } else { Triangle::Upper };
        let side = if left { Side::Left } else { Side::Right };
        let b = if left {
            random::general(&mut rng, n, m)
        } else {
            random::general(&mut rng, m, n)
        };
        let prod = trmm(side, tri, trans, unit, 1.0, &t, &b);
        let back = trsm(side, tri, trans, unit, 1.0, &t, &prod);
        prop_assert!(back.approx_eq(&b, 1e-7), "max diff {}", back.max_abs_diff(&b));
    }

    /// SYRK agrees with the explicit Gram product and is symmetric.
    #[test]
    fn syrk_gram(m in 1usize..12, k in 1usize..12, trans in any::<bool>(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = if trans {
            random::general(&mut rng, k, m)
        } else {
            random::general(&mut rng, m, k)
        };
        let got = syrk(1.0, &a, trans);
        let want = if trans {
            gemm_ref(&a.transposed(), &a)
        } else {
            gemm_ref(&a, &a.transposed())
        };
        prop_assert!(got.approx_eq(&want, 1e-10));
        prop_assert!(got.is_symmetric(1e-12));
    }

    /// GESV solves: `A · gesv(A, B) = B`.
    #[test]
    fn gesv_solves(n in 1usize..12, m in 1usize..8, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random::invertible(&mut rng, n);
        let b = random::general(&mut rng, n, m);
        let x = lapack::gesv(&a, &b).expect("invertible");
        prop_assert!(gemm_ref(&a, &x).approx_eq(&b, 1e-7));
        // And the transposed variant.
        let x = lapack::gesv_trans(&a, &b).expect("invertible");
        prop_assert!(gemm_ref(&a.transposed(), &x).approx_eq(&b, 1e-7));
    }

    /// POSV solves SPD systems and POTRF reconstructs.
    #[test]
    fn posv_and_potrf(n in 1usize..12, m in 1usize..8, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random::spd(&mut rng, n);
        let b = random::general(&mut rng, n, m);
        let x = lapack::posv(&a, &b).expect("SPD");
        prop_assert!(gemm_ref(&a, &x).approx_eq(&b, 1e-7));
        let mut l = a.clone();
        lapack::potrf(&mut l).expect("SPD");
        prop_assert!(l.is_lower_triangular(0.0));
        prop_assert!(gemm_ref(&l, &l.transposed()).approx_eq(&a, 1e-8));
    }

    /// Explicit inverses really invert, for every structure kind.
    #[test]
    fn inverses_invert(n in 1usize..10, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random::invertible(&mut rng, n);
        prop_assert!(gemm_ref(&a, &lapack::getri(&a).unwrap())
            .approx_eq(&Matrix::identity(n), 1e-6));
        let s = random::spd(&mut rng, n);
        prop_assert!(gemm_ref(&s, &lapack::poinv(&s).unwrap())
            .approx_eq(&Matrix::identity(n), 1e-6));
        let l = random::lower_triangular(&mut rng, n);
        prop_assert!(gemm_ref(&l, &lapack::trtri(&l, Triangle::Lower, false).unwrap())
            .approx_eq(&Matrix::identity(n), 1e-6));
    }

    /// Diagonal kernels agree with full products and solves.
    #[test]
    fn diag_kernels(n in 1usize..12, m in 1usize..12, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let d = random::diagonal(&mut rng, n);
        let dv = d.diagonal();
        let b = random::general(&mut rng, n, m);
        prop_assert!(diag::dgmm_left(&dv, &b).approx_eq(&gemm_ref(&d, &b), 1e-12));
        let x = diag::dgsv_left(&dv, &b).expect("invertible diagonal");
        prop_assert!(gemm_ref(&d, &x).approx_eq(&b, 1e-10));
        let c = random::general(&mut rng, m, n);
        prop_assert!(diag::dgmm_right(&c, &dv).approx_eq(&gemm_ref(&c, &d), 1e-12));
    }

    /// SYMM is exactly a GEMM with the symmetric operand.
    #[test]
    fn symm_matches_gemm(n in 1usize..12, m in 1usize..12, left in any::<bool>(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = random::symmetric(&mut rng, n);
        if left {
            let b = random::general(&mut rng, n, m);
            prop_assert!(symm(Side::Left, 1.0, &s, &b).approx_eq(&gemm_ref(&s, &b), 1e-12));
        } else {
            let b = random::general(&mut rng, m, n);
            prop_assert!(symm(Side::Right, 1.0, &s, &b).approx_eq(&gemm_ref(&b, &s), 1e-12));
        }
    }

    /// BLAS-2 kernels agree with their BLAS-3 equivalents on vectors.
    #[test]
    fn blas2_consistent_with_blas3(n in 1usize..14, m in 1usize..14, trans in any::<bool>(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = random::general(&mut rng, m, n);
        let xlen = if trans { m } else { n };
        let x = random::general(&mut rng, xlen, 1);
        let y = blas2::gemv(1.0, &a, trans, x.col(0));
        let a_eff = if trans { a.transposed() } else { a.clone() };
        let want = gemm_ref(&a_eff, &x);
        let got = Matrix::from_col_major(y.len(), 1, y);
        prop_assert!(got.approx_eq(&want, 1e-10));
    }

    /// dot/axpy/nrm2 basics: Cauchy-Schwarz and the Pythagorean check.
    #[test]
    fn blas1_inequalities(v in prop::collection::vec(-100.0f64..100.0, 1..20), w_seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(w_seed);
        let w: Vec<f64> = (0..v.len()).map(|_| rng.gen_range(-100.0..100.0)) .collect();
        let d = blas1::dot(&v, &w).abs();
        let bound = blas1::nrm2(&v) * blas1::nrm2(&w);
        prop_assert!(d <= bound * (1.0 + 1e-10) + 1e-10);
        prop_assert!(blas1::nrm2(&v) <= blas1::asum(&v) + 1e-12);
    }
}

#[test]
fn getrs_transposed_consistency() {
    // getrs(trans) equals solving against the explicitly transposed
    // matrix, exercising the pivot application order.
    let mut rng = StdRng::seed_from_u64(5);
    for n in [1usize, 2, 3, 5, 9, 16] {
        let a = random::invertible(&mut rng, n);
        let b = random::general(&mut rng, n, 3);
        let mut lu = a.clone();
        let ipiv = lapack::getrf(&mut lu).unwrap();
        let x1 = lapack::getrs(&lu, &ipiv, &b, true);
        let x2 = lapack::gesv(&a.transposed(), &b).unwrap();
        assert!(x1.approx_eq(&x2, 1e-7), "n={n}");
    }
}

use rand::Rng;
