//! The dense column-major matrix type.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Selects the triangular half of a matrix for triangular routines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Triangle {
    /// The lower triangle (including the diagonal).
    Lower,
    /// The upper triangle (including the diagonal).
    Upper,
}

impl Triangle {
    /// The opposite triangle.
    #[must_use]
    pub fn flip(self) -> Triangle {
        match self {
            Triangle::Lower => Triangle::Upper,
            Triangle::Upper => Triangle::Lower,
        }
    }
}

/// A dense, column-major matrix of `f64` values.
///
/// Column-major storage matches BLAS/LAPACK conventions: entry `(i, j)`
/// lives at `data[i + j·rows]`, and a column is a contiguous slice.
///
/// # Example
///
/// ```
/// use gmc_linalg::Matrix;
///
/// let mut m = Matrix::zeros(2, 3);
/// m[(0, 1)] = 5.0;
/// assert_eq!(m[(0, 1)], 5.0);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a column-major data vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols` or a dimension is zero.
    pub fn from_col_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        assert_eq!(data.len(), rows * cols, "data length must match shape");
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices (each row must have equal length).
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or the row lengths differ.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "at least one row required");
        let ncols = rows[0].len();
        assert!(ncols > 0, "rows must be non-empty");
        let mut m = Matrix::zeros(rows.len(), ncols);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.len(), ncols, "all rows must have the same length");
            for (j, &v) in row.iter().enumerate() {
                m[(i, j)] = v;
            }
        }
        m
    }

    /// Creates a matrix by evaluating `f(i, j)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for j in 0..cols {
            for i in 0..rows {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a column vector from a slice.
    ///
    /// # Panics
    ///
    /// Panics if `v` is empty.
    pub fn col_vector(v: &[f64]) -> Self {
        Matrix::from_col_major(v.len(), 1, v.to_vec())
    }

    /// Creates a square diagonal matrix from the given diagonal entries.
    ///
    /// # Panics
    ///
    /// Panics if `d` is empty.
    pub fn from_diagonal(d: &[f64]) -> Self {
        let mut m = Matrix::zeros(d.len(), d.len());
        for (i, &v) in d.iter().enumerate() {
            m[(i, i)] = v;
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Whether the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// The raw column-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable access to the raw column-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Column `j` as a contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn col(&self, j: usize) -> &[f64] {
        assert!(j < self.cols, "column index out of bounds");
        &self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Column `j` as a mutable contiguous slice.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of bounds.
    pub fn col_mut(&mut self, j: usize) -> &mut [f64] {
        assert!(j < self.cols, "column index out of bounds");
        &mut self.data[j * self.rows..(j + 1) * self.rows]
    }

    /// Two distinct columns as mutable slices.
    ///
    /// # Panics
    ///
    /// Panics if the indices are equal or out of bounds.
    pub fn cols_mut2(&mut self, j1: usize, j2: usize) -> (&mut [f64], &mut [f64]) {
        assert!(j1 != j2, "column indices must differ");
        assert!(
            j1 < self.cols && j2 < self.cols,
            "column index out of bounds"
        );
        let r = self.rows;
        if j1 < j2 {
            let (a, b) = self.data.split_at_mut(j2 * r);
            (&mut a[j1 * r..(j1 + 1) * r], &mut b[..r])
        } else {
            let (a, b) = self.data.split_at_mut(j1 * r);
            let (x, y) = (&mut b[..r], &mut a[j2 * r..(j2 + 1) * r]);
            (x, y)
        }
    }

    /// Returns the transposed matrix (an explicit copy).
    #[must_use]
    pub fn transposed(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for j in 0..self.cols {
            for i in 0..self.rows {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Swaps rows `r1` and `r2` in place.
    ///
    /// # Panics
    ///
    /// Panics if an index is out of bounds.
    pub fn swap_rows(&mut self, r1: usize, r2: usize) {
        assert!(r1 < self.rows && r2 < self.rows, "row index out of bounds");
        if r1 == r2 {
            return;
        }
        for j in 0..self.cols {
            self.data.swap(r1 + j * self.rows, r2 + j * self.rows);
        }
    }

    /// The Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// The largest absolute entry-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// Whether all entries are within `tol` of `other`, relative to the
    /// magnitude of the entries (mixed absolute/relative test).
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        if self.shape() != other.shape() {
            return false;
        }
        self.data.iter().zip(&other.data).all(|(a, b)| {
            let scale = 1.0_f64.max(a.abs()).max(b.abs());
            (a - b).abs() <= tol * scale
        })
    }

    /// Numerically checks lower-triangularity (entries above the
    /// diagonal are at most `tol` in magnitude).
    pub fn is_lower_triangular(&self, tol: f64) -> bool {
        for j in 0..self.cols {
            for i in 0..j.min(self.rows) {
                if self[(i, j)].abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Numerically checks upper-triangularity.
    pub fn is_upper_triangular(&self, tol: f64) -> bool {
        for j in 0..self.cols {
            for i in (j + 1)..self.rows {
                if self[(i, j)].abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Numerically checks symmetry.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if !self.is_square() {
            return false;
        }
        for j in 0..self.cols {
            for i in 0..j {
                if (self[(i, j)] - self[(j, i)]).abs() > tol {
                    return false;
                }
            }
        }
        true
    }

    /// Numerically checks diagonality.
    pub fn is_diagonal(&self, tol: f64) -> bool {
        self.is_lower_triangular(tol) && self.is_upper_triangular(tol)
    }

    /// Extracts the main diagonal.
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self[(i, i)])
            .collect()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &self.data[i + j * self.rows]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        debug_assert!(i < self.rows && j < self.cols, "index out of bounds");
        &mut self.data[i + j * self.rows]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        let max_show = 8;
        for i in 0..self.rows.min(max_show) {
            write!(f, "  ")?;
            for j in 0..self.cols.min(max_show) {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            if self.cols > max_show {
                write!(f, "…")?;
            }
            writeln!(f)?;
        }
        if self.rows > max_show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_identity() {
        let z = Matrix::zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let i = Matrix::identity(3);
        assert_eq!(i[(0, 0)], 1.0);
        assert_eq!(i[(0, 1)], 0.0);
        assert!(i.is_diagonal(0.0));
    }

    #[test]
    fn from_rows_layout() {
        let m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(m[(0, 0)], 1.0);
        assert_eq!(m[(1, 2)], 6.0);
        // Column-major: first column is [1, 4].
        assert_eq!(m.col(0), &[1.0, 4.0]);
    }

    #[test]
    fn transposed() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]);
        let t = m.transposed();
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t[(0, 2)], 5.0);
        assert_eq!(t.transposed(), m);
    }

    #[test]
    fn swap_rows() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        m.swap_rows(0, 1);
        assert_eq!(m, Matrix::from_rows(&[&[3.0, 4.0], &[1.0, 2.0]]));
    }

    #[test]
    fn norms_and_diffs() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert!((m.frobenius_norm() - 5.0).abs() < 1e-12);
        let n = Matrix::from_rows(&[&[3.0, 0.5], &[0.0, 4.0]]);
        assert!((m.max_abs_diff(&n) - 0.5).abs() < 1e-12);
        assert!(m.approx_eq(&m, 1e-15));
        assert!(!m.approx_eq(&n, 1e-3));
    }

    #[test]
    fn structure_checks() {
        let l = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 3.0]]);
        assert!(l.is_lower_triangular(0.0));
        assert!(!l.is_upper_triangular(0.0));
        assert!(!l.is_symmetric(0.0));
        let s = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 3.0]]);
        assert!(s.is_symmetric(0.0));
        let d = Matrix::from_diagonal(&[1.0, 2.0]);
        assert!(d.is_diagonal(0.0));
        assert_eq!(d.diagonal(), vec![1.0, 2.0]);
    }

    #[test]
    fn cols_mut2_both_orders() {
        let mut m = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        {
            let (c0, c2) = m.cols_mut2(0, 2);
            c0[0] = 10.0;
            c2[1] = 60.0;
        }
        assert_eq!(m[(0, 0)], 10.0);
        assert_eq!(m[(1, 2)], 60.0);
        {
            let (c2, c0) = m.cols_mut2(2, 0);
            c2[0] = 30.0;
            c0[1] = 40.0;
        }
        assert_eq!(m[(0, 2)], 30.0);
        assert_eq!(m[(1, 0)], 40.0);
    }

    #[test]
    fn from_fn_and_col_vector() {
        let m = Matrix::from_fn(2, 2, |i, j| (i * 10 + j) as f64);
        assert_eq!(m[(1, 0)], 10.0);
        let v = Matrix::col_vector(&[1.0, 2.0, 3.0]);
        assert_eq!(v.shape(), (3, 1));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dims_panic() {
        let _ = Matrix::zeros(0, 1);
    }

    #[test]
    fn triangle_flip() {
        assert_eq!(Triangle::Lower.flip(), Triangle::Upper);
        assert_eq!(Triangle::Upper.flip(), Triangle::Lower);
    }
}
