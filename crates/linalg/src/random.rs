//! Random matrix generators for tests, experiments and benchmarks.
//!
//! Structured generators return matrices that actually have the claimed
//! property (numerically, not just symbolically), with conditioning good
//! enough for the solve kernels: inverted operands in the paper's random
//! chains (Sec. 4) must be safely invertible.

use crate::Matrix;
use rand::Rng;

/// A general dense matrix with entries uniform in `[-1, 1]`.
pub fn general(rng: &mut impl Rng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen_range(-1.0..1.0))
}

/// A square matrix that is comfortably invertible: random entries plus a
/// diagonal shift of `n` (diagonally dominant in expectation).
pub fn invertible(rng: &mut impl Rng, n: usize) -> Matrix {
    let mut a = general(rng, n, n);
    for i in 0..n {
        a[(i, i)] += n as f64;
    }
    a
}

/// A lower triangular matrix with a well-conditioned diagonal
/// (entries in `±[1, 2]`).
pub fn lower_triangular(rng: &mut impl Rng, n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        if i > j {
            rng.gen_range(-1.0..1.0)
        } else if i == j {
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            sign * rng.gen_range(1.0..2.0)
        } else {
            0.0
        }
    })
}

/// An upper triangular matrix with a well-conditioned diagonal.
pub fn upper_triangular(rng: &mut impl Rng, n: usize) -> Matrix {
    lower_triangular(rng, n).transposed()
}

/// A unit lower triangular matrix (ones on the diagonal).
pub fn unit_lower_triangular(rng: &mut impl Rng, n: usize) -> Matrix {
    Matrix::from_fn(n, n, |i, j| {
        if i > j {
            rng.gen_range(-1.0..1.0)
        } else if i == j {
            1.0
        } else {
            0.0
        }
    })
}

/// A symmetric matrix (`(A + Aᵀ)/2` of a random `A`).
pub fn symmetric(rng: &mut impl Rng, n: usize) -> Matrix {
    let a = general(rng, n, n);
    Matrix::from_fn(n, n, |i, j| 0.5 * (a[(i, j)] + a[(j, i)]))
}

/// A symmetric positive definite matrix (`AᵀA/n + I`).
pub fn spd(rng: &mut impl Rng, n: usize) -> Matrix {
    let a = general(rng, n, n);
    let mut s = crate::blas3::syrk(1.0 / n as f64, &a, true);
    for i in 0..n {
        s[(i, i)] += 1.0;
    }
    s
}

/// A diagonal matrix, safely invertible (entries in `±[0.5, 1.5]`).
pub fn diagonal(rng: &mut impl Rng, n: usize) -> Matrix {
    let d: Vec<f64> = (0..n)
        .map(|_| {
            let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
            sign * rng.gen_range(0.5..1.5)
        })
        .collect();
    Matrix::from_diagonal(&d)
}

/// An orthogonal matrix: the product of `n` random Householder
/// reflections applied to the identity.
pub fn orthogonal(rng: &mut impl Rng, n: usize) -> Matrix {
    let mut q = Matrix::identity(n);
    for _ in 0..n {
        // Householder vector v, normalized.
        let mut v: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let norm = crate::blas1::nrm2(&v);
        if norm < 1e-12 {
            continue;
        }
        for x in &mut v {
            *x /= norm;
        }
        // Q := (I - 2vvᵀ)·Q, i.e. subtract 2·v·(vᵀQ).
        let vt_q = crate::blas2::gemv(1.0, &q, true, &v);
        for (j, &vq) in vt_q.iter().enumerate() {
            crate::blas1::axpy(-2.0 * vq, &v, q.col_mut(j));
        }
    }
    q
}

/// A random permutation matrix.
pub fn permutation(rng: &mut impl Rng, n: usize) -> Matrix {
    let mut perm: Vec<usize> = (0..n).collect();
    // Fisher-Yates shuffle.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    let mut p = Matrix::zeros(n, n);
    for (i, &pi) in perm.iter().enumerate() {
        p[(i, pi)] = 1.0;
    }
    p
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::gemm_ref;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(123)
    }

    #[test]
    fn structured_generators_have_their_property() {
        let mut r = rng();
        assert!(lower_triangular(&mut r, 8).is_lower_triangular(0.0));
        assert!(upper_triangular(&mut r, 8).is_upper_triangular(0.0));
        assert!(symmetric(&mut r, 8).is_symmetric(0.0));
        assert!(diagonal(&mut r, 8).is_diagonal(0.0));
        let ul = unit_lower_triangular(&mut r, 8);
        assert!(ul.is_lower_triangular(0.0));
        assert!(ul.diagonal().iter().all(|&d| d == 1.0));
    }

    #[test]
    fn spd_is_positive_definite() {
        let mut r = rng();
        let a = spd(&mut r, 10);
        assert!(a.is_symmetric(1e-12));
        let mut chol = a.clone();
        assert!(crate::lapack::potrf(&mut chol).is_ok());
    }

    #[test]
    fn invertible_is_invertible() {
        let mut r = rng();
        let a = invertible(&mut r, 10);
        assert!(crate::lapack::getri(&a).is_ok());
    }

    #[test]
    fn orthogonal_satisfies_qtq_eq_i() {
        let mut r = rng();
        let q = orthogonal(&mut r, 8);
        let qtq = gemm_ref(&q.transposed(), &q);
        assert!(qtq.approx_eq(&Matrix::identity(8), 1e-10));
    }

    #[test]
    fn permutation_rows_and_cols_sum_to_one() {
        let mut r = rng();
        let p = permutation(&mut r, 9);
        for i in 0..9 {
            let row_sum: f64 = (0..9).map(|j| p[(i, j)]).sum();
            let col_sum: f64 = (0..9).map(|j| p[(j, i)]).sum();
            assert_eq!(row_sum, 1.0);
            assert_eq!(col_sum, 1.0);
        }
        let ptp = gemm_ref(&p.transposed(), &p);
        assert!(ptp.approx_eq(&Matrix::identity(9), 0.0));
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let a1 = general(&mut StdRng::seed_from_u64(5), 4, 4);
        let a2 = general(&mut StdRng::seed_from_u64(5), 4, 4);
        assert_eq!(a1, a2);
    }
}
