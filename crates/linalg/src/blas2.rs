//! BLAS level 2: matrix-vector operations.

use crate::{Matrix, Triangle};

/// `y := alpha · op(A) · x` where `op(A)` is `A` or `Aᵀ`.
///
/// # Panics
///
/// Panics if dimensions do not conform.
pub fn gemv(alpha: f64, a: &Matrix, trans: bool, x: &[f64]) -> Vec<f64> {
    let (m, n) = a.shape();
    if trans {
        assert_eq!(x.len(), m, "gemv: x length must equal rows(A) for Aᵀx");
        // y_j = alpha * dot(A[:,j], x): column-wise, cache friendly.
        (0..n)
            .map(|j| alpha * crate::blas1::dot(a.col(j), x))
            .collect()
    } else {
        assert_eq!(x.len(), n, "gemv: x length must equal cols(A)");
        let mut y = vec![0.0; m];
        for (j, &xj) in x.iter().enumerate() {
            crate::blas1::axpy(alpha * xj, a.col(j), &mut y);
        }
        y
    }
}

/// The rank-1 update `A := A + alpha · x yᵀ`.
///
/// # Panics
///
/// Panics if dimensions do not conform.
pub fn ger(alpha: f64, x: &[f64], y: &[f64], a: &mut Matrix) {
    let (m, n) = a.shape();
    assert_eq!(x.len(), m, "ger: x length must equal rows(A)");
    assert_eq!(y.len(), n, "ger: y length must equal cols(A)");
    for (j, &yj) in y.iter().enumerate() {
        crate::blas1::axpy(alpha * yj, x, a.col_mut(j));
    }
}

/// The outer product `alpha · x yᵀ` as a fresh matrix.
pub fn outer(alpha: f64, x: &[f64], y: &[f64]) -> Matrix {
    let mut a = Matrix::zeros(x.len(), y.len());
    ger(alpha, x, y, &mut a);
    a
}

/// `x := op(A) · x` with `A` triangular (in place).
///
/// Only the `tri` triangle of `A` is referenced; if `unit` is true the
/// diagonal is taken to be all ones. Performs about half the scalar
/// operations of a general `gemv`.
///
/// # Panics
///
/// Panics if `A` is not square or `x` has the wrong length.
pub fn trmv(tri: Triangle, a: &Matrix, trans: bool, unit: bool, x: &mut [f64]) {
    let n = a.rows();
    assert!(a.is_square(), "trmv: matrix must be square");
    assert_eq!(x.len(), n, "trmv: vector length mismatch");
    // Column-oriented for cache friendliness: when not transposed,
    // accumulate x_j · A[tri-part of column j] into a fresh buffer; when
    // transposed, entry i is a dot product with the (contiguous) part of
    // column i.
    let eff = if trans { tri.flip() } else { tri };
    if !trans {
        let mut y = vec![0.0; n];
        match eff {
            Triangle::Lower => {
                for j in 0..n {
                    let xj = x[j];
                    if xj != 0.0 {
                        let col = &a.col(j)[j..];
                        let out = &mut y[j..];
                        if unit {
                            out[0] += xj;
                            for (o, &v) in out.iter_mut().zip(col).skip(1) {
                                *o += xj * v;
                            }
                        } else {
                            for (o, &v) in out.iter_mut().zip(col) {
                                *o += xj * v;
                            }
                        }
                    }
                }
            }
            Triangle::Upper => {
                for j in 0..n {
                    let xj = x[j];
                    if xj != 0.0 {
                        let col = &a.col(j)[..=j];
                        let out = &mut y[..=j];
                        if unit {
                            out[j] += xj;
                            for (o, &v) in out.iter_mut().zip(col).take(j) {
                                *o += xj * v;
                            }
                        } else {
                            for (o, &v) in out.iter_mut().zip(col) {
                                *o += xj * v;
                            }
                        }
                    }
                }
            }
        }
        x.copy_from_slice(&y);
    } else {
        // op(A) = Aᵀ with storage triangle `tri`: y_i = dot of column i's
        // triangle with x.
        let mut y = vec![0.0; n];
        match tri {
            Triangle::Lower => {
                // (Aᵀ)_ij = A_ji, j ≥ i: y_i = Σ_{j≥i} A[j,i] x[j].
                for (i, yi) in y.iter_mut().enumerate() {
                    let col = &a.col(i)[i..];
                    let xs = &x[i..];
                    *yi = if unit {
                        xs[0] + crate::blas1::dot(&col[1..], &xs[1..])
                    } else {
                        crate::blas1::dot(col, xs)
                    };
                }
            }
            Triangle::Upper => {
                // y_i = Σ_{j≤i} A[j,i] x[j].
                for (i, yi) in y.iter_mut().enumerate() {
                    let col = &a.col(i)[..=i];
                    let xs = &x[..=i];
                    *yi = if unit {
                        xs[i] + crate::blas1::dot(&col[..i], &xs[..i])
                    } else {
                        crate::blas1::dot(col, xs)
                    };
                }
            }
        }
        x.copy_from_slice(&y);
    }
}

/// `x := op(A)⁻¹ · x` with `A` triangular (in place): forward or backward
/// substitution.
///
/// # Panics
///
/// Panics if `A` is not square, `x` has the wrong length, or (in debug
/// builds) a diagonal entry is zero.
pub fn trsv(tri: Triangle, a: &Matrix, trans: bool, unit: bool, x: &mut [f64]) {
    let n = a.rows();
    assert!(a.is_square(), "trsv: matrix must be square");
    assert_eq!(x.len(), n, "trsv: vector length mismatch");
    if !trans {
        // Column sweep: after fixing x_j, eliminate it from the
        // remaining entries using the contiguous column tail.
        match tri {
            Triangle::Lower => {
                for j in 0..n {
                    let col = a.col(j);
                    if !unit {
                        x[j] /= col[j];
                    }
                    let xj = x[j];
                    if xj != 0.0 {
                        for (xi, &v) in x[j + 1..].iter_mut().zip(&col[j + 1..]) {
                            *xi -= xj * v;
                        }
                    }
                }
            }
            Triangle::Upper => {
                for j in (0..n).rev() {
                    let col = a.col(j);
                    if !unit {
                        x[j] /= col[j];
                    }
                    let xj = x[j];
                    if xj != 0.0 {
                        for (xi, &v) in x[..j].iter_mut().zip(&col[..j]) {
                            *xi -= xj * v;
                        }
                    }
                }
            }
        }
    } else {
        // Solve op(A)x = b with op(A) = Aᵀ: dot-product form over the
        // contiguous stored columns.
        match tri {
            Triangle::Lower => {
                // Aᵀ is upper: back substitution; row i of Aᵀ is column
                // i of A (entries j ≥ i).
                for i in (0..n).rev() {
                    let col = a.col(i);
                    let acc = crate::blas1::dot(&col[i + 1..], &x[i + 1..]);
                    let v = x[i] - acc;
                    x[i] = if unit { v } else { v / col[i] };
                }
            }
            Triangle::Upper => {
                // Aᵀ is lower: forward substitution.
                for i in 0..n {
                    let col = a.col(i);
                    let acc = crate::blas1::dot(&col[..i], &x[..i]);
                    let v = x[i] - acc;
                    x[i] = if unit { v } else { v / col[i] };
                }
            }
        }
    }
}

/// `y := alpha · A · x` with `A` symmetric (full storage referenced).
///
/// # Panics
///
/// Panics if `A` is not square or `x` has the wrong length.
pub fn symv(alpha: f64, a: &Matrix, x: &[f64]) -> Vec<f64> {
    assert!(a.is_square(), "symv: matrix must be square");
    gemv(alpha, a, false, x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a23() -> Matrix {
        Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn gemv_no_trans() {
        let y = gemv(1.0, &a23(), false, &[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![6.0, 15.0]);
    }

    #[test]
    fn gemv_trans() {
        let y = gemv(1.0, &a23(), true, &[1.0, 1.0]);
        assert_eq!(y, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn gemv_alpha() {
        let y = gemv(2.0, &a23(), false, &[1.0, 0.0, 0.0]);
        assert_eq!(y, vec![2.0, 8.0]);
    }

    #[test]
    fn ger_and_outer() {
        let m = outer(1.0, &[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(m[(0, 0)], 3.0);
        assert_eq!(m[(1, 2)], 10.0);
        let mut a = Matrix::identity(2);
        ger(1.0, &[1.0, 0.0], &[0.0, 1.0], &mut a);
        assert_eq!(a[(0, 1)], 1.0);
        assert_eq!(a[(0, 0)], 1.0);
    }

    fn lower3() -> Matrix {
        Matrix::from_rows(&[&[2.0, 0.0, 0.0], &[1.0, 3.0, 0.0], &[4.0, 5.0, 6.0]])
    }

    #[test]
    fn trmv_lower() {
        let mut x = vec![1.0, 1.0, 1.0];
        trmv(Triangle::Lower, &lower3(), false, false, &mut x);
        assert_eq!(x, vec![2.0, 4.0, 15.0]);
    }

    #[test]
    fn trmv_lower_trans() {
        // Lᵀ is upper triangular.
        let mut x = vec![1.0, 1.0, 1.0];
        trmv(Triangle::Lower, &lower3(), true, false, &mut x);
        assert_eq!(x, vec![7.0, 8.0, 6.0]);
    }

    #[test]
    fn trmv_unit_ignores_diagonal() {
        let mut x = vec![1.0, 1.0, 1.0];
        trmv(Triangle::Lower, &lower3(), false, true, &mut x);
        // Unit diagonal: row i sums strictly-lower entries plus x_i.
        assert_eq!(x, vec![1.0, 2.0, 10.0]);
    }

    #[test]
    fn trsv_round_trips_trmv() {
        let a = lower3();
        for (trans, unit) in [(false, false), (true, false), (false, true), (true, true)] {
            let x0 = vec![1.0, -2.0, 0.5];
            let mut x = x0.clone();
            trmv(Triangle::Lower, &a, trans, unit, &mut x);
            trsv(Triangle::Lower, &a, trans, unit, &mut x);
            for (a, b) in x.iter().zip(&x0) {
                assert!((a - b).abs() < 1e-12, "trans={trans} unit={unit}");
            }
        }
    }

    #[test]
    fn trsv_upper() {
        let u = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 4.0]]);
        let mut x = vec![4.0, 8.0];
        trsv(Triangle::Upper, &u, false, false, &mut x);
        // Solve: 4x1 = 8 → x1 = 2; 2x0 + 1·2 = 4 → x0 = 1.
        assert_eq!(x, vec![1.0, 2.0]);
    }

    #[test]
    fn symv_matches_gemv() {
        let s = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        assert_eq!(symv(1.0, &s, &[1.0, 1.0]), vec![3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "square")]
    fn trmv_requires_square() {
        let mut x = vec![1.0, 1.0, 1.0];
        trmv(Triangle::Lower, &a23(), false, false, &mut x);
    }
}
