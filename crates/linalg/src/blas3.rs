//! BLAS level 3: matrix-matrix operations.

use crate::{Matrix, Triangle};

/// Which side a triangular/symmetric operand multiplies from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Side {
    /// `C := op(A) · B`.
    Left,
    /// `C := B · op(A)`.
    Right,
}

/// General matrix-matrix product `alpha · op(A) · op(B)`.
///
/// `ta`/`tb` select transposition of the respective operand, mirroring
/// the BLAS `GEMM` transpose flags. Cost: `2·m·n·k` FLOPs.
///
/// # Panics
///
/// Panics if the inner dimensions of `op(A)` and `op(B)` differ.
pub fn gemm(alpha: f64, a: &Matrix, ta: bool, b: &Matrix, tb: bool) -> Matrix {
    match (ta, tb) {
        (false, false) => gemm_nn(alpha, a, b),
        (true, false) => gemm_tn(alpha, a, b),
        (false, true) => gemm_nt(alpha, a, b),
        // AᵀBᵀ = (B·A)ᵀ: one result transpose instead of two operand
        // copies.
        (true, true) => gemm_nn(alpha, b, a).transposed(),
    }
}

/// `C := alpha·Aᵀ·B`: every output entry is a dot product of two
/// contiguous columns — no transpose copy needed.
fn gemm_tn(alpha: f64, a: &Matrix, b: &Matrix) -> Matrix {
    let (k, m) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "gemm: inner dimensions must agree");
    let mut c = Matrix::zeros(m, n);
    for j in 0..n {
        let b_col = b.col(j);
        let c_col = c.col_mut(j);
        for (i, ci) in c_col.iter_mut().enumerate() {
            *ci = alpha * crate::blas1::dot(a.col(i), b_col);
        }
    }
    c
}

/// `C := alpha·A·Bᵀ`: rank-1 accumulation over the shared dimension;
/// `Bᵀ`'s row `l` is `B`'s (contiguous) column `l`.
fn gemm_nt(alpha: f64, a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (n, k2) = b.shape();
    assert_eq!(k, k2, "gemm: inner dimensions must agree");
    if m == 1 {
        // Row-vector times Bᵀ: equals (B·aᵀ)ᵀ, a single contiguous
        // matrix-vector product.
        let y = crate::blas2::gemv(alpha, b, false, a.as_slice());
        return Matrix::from_col_major(1, n, y);
    }
    let mut c = Matrix::zeros(m, n);
    for l in 0..k {
        let a_col = a.col(l);
        let b_col = b.col(l);
        for (j, &blj) in b_col.iter().enumerate().take(n) {
            let f = alpha * blj;
            if f != 0.0 {
                crate::blas1::axpy(f, a_col, c.col_mut(j));
            }
        }
    }
    c
}

/// The `C := alpha·A·B` kernel (no transposes), using the cache-friendly
/// `j-l-i` loop order over contiguous columns.
fn gemm_nn(alpha: f64, a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "gemm: inner dimensions must agree");
    let mut c = Matrix::zeros(m, n);
    if m == 1 {
        // Row-vector times matrix: A's single row is contiguous in
        // column-major storage, so each output entry is one dot product.
        let a_row = a.as_slice();
        for j in 0..n {
            c.col_mut(j)[0] = alpha * crate::blas1::dot(a_row, b.col(j));
        }
        return c;
    }
    for j in 0..n {
        let b_col = b.col(j);
        let c_col = c.col_mut(j);
        for (l, &blj) in b_col.iter().enumerate().take(k) {
            let f = alpha * blj;
            if f != 0.0 {
                let a_col = a.col(l);
                for i in 0..m {
                    c_col[i] += f * a_col[i];
                }
            }
        }
    }
    c
}

/// Reference (naive triple-loop) product used as a test oracle.
pub fn gemm_ref(a: &Matrix, b: &Matrix) -> Matrix {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "gemm_ref: inner dimensions must agree");
    Matrix::from_fn(m, n, |i, j| (0..k).map(|l| a[(i, l)] * b[(l, j)]).sum())
}

/// Triangular matrix-matrix product, `C := alpha·op(A)·B` (left) or
/// `C := alpha·B·op(A)` (right), with `A` triangular.
///
/// Only the `tri` triangle of `A` is referenced (`unit` replaces the
/// diagonal with ones). Performs about half the scalar operations of
/// [`gemm`] — `m²n` FLOPs — which is where property-aware kernel
/// selection gets its real speedups.
///
/// # Panics
///
/// Panics if `A` is not square or dimensions do not conform.
pub fn trmm(
    side: Side,
    tri: Triangle,
    trans: bool,
    unit: bool,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
) -> Matrix {
    assert!(a.is_square(), "trmm: triangular operand must be square");
    match side {
        Side::Left => {
            assert_eq!(a.cols(), b.rows(), "trmm: inner dimensions must agree");
            let mut c = b.clone();
            for j in 0..c.cols() {
                crate::blas2::trmv(tri, a, trans, unit, c.col_mut(j));
            }
            if alpha != 1.0 {
                crate::blas1::scal(alpha, c.as_mut_slice());
            }
            c
        }
        Side::Right => {
            assert_eq!(b.cols(), a.rows(), "trmm: inner dimensions must agree");
            // B·op(A) = (op(A)ᵀ · Bᵀ)ᵀ.
            let bt = b.transposed();
            let ct = trmm(Side::Left, tri, !trans, unit, alpha, a, &bt);
            ct.transposed()
        }
    }
}

/// Triangular solve with multiple right-hand sides:
/// `X := alpha·op(A)⁻¹·B` (left) or `X := alpha·B·op(A)⁻¹` (right).
///
/// Cost: `m²n` FLOPs, like [`trmm`].
///
/// # Panics
///
/// Panics if `A` is not square or dimensions do not conform.
pub fn trsm(
    side: Side,
    tri: Triangle,
    trans: bool,
    unit: bool,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
) -> Matrix {
    assert!(a.is_square(), "trsm: triangular operand must be square");
    match side {
        Side::Left => {
            assert_eq!(a.cols(), b.rows(), "trsm: inner dimensions must agree");
            let mut x = b.clone();
            for j in 0..x.cols() {
                crate::blas2::trsv(tri, a, trans, unit, x.col_mut(j));
            }
            if alpha != 1.0 {
                crate::blas1::scal(alpha, x.as_mut_slice());
            }
            x
        }
        Side::Right => {
            assert_eq!(b.cols(), a.rows(), "trsm: inner dimensions must agree");
            let bt = b.transposed();
            let xt = trsm(Side::Left, tri, !trans, unit, alpha, a, &bt);
            xt.transposed()
        }
    }
}

/// Symmetric matrix-matrix product `C := alpha·A·B` (left) or
/// `C := alpha·B·A` (right) with `A` symmetric.
///
/// The computation references the full (redundant) storage of `A`; the
/// arithmetic volume matches `gemm`, as in reference BLAS. The *cost
/// model* in `gmc-kernels` prices `SYMM` at half a `GEMM` following the
/// paper's Table 1.
///
/// # Panics
///
/// Panics if `A` is not square or dimensions do not conform.
pub fn symm(side: Side, alpha: f64, a: &Matrix, b: &Matrix) -> Matrix {
    assert!(a.is_square(), "symm: symmetric operand must be square");
    match side {
        Side::Left => gemm(alpha, a, false, b, false),
        Side::Right => gemm(alpha, b, false, a, false),
    }
}

/// Symmetric rank-k update: `C := alpha·AᵀA` (if `trans`) or
/// `C := alpha·A·Aᵀ`.
///
/// Only one triangle is computed and then mirrored, so the arithmetic
/// volume is about half of the equivalent `gemm` — `m²k` FLOPs (paper
/// Table 1). The returned matrix is full (both triangles populated).
pub fn syrk(alpha: f64, a: &Matrix, trans: bool) -> Matrix {
    let (rows, cols) = a.shape();
    let (n, k) = if trans { (cols, rows) } else { (rows, cols) };
    let mut c = Matrix::zeros(n, n);
    if trans {
        // C[i][j] = dot(A[:,i], A[:,j]) for the lower triangle j <= i.
        for j in 0..n {
            for i in j..n {
                let v = alpha * crate::blas1::dot(a.col(i), a.col(j));
                c[(i, j)] = v;
            }
        }
    } else {
        // C += a_l · a_lᵀ accumulated over columns l, lower triangle only.
        for l in 0..k {
            let a_col = a.col(l);
            for j in 0..n {
                let f = alpha * a_col[j];
                if f != 0.0 {
                    for i in j..n {
                        c[(i, j)] += f * a_col[i];
                    }
                }
            }
        }
    }
    // Mirror the lower triangle to the upper.
    for j in 0..n {
        for i in (j + 1)..n {
            c[(j, i)] = c[(i, j)];
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::random;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn gemm_matches_reference_all_transpose_combos() {
        let mut r = rng();
        let a = random::general(&mut r, 5, 7);
        let b = random::general(&mut r, 7, 4);
        for (ta, tb) in [(false, false), (true, false), (false, true), (true, true)] {
            let a_use = if ta { a.transposed() } else { a.clone() };
            let b_use = if tb { b.transposed() } else { b.clone() };
            let got = gemm(1.0, &a_use, ta, &b_use, tb);
            let want = gemm_ref(&a, &b);
            assert!(got.approx_eq(&want, 1e-12), "ta={ta} tb={tb}");
        }
    }

    #[test]
    fn gemm_alpha_scaling() {
        let a = Matrix::identity(3);
        let b = Matrix::from_fn(3, 2, |i, j| (i + j) as f64);
        let c = gemm(2.5, &a, false, &b, false);
        assert!(c.approx_eq(&Matrix::from_fn(3, 2, |i, j| 2.5 * (i + j) as f64), 1e-14));
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn gemm_dimension_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = gemm(1.0, &a, false, &b, false);
    }

    #[test]
    fn trmm_left_lower_matches_gemm_on_triangle() {
        let mut r = rng();
        let a = random::lower_triangular(&mut r, 6);
        let b = random::general(&mut r, 6, 3);
        let got = trmm(Side::Left, Triangle::Lower, false, false, 1.0, &a, &b);
        let want = gemm_ref(&a, &b);
        assert!(got.approx_eq(&want, 1e-12));
    }

    #[test]
    fn trmm_right_and_transposed() {
        let mut r = rng();
        let a = random::upper_triangular(&mut r, 4);
        let b = random::general(&mut r, 3, 4);
        // B·Aᵀ.
        let got = trmm(Side::Right, Triangle::Upper, true, false, 1.0, &a, &b);
        let want = gemm_ref(&b, &a.transposed());
        assert!(got.approx_eq(&want, 1e-12));
    }

    #[test]
    fn trmm_only_references_selected_triangle() {
        let mut r = rng();
        let mut a = random::lower_triangular(&mut r, 4);
        // Garbage in the upper triangle must not affect the result.
        let clean = trmm(
            Side::Left,
            Triangle::Lower,
            false,
            false,
            1.0,
            &a,
            &Matrix::identity(4),
        );
        a[(0, 3)] = 1234.0;
        let dirty = trmm(
            Side::Left,
            Triangle::Lower,
            false,
            false,
            1.0,
            &a,
            &Matrix::identity(4),
        );
        assert!(clean.approx_eq(&dirty, 0.0));
    }

    #[test]
    fn trsm_inverts_trmm() {
        let mut r = rng();
        for side in [Side::Left, Side::Right] {
            for tri in [Triangle::Lower, Triangle::Upper] {
                for trans in [false, true] {
                    for unit in [false, true] {
                        let a = match tri {
                            Triangle::Lower => random::lower_triangular(&mut r, 5),
                            Triangle::Upper => random::upper_triangular(&mut r, 5),
                        };
                        let b = match side {
                            Side::Left => random::general(&mut r, 5, 3),
                            Side::Right => random::general(&mut r, 3, 5),
                        };
                        let prod = trmm(side, tri, trans, unit, 1.0, &a, &b);
                        let back = trsm(side, tri, trans, unit, 1.0, &a, &prod);
                        assert!(
                            back.approx_eq(&b, 1e-9),
                            "side={side:?} tri={tri:?} trans={trans} unit={unit}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn symm_matches_gemm() {
        let mut r = rng();
        let s = random::symmetric(&mut r, 5);
        let b = random::general(&mut r, 5, 3);
        let got = symm(Side::Left, 1.0, &s, &b);
        assert!(got.approx_eq(&gemm_ref(&s, &b), 1e-12));
        let b2 = random::general(&mut r, 3, 5);
        let got = symm(Side::Right, 1.0, &s, &b2);
        assert!(got.approx_eq(&gemm_ref(&b2, &s), 1e-12));
    }

    #[test]
    fn syrk_matches_gemm() {
        let mut r = rng();
        let a = random::general(&mut r, 6, 4);
        // AᵀA.
        let got = syrk(1.0, &a, true);
        assert!(got.approx_eq(&gemm_ref(&a.transposed(), &a), 1e-12));
        assert!(got.is_symmetric(1e-12));
        // A·Aᵀ.
        let got = syrk(1.0, &a, false);
        assert!(got.approx_eq(&gemm_ref(&a, &a.transposed()), 1e-12));
        assert!(got.is_symmetric(1e-12));
    }

    #[test]
    fn syrk_alpha() {
        let a = Matrix::identity(3);
        let c = syrk(3.0, &a, true);
        assert!(c.approx_eq(&Matrix::from_diagonal(&[3.0, 3.0, 3.0]), 1e-14));
    }
}
