//! Kernels specialized for diagonal operands.
//!
//! A diagonal matrix is stored (for these routines) as its diagonal
//! vector; multiplying or solving costs only `m·n` FLOPs, which is what
//! makes `Diagonal` such a valuable property for the GMC cost model.

use crate::{LinalgError, Matrix};

/// `C := D·B` where `D = diag(d)` — scales row `i` of `B` by `d[i]`.
///
/// # Panics
///
/// Panics if `d.len() != B.rows()`.
pub fn dgmm_left(d: &[f64], b: &Matrix) -> Matrix {
    assert_eq!(d.len(), b.rows(), "dgmm_left: dimension mismatch");
    let mut c = b.clone();
    for j in 0..c.cols() {
        let col = c.col_mut(j);
        for (i, v) in col.iter_mut().enumerate() {
            *v *= d[i];
        }
    }
    c
}

/// `C := B·D` where `D = diag(d)` — scales column `j` of `B` by `d[j]`.
///
/// # Panics
///
/// Panics if `d.len() != B.cols()`.
pub fn dgmm_right(b: &Matrix, d: &[f64]) -> Matrix {
    assert_eq!(d.len(), b.cols(), "dgmm_right: dimension mismatch");
    let mut c = b.clone();
    for (j, &dj) in d.iter().enumerate() {
        crate::blas1::scal(dj, c.col_mut(j));
    }
    c
}

/// Inverts a diagonal (given as a vector).
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] if any entry is zero.
pub fn diag_inv(d: &[f64]) -> Result<Vec<f64>, LinalgError> {
    d.iter()
        .enumerate()
        .map(|(i, &v)| {
            if v == 0.0 {
                Err(LinalgError::Singular { pivot: i })
            } else {
                Ok(1.0 / v)
            }
        })
        .collect()
}

/// `X := D⁻¹·B` — the diagonal left solve.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] if any diagonal entry is zero.
///
/// # Panics
///
/// Panics if `d.len() != B.rows()`.
pub fn dgsv_left(d: &[f64], b: &Matrix) -> Result<Matrix, LinalgError> {
    Ok(dgmm_left(&diag_inv(d)?, b))
}

/// `X := B·D⁻¹` — the diagonal right solve.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] if any diagonal entry is zero.
///
/// # Panics
///
/// Panics if `d.len() != B.cols()`.
pub fn dgsv_right(b: &Matrix, d: &[f64]) -> Result<Matrix, LinalgError> {
    Ok(dgmm_right(b, &diag_inv(d)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::gemm_ref;

    #[test]
    fn dgmm_left_matches_gemm() {
        let d = [2.0, 3.0];
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let got = dgmm_left(&d, &b);
        let want = gemm_ref(&Matrix::from_diagonal(&d), &b);
        assert!(got.approx_eq(&want, 0.0));
    }

    #[test]
    fn dgmm_right_matches_gemm() {
        let d = [2.0, 3.0];
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let got = dgmm_right(&b, &d);
        let want = gemm_ref(&b, &Matrix::from_diagonal(&d));
        assert!(got.approx_eq(&want, 0.0));
    }

    #[test]
    fn diag_solve_round_trips() {
        let d = [2.0, -4.0];
        let b = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let x = dgsv_left(&d, &b).unwrap();
        assert!(dgmm_left(&d, &x).approx_eq(&b, 1e-15));
        let x = dgsv_right(&b, &d).unwrap();
        assert!(dgmm_right(&x, &d).approx_eq(&b, 1e-15));
    }

    #[test]
    fn diag_inv_detects_zero() {
        assert!(matches!(
            diag_inv(&[1.0, 0.0]),
            Err(LinalgError::Singular { pivot: 1 })
        ));
    }
}
