//! BLAS level 1: vector-vector operations.

/// The dot product `xᵀy`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// `y := alpha·x + y`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += alpha * xi;
    }
}

/// `x := alpha·x`.
pub fn scal(alpha: f64, x: &mut [f64]) {
    for xi in x {
        *xi *= alpha;
    }
}

/// The Euclidean norm `‖x‖₂`.
pub fn nrm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// The sum of absolute values `‖x‖₁`.
pub fn asum(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Index of the entry with the largest absolute value.
///
/// # Panics
///
/// Panics if `x` is empty.
pub fn iamax(x: &[f64]) -> usize {
    assert!(!x.is_empty(), "iamax: empty vector");
    let mut best = 0;
    let mut best_val = x[0].abs();
    for (i, v) in x.iter().enumerate().skip(1) {
        if v.abs() > best_val {
            best = i;
            best_val = v.abs();
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn axpy_basic() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn scal_basic() {
        let mut x = vec![1.0, -2.0];
        scal(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn nrm2_and_asum() {
        assert!((nrm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
        assert_eq!(asum(&[1.0, -2.0, 3.0]), 6.0);
    }

    #[test]
    fn iamax_basic() {
        assert_eq!(iamax(&[1.0, -5.0, 3.0]), 1);
        assert_eq!(iamax(&[0.0]), 0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
