//! A pure-Rust dense linear algebra substrate (mini-BLAS/LAPACK).
//!
//! The GMC paper evaluates generated kernel sequences against Intel MKL.
//! This crate is the self-contained substitute: a column-major dense
//! [`Matrix`] type with the BLAS-1/2/3 and LAPACK-style routines that
//! the kernel registry of `gmc-kernels` maps onto:
//!
//! * BLAS 1: [`blas1::dot`], [`blas1::axpy`], [`blas1::scal`], [`blas1::nrm2`]
//! * BLAS 2: [`blas2::gemv`], [`blas2::ger`], [`blas2::trmv`], [`blas2::trsv`], [`blas2::symv`]
//! * BLAS 3: [`blas3::gemm`], [`blas3::trmm`], [`blas3::trsm`], [`blas3::symm`], [`blas3::syrk`]
//! * LAPACK-style: [`lapack::getrf`], [`lapack::getrs`], [`lapack::gesv`],
//!   [`lapack::getri`], [`lapack::potrf`], [`lapack::potrs`], [`lapack::posv`],
//!   [`lapack::poinv`], [`lapack::trtri`]
//! * Diagonal specials: [`diag::dgmm_left`], [`diag::dgmm_right`], [`diag::dgsv_left`], [`diag::dgsv_right`]
//!
//! Triangular and rank-k routines really do perform roughly half the
//! scalar operations of their general counterparts, so the *measured*
//! speedups of property-aware kernel selection are genuine, as in the
//! paper's experiments.
//!
//! # Example
//!
//! ```
//! use gmc_linalg::{Matrix, blas3};
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! let c = blas3::gemm(1.0, &a, false, &b, false);
//! assert_eq!(c, a);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod blas1;
pub mod blas2;
pub mod blas3;
pub mod diag;
pub mod lapack;
mod matrix;
pub mod random;

pub use blas3::Side;
pub use matrix::{Matrix, Triangle};

/// Errors reported by factorizations and solvers.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// A pivot (or diagonal entry) vanished; the matrix is singular to
    /// working precision.
    Singular {
        /// Index of the offending pivot.
        pivot: usize,
    },
    /// A Cholesky factorization encountered a non-positive leading minor;
    /// the matrix is not positive definite.
    NotPositiveDefinite {
        /// Index of the offending leading minor.
        minor: usize,
    },
    /// Operand dimensions do not conform.
    DimensionMismatch {
        /// Description of the offending call.
        context: String,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot at index {pivot})")
            }
            LinalgError::NotPositiveDefinite { minor } => {
                write!(f, "matrix is not positive definite (leading minor {minor})")
            }
            LinalgError::DimensionMismatch { context } => {
                write!(f, "dimension mismatch: {context}")
            }
        }
    }
}

impl std::error::Error for LinalgError {}
