//! LAPACK-style factorizations and solvers.

use crate::blas3::{trsm, Side};
use crate::{LinalgError, Matrix, Triangle};

/// LU factorization with partial pivoting, in place (`GETRF`).
///
/// On success, `a` holds `L` (unit lower, below the diagonal) and `U`
/// (upper, including the diagonal), and the returned `ipiv` records the
/// row swapped with row `i` at step `i`. Cost: `2/3·n³` FLOPs.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] if a pivot column is entirely zero.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn getrf(a: &mut Matrix) -> Result<Vec<usize>, LinalgError> {
    assert!(a.is_square(), "getrf: matrix must be square");
    let n = a.rows();
    let mut ipiv = Vec::with_capacity(n);
    for k in 0..n {
        // Pivot search in column k, rows k..n.
        let mut p = k;
        let mut best = a[(k, k)].abs();
        for i in (k + 1)..n {
            if a[(i, k)].abs() > best {
                best = a[(i, k)].abs();
                p = i;
            }
        }
        if best == 0.0 {
            return Err(LinalgError::Singular { pivot: k });
        }
        ipiv.push(p);
        a.swap_rows(k, p);
        let pivot = a[(k, k)];
        // Scale multipliers and update the trailing submatrix.
        for i in (k + 1)..n {
            a[(i, k)] /= pivot;
        }
        for j in (k + 1)..n {
            let akj = a[(k, j)];
            if akj != 0.0 {
                for i in (k + 1)..n {
                    let l_ik = a[(i, k)];
                    a[(i, j)] -= l_ik * akj;
                }
            }
        }
    }
    Ok(ipiv)
}

/// Solves `op(A)·X = B` given the factorization from [`getrf`] (`GETRS`).
///
/// # Panics
///
/// Panics if the dimensions do not conform.
pub fn getrs(lu: &Matrix, ipiv: &[usize], b: &Matrix, trans: bool) -> Matrix {
    assert!(lu.is_square(), "getrs: factor must be square");
    assert_eq!(lu.rows(), b.rows(), "getrs: dimension mismatch");
    assert_eq!(ipiv.len(), lu.rows(), "getrs: pivot vector length mismatch");
    let mut x = b.clone();
    if !trans {
        // A = P⁻¹LU with row swaps recorded in ipiv: apply swaps, then
        // L y = Pb (unit lower), then U x = y.
        for (k, &p) in ipiv.iter().enumerate() {
            x.swap_rows(k, p);
        }
        x = trsm(Side::Left, Triangle::Lower, false, true, 1.0, lu, &x);
        trsm(Side::Left, Triangle::Upper, false, false, 1.0, lu, &x)
    } else {
        // Aᵀ x = b ⇒ Uᵀ y = b, Lᵀ z = y, x = Pᵀ z (undo swaps in reverse).
        x = trsm(Side::Left, Triangle::Upper, true, false, 1.0, lu, &x);
        x = trsm(Side::Left, Triangle::Lower, true, true, 1.0, lu, &x);
        for (k, &p) in ipiv.iter().enumerate().rev() {
            x.swap_rows(k, p);
        }
        x
    }
}

/// Solves `A·X = B` for general square `A` (`GESV`): LU + two triangular
/// solves. Cost: `2/3·n³ + 2·n²·m` FLOPs.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] if `A` is singular.
///
/// # Panics
///
/// Panics if dimensions do not conform.
pub fn gesv(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    let mut lu = a.clone();
    let ipiv = getrf(&mut lu)?;
    Ok(getrs(&lu, &ipiv, b, false))
}

/// Solves `Aᵀ·X = B` for general square `A`.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] if `A` is singular.
pub fn gesv_trans(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    let mut lu = a.clone();
    let ipiv = getrf(&mut lu)?;
    Ok(getrs(&lu, &ipiv, b, true))
}

/// Solves `X·A = B` (right-sided general solve) via `Aᵀ·Xᵀ = Bᵀ`.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] if `A` is singular.
pub fn gesv_right(b: &Matrix, a: &Matrix) -> Result<Matrix, LinalgError> {
    Ok(gesv_trans(a, &b.transposed())?.transposed())
}

/// Explicit inverse of a general square matrix (`GETRF` + solve with the
/// identity). Cost modeled as `2·n³` FLOPs.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] if `A` is singular.
pub fn getri(a: &Matrix) -> Result<Matrix, LinalgError> {
    gesv(a, &Matrix::identity(a.rows()))
}

/// Cholesky factorization `A = L·Lᵀ` of an SPD matrix, in place
/// (`POTRF`, lower variant). On success the lower triangle holds `L` and
/// the strict upper triangle is zeroed. Cost: `1/3·n³` FLOPs.
///
/// # Errors
///
/// Returns [`LinalgError::NotPositiveDefinite`] if a leading minor is
/// not positive.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn potrf(a: &mut Matrix) -> Result<(), LinalgError> {
    assert!(a.is_square(), "potrf: matrix must be square");
    let n = a.rows();
    // Left-looking column Cholesky: update column j with all previous
    // columns (contiguous axpy operations), then scale.
    for j in 0..n {
        for k in 0..j {
            let l_jk = a[(j, k)];
            if l_jk != 0.0 {
                let (col_k, col_j) = a.cols_mut2(k, j);
                for (x, &v) in col_j[j..].iter_mut().zip(&col_k[j..]) {
                    *x -= l_jk * v;
                }
            }
        }
        let d = a[(j, j)];
        if d <= 0.0 {
            return Err(LinalgError::NotPositiveDefinite { minor: j });
        }
        let l_jj = d.sqrt();
        a[(j, j)] = l_jj;
        let col_j = a.col_mut(j);
        for x in &mut col_j[j + 1..] {
            *x /= l_jj;
        }
    }
    // Zero the strict upper triangle so the result is a clean L.
    for j in 1..n {
        for i in 0..j {
            a[(i, j)] = 0.0;
        }
    }
    Ok(())
}

/// Solves `A·X = B` given the Cholesky factor `L` from [`potrf`]
/// (`POTRS`): two triangular solves.
///
/// # Panics
///
/// Panics if dimensions do not conform.
pub fn potrs(l: &Matrix, b: &Matrix) -> Matrix {
    let y = trsm(Side::Left, Triangle::Lower, false, false, 1.0, l, b);
    trsm(Side::Left, Triangle::Lower, true, false, 1.0, l, &y)
}

/// Solves `A·X = B` for SPD `A` (`POSV`): Cholesky + two triangular
/// solves. Cost: `1/3·n³ + 2·n²·m` FLOPs.
///
/// # Errors
///
/// Returns [`LinalgError::NotPositiveDefinite`] if `A` is not SPD.
pub fn posv(a: &Matrix, b: &Matrix) -> Result<Matrix, LinalgError> {
    let mut l = a.clone();
    potrf(&mut l)?;
    Ok(potrs(&l, b))
}

/// Solves `X·A = B` for SPD `A`: by symmetry `A·Xᵀ = Bᵀ`.
///
/// # Errors
///
/// Returns [`LinalgError::NotPositiveDefinite`] if `A` is not SPD.
pub fn posv_right(b: &Matrix, a: &Matrix) -> Result<Matrix, LinalgError> {
    Ok(posv(a, &b.transposed())?.transposed())
}

/// Explicit inverse of an SPD matrix via Cholesky. Cost modeled as `n³`.
///
/// # Errors
///
/// Returns [`LinalgError::NotPositiveDefinite`] if `A` is not SPD.
pub fn poinv(a: &Matrix) -> Result<Matrix, LinalgError> {
    posv(a, &Matrix::identity(a.rows()))
}

/// Inverse of a triangular matrix (`TRTRI`-style), exploiting structure.
/// Cost: about `n³/3` FLOPs.
///
/// # Errors
///
/// Returns [`LinalgError::Singular`] on a zero diagonal entry (unless
/// `unit`).
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn trtri(a: &Matrix, tri: Triangle, unit: bool) -> Result<Matrix, LinalgError> {
    assert!(a.is_square(), "trtri: matrix must be square");
    let n = a.rows();
    if !unit {
        for i in 0..n {
            if a[(i, i)] == 0.0 {
                return Err(LinalgError::Singular { pivot: i });
            }
        }
    }
    let mut inv = Matrix::zeros(n, n);
    match tri {
        Triangle::Lower => {
            // Solve L·X = I column by column; column j of X is zero above j.
            for j in 0..n {
                inv[(j, j)] = if unit { 1.0 } else { 1.0 / a[(j, j)] };
                for i in (j + 1)..n {
                    let mut acc = 0.0;
                    for k in j..i {
                        acc += a[(i, k)] * inv[(k, j)];
                    }
                    let d = if unit { 1.0 } else { a[(i, i)] };
                    inv[(i, j)] = -acc / d;
                }
            }
        }
        Triangle::Upper => {
            for j in (0..n).rev() {
                inv[(j, j)] = if unit { 1.0 } else { 1.0 / a[(j, j)] };
                for i in (0..j).rev() {
                    let mut acc = 0.0;
                    for k in (i + 1)..=j {
                        acc += a[(i, k)] * inv[(k, j)];
                    }
                    let d = if unit { 1.0 } else { a[(i, i)] };
                    inv[(i, j)] = -acc / d;
                }
            }
        }
    }
    Ok(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::blas3::gemm_ref;
    use crate::random;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn getrf_getrs_solves() {
        let mut r = rng();
        let a = random::invertible(&mut r, 8);
        let b = random::general(&mut r, 8, 3);
        let x = gesv(&a, &b).unwrap();
        let back = gemm_ref(&a, &x);
        assert!(back.approx_eq(&b, 1e-9));
    }

    #[test]
    fn gesv_trans_solves_transposed_system() {
        let mut r = rng();
        let a = random::invertible(&mut r, 6);
        let b = random::general(&mut r, 6, 2);
        let x = gesv_trans(&a, &b).unwrap();
        assert!(gemm_ref(&a.transposed(), &x).approx_eq(&b, 1e-9));
    }

    #[test]
    fn gesv_right_solves_xa_eq_b() {
        let mut r = rng();
        let a = random::invertible(&mut r, 5);
        let b = random::general(&mut r, 3, 5);
        let x = gesv_right(&b, &a).unwrap();
        assert!(gemm_ref(&x, &a).approx_eq(&b, 1e-9));
    }

    #[test]
    fn getrf_detects_singularity() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let mut lu = a.clone();
        assert!(matches!(getrf(&mut lu), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn getri_inverts() {
        let mut r = rng();
        let a = random::invertible(&mut r, 7);
        let inv = getri(&a).unwrap();
        assert!(gemm_ref(&a, &inv).approx_eq(&Matrix::identity(7), 1e-8));
    }

    #[test]
    fn getrf_requires_pivoting() {
        // Zero in the (0,0) position: only works with pivoting.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = gesv(&a, &Matrix::identity(2)).unwrap();
        assert!(gemm_ref(&a, &x).approx_eq(&Matrix::identity(2), 1e-12));
    }

    #[test]
    fn potrf_factorizes_spd() {
        let mut r = rng();
        let a = random::spd(&mut r, 6);
        let mut l = a.clone();
        potrf(&mut l).unwrap();
        assert!(l.is_lower_triangular(0.0));
        let llt = gemm_ref(&l, &l.transposed());
        assert!(llt.approx_eq(&a, 1e-9));
    }

    #[test]
    fn potrf_rejects_indefinite() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]); // eigenvalues 3, -1
        let mut l = a.clone();
        assert!(matches!(
            potrf(&mut l),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn posv_solves() {
        let mut r = rng();
        let a = random::spd(&mut r, 6);
        let b = random::general(&mut r, 6, 4);
        let x = posv(&a, &b).unwrap();
        assert!(gemm_ref(&a, &x).approx_eq(&b, 1e-8));
    }

    #[test]
    fn posv_right_solves() {
        let mut r = rng();
        let a = random::spd(&mut r, 5);
        let b = random::general(&mut r, 2, 5);
        let x = posv_right(&b, &a).unwrap();
        assert!(gemm_ref(&x, &a).approx_eq(&b, 1e-8));
    }

    #[test]
    fn poinv_inverts() {
        let mut r = rng();
        let a = random::spd(&mut r, 5);
        let inv = poinv(&a).unwrap();
        assert!(gemm_ref(&a, &inv).approx_eq(&Matrix::identity(5), 1e-8));
    }

    #[test]
    fn trtri_lower_and_upper() {
        let mut r = rng();
        let l = random::lower_triangular(&mut r, 6);
        let li = trtri(&l, Triangle::Lower, false).unwrap();
        assert!(li.is_lower_triangular(1e-12));
        assert!(gemm_ref(&l, &li).approx_eq(&Matrix::identity(6), 1e-9));

        let u = random::upper_triangular(&mut r, 6);
        let ui = trtri(&u, Triangle::Upper, false).unwrap();
        assert!(ui.is_upper_triangular(1e-12));
        assert!(gemm_ref(&u, &ui).approx_eq(&Matrix::identity(6), 1e-9));
    }

    #[test]
    fn trtri_unit_diagonal() {
        let mut r = rng();
        let mut l = random::lower_triangular(&mut r, 5);
        for i in 0..5 {
            l[(i, i)] = 1.0;
        }
        let li = trtri(&l, Triangle::Lower, true).unwrap();
        assert!(gemm_ref(&l, &li).approx_eq(&Matrix::identity(5), 1e-10));
        for i in 0..5 {
            assert!((li[(i, i)] - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn trtri_detects_singular() {
        let mut l = Matrix::identity(3);
        l[(1, 1)] = 0.0;
        assert!(matches!(
            trtri(&l, Triangle::Lower, false),
            Err(LinalgError::Singular { pivot: 1 })
        ));
    }
}
