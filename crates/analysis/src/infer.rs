//! The top-level `infer_properties` entry point and structural helpers.

use crate::predicates::*;
use gmc_expr::{Expr, Property, PropertySet};

/// Infers the full property set of an expression (paper Fig. 4, line 10).
///
/// Runs every property predicate and collects the results; the returned
/// set is closed under implication. The cost is `O(p · |expr|)` where `p`
/// is the number of properties and `|expr|` the tree size — independent
/// of the matrix dimensions, which is the key advantage over
/// inspect-the-entries approaches (paper Sec. 3.2).
///
/// # Example
///
/// ```
/// use gmc_expr::{Operand, Property};
/// use gmc_analysis::infer_properties;
///
/// let a = Operand::matrix("A", 20, 15);
/// let props = infer_properties(&(a.transpose() * a.expr()));
/// assert!(props.contains(Property::SymmetricPositiveDefinite));
/// assert!(props.contains(Property::Symmetric));
/// ```
pub fn infer_properties(expr: &Expr) -> PropertySet {
    let mut set = PropertySet::new();
    if is_diagonal(expr) {
        set.insert(Property::Diagonal);
    }
    if is_lower_triangular(expr) {
        set.insert(Property::LowerTriangular);
    }
    if is_upper_triangular(expr) {
        set.insert(Property::UpperTriangular);
    }
    if is_symmetric(expr) {
        set.insert(Property::Symmetric);
    }
    if is_spd(expr) {
        set.insert(Property::SymmetricPositiveDefinite);
    }
    if is_identity(expr) {
        set.insert(Property::Identity);
    }
    if is_zero(expr) {
        set.insert(Property::Zero);
    }
    if is_orthogonal(expr) {
        set.insert(Property::Orthogonal);
    }
    if is_permutation(expr) {
        set.insert(Property::Permutation);
    }
    if is_unit_diagonal(expr) {
        set.insert(Property::UnitDiagonal);
    }
    if is_full_rank(expr) {
        set.insert(Property::FullRank);
    }
    set
}

/// Canonical form used for structural symmetry checks: the expression is
/// [normalized](Expr::normalized) (unary operators pushed to the leaves)
/// and transposes of *symmetric* leaf operands are erased (`Sᵀ → S`,
/// `S⁻ᵀ → S⁻¹`).
///
/// Two expressions with equal canonical forms denote the same matrix;
/// in particular, `e` is symmetric iff `canonical_transpose(e) ==
/// canonical_transpose(eᵀ)`. Returns `None` for ill-formed expressions.
pub fn canonical_transpose(expr: &Expr) -> Option<Expr> {
    let normalized = expr.normalized().ok()?;
    Some(erase_symmetric_transposes(normalized))
}

fn erase_symmetric_transposes(e: Expr) -> Expr {
    match e {
        Expr::Symbol(_) => e,
        Expr::Times(fs) => Expr::Times(fs.into_iter().map(erase_symmetric_transposes).collect()),
        Expr::Plus(ts) => Expr::Plus(ts.into_iter().map(erase_symmetric_transposes).collect()),
        Expr::Transpose(inner) => match *inner {
            Expr::Symbol(ref op) if op.properties().contains(Property::Symmetric) => {
                Expr::Symbol(op.clone())
            }
            other => Expr::Transpose(Box::new(erase_symmetric_transposes(other))),
        },
        Expr::InverseTranspose(inner) => match *inner {
            Expr::Symbol(ref op) if op.properties().contains(Property::Symmetric) => {
                Expr::Inverse(Box::new(Expr::Symbol(op.clone())))
            }
            other => Expr::InverseTranspose(Box::new(erase_symmetric_transposes(other))),
        },
        Expr::Inverse(inner) => Expr::Inverse(Box::new(erase_symmetric_transposes(*inner))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_expr::Operand;

    #[test]
    fn infer_collects_and_closes() {
        let l = Operand::square("L", 5).with_property(Property::LowerTriangular);
        let u = Operand::square("U", 5).with_property(Property::UpperTriangular);
        // L Uᵀ: product of two lower triangular matrices.
        let props = infer_properties(&(l.expr() * u.transpose()));
        assert!(props.contains(Property::LowerTriangular));
        assert!(!props.contains(Property::Diagonal));
    }

    #[test]
    fn infer_diagonal_product_closure() {
        let d1 = Operand::square("D1", 5).with_property(Property::Diagonal);
        let d2 = Operand::square("D2", 5).with_property(Property::Diagonal);
        let props = infer_properties(&(d1.expr() * d2.expr()));
        assert!(props.contains(Property::Diagonal));
        assert!(props.contains(Property::Symmetric)); // via closure
        assert!(props.contains(Property::LowerTriangular));
    }

    #[test]
    fn infer_gram_spd() {
        let a = Operand::square("A", 20);
        let props = infer_properties(&(a.transpose() * a.expr()));
        assert!(props.contains(Property::SymmetricPositiveDefinite));
        assert!(props.contains(Property::FullRank)); // closure from SPD
    }

    #[test]
    fn canonical_form_erases_symmetric_transpose() {
        let s = Operand::square("S", 5).with_property(Property::Symmetric);
        let c = canonical_transpose(&s.transpose()).unwrap();
        assert_eq!(c, s.expr());
        let c = canonical_transpose(&s.inverse_transpose()).unwrap();
        assert_eq!(c, Expr::inverse(s.expr()));
    }

    #[test]
    fn canonical_form_distributes_transpose() {
        let a = Operand::square("A", 5);
        let b = Operand::square("B", 5);
        let c = canonical_transpose(&Expr::transpose(a.expr() * b.expr())).unwrap();
        assert_eq!(c.to_string(), "B^T A^T");
    }

    #[test]
    fn canonical_form_rejects_ill_formed() {
        let a = Operand::matrix("A", 2, 3);
        let b = Operand::matrix("B", 2, 3);
        assert!(canonical_transpose(&(a.expr() * b.expr())).is_none());
    }

    #[test]
    fn infer_on_temporaries_is_compositional() {
        // Simulate the GMC flow: T = AᵀA is inferred SPD, then T·B
        // (T symbolic temp carrying SPD) keeps symmetric inference paths
        // working through the temp's property set.
        let a = Operand::square("A", 20);
        let t_props = infer_properties(&(a.transpose() * a.expr()));
        let t = Operand::temporary("T0", gmc_expr::Shape::square(20), t_props);
        assert!(t.properties().contains(Property::SymmetricPositiveDefinite));
        // Tᵀ is erased in canonical form because T is symmetric.
        let c = canonical_transpose(&t.transpose()).unwrap();
        assert_eq!(c, t.expr());
    }
}
