//! One predicate per property, following paper Fig. 6.

use crate::infer::canonical_transpose;
use gmc_expr::{Expr, Property};

/// Whether `expr` is provably lower triangular.
///
/// Rules: a product of lower triangular factors is lower triangular; the
/// transpose of an upper triangular expression is lower triangular;
/// the inverse of a lower triangular expression is lower triangular
/// (assuming invertibility, which an inverse asserts); a sum of lower
/// triangular terms is lower triangular.
pub fn is_lower_triangular(expr: &Expr) -> bool {
    match expr {
        Expr::Symbol(op) => op.properties().contains(Property::LowerTriangular),
        Expr::Times(fs) => fs.iter().all(is_lower_triangular),
        Expr::Plus(ts) => ts.iter().all(is_lower_triangular),
        Expr::Transpose(e) => is_upper_triangular(e),
        Expr::Inverse(e) => is_lower_triangular(e),
        Expr::InverseTranspose(e) => is_upper_triangular(e),
    }
}

/// Whether `expr` is provably upper triangular (mirror of
/// [`is_lower_triangular`]).
pub fn is_upper_triangular(expr: &Expr) -> bool {
    match expr {
        Expr::Symbol(op) => op.properties().contains(Property::UpperTriangular),
        Expr::Times(fs) => fs.iter().all(is_upper_triangular),
        Expr::Plus(ts) => ts.iter().all(is_upper_triangular),
        Expr::Transpose(e) => is_lower_triangular(e),
        Expr::Inverse(e) => is_upper_triangular(e),
        Expr::InverseTranspose(e) => is_lower_triangular(e),
    }
}

/// Whether `expr` is provably diagonal.
pub fn is_diagonal(expr: &Expr) -> bool {
    match expr {
        Expr::Symbol(op) => op.properties().contains(Property::Diagonal),
        Expr::Times(fs) => fs.iter().all(is_diagonal),
        Expr::Plus(ts) => ts.iter().all(is_diagonal),
        Expr::Transpose(e) | Expr::Inverse(e) | Expr::InverseTranspose(e) => is_diagonal(e),
    }
}

/// Whether `expr` is provably the zero matrix.
///
/// A product containing a zero factor is zero; a sum is zero only if all
/// terms are. Inverses of zero are ill-formed and conservatively reported
/// as not-zero.
pub fn is_zero(expr: &Expr) -> bool {
    match expr {
        Expr::Symbol(op) => op.properties().contains(Property::Zero),
        Expr::Times(fs) => fs.iter().any(is_zero),
        Expr::Plus(ts) => ts.iter().all(is_zero),
        Expr::Transpose(e) => is_zero(e),
        Expr::Inverse(_) | Expr::InverseTranspose(_) => false,
    }
}

/// Whether `expr` is provably the identity matrix.
pub fn is_identity(expr: &Expr) -> bool {
    match expr {
        Expr::Symbol(op) => op.properties().contains(Property::Identity),
        Expr::Times(fs) => fs.iter().all(is_identity),
        // I + I = 2I is *not* the identity; no sum rule.
        Expr::Plus(_) => false,
        Expr::Transpose(e) | Expr::Inverse(e) | Expr::InverseTranspose(e) => is_identity(e),
    }
}

/// Whether `expr` is provably symmetric.
///
/// Besides the compositional rules (transpose/inverse of symmetric is
/// symmetric, sums of symmetric are symmetric, diagonal implies
/// symmetric), products use a *structural* rule: a product is symmetric
/// when its canonical transpose equals itself. This catches `XᵀX`,
/// `X Xᵀ`, `Xᵀ S X` with `S` symmetric, `A⁻¹` sandwiches, and palindromic
/// chains like `A B A` with `A`, `B` symmetric.
pub fn is_symmetric(expr: &Expr) -> bool {
    match expr {
        Expr::Symbol(op) => op.properties().contains(Property::Symmetric),
        Expr::Plus(ts) => ts.iter().all(is_symmetric),
        Expr::Transpose(e) | Expr::Inverse(e) | Expr::InverseTranspose(e) => is_symmetric(e),
        Expr::Times(_) => {
            if is_diagonal(expr) {
                return true;
            }
            match (
                canonical_transpose(expr),
                canonical_transpose(&Expr::transpose(expr.clone())),
            ) {
                (Some(me), Some(transposed)) => me == transposed,
                _ => false,
            }
        }
    }
}

/// Whether `expr` is provably symmetric positive definite.
///
/// Rules:
///
/// * transposes and inverses of SPD expressions are SPD,
/// * sums of SPD expressions are SPD,
/// * a congruence `Xᵀ S X` (or the bare Gram product `XᵀX`) is SPD when
///   the sandwiched part is SPD (or absent) and `X` has full column rank
///   — which holds generically when `X` is at least as tall as it is
///   wide, matching the paper's `AᵀA` example (Sec. 3.2),
/// * products of *commuting-free* general matrices are never inferred SPD.
pub fn is_spd(expr: &Expr) -> bool {
    match expr {
        Expr::Symbol(op) => op
            .properties()
            .contains(Property::SymmetricPositiveDefinite),
        Expr::Plus(ts) => ts.iter().all(is_spd),
        Expr::Transpose(e) | Expr::Inverse(e) | Expr::InverseTranspose(e) => is_spd(e),
        Expr::Times(fs) => spd_product(fs),
    }
}

/// SPD check for a product `f0 ··· fk`: peel transpose-pairs off both
/// ends (checking the rank condition) and require the remaining middle to
/// be SPD (an empty middle is the implicit identity, which is SPD).
fn spd_product(factors: &[Expr]) -> bool {
    debug_assert!(factors.len() >= 2);
    let first = &factors[0];
    let last = &factors[factors.len() - 1];
    if !is_transpose_pair(first, last) {
        return false;
    }
    // Full column rank of the right member `X` of the pair `Xᵀ ... X`:
    // generically satisfied when X is square or tall. For square X we
    // additionally accept declared full rank (e.g. triangular inverses).
    let rank_ok = match last.shape() {
        Ok(s) => s.rows() >= s.cols(),
        Err(_) => false,
    };
    if !rank_ok {
        return false;
    }
    let middle = &factors[1..factors.len() - 1];
    match middle.len() {
        0 => true,
        1 => is_spd(&middle[0]),
        _ => spd_product_or_single(middle),
    }
}

fn spd_product_or_single(factors: &[Expr]) -> bool {
    if factors.len() == 1 {
        is_spd(&factors[0])
    } else {
        spd_product(factors)
    }
}

/// Whether `b` is structurally the transpose of `a` (so `a·b` is a Gram
/// pair `Xᵀ X` with `X = b`).
fn is_transpose_pair(a: &Expr, b: &Expr) -> bool {
    match (
        canonical_transpose(&Expr::transpose(b.clone())),
        canonical_transpose(a),
    ) {
        (Some(bt), Some(ca)) => bt == ca,
        _ => false,
    }
}

/// Whether `expr` is provably orthogonal (`QᵀQ = I`).
pub fn is_orthogonal(expr: &Expr) -> bool {
    match expr {
        Expr::Symbol(op) => op.properties().contains(Property::Orthogonal),
        Expr::Times(fs) => fs.iter().all(is_orthogonal),
        Expr::Plus(_) => false,
        Expr::Transpose(e) | Expr::Inverse(e) | Expr::InverseTranspose(e) => is_orthogonal(e),
    }
}

/// Whether `expr` is provably a permutation matrix.
pub fn is_permutation(expr: &Expr) -> bool {
    match expr {
        Expr::Symbol(op) => op.properties().contains(Property::Permutation),
        Expr::Times(fs) => fs.iter().all(is_permutation),
        Expr::Plus(_) => false,
        Expr::Transpose(e) | Expr::Inverse(e) | Expr::InverseTranspose(e) => is_permutation(e),
    }
}

/// Whether `expr` is provably triangular with a unit diagonal.
///
/// Products require agreeing triangularity: the product of two unit
/// *lower* triangular matrices is unit lower triangular (and likewise for
/// upper), but mixing sides loses the unit diagonal.
pub fn is_unit_diagonal(expr: &Expr) -> bool {
    match expr {
        Expr::Symbol(op) => op.properties().contains(Property::UnitDiagonal),
        Expr::Times(fs) => {
            let each_unit = fs.iter().all(is_unit_diagonal);
            let all_lower = fs.iter().all(is_lower_triangular);
            let all_upper = fs.iter().all(is_upper_triangular);
            each_unit && (all_lower || all_upper)
        }
        Expr::Plus(_) => false,
        Expr::Transpose(e) | Expr::Inverse(e) | Expr::InverseTranspose(e) => is_unit_diagonal(e),
    }
}

/// Whether `expr` is provably of full rank.
///
/// Products of full-rank *square* factors are full rank; rank can drop
/// for rectangular products, so those are conservatively rejected.
/// Inverses assert invertibility and are therefore full rank.
pub fn is_full_rank(expr: &Expr) -> bool {
    match expr {
        Expr::Symbol(op) => op.properties().contains(Property::FullRank),
        Expr::Times(fs) => fs
            .iter()
            .all(|f| is_full_rank(f) && f.shape().map(|s| s.is_square()).unwrap_or(false)),
        Expr::Plus(_) => false,
        Expr::Transpose(e) => is_full_rank(e),
        Expr::Inverse(_) | Expr::InverseTranspose(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_expr::Operand;

    fn lo(name: &str) -> Operand {
        Operand::square(name, 6).with_property(Property::LowerTriangular)
    }

    fn up(name: &str) -> Operand {
        Operand::square(name, 6).with_property(Property::UpperTriangular)
    }

    fn sym(name: &str) -> Operand {
        Operand::square(name, 6).with_property(Property::Symmetric)
    }

    fn spd(name: &str) -> Operand {
        Operand::square(name, 6).with_property(Property::SymmetricPositiveDefinite)
    }

    fn gen(name: &str) -> Operand {
        Operand::square(name, 6)
    }

    #[test]
    fn paper_fig5_example() {
        // A lower, B upper: A·Bᵀ is lower triangular.
        let e = lo("A").expr() * up("B").transpose();
        assert!(is_lower_triangular(&e));
        assert!(!is_upper_triangular(&e));
    }

    #[test]
    fn triangular_products() {
        assert!(is_lower_triangular(&(lo("A").expr() * lo("B").expr())));
        assert!(is_upper_triangular(&(up("A").expr() * up("B").expr())));
        assert!(!is_lower_triangular(&(lo("A").expr() * up("B").expr())));
    }

    #[test]
    fn triangular_inverse_and_transpose() {
        assert!(is_lower_triangular(&lo("A").inverse()));
        assert!(is_upper_triangular(&lo("A").transpose()));
        assert!(is_upper_triangular(&lo("A").inverse_transpose()));
        assert!(is_lower_triangular(&up("A").inverse_transpose()));
    }

    #[test]
    fn triangular_sums() {
        let e = lo("A").expr() + lo("B").expr();
        assert!(is_lower_triangular(&e));
        let mixed = lo("A").expr() + up("B").expr();
        assert!(!is_lower_triangular(&mixed));
    }

    #[test]
    fn diagonal_rules() {
        let d = Operand::square("D", 6).with_property(Property::Diagonal);
        let e = d.expr() * d.inverse() * d.transpose();
        assert!(is_diagonal(&e));
        assert!(is_lower_triangular(&d.expr()));
        assert!(is_symmetric(&d.expr()));
    }

    #[test]
    fn zero_rules() {
        let z = Operand::square("Z", 6).with_property(Property::Zero);
        let a = gen("A");
        assert!(is_zero(&(z.expr() * a.expr())));
        assert!(is_zero(&(a.expr() * z.expr())));
        assert!(!is_zero(&(z.expr() + a.expr())));
        assert!(is_zero(&(z.expr() + z.expr())));
        assert!(is_zero(&z.transpose()));
    }

    #[test]
    fn identity_rules() {
        let i = Operand::square("I", 6).with_property(Property::Identity);
        assert!(is_identity(&(i.expr() * i.expr())));
        assert!(is_identity(&i.inverse()));
        assert!(!is_identity(&(i.expr() + i.expr())));
    }

    #[test]
    fn symmetric_basic() {
        assert!(is_symmetric(&sym("S").expr()));
        assert!(is_symmetric(&sym("S").transpose()));
        assert!(is_symmetric(&sym("S").inverse()));
        assert!(is_symmetric(&(sym("S").expr() + sym("T").expr())));
        assert!(!is_symmetric(&(gen("A").expr() * gen("B").expr())));
    }

    #[test]
    fn gram_products_are_symmetric() {
        let a = Operand::matrix("A", 8, 5);
        // AᵀA
        assert!(is_symmetric(&(a.transpose() * a.expr())));
        // A Aᵀ
        assert!(is_symmetric(&(a.expr() * a.transpose())));
        // AᵀB is not symmetric in general.
        let b = Operand::matrix("B", 8, 5);
        assert!(!is_symmetric(&(a.transpose() * b.expr())));
    }

    #[test]
    fn congruence_is_symmetric() {
        let a = Operand::matrix("A", 8, 5);
        let s = Operand::square("S", 8).with_property(Property::Symmetric);
        // Aᵀ S A symmetric.
        let e = a.transpose() * s.expr() * a.expr();
        assert!(is_symmetric(&e));
        // L⁻¹ A L⁻ᵀ with A symmetric (generalized eigenproblem reduction,
        // paper Sec. 3.2) is symmetric.
        let l = lo("L");
        let sym_a = sym("A");
        let e = l.inverse() * sym_a.expr() * l.inverse_transpose();
        assert!(is_symmetric(&e));
    }

    #[test]
    fn palindromic_symmetric_product() {
        let s = sym("S");
        let t = sym("T");
        // S T S is symmetric when S and T are.
        let e = s.expr() * t.expr() * s.expr();
        assert!(is_symmetric(&e));
        // S T U is not (in general).
        let u = sym("U");
        let e = s.expr() * t.expr() * u.expr();
        assert!(!is_symmetric(&e));
    }

    #[test]
    fn spd_gram_products() {
        // Tall A (8x5): AᵀA is 5x5 SPD.
        let a = Operand::matrix("A", 8, 5);
        assert!(is_spd(&(a.transpose() * a.expr())));
        // A Aᵀ is 8x8 of rank ≤ 5: *not* SPD.
        assert!(!is_spd(&(a.expr() * a.transpose())));
        // Square dense A: AᵀA SPD (paper Sec. 3.2 example).
        let sq = gen("A");
        assert!(is_spd(&(sq.transpose() * sq.expr())));
        assert!(is_spd(&(sq.expr() * sq.transpose())));
    }

    #[test]
    fn spd_congruence() {
        let a = gen("A");
        let s = spd("S");
        let e = a.transpose() * s.expr() * a.expr();
        assert!(is_spd(&e));
        // Sym but not SPD middle: no inference.
        let m = sym("M");
        let e = a.transpose() * m.expr() * a.expr();
        assert!(!is_spd(&e));
    }

    #[test]
    fn spd_closure_properties() {
        let s = spd("S");
        assert!(is_spd(&s.inverse()));
        assert!(is_spd(&s.transpose()));
        assert!(is_spd(&(s.expr() + spd("T").expr())));
        assert!(is_symmetric(&s.expr()));
    }

    #[test]
    fn spd_cholesky_form() {
        // L Lᵀ with L square is SPD (generic full rank).
        let l = lo("L");
        assert!(is_spd(&(l.expr() * l.transpose())));
    }

    #[test]
    fn orthogonal_and_permutation() {
        let q = Operand::square("Q", 6).with_property(Property::Orthogonal);
        let p = Operand::square("P", 6).with_property(Property::Permutation);
        assert!(is_orthogonal(&(q.expr() * q.transpose())));
        assert!(is_orthogonal(&(q.expr() * p.expr()))); // perm ⇒ orthogonal
        assert!(is_permutation(&(p.expr() * p.inverse())));
        assert!(!is_permutation(&(q.expr() * p.expr())));
        assert!(is_full_rank(&q.expr()));
    }

    #[test]
    fn unit_diagonal_rules() {
        let l1 = Operand::square("L1", 6)
            .with_properties([Property::LowerTriangular, Property::UnitDiagonal]);
        let l2 = Operand::square("L2", 6)
            .with_properties([Property::LowerTriangular, Property::UnitDiagonal]);
        assert!(is_unit_diagonal(&(l1.expr() * l2.expr())));
        assert!(is_unit_diagonal(&l1.inverse()));
        assert!(is_unit_diagonal(&l1.transpose()));
        // Mixing lower and upper unit triangular loses the property.
        let u = Operand::square("U", 6)
            .with_properties([Property::UpperTriangular, Property::UnitDiagonal]);
        assert!(!is_unit_diagonal(&(l1.expr() * u.expr())));
    }

    #[test]
    fn full_rank_rules() {
        let a = gen("A").with_property(Property::FullRank);
        let b = gen("B").with_property(Property::FullRank);
        assert!(is_full_rank(&(a.expr() * b.expr())));
        assert!(is_full_rank(&a.transpose()));
        assert!(is_full_rank(&gen("C").inverse()));
        // Rectangular products conservatively rejected.
        let t = Operand::matrix("T", 8, 5).with_property(Property::FullRank);
        let w = Operand::matrix("W", 5, 8).with_property(Property::FullRank);
        assert!(!is_full_rank(&(t.expr() * w.expr())));
        // Without declared rank, nothing is inferred.
        assert!(!is_full_rank(&(gen("D").expr() * gen("E").expr())));
    }
}
