//! Three-valued structural predicates over symbolic shapes.
//!
//! Property inference (and kernel applicability) consults shapes only
//! through order comparisons between dimensions: squareness
//! (`rows == cols`), the SPD rank condition (`rows ≥ cols`), and
//! vector-ness (`cols == 1 ∧ rows > 1`). Over a [`SymShape`] those
//! questions may be *undecidable* — `n×m` is square under some bindings
//! and not others — so the symbolic layer answers them in three-valued
//! logic ([`Tri`]).
//!
//! This is the formal basis of the plan cache's *region* keying
//! (`gmc-plan`): once the ordering pattern of the chain's boundary
//! dimensions is fixed, every one of these predicates collapses to a
//! definite answer, so candidate kernel sets and inferred property sets
//! are invariant across all bindings in the region.

use gmc_expr::{Dim, SymShape};

/// A three-valued truth value: definitely true, definitely false, or
/// dependent on the dimension binding.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Tri {
    /// True under every binding.
    Yes,
    /// False under every binding.
    No,
    /// Truth depends on the binding.
    Unknown,
}

impl Tri {
    /// Lifts a definite boolean.
    pub fn known(b: bool) -> Tri {
        if b {
            Tri::Yes
        } else {
            Tri::No
        }
    }

    /// Whether the value is decided (not [`Tri::Unknown`]).
    pub fn is_decided(&self) -> bool {
        !matches!(self, Tri::Unknown)
    }

    /// Three-valued conjunction.
    #[must_use]
    pub fn and(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::No, _) | (_, Tri::No) => Tri::No,
            (Tri::Yes, Tri::Yes) => Tri::Yes,
            _ => Tri::Unknown,
        }
    }

    /// Three-valued disjunction.
    #[must_use]
    pub fn or(self, other: Tri) -> Tri {
        match (self, other) {
            (Tri::Yes, _) | (_, Tri::Yes) => Tri::Yes,
            (Tri::No, Tri::No) => Tri::No,
            _ => Tri::Unknown,
        }
    }
}

/// Whether two symbolic dimensions are equal under every / no / some
/// bindings.
///
/// Two distinct variables (or a variable and a constant) *can* coincide
/// under a binding, so only syntactic equality yields [`Tri::Yes`].
pub fn dims_equal(a: Dim, b: Dim) -> Tri {
    match (a, b) {
        _ if a == b => Tri::Yes,
        (Dim::Const(x), Dim::Const(y)) => Tri::known(x == y),
        // A variable can take any positive value, including the other
        // side's value.
        _ => Tri::Unknown,
    }
}

/// Whether `a ≥ b` under every / no / some bindings.
pub fn dims_ge(a: Dim, b: Dim) -> Tri {
    match (a, b) {
        _ if a == b => Tri::Yes,
        (Dim::Const(x), Dim::Const(y)) => Tri::known(x >= y),
        // Every dimension is ≥ 1.
        (_, Dim::Const(1)) => Tri::Yes,
        _ => Tri::Unknown,
    }
}

/// Whether the shape is square ([`Tri::Yes`] only for *structural*
/// squareness, which survives every binding).
pub fn is_square(s: SymShape) -> Tri {
    dims_equal(s.rows(), s.cols())
}

/// Whether the shape is a column vector (`n×1` with `n > 1`).
pub fn is_col_vector(s: SymShape) -> Tri {
    dims_equal(s.cols(), Dim::Const(1)).and(dims_gt_one(s.rows()))
}

/// Whether the shape is a row vector (`1×n` with `n > 1`).
pub fn is_row_vector(s: SymShape) -> Tri {
    dims_equal(s.rows(), Dim::Const(1)).and(dims_gt_one(s.cols()))
}

/// Whether the shape is a vector of either orientation.
pub fn is_vector(s: SymShape) -> Tri {
    is_col_vector(s).or(is_row_vector(s))
}

/// Whether the SPD rank condition `rows ≥ cols` holds (used by the
/// `XᵀX` / congruence rules of the inference engine).
pub fn rank_condition(s: SymShape) -> Tri {
    dims_ge(s.rows(), s.cols())
}

fn dims_gt_one(d: Dim) -> Tri {
    match d {
        Dim::Const(v) => Tri::known(v > 1),
        Dim::Var(_) => Tri::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_expr::Dim;

    fn n() -> Dim {
        Dim::var("an_n")
    }

    fn m() -> Dim {
        Dim::var("an_m")
    }

    #[test]
    fn tri_algebra() {
        assert_eq!(Tri::Yes.and(Tri::Unknown), Tri::Unknown);
        assert_eq!(Tri::No.and(Tri::Unknown), Tri::No);
        assert_eq!(Tri::Yes.or(Tri::Unknown), Tri::Yes);
        assert_eq!(Tri::No.or(Tri::Unknown), Tri::Unknown);
        assert!(Tri::Yes.is_decided());
        assert!(!Tri::Unknown.is_decided());
    }

    #[test]
    fn structural_squareness() {
        assert_eq!(is_square(SymShape::square(n())), Tri::Yes);
        assert_eq!(is_square(SymShape::new(n(), m())), Tri::Unknown);
        assert_eq!(
            is_square(SymShape::new(Dim::Const(3), Dim::Const(4))),
            Tri::No
        );
    }

    #[test]
    fn vector_classification() {
        assert_eq!(
            is_col_vector(SymShape::new(n(), Dim::Const(1))),
            Tri::Unknown
        );
        assert_eq!(
            is_col_vector(SymShape::new(Dim::Const(5), Dim::Const(1))),
            Tri::Yes
        );
        // n×m: cols could bind to 1, so vector-ness is unknown.
        assert_eq!(is_vector(SymShape::new(n(), m())), Tri::Unknown);
        assert_eq!(
            is_vector(SymShape::new(Dim::Const(5), Dim::Const(4))),
            Tri::No
        );
        assert_eq!(
            is_row_vector(SymShape::new(Dim::Const(1), Dim::Const(9))),
            Tri::Yes
        );
    }

    #[test]
    fn rank_condition_cases() {
        assert_eq!(rank_condition(SymShape::square(n())), Tri::Yes);
        assert_eq!(rank_condition(SymShape::new(n(), Dim::Const(1))), Tri::Yes);
        assert_eq!(rank_condition(SymShape::new(n(), m())), Tri::Unknown);
        assert_eq!(
            rank_condition(SymShape::new(Dim::Const(8), Dim::Const(5))),
            Tri::Yes
        );
        assert_eq!(
            rank_condition(SymShape::new(Dim::Const(5), Dim::Const(8))),
            Tri::No
        );
    }
}
