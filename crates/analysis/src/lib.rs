//! Property inference for symbolic matrix expressions.
//!
//! This crate implements `infer_properties` from the GMC algorithm
//! (paper Fig. 4 line 10 and Sec. 3.2): given an expression tree whose
//! leaves are operands annotated with properties, it derives the
//! properties of the *result* without computing it — purely symbolically,
//! at a cost independent of the matrix sizes.
//!
//! The engine follows the paper's design: one dedicated predicate per
//! property (paper Fig. 6 shows `is_lower_triangular`), each recursing
//! over the expression tree, plus the closure rules of
//! [`gmc_expr::PropertySet`]. Example inference rules:
//!
//! ```text
//! LoTri(A) ∧ LoTri(B) → LoTri(AB)
//! LoTri(A)            → UppTri(Aᵀ)
//! Sym(A)              → Sym(A⁻¹)
//! XᵀX                 → SPD   (X of full column rank)
//! ```
//!
//! # Example
//!
//! The paper's Fig. 5: in `A Bᵀ` with `A` lower and `B` upper triangular,
//! the product is lower triangular — independently of how it is computed:
//!
//! ```
//! use gmc_expr::{Expr, Operand, Property};
//! use gmc_analysis::{infer_properties, is_lower_triangular};
//!
//! let a = Operand::square("A", 8).with_property(Property::LowerTriangular);
//! let b = Operand::square("B", 8).with_property(Property::UpperTriangular);
//! let expr = a.expr() * b.transpose();
//! assert!(is_lower_triangular(&expr));
//! assert!(infer_properties(&expr).contains(Property::LowerTriangular));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod infer;
mod predicates;
pub mod symbolic;

pub use infer::{canonical_transpose, infer_properties};
pub use predicates::{
    is_diagonal, is_full_rank, is_identity, is_lower_triangular, is_orthogonal, is_permutation,
    is_spd, is_symmetric, is_unit_diagonal, is_upper_triangular, is_zero,
};
pub use symbolic::Tri;
