//! Execution environments: concrete matrices bound to operand names.

use gmc_expr::{Chain, Operand, Property};
use gmc_linalg::{random, Matrix};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;

/// A mapping from operand names to concrete matrices.
///
/// # Example
///
/// ```
/// use gmc_expr::{Chain, Factor, Operand, Property};
/// use gmc_runtime::Env;
///
/// # fn main() -> Result<(), gmc_expr::ExprError> {
/// let l = Operand::square("L", 8).with_property(Property::LowerTriangular);
/// let b = Operand::matrix("B", 8, 3);
/// let chain = Chain::new(vec![Factor::inverted(l), Factor::plain(b)])?;
/// let env = Env::random_for_chain(&chain, 42);
/// assert!(env.get("L").unwrap().is_lower_triangular(0.0));
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug, Default)]
pub struct Env {
    values: HashMap<String, Matrix>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Binds a matrix to a name, replacing any existing binding.
    pub fn bind(&mut self, name: impl Into<String>, value: Matrix) {
        self.values.insert(name.into(), value);
    }

    /// The matrix bound to `name`.
    pub fn get(&self, name: &str) -> Option<&Matrix> {
        self.values.get(name)
    }

    /// Number of bindings.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the environment is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Creates an environment with a random matrix for every input
    /// operand of `chain`, honoring each operand's declared properties
    /// (a lower-triangular operand gets a genuinely lower-triangular,
    /// well-conditioned matrix, and so on). Deterministic per seed.
    pub fn random_for_chain(chain: &Chain, seed: u64) -> Env {
        let mut env = Env::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for factor in chain.factors() {
            let op = factor.operand();
            if env.get(op.name()).is_none() {
                env.bind(op.name(), materialize(op, &mut rng));
            }
        }
        env
    }

    /// Creates an environment for arbitrary operands (e.g. the inputs of
    /// a program). Deterministic per seed.
    pub fn random_for_operands<'a>(
        operands: impl IntoIterator<Item = &'a Operand>,
        seed: u64,
    ) -> Env {
        let mut env = Env::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for op in operands {
            if env.get(op.name()).is_none() {
                env.bind(op.name(), materialize(op, &mut rng));
            }
        }
        env
    }
}

/// Generates a concrete matrix realizing the operand's declared
/// properties. Square operands without structure are made comfortably
/// invertible so that chains containing inverses are well posed.
pub fn materialize(op: &Operand, rng: &mut StdRng) -> Matrix {
    let shape = op.shape();
    let (r, c) = (shape.rows(), shape.cols());
    let p = op.properties();
    if p.contains(Property::Identity) {
        return Matrix::identity(r);
    }
    if p.contains(Property::Zero) {
        return Matrix::zeros(r, c);
    }
    if p.contains(Property::Permutation) {
        return random::permutation(rng, r);
    }
    if p.contains(Property::Diagonal) {
        return random::diagonal(rng, r);
    }
    if p.contains(Property::Orthogonal) {
        return random::orthogonal(rng, r);
    }
    if p.contains(Property::SymmetricPositiveDefinite) {
        return random::spd(rng, r);
    }
    if p.contains(Property::LowerTriangular) {
        return if p.contains(Property::UnitDiagonal) {
            random::unit_lower_triangular(rng, r)
        } else {
            random::lower_triangular(rng, r)
        };
    }
    if p.contains(Property::UpperTriangular) {
        return if p.contains(Property::UnitDiagonal) {
            random::unit_lower_triangular(rng, r).transposed()
        } else {
            random::upper_triangular(rng, r)
        };
    }
    if p.contains(Property::Symmetric) {
        return random::symmetric(rng, r);
    }
    if r == c {
        random::invertible(rng, r)
    } else {
        random::general(rng, r, c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_expr::{Factor, Shape};

    #[test]
    fn bind_and_get() {
        let mut env = Env::new();
        env.bind("A", Matrix::identity(3));
        assert!(env.get("A").is_some());
        assert!(env.get("B").is_none());
        assert_eq!(env.len(), 1);
    }

    #[test]
    fn materialize_honors_properties() {
        type Check = (Operand, Box<dyn Fn(&Matrix) -> bool>);
        let mut rng = StdRng::seed_from_u64(1);
        let checks: Vec<Check> = vec![
            (
                Operand::square("I", 5).with_property(Property::Identity),
                Box::new(|m: &Matrix| m == &Matrix::identity(5)),
            ),
            (
                Operand::square("L", 5).with_property(Property::LowerTriangular),
                Box::new(|m: &Matrix| m.is_lower_triangular(0.0)),
            ),
            (
                Operand::square("U", 5).with_property(Property::UpperTriangular),
                Box::new(|m: &Matrix| m.is_upper_triangular(0.0)),
            ),
            (
                Operand::square("S", 5).with_property(Property::Symmetric),
                Box::new(|m: &Matrix| m.is_symmetric(1e-12)),
            ),
            (
                Operand::square("P", 5).with_property(Property::SymmetricPositiveDefinite),
                Box::new(|m: &Matrix| {
                    let mut c = m.clone();
                    gmc_linalg::lapack::potrf(&mut c).is_ok()
                }),
            ),
            (
                Operand::square("D", 5).with_property(Property::Diagonal),
                Box::new(|m: &Matrix| m.is_diagonal(0.0)),
            ),
        ];
        for (op, check) in checks {
            let m = materialize(&op, &mut rng);
            assert!(check(&m), "materialization of {op:?} violates property");
        }
    }

    #[test]
    fn unit_triangular_materialization() {
        let mut rng = StdRng::seed_from_u64(2);
        let op = Operand::square("L", 6)
            .with_properties([Property::LowerTriangular, Property::UnitDiagonal]);
        let m = materialize(&op, &mut rng);
        assert!(m.is_lower_triangular(0.0));
        assert!(m.diagonal().iter().all(|&d| d == 1.0));
    }

    #[test]
    fn random_for_chain_shares_repeated_operands() {
        let a = Operand::square("A", 4);
        let chain = Chain::new(vec![
            Factor::transposed(a.clone()),
            Factor::plain(a.clone()),
        ])
        .unwrap();
        let env = Env::random_for_chain(&chain, 7);
        assert_eq!(env.len(), 1);
        assert_eq!(env.get("A").unwrap().shape(), (4, 4));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Operand::matrix("A", 3, 4);
        let b = Operand::matrix("B", 4, 2);
        let chain = Chain::new(vec![Factor::plain(a), Factor::plain(b)]).unwrap();
        let e1 = Env::random_for_chain(&chain, 5);
        let e2 = Env::random_for_chain(&chain, 5);
        assert_eq!(e1.get("A").unwrap(), e2.get("A").unwrap());
        let e3 = Env::random_for_chain(&chain, 6);
        assert_ne!(e1.get("A").unwrap(), e3.get("A").unwrap());
    }

    #[test]
    fn vector_operands() {
        let v = Operand::col_vector("v", 7);
        let mut rng = StdRng::seed_from_u64(3);
        let m = materialize(&v, &mut rng);
        assert_eq!(m.shape(), (7, 1));
        let w = Operand::with_shape("w", Shape::row_vector(7));
        let m = materialize(&w, &mut rng);
        assert_eq!(m.shape(), (1, 7));
    }
}
