//! Program execution, reference evaluation, validation and timing.

use crate::env::Env;
use crate::{ops, RuntimeError};
use gmc_codegen::Program;
use gmc_expr::{Chain, UnaryOp};
use gmc_kernels::KernelOp;
use gmc_linalg::{blas3, lapack, Matrix};
use std::time::Instant;

/// Executes a program against an environment, binding every temporary,
/// and returns the result matrix (the last instruction's destination).
///
/// # Errors
///
/// Returns [`RuntimeError::MissingOperand`] if an instruction references
/// a name not bound in the environment, [`RuntimeError::EmptyProgram`]
/// for an empty program, and numeric errors (singular matrix, …) from
/// the kernels.
pub fn execute(program: &Program, env: &mut Env) -> Result<Matrix, RuntimeError> {
    if program.is_empty() {
        return Err(RuntimeError::EmptyProgram);
    }
    for instr in program.instructions() {
        let value = execute_op(instr.op(), env)?;
        env.bind(instr.dest().name(), value);
    }
    Ok(env
        .get(program.result().name())
        .expect("result was just bound")
        .clone())
}

/// Executes a single kernel operation against an environment.
///
/// # Errors
///
/// See [`execute`].
pub fn execute_op(op: &KernelOp, env: &Env) -> Result<Matrix, RuntimeError> {
    let fetch = |name: &str| -> Result<&Matrix, RuntimeError> {
        env.get(name).ok_or_else(|| RuntimeError::MissingOperand {
            name: name.to_owned(),
        })
    };
    let out = match op {
        KernelOp::Gemm { ta, tb, a, b } => ops::gemm(fetch(a.name())?, *ta, fetch(b.name())?, *tb),
        KernelOp::Trmm {
            side,
            uplo,
            trans,
            a,
            b,
        } => ops::trmm(*side, *uplo, *trans, fetch(a.name())?, fetch(b.name())?),
        KernelOp::Symm { side, a, b } => ops::symm(*side, fetch(a.name())?, fetch(b.name())?),
        KernelOp::Trsm {
            side,
            uplo,
            trans,
            tb,
            a,
            b,
        } => ops::trsm(
            *side,
            *uplo,
            *trans,
            *tb,
            fetch(a.name())?,
            fetch(b.name())?,
        ),
        KernelOp::Syrk { trans, a } => ops::syrk(*trans, fetch(a.name())?),
        KernelOp::Gesv {
            side,
            trans,
            tb,
            a,
            b,
        } => ops::gesv(*side, *trans, *tb, fetch(a.name())?, fetch(b.name())?)?,
        KernelOp::Posv { side, tb, a, b } => {
            ops::posv(*side, *tb, fetch(a.name())?, fetch(b.name())?)?
        }
        KernelOp::Diag {
            side,
            inv,
            tb,
            d,
            b,
        } => ops::diag(*side, *inv, *tb, fetch(d.name())?, fetch(b.name())?)?,
        KernelOp::Gemv { trans, a, x } => ops::gemv(*trans, fetch(a.name())?, fetch(x.name())?),
        KernelOp::Trmv { uplo, trans, a, x } => {
            ops::trmv(*uplo, *trans, fetch(a.name())?, fetch(x.name())?)
        }
        KernelOp::Symv { a, x } => ops::symv(fetch(a.name())?, fetch(x.name())?),
        KernelOp::Trsv { uplo, trans, a, x } => {
            ops::trsv(*uplo, *trans, fetch(a.name())?, fetch(x.name())?)
        }
        KernelOp::Ger { x, y } => ops::ger(fetch(x.name())?, fetch(y.name())?),
        KernelOp::Dot { x, y } => ops::dot_op(fetch(x.name())?, fetch(y.name())?),
        KernelOp::Copy { b } => fetch(b.name())?.clone(),
        KernelOp::Inv { kind, trans, a } => ops::inv(*kind, *trans, fetch(a.name())?)?,
        KernelOp::InvPair { ta, tb, a, b } => {
            ops::inv_pair(*ta, *tb, fetch(a.name())?, fetch(b.name())?)?
        }
    };
    Ok(out)
}

/// Evaluates a chain the *reference* way: materialize each factor
/// (explicit transposes and inverses) and multiply strictly left to
/// right with general GEMMs. This is the semantics oracle generated
/// programs are validated against.
///
/// # Errors
///
/// Returns an error if an operand is missing or an inverted factor is
/// singular.
pub fn reference_eval(chain: &Chain, env: &Env) -> Result<Matrix, RuntimeError> {
    let mut acc: Option<Matrix> = None;
    for factor in chain.factors() {
        let base =
            env.get(factor.operand().name())
                .ok_or_else(|| RuntimeError::MissingOperand {
                    name: factor.operand().name().to_owned(),
                })?;
        let value = match factor.op() {
            UnaryOp::None => base.clone(),
            UnaryOp::Transpose => base.transposed(),
            UnaryOp::Inverse => lapack::getri(base)?,
            UnaryOp::InverseTranspose => lapack::getri(base)?.transposed(),
        };
        acc = Some(match acc {
            None => value,
            Some(prev) => blas3::gemm(1.0, &prev, false, &value, false),
        });
    }
    acc.ok_or(RuntimeError::EmptyProgram)
}

/// Executes `program` and compares the result against the reference
/// evaluation of `chain` in the same environment.
///
/// # Errors
///
/// Propagates execution errors; returns [`RuntimeError::Mismatch`] if
/// the results differ beyond `tol` (entry-wise, relative).
pub fn validate_against_reference(
    program: &Program,
    chain: &Chain,
    env: &Env,
    tol: f64,
) -> Result<(), RuntimeError> {
    let mut exec_env = env.clone();
    let got = execute(program, &mut exec_env)?;
    let want = reference_eval(chain, env)?;
    if got.approx_eq(&want, tol) {
        Ok(())
    } else {
        Err(RuntimeError::Mismatch {
            max_abs_diff: got.max_abs_diff(&want),
        })
    }
}

/// Wall-clock time of one execution of `program`, in seconds.
///
/// # Errors
///
/// Propagates execution errors.
pub fn time_program(program: &Program, env: &Env) -> Result<f64, RuntimeError> {
    let mut exec_env = env.clone();
    let start = Instant::now();
    execute(program, &mut exec_env)?;
    Ok(start.elapsed().as_secs_f64())
}

/// Minimum wall-clock time over `reps` executions (the paper reports
/// minima over repetitions for its kernel timings, footnote 7).
///
/// # Errors
///
/// Propagates execution errors.
pub fn time_program_best_of(
    program: &Program,
    env: &Env,
    reps: usize,
) -> Result<f64, RuntimeError> {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        best = best.min(time_program(program, env)?);
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_expr::{Factor, Operand, Property};

    fn chain_and_env() -> (Chain, Env) {
        let a = Operand::square("A", 8).with_property(Property::SymmetricPositiveDefinite);
        let b = Operand::matrix("B", 8, 5);
        let c = Operand::square("C", 5).with_property(Property::LowerTriangular);
        let chain = Chain::new(vec![
            Factor::inverted(a),
            Factor::plain(b),
            Factor::transposed(c),
        ])
        .unwrap();
        let env = Env::random_for_chain(&chain, 11);
        (chain, env)
    }

    #[test]
    fn reference_eval_shapes() {
        let (chain, env) = chain_and_env();
        let result = reference_eval(&chain, &env).unwrap();
        assert_eq!(result.shape(), (8, 5));
    }

    #[test]
    fn missing_operand_reported() {
        let (chain, _) = chain_and_env();
        let env = Env::new();
        assert!(matches!(
            reference_eval(&chain, &env),
            Err(RuntimeError::MissingOperand { .. })
        ));
    }

    #[test]
    fn empty_program_rejected() {
        let mut env = Env::new();
        assert!(matches!(
            execute(&Program::default(), &mut env),
            Err(RuntimeError::EmptyProgram)
        ));
    }
}
