//! Executable forms of every [`gmc_kernels::KernelOp`] variant over
//! [`gmc_linalg::Matrix`] values.
//!
//! These helpers are also the target API of the Rust code emitter in
//! `gmc-codegen`.

use crate::RuntimeError;
use gmc_kernels::{InvKind, Side, Uplo};
use gmc_linalg::{blas1, blas2, blas3, diag as dg, lapack, Matrix, Triangle};

fn tri(u: Uplo) -> Triangle {
    match u {
        Uplo::Lower => Triangle::Lower,
        Uplo::Upper => Triangle::Upper,
    }
}

fn bside(s: Side) -> blas3::Side {
    match s {
        Side::Left => blas3::Side::Left,
        Side::Right => blas3::Side::Right,
    }
}

fn maybe_t(m: &Matrix, t: bool) -> Matrix {
    if t {
        m.transposed()
    } else {
        m.clone()
    }
}

/// `op(A)·op(B)`.
pub fn gemm(a: &Matrix, ta: bool, b: &Matrix, tb: bool) -> Matrix {
    blas3::gemm(1.0, a, ta, b, tb)
}

/// `op(A)·B` or `B·op(A)` with triangular `A`.
pub fn trmm(side: Side, uplo: Uplo, trans: bool, a: &Matrix, b: &Matrix) -> Matrix {
    blas3::trmm(bside(side), tri(uplo), trans, false, 1.0, a, b)
}

/// `A·B` or `B·A` with symmetric `A`.
pub fn symm(side: Side, a: &Matrix, b: &Matrix) -> Matrix {
    blas3::symm(bside(side), 1.0, a, b)
}

/// `op(A)⁻¹·op(B)` or `op(B)·op(A)⁻¹` with triangular `A`.
pub fn trsm(side: Side, uplo: Uplo, trans: bool, tb: bool, a: &Matrix, b: &Matrix) -> Matrix {
    let b_eff = maybe_t(b, tb);
    blas3::trsm(bside(side), tri(uplo), trans, false, 1.0, a, &b_eff)
}

/// `AᵀA` (`trans`) or `A·Aᵀ`.
pub fn syrk(trans: bool, a: &Matrix) -> Matrix {
    blas3::syrk(1.0, a, trans)
}

/// General solve `op(A)⁻¹·op(B)` or `op(B)·op(A)⁻¹` (LU-based).
///
/// # Errors
///
/// Returns an error if `A` is singular.
pub fn gesv(
    side: Side,
    trans: bool,
    tb: bool,
    a: &Matrix,
    b: &Matrix,
) -> Result<Matrix, RuntimeError> {
    let b_eff = maybe_t(b, tb);
    let out = match (side, trans) {
        (Side::Left, false) => lapack::gesv(a, &b_eff)?,
        (Side::Left, true) => lapack::gesv_trans(a, &b_eff)?,
        (Side::Right, false) => lapack::gesv_right(&b_eff, a)?,
        // X·Aᵀ = B ⟺ A·Xᵀ = Bᵀ.
        (Side::Right, true) => lapack::gesv(a, &b_eff.transposed())?.transposed(),
    };
    Ok(out)
}

/// SPD solve `A⁻¹·op(B)` or `op(B)·A⁻¹` (Cholesky-based).
///
/// # Errors
///
/// Returns an error if `A` is not positive definite.
pub fn posv(side: Side, tb: bool, a: &Matrix, b: &Matrix) -> Result<Matrix, RuntimeError> {
    let b_eff = maybe_t(b, tb);
    let out = match side {
        Side::Left => lapack::posv(a, &b_eff)?,
        Side::Right => lapack::posv_right(&b_eff, a)?,
    };
    Ok(out)
}

/// Diagonal multiply/solve with `D` (stored as a full matrix whose
/// diagonal is extracted).
///
/// # Errors
///
/// Returns an error if solving and any diagonal entry is zero.
pub fn diag(
    side: Side,
    inv: bool,
    tb: bool,
    d: &Matrix,
    b: &Matrix,
) -> Result<Matrix, RuntimeError> {
    let b_eff = maybe_t(b, tb);
    let dv = d.diagonal();
    let out = match (side, inv) {
        (Side::Left, false) => dg::dgmm_left(&dv, &b_eff),
        (Side::Left, true) => dg::dgsv_left(&dv, &b_eff)?,
        (Side::Right, false) => dg::dgmm_right(&b_eff, &dv),
        (Side::Right, true) => dg::dgsv_right(&b_eff, &dv)?,
    };
    Ok(out)
}

/// `op(A)·x` for a column vector `x` (stored `n×1`).
pub fn gemv(trans: bool, a: &Matrix, x: &Matrix) -> Matrix {
    let y = blas2::gemv(1.0, a, trans, x.col(0));
    Matrix::from_col_major(y.len(), 1, y)
}

/// `op(A)·x` with triangular `A`.
pub fn trmv(uplo: Uplo, trans: bool, a: &Matrix, x: &Matrix) -> Matrix {
    let mut y = x.col(0).to_vec();
    blas2::trmv(tri(uplo), a, trans, false, &mut y);
    Matrix::from_col_major(y.len(), 1, y)
}

/// `A·x` with symmetric `A`.
pub fn symv(a: &Matrix, x: &Matrix) -> Matrix {
    let y = blas2::symv(1.0, a, x.col(0));
    Matrix::from_col_major(y.len(), 1, y)
}

/// `op(A)⁻¹·x` with triangular `A`.
pub fn trsv(uplo: Uplo, trans: bool, a: &Matrix, x: &Matrix) -> Matrix {
    let mut y = x.col(0).to_vec();
    blas2::trsv(tri(uplo), a, trans, false, &mut y);
    Matrix::from_col_major(y.len(), 1, y)
}

/// The outer product `x·yᵀ` of two column vectors.
pub fn ger(x: &Matrix, y: &Matrix) -> Matrix {
    blas2::outer(1.0, x.col(0), y.col(0))
}

/// The inner product `xᵀ·y` as a `1×1` matrix.
pub fn dot_op(x: &Matrix, y: &Matrix) -> Matrix {
    Matrix::from_col_major(1, 1, vec![blas1::dot(x.col(0), y.col(0))])
}

/// Explicit inversion `op(A)⁻¹`, specialized by structure.
///
/// # Errors
///
/// Returns an error if the operand is singular (or not SPD for
/// [`InvKind::Spd`]).
pub fn inv(kind: InvKind, trans: bool, a: &Matrix) -> Result<Matrix, RuntimeError> {
    let out = match kind {
        InvKind::General => lapack::getri(a)?,
        InvKind::Spd => lapack::poinv(a)?,
        InvKind::Triangular(u) => lapack::trtri(a, tri(u), false)?,
        InvKind::Diagonal => {
            let d = dg::diag_inv(&a.diagonal())?;
            Matrix::from_diagonal(&d)
        }
    };
    Ok(maybe_t(&out, trans))
}

/// The composite inverse pair `op(A)⁻¹·op(B)⁻¹`: explicit inverse of
/// `op(B)` followed by a general solve with `op(A)`.
///
/// # Errors
///
/// Returns an error if either operand is singular.
pub fn inv_pair(ta: bool, tb: bool, a: &Matrix, b: &Matrix) -> Result<Matrix, RuntimeError> {
    let mut binv = lapack::getri(b)?;
    if tb {
        binv = binv.transposed();
    }
    let out = if ta {
        lapack::gesv_trans(a, &binv)?
    } else {
        lapack::gesv(a, &binv)?
    };
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_linalg::blas3::gemm_ref;
    use gmc_linalg::random;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn gesv_all_sides_and_transposes() {
        let mut r = rng();
        let a = random::invertible(&mut r, 6);
        let b = random::general(&mut r, 6, 3);
        // Left, notrans: A·X = B.
        let x = gesv(Side::Left, false, false, &a, &b).unwrap();
        assert!(gemm_ref(&a, &x).approx_eq(&b, 1e-8));
        // Left, trans: Aᵀ·X = B.
        let x = gesv(Side::Left, true, false, &a, &b).unwrap();
        assert!(gemm_ref(&a.transposed(), &x).approx_eq(&b, 1e-8));
        // Right: X·A = C.
        let c = random::general(&mut r, 3, 6);
        let x = gesv(Side::Right, false, false, &a, &c).unwrap();
        assert!(gemm_ref(&x, &a).approx_eq(&c, 1e-8));
        // Right, trans: X·Aᵀ = C.
        let x = gesv(Side::Right, true, false, &a, &c).unwrap();
        assert!(gemm_ref(&x, &a.transposed()).approx_eq(&c, 1e-8));
    }

    #[test]
    fn gesv_transposed_rhs() {
        let mut r = rng();
        let a = random::invertible(&mut r, 6);
        let b = random::general(&mut r, 3, 6);
        // A·X = Bᵀ.
        let x = gesv(Side::Left, false, true, &a, &b).unwrap();
        assert!(gemm_ref(&a, &x).approx_eq(&b.transposed(), 1e-8));
    }

    #[test]
    fn posv_sides() {
        let mut r = rng();
        let a = random::spd(&mut r, 5);
        let b = random::general(&mut r, 5, 2);
        let x = posv(Side::Left, false, &a, &b).unwrap();
        assert!(gemm_ref(&a, &x).approx_eq(&b, 1e-8));
        let c = random::general(&mut r, 2, 5);
        let x = posv(Side::Right, false, &a, &c).unwrap();
        assert!(gemm_ref(&x, &a).approx_eq(&c, 1e-8));
    }

    #[test]
    fn diag_ops() {
        let mut r = rng();
        let d = random::diagonal(&mut r, 4);
        let b = random::general(&mut r, 4, 3);
        let got = diag(Side::Left, false, false, &d, &b).unwrap();
        assert!(got.approx_eq(&gemm_ref(&d, &b), 1e-12));
        let got = diag(Side::Left, true, false, &d, &b).unwrap();
        assert!(gemm_ref(&d, &got).approx_eq(&b, 1e-10));
        let c = random::general(&mut r, 3, 4);
        let got = diag(Side::Right, false, false, &d, &c).unwrap();
        assert!(got.approx_eq(&gemm_ref(&c, &d), 1e-12));
    }

    #[test]
    fn vector_ops() {
        let mut r = rng();
        let a = random::general(&mut r, 4, 6);
        let x = random::general(&mut r, 6, 1);
        let y = gemv(false, &a, &x);
        assert!(y.approx_eq(&gemm_ref(&a, &x), 1e-12));

        let l = random::lower_triangular(&mut r, 5);
        let v = random::general(&mut r, 5, 1);
        let got = trmv(Uplo::Lower, false, &l, &v);
        assert!(got.approx_eq(&gemm_ref(&l, &v), 1e-12));
        let back = trsv(Uplo::Lower, false, &l, &got);
        assert!(back.approx_eq(&v, 1e-9));

        let s = random::symmetric(&mut r, 5);
        let got = symv(&s, &v);
        assert!(got.approx_eq(&gemm_ref(&s, &v), 1e-12));

        let w = random::general(&mut r, 3, 1);
        let got = ger(&v, &w);
        assert!(got.approx_eq(&gemm_ref(&v, &w.transposed()), 1e-12));

        let v2 = random::general(&mut r, 5, 1);
        let got = dot_op(&v, &v2);
        assert!(got.approx_eq(&gemm_ref(&v.transposed(), &v2), 1e-12));
    }

    #[test]
    fn inv_pair_matches_explicit() {
        let mut r = rng();
        let a = random::invertible(&mut r, 5);
        let b = random::invertible(&mut r, 5);
        let got = inv_pair(false, false, &a, &b).unwrap();
        let want = gemm_ref(&lapack::getri(&a).unwrap(), &lapack::getri(&b).unwrap());
        assert!(got.approx_eq(&want, 1e-6));
        // With transposes.
        let got = inv_pair(true, true, &a, &b).unwrap();
        let want = gemm_ref(
            &lapack::getri(&a.transposed()).unwrap(),
            &lapack::getri(&b.transposed()).unwrap(),
        );
        assert!(got.approx_eq(&want, 1e-6));
    }

    #[test]
    fn trsm_with_transposed_rhs() {
        let mut r = rng();
        let l = random::lower_triangular(&mut r, 4);
        let b = random::general(&mut r, 3, 4);
        // L⁻¹·Bᵀ.
        let x = trsm(Side::Left, Uplo::Lower, false, true, &l, &b);
        assert!(gemm_ref(&l, &x).approx_eq(&b.transposed(), 1e-9));
    }
}
