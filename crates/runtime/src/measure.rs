//! A measurement-backed cost metric (paper Sec. 3.3).
//!
//! The paper notes that when the optimizer's own runtime is of no
//! concern, "real measurements could be used, for example using
//! performance modeling tools such as ELAPS". [`MeasuredMetric`] is that
//! idea on this repo's substrate: the first time a kernel operation of a
//! given signature (family, flags, operand dimensions) is costed, the
//! operation is executed on synthetic property-respecting operands and
//! the minimum wall-clock time over a few repetitions becomes its cost;
//! subsequent queries hit a cache, so the `O(n³)` dynamic program stays
//! fast.
//!
//! Because measurements reflect *this* machine and *this* substrate, a
//! `GmcOptimizer` driven by `MeasuredMetric` adapts to the actual kernel
//! efficiency spread — e.g. it learns that our `SYMM` really costs a full
//! GEMM (see EXPERIMENTS.md) and stops being lured by the Table 1 price.

use crate::env::{materialize, Env};
use crate::exec::execute_op;
use gmc::CostMetric;
use gmc_kernels::KernelOp;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Instant;

/// Cache key: kernel display form with operand names replaced by their
/// dimensions — captures family, flags and all sizes.
fn signature(op: &KernelOp) -> String {
    let mut sig = format!("{:?}|", op.family());
    // The Display form includes the flag characters; strip operand
    // names by appending shapes explicitly instead.
    for operand in op.operands() {
        sig.push_str(&format!(
            "{}x{},",
            operand.shape().rows(),
            operand.shape().cols()
        ));
    }
    // Distinguish flag variants of the same family and shapes.
    match op {
        KernelOp::Gemm { ta, tb, .. } => sig.push_str(&format!("t{ta}{tb}")),
        KernelOp::Trmm {
            side, uplo, trans, ..
        } => sig.push_str(&format!("{side:?}{uplo:?}{trans}")),
        KernelOp::Trsm {
            side,
            uplo,
            trans,
            tb,
            ..
        } => sig.push_str(&format!("{side:?}{uplo:?}{trans}{tb}")),
        KernelOp::Symm { side, .. } | KernelOp::Posv { side, .. } => {
            sig.push_str(&format!("{side:?}"))
        }
        KernelOp::Gesv {
            side, trans, tb, ..
        } => sig.push_str(&format!("{side:?}{trans}{tb}")),
        KernelOp::Diag { side, inv, tb, .. } => sig.push_str(&format!("{side:?}{inv}{tb}")),
        KernelOp::Syrk { trans, .. } | KernelOp::Gemv { trans, .. } => {
            sig.push_str(&format!("{trans}"))
        }
        KernelOp::Trmv { uplo, trans, .. } | KernelOp::Trsv { uplo, trans, .. } => {
            sig.push_str(&format!("{uplo:?}{trans}"))
        }
        KernelOp::Inv { kind, trans, .. } => sig.push_str(&format!("{kind:?}{trans}")),
        KernelOp::InvPair { ta, tb, .. } => sig.push_str(&format!("{ta}{tb}")),
        KernelOp::Symv { .. }
        | KernelOp::Ger { .. }
        | KernelOp::Dot { .. }
        | KernelOp::Copy { .. } => {}
    }
    sig
}

/// A [`CostMetric`] whose kernel costs are wall-clock measurements on
/// the actual substrate, memoized per kernel signature.
///
/// # Example
///
/// ```
/// use gmc::GmcOptimizer;
/// use gmc_expr::{Chain, Operand, Property};
/// use gmc_kernels::KernelRegistry;
/// use gmc_runtime::MeasuredMetric;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let registry = KernelRegistry::blas_lapack();
/// let metric = MeasuredMetric::new(2);
/// let a = Operand::square("A", 24).with_property(Property::SymmetricPositiveDefinite);
/// let b = Operand::matrix("B", 24, 8);
/// let chain = Chain::from_expr(&(a.inverse() * b.expr()))?;
/// let solution = GmcOptimizer::new(&registry, &metric).solve(&chain)?;
/// assert!(solution.cost() > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct MeasuredMetric {
    cache: RefCell<HashMap<String, f64>>,
    reps: usize,
}

impl MeasuredMetric {
    /// Creates a metric taking the minimum over `reps` timed executions
    /// per distinct kernel signature (plus one warm-up run).
    pub fn new(reps: usize) -> Self {
        MeasuredMetric {
            cache: RefCell::new(HashMap::new()),
            reps: reps.max(1),
        }
    }

    /// Number of distinct kernel signatures measured so far.
    pub fn cached_signatures(&self) -> usize {
        self.cache.borrow().len()
    }

    fn measure(&self, op: &KernelOp) -> f64 {
        // Synthesize property-respecting operands for the op and time it.
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let mut env = Env::new();
        for operand in op.operands() {
            if env.get(operand.name()).is_none() {
                env.bind(operand.name(), materialize(operand, &mut rng));
            }
        }
        // Warm-up (also surfaces numeric failures, which get a +inf
        // cost so the optimizer avoids the kernel).
        if execute_op(op, &env).is_err() {
            return f64::INFINITY;
        }
        let mut best = f64::INFINITY;
        for _ in 0..self.reps {
            let start = Instant::now();
            let out = execute_op(op, &env);
            let t = start.elapsed().as_secs_f64();
            std::hint::black_box(&out);
            best = best.min(t);
        }
        best
    }
}

impl CostMetric for MeasuredMetric {
    type Cost = f64;

    fn op_cost(&self, op: &KernelOp) -> f64 {
        let sig = signature(op);
        if let Some(&t) = self.cache.borrow().get(&sig) {
            return t;
        }
        let t = self.measure(op);
        self.cache.borrow_mut().insert(sig, t);
        t
    }

    fn name(&self) -> &str {
        "measured"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc::{FlopCount, GmcOptimizer};
    use gmc_expr::{Chain, Factor, Operand, Property};
    use gmc_kernels::KernelRegistry;

    #[test]
    fn measures_and_caches() {
        let metric = MeasuredMetric::new(1);
        let op = KernelOp::Gemm {
            ta: false,
            tb: false,
            a: Operand::matrix("A", 16, 16),
            b: Operand::matrix("B", 16, 16),
        };
        let t1 = metric.op_cost(&op);
        assert!(t1 > 0.0 && t1.is_finite());
        assert_eq!(metric.cached_signatures(), 1);
        // Same signature with different operand names: cache hit.
        let op2 = KernelOp::Gemm {
            ta: false,
            tb: false,
            a: Operand::matrix("X", 16, 16),
            b: Operand::matrix("Y", 16, 16),
        };
        assert_eq!(metric.op_cost(&op2), t1);
        assert_eq!(metric.cached_signatures(), 1);
        // Different flags: distinct signature.
        let op3 = KernelOp::Gemm {
            ta: true,
            tb: false,
            a: Operand::matrix("X", 16, 16),
            b: Operand::matrix("Y", 16, 16),
        };
        let _ = metric.op_cost(&op3);
        assert_eq!(metric.cached_signatures(), 2);
    }

    #[test]
    fn optimizer_runs_on_measured_costs() {
        let registry = KernelRegistry::blas_lapack();
        let metric = MeasuredMetric::new(1);
        let l = Operand::square("L", 20).with_property(Property::LowerTriangular);
        let b = Operand::matrix("B", 20, 8);
        let chain = Chain::new(vec![Factor::inverted(l), Factor::plain(b)]).unwrap();
        let measured = GmcOptimizer::new(&registry, &metric).solve(&chain).unwrap();
        // Whatever it picks must still compute the right value...
        let env = Env::random_for_chain(&chain, 1);
        crate::validate_against_reference(&measured.program(), &chain, &env, 1e-6).unwrap();
        // ...and at this size the FLOP-optimal choice (TRSM) should
        // also be measured-optimal or at least computable.
        let flops = GmcOptimizer::new(&registry, FlopCount)
            .solve(&chain)
            .unwrap();
        assert!(measured.flops() <= flops.flops() * 4.0);
    }

    #[test]
    fn singular_synthetics_get_infinite_cost() {
        // A zero operand cannot be inverted: the measured cost must be
        // +inf so the optimizer discards the alternative.
        let metric = MeasuredMetric::new(1);
        let z = Operand::square("Z", 8).with_property(Property::Zero);
        let b = Operand::matrix("B", 8, 3);
        let op = KernelOp::Gesv {
            side: gmc_kernels::Side::Left,
            trans: false,
            tb: false,
            a: z,
            b,
        };
        assert!(metric.op_cost(&op).is_infinite());
    }
}
