//! Execution of generated kernel programs against the `gmc-linalg`
//! substrate.
//!
//! This crate closes the loop of the GMC pipeline: programs produced by
//! the optimizer (or by the baseline strategies) are interpreted over
//! concrete matrices, validated against a reference evaluation, and
//! timed — which is how the paper's Fig. 8/Fig. 9 measurements are
//! reproduced.
//!
//! * [`Env`] binds operand names to matrices; [`Env::random_for_chain`]
//!   materializes property-respecting random inputs.
//! * [`execute`] interprets a [`gmc_codegen::Program`].
//! * [`reference_eval`] evaluates the chain naively (explicit inverses,
//!   left-to-right GEMMs) as a numeric oracle.
//! * [`validate_against_reference`] checks that a generated program
//!   computes the same value.
//! * [`time_program_best_of`] measures wall-clock execution time.
//! * [`MeasuredMetric`] turns those measurements into an ELAPS-style
//!   cost metric for the optimizer (paper Sec. 3.3).
//!
//! # Example
//!
//! ```
//! use gmc::{FlopCount, GmcOptimizer};
//! use gmc_expr::{Chain, Operand, Property};
//! use gmc_kernels::KernelRegistry;
//! use gmc_runtime::{validate_against_reference, Env};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let a = Operand::square("A", 20).with_property(Property::SymmetricPositiveDefinite);
//! let b = Operand::matrix("B", 20, 8);
//! let chain = Chain::from_expr(&(a.inverse() * b.expr()))?;
//!
//! let registry = KernelRegistry::blas_lapack();
//! let solution = GmcOptimizer::new(&registry, FlopCount).solve(&chain)?;
//!
//! let env = Env::random_for_chain(&chain, 42);
//! validate_against_reference(&solution.program(), &chain, &env, 1e-8)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod env;
mod exec;
mod measure;
pub mod ops;

pub use env::{materialize, Env};
pub use exec::{
    execute, execute_op, reference_eval, time_program, time_program_best_of,
    validate_against_reference,
};
pub use measure::MeasuredMetric;

use gmc_linalg::LinalgError;
use std::fmt;

/// Errors produced while executing generated programs.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum RuntimeError {
    /// A kernel failed numerically (singular operand, not SPD, …).
    Numeric(LinalgError),
    /// An instruction referenced a name with no bound matrix.
    MissingOperand {
        /// The unbound name.
        name: String,
    },
    /// The program contains no instructions.
    EmptyProgram,
    /// Validation failed: generated program and reference disagree.
    Mismatch {
        /// Largest absolute entry-wise difference observed.
        max_abs_diff: f64,
    },
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Numeric(e) => write!(f, "kernel failed: {e}"),
            RuntimeError::MissingOperand { name } => {
                write!(f, "no matrix bound for operand `{name}`")
            }
            RuntimeError::EmptyProgram => write!(f, "program has no instructions"),
            RuntimeError::Mismatch { max_abs_diff } => write!(
                f,
                "generated program disagrees with reference (max abs diff {max_abs_diff:.3e})"
            ),
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Numeric(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for RuntimeError {
    fn from(e: LinalgError) -> Self {
        RuntimeError::Numeric(e)
    }
}
