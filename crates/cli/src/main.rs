//! `gmcc` — the GMC linear algebra compiler.
//!
//! ```text
//! gmcc [FILE] [--emit julia|rust|pseudo] [--metric flops|time] [--check]
//!      [--bind NAME=SIZE[,NAME=SIZE...]] [--plan-store PATH]
//!
//! gmcc serve FILE (--requests RFILE | --listen ADDR)
//!      [--workers N] [--mode compositional|deep]
//!      [--plan-store PATH] [--pre-enumerate] [--queue-capacity N]
//!
//! gmcc request ADDR [RFILE]
//!
//! gmcc workload gen [--preset NAME] [--seed N] [...]
//! gmcc workload describe [TRACE]
//! gmcc workload faults [--seed N] [--panics N] [...]
//! gmcc workload replay [TRACE] [--workers N] [--verify ...]
//!      [--faults PLAN] [--queue-capacity N] [--quick]
//! ```
//!
//! The default mode reads a problem description in the paper's input
//! language (from FILE or stdin), runs the Generalized Matrix Chain
//! algorithm on every assignment and prints generated code with cost
//! annotations. Problems with symbolic dimensions (`Matrix A (n, m)`)
//! are compiled through the `gmc-plan` cache at the sizes given by
//! `--bind`; `--plan-store` warm-starts that cache from a snapshot and
//! saves it back.
//!
//! `serve` starts the batching front door (`gmc-serve`): every
//! assignment is registered once as a named structure, then either a
//! requests file is answered in-process (`--requests`, one
//! `<target> var=size,...` request per line) or a TCP line-protocol
//! listener serves clients (`--listen HOST:PORT`). `request` is the
//! matching client, reading request lines from RFILE or stdin.
//!
//! `workload` generates, inspects and replays synthetic serving
//! traffic traces (see `gmcc workload --help`).

use gmc_cli::{
    compile, run_request, run_serve_batch, run_workload, Emit, Metric, Options, ServeOptions,
};
use std::io::Read;
use std::process::ExitCode;

fn read_input(file: Option<&str>) -> Result<String, String> {
    match file {
        Some(path) => std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}")),
        None => {
            let mut s = String::new();
            std::io::stdin()
                .read_to_string(&mut s)
                .map_err(|_| "cannot read stdin".to_owned())?;
            Ok(s)
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("serve") => serve_main(&args[1..]),
        Some("request") => request_main(&args[1..]),
        Some("workload") => ExitCode::from(run_workload(&args[1..])),
        _ => compile_main(&args),
    }
}

fn compile_main(args: &[String]) -> ExitCode {
    let mut file: Option<String> = None;
    let mut options = Options::default();
    let mut args = args.iter().map(String::as_str);
    while let Some(arg) = args.next() {
        match arg {
            "--emit" => match args.next().map(str::parse::<Emit>) {
                Some(Ok(e)) => options.emit = e,
                Some(Err(e)) => {
                    eprintln!("gmcc: {e}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("gmcc: --emit needs a value");
                    return ExitCode::from(2);
                }
            },
            "--metric" => match args.next().map(str::parse::<Metric>) {
                Some(Ok(m)) => options.metric = m,
                Some(Err(e)) => {
                    eprintln!("gmcc: {e}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("gmcc: --metric needs a value");
                    return ExitCode::from(2);
                }
            },
            "--check" => options.check = true,
            "--bind" => match args.next() {
                Some(spec) => {
                    for part in spec.split(',') {
                        match part.split_once('=').and_then(|(name, value)| {
                            let name = name.trim();
                            let value = value.trim().parse::<usize>().ok()?;
                            (!name.is_empty()).then(|| (name.to_owned(), value))
                        }) {
                            Some(binding) => options.bind.push(binding),
                            None => {
                                eprintln!("gmcc: --bind expects NAME=SIZE, got `{part}`");
                                return ExitCode::from(2);
                            }
                        }
                    }
                }
                None => {
                    eprintln!("gmcc: --bind needs a value (NAME=SIZE[,NAME=SIZE...])");
                    return ExitCode::from(2);
                }
            },
            "--plan-store" => match args.next() {
                Some(path) => options.plan_store = Some(path.to_owned()),
                None => {
                    eprintln!("gmcc: --plan-store needs a path");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: gmcc [FILE] [--emit julia|rust|pseudo] [--metric flops|time] \
                     [--check] [--bind NAME=SIZE[,NAME=SIZE...]] [--plan-store PATH]\n\
                     \x20      gmcc serve FILE (--requests RFILE | --listen ADDR) [--workers N] \
                     [--mode compositional|deep] [--plan-store PATH] [--pre-enumerate] \
                     [--queue-capacity N]\n\
                     \x20      gmcc request ADDR [RFILE]  (request lines, or STATS | \
                     METRICS | SLOW | CACHE for introspection)\n\
                     \x20      gmcc workload <gen|describe|faults|replay> [...] \
                     (see gmcc workload --help)"
                );
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(other.to_owned());
            }
            other => {
                eprintln!("gmcc: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let input = match read_input(file.as_deref()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gmcc: {e}");
            return ExitCode::from(2);
        }
    };

    match compile(&input, &options) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gmcc: {e}");
            ExitCode::FAILURE
        }
    }
}

fn serve_main(args: &[String]) -> ExitCode {
    let mut file: Option<String> = None;
    let mut requests: Option<String> = None;
    let mut listen: Option<String> = None;
    let mut options = ServeOptions::default();
    let mut args = args.iter().map(String::as_str);
    while let Some(arg) = args.next() {
        match arg {
            "--requests" => match args.next() {
                Some(path) => requests = Some(path.to_owned()),
                None => {
                    eprintln!("gmcc serve: --requests needs a path");
                    return ExitCode::from(2);
                }
            },
            "--listen" => match args.next() {
                Some(addr) => listen = Some(addr.to_owned()),
                None => {
                    eprintln!("gmcc serve: --listen needs HOST:PORT");
                    return ExitCode::from(2);
                }
            },
            "--workers" => match args.next().map(str::parse::<usize>) {
                Some(Ok(n)) if n > 0 => options.workers = n,
                _ => {
                    eprintln!("gmcc serve: --workers needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--mode" => match args.next() {
                Some("compositional") => options.inference = gmc::InferenceMode::Compositional,
                Some("deep") => options.inference = gmc::InferenceMode::Deep,
                _ => {
                    eprintln!("gmcc serve: --mode expects compositional or deep");
                    return ExitCode::from(2);
                }
            },
            "--plan-store" => match args.next() {
                Some(path) => options.plan_store = Some(path.to_owned()),
                None => {
                    eprintln!("gmcc serve: --plan-store needs a path");
                    return ExitCode::from(2);
                }
            },
            "--pre-enumerate" => options.pre_enumerate = true,
            "--queue-capacity" => match args.next().map(str::parse::<usize>) {
                Some(Ok(n)) if n > 0 => options.queue_capacity = Some(n),
                _ => {
                    eprintln!("gmcc serve: --queue-capacity needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(other.to_owned());
            }
            other => {
                eprintln!("gmcc serve: unknown argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }
    let Some(file) = file else {
        eprintln!("gmcc serve: a problem FILE is required");
        return ExitCode::from(2);
    };
    let input = match std::fs::read_to_string(&file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gmcc serve: cannot read {file}: {e}");
            return ExitCode::from(2);
        }
    };

    match (requests, listen) {
        (Some(rfile), None) => {
            let request_text = match std::fs::read_to_string(&rfile) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("gmcc serve: cannot read {rfile}: {e}");
                    return ExitCode::from(2);
                }
            };
            match run_serve_batch(&input, &request_text, &options) {
                Ok(report) => {
                    print!("{report}");
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("gmcc serve: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        (None, Some(addr)) => match gmc_cli::serve_listen(&input, &addr, &options) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("gmcc serve: {e}");
                ExitCode::FAILURE
            }
        },
        _ => {
            eprintln!("gmcc serve: pass exactly one of --requests RFILE or --listen ADDR");
            ExitCode::from(2)
        }
    }
}

fn request_main(args: &[String]) -> ExitCode {
    let mut addr: Option<String> = None;
    let mut file: Option<String> = None;
    for arg in args {
        if addr.is_none() {
            addr = Some(arg.clone());
        } else if file.is_none() {
            file = Some(arg.clone());
        } else {
            eprintln!("gmcc request: unexpected argument `{arg}`");
            return ExitCode::from(2);
        }
    }
    let Some(addr) = addr else {
        eprintln!("gmcc request: usage: gmcc request ADDR [RFILE]");
        return ExitCode::from(2);
    };
    let requests = match read_input(file.as_deref()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("gmcc request: {e}");
            return ExitCode::from(2);
        }
    };
    match run_request(&addr, &requests) {
        Ok(replies) => {
            print!("{replies}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gmcc request: {e}");
            ExitCode::FAILURE
        }
    }
}
