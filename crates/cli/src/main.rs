//! `gmcc` — the GMC linear algebra compiler.
//!
//! ```text
//! gmcc [FILE] [--emit julia|rust|pseudo] [--metric flops|time] [--check]
//!      [--bind NAME=SIZE[,NAME=SIZE...]]
//! ```
//!
//! Reads a problem description in the paper's input language (from FILE
//! or stdin), runs the Generalized Matrix Chain algorithm on every
//! assignment and prints generated code with cost annotations.
//! Problems with symbolic dimensions (`Matrix A (n, m)`) are compiled
//! through the `gmc-plan` cache at the sizes given by `--bind`.

use gmc_cli::{compile, Emit, Metric, Options};
use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut file: Option<String> = None;
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--emit" => match args.next().as_deref().map(str::parse::<Emit>) {
                Some(Ok(e)) => options.emit = e,
                Some(Err(e)) => {
                    eprintln!("gmcc: {e}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("gmcc: --emit needs a value");
                    return ExitCode::from(2);
                }
            },
            "--metric" => match args.next().as_deref().map(str::parse::<Metric>) {
                Some(Ok(m)) => options.metric = m,
                Some(Err(e)) => {
                    eprintln!("gmcc: {e}");
                    return ExitCode::from(2);
                }
                None => {
                    eprintln!("gmcc: --metric needs a value");
                    return ExitCode::from(2);
                }
            },
            "--check" => options.check = true,
            "--bind" => match args.next() {
                Some(spec) => {
                    for part in spec.split(',') {
                        match part.split_once('=').and_then(|(name, value)| {
                            let name = name.trim();
                            let value = value.trim().parse::<usize>().ok()?;
                            (!name.is_empty()).then(|| (name.to_owned(), value))
                        }) {
                            Some(binding) => options.bind.push(binding),
                            None => {
                                eprintln!("gmcc: --bind expects NAME=SIZE, got `{part}`");
                                return ExitCode::from(2);
                            }
                        }
                    }
                }
                None => {
                    eprintln!("gmcc: --bind needs a value (NAME=SIZE[,NAME=SIZE...])");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!(
                    "usage: gmcc [FILE] [--emit julia|rust|pseudo] [--metric flops|time] \
                     [--check] [--bind NAME=SIZE[,NAME=SIZE...]]"
                );
                return ExitCode::SUCCESS;
            }
            other if !other.starts_with('-') && file.is_none() => {
                file = Some(other.to_owned());
            }
            other => {
                eprintln!("gmcc: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }

    let input = match &file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("gmcc: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            let mut s = String::new();
            if std::io::stdin().read_to_string(&mut s).is_err() {
                eprintln!("gmcc: cannot read stdin");
                return ExitCode::from(2);
            }
            s
        }
    };

    match compile(&input, &options) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("gmcc: {e}");
            ExitCode::FAILURE
        }
    }
}
