//! Driver logic for `gmcc`, the GMC linear algebra compiler CLI.
//!
//! Takes a problem in the paper's input language (Fig. 1–2), runs the
//! GMC optimizer on every assignment, and emits code. Kept as a library
//! so the driver is unit-testable; the `gmcc` binary is a thin wrapper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod serve;
mod workload;

pub use serve::{run_request, run_serve_batch, serve_listen, ServeOptions};
pub use workload::run_workload;

use gmc::{FlopCount, GmcOptimizer, GmcWorkspace, InferenceMode, TimeModel};
use gmc_codegen::{emit_size_generic_rust, Emitter, JuliaEmitter, PseudoEmitter, RustEmitter};
use gmc_expr::{Chain, DimBindings};
use gmc_frontend::SymbolicProblem;
use gmc_kernels::KernelRegistry;
use gmc_plan::PlanCache;
use gmc_runtime::{validate_against_reference, Env};
use std::fmt::Write as _;
use std::sync::Arc;

/// Output language selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Emit {
    /// Julia (paper Table 2 style).
    Julia,
    /// Rust against `gmc_runtime::ops`.
    Rust,
    /// Mathematical pseudocode.
    Pseudo,
}

impl std::str::FromStr for Emit {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "julia" => Ok(Emit::Julia),
            "rust" => Ok(Emit::Rust),
            "pseudo" => Ok(Emit::Pseudo),
            other => Err(format!(
                "unknown emitter `{other}` (expected julia, rust or pseudo)"
            )),
        }
    }
}

/// Cost metric selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// FLOP count (paper default).
    Flops,
    /// The calibrated execution-time model.
    Time,
}

impl std::str::FromStr for Metric {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "flops" => Ok(Metric::Flops),
            "time" => Ok(Metric::Time),
            other => Err(format!("unknown metric `{other}` (expected flops or time)")),
        }
    }
}

/// CLI options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Output language.
    pub emit: Emit,
    /// Cost metric.
    pub metric: Metric,
    /// Execute the generated program on random inputs and validate it
    /// against the reference evaluation.
    pub check: bool,
    /// Dimension-variable bindings (`--bind n=2000`) for problems with
    /// symbolic dimensions.
    pub bind: Vec<(String, usize)>,
    /// Plan-store path (`--plan-store cache.json`): warm-start the plan
    /// cache from it before compiling and save it back after.
    pub plan_store: Option<String>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            emit: Emit::Julia,
            metric: Metric::Flops,
            check: false,
            bind: Vec::new(),
            plan_store: None,
        }
    }
}

/// Compiles a problem text and renders a report.
///
/// # Errors
///
/// Returns a rendered error message for parse errors, non-chain
/// assignments, optimizer failures, and (with `check`) validation
/// failures.
pub fn compile(input: &str, options: &Options) -> Result<String, String> {
    let problem = gmc_frontend::parse(input).map_err(|e| gmc_frontend::render_error(input, &e))?;
    let registry = Arc::new(KernelRegistry::blas_lapack());
    // Mixed problems: concrete assignments compile exactly as in a
    // fully concrete problem, then the symbolic ones go through the
    // plan cache.
    let mut out = String::new();
    // Both metrics cost in f64, so one workspace amortizes the DP
    // tables across every assignment of the problem.
    let mut workspace = GmcWorkspace::new();
    for (target, expr) in &problem.assignments {
        let chain = Chain::from_expr(expr).map_err(|e| format!("assignment `{target}`: {e}"))?;
        let (program, paren, cost_line) = match options.metric {
            Metric::Flops => {
                let solution = GmcOptimizer::new(&registry, FlopCount)
                    .solve_with(&chain, &mut workspace)
                    .map_err(|e| format!("assignment `{target}`: {e}"))?;
                (
                    solution.program(),
                    solution.parenthesization().to_owned(),
                    format!("cost: {:.4e} flops", solution.flops()),
                )
            }
            Metric::Time => {
                let solution = GmcOptimizer::new(&registry, TimeModel::default())
                    .solve_with(&chain, &mut workspace)
                    .map_err(|e| format!("assignment `{target}`: {e}"))?;
                (
                    solution.program(),
                    solution.parenthesization().to_owned(),
                    format!(
                        "cost: {:.3} ms (model), {:.4e} flops",
                        solution.cost() * 1e3,
                        solution.flops()
                    ),
                )
            }
        };
        writeln!(out, "# {target} := {chain}").expect("string write");
        writeln!(out, "# parenthesization: {paren}").expect("string write");
        writeln!(out, "# {cost_line}").expect("string write");
        let code = match options.emit {
            Emit::Julia => JuliaEmitter::default().emit(&program),
            Emit::Rust => RustEmitter.emit(&program),
            Emit::Pseudo => PseudoEmitter.emit(&program),
        };
        out.push_str(&code);
        out.push('\n');
        if options.check {
            let env = Env::random_for_chain(&chain, 0xC60);
            validate_against_reference(&program, &chain, &env, 1e-6)
                .map_err(|e| format!("assignment `{target}`: validation failed: {e}"))?;
            writeln!(out, "# check: OK (matches reference evaluation)").expect("string write");
        }
        out.push('\n');
    }
    if let Some(symbolic) = &problem.symbolic {
        if !symbolic.chains.is_empty() {
            out.push_str(&compile_symbolic(symbolic, &registry, options)?);
        }
    }
    Ok(out)
}

/// Compiles the symbolic assignments of a problem: every chain
/// structure is solved through a [`PlanCache`] at the sizes given by
/// `--bind`, so assignments sharing a structure hit the cached plan.
fn compile_symbolic(
    problem: &SymbolicProblem,
    registry: &Arc<KernelRegistry>,
    options: &Options,
) -> Result<String, String> {
    if options.metric != Metric::Flops {
        return Err(
            "symbolic problems support only the flops metric (polynomial costs)".to_owned(),
        );
    }
    let mut bindings = DimBindings::new();
    for (name, value) in &options.bind {
        bindings.set(name, *value);
    }
    let cache = PlanCache::new(registry.clone(), InferenceMode::Compositional);
    let mut out = String::new();
    if let Some(store) = &options.plan_store {
        if let Some(line) = serve::warm_start_plan_store(&cache, store)? {
            out.push_str(&line);
        }
    }
    for (target, chain) in &problem.chains {
        let missing: Vec<String> = chain
            .vars()
            .iter()
            .filter(|v| bindings.get(**v).is_none())
            .map(|v| v.name().to_owned())
            .collect();
        if !missing.is_empty() {
            return Err(format!(
                "assignment `{target}`: unbound dimension variables {} (pass --bind NAME=SIZE)",
                missing.join(", ")
            ));
        }
        let (solution, outcome) = cache
            .solve(chain, &bindings)
            .map_err(|e| format!("assignment `{target}`: {e}"))?;
        let program = solution.program();
        writeln!(out, "# {target} := {chain}   [at {bindings}]").expect("string write");
        writeln!(out, "# parenthesization: {}", solution.parenthesization()).expect("string write");
        writeln!(out, "# cost: {:.4e} flops", solution.flops()).expect("string write");
        if let Some(summary) = cache.region_summary(chain, &bindings) {
            writeln!(
                out,
                "# plan: {outcome}; cells: {summary}; regions split on <= {} shape questions",
                gmc_plan::undecided_shape_questions(chain)
            )
            .expect("string write");
        }
        let code = match options.emit {
            Emit::Julia => JuliaEmitter::default().emit(&program),
            // Symbolic problems emit the size-generic form: one
            // function per assignment, parameterized by the dims.
            Emit::Rust => emit_size_generic_rust(&program, chain),
            Emit::Pseudo => PseudoEmitter.emit(&program),
        };
        out.push_str(&code);
        out.push('\n');
        if options.check {
            let concrete = chain
                .bind(&bindings)
                .map_err(|e| format!("assignment `{target}`: {e}"))?;
            let env = Env::random_for_chain(&concrete, 0xC60);
            validate_against_reference(&program, &concrete, &env, 1e-6)
                .map_err(|e| format!("assignment `{target}`: validation failed: {e}"))?;
            writeln!(out, "# check: OK (matches reference evaluation)").expect("string write");
        }
        out.push('\n');
    }
    writeln!(out, "# plan cache: {}", cache.stats()).expect("string write");
    if let Some(store) = &options.plan_store {
        out.push_str(&serve::save_plan_store(&cache, store)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const TABLE2: &str = "\
Matrix A (2000, 2000) <SPD>
Matrix B (2000, 200)
Matrix C (200, 200) <LowerTriangular>
X := A^-1 * B * C^T
";

    #[test]
    fn compiles_table2_to_julia() {
        let out = compile(TABLE2, &Options::default()).unwrap();
        assert!(out.contains("trmm!('R', 'L', 'T', 'N', 1.0, C, B)"));
        assert!(out.contains("posv!('L', A, B)"));
        assert!(out.contains("parenthesization"));
    }

    #[test]
    fn emits_rust_and_pseudo() {
        let out = compile(
            TABLE2,
            &Options {
                emit: Emit::Rust,
                ..Options::default()
            },
        )
        .unwrap();
        assert!(out.contains("ops::posv"));
        let out = compile(
            TABLE2,
            &Options {
                emit: Emit::Pseudo,
                ..Options::default()
            },
        )
        .unwrap();
        assert!(out.contains("[posv]"));
    }

    #[test]
    fn check_mode_validates() {
        let small = "\
Matrix A (30, 30) <SPD>
Matrix B (30, 10)
X := A^-1 * B
";
        let out = compile(
            small,
            &Options {
                check: true,
                ..Options::default()
            },
        )
        .unwrap();
        assert!(out.contains("check: OK"));
    }

    #[test]
    fn time_metric_reports_model_cost() {
        let out = compile(
            TABLE2,
            &Options {
                metric: Metric::Time,
                ..Options::default()
            },
        )
        .unwrap();
        assert!(out.contains("ms (model)"));
    }

    #[test]
    fn parse_errors_are_surfaced() {
        let err = compile("Matrix A (5, 5)\nX := A * Q\n", &Options::default()).unwrap_err();
        assert!(err.contains("not defined"));
    }

    const TABLE2_SYMBOLIC: &str = "\
Matrix A (n, n) <SPD>
Matrix B (n, m)
Matrix C (m, m) <LowerTriangular>
X := A^-1 * B * C^T
Y := A^-1 * B * C^T
";

    #[test]
    fn symbolic_problem_compiles_through_plan_cache() {
        let out = compile(
            TABLE2_SYMBOLIC,
            &Options {
                bind: vec![("n".into(), 2000), ("m".into(), 200)],
                ..Options::default()
            },
        )
        .unwrap();
        // Same kernel sequence as the concrete Table 2 problem.
        assert!(out.contains("trmm!"), "{out}");
        assert!(out.contains("posv!"), "{out}");
        // The second assignment shares the structure: a cache hit.
        assert!(out.contains("plan: hit"), "{out}");
        assert!(out.contains("plan cache: 2 requests: 1 hits"), "{out}");
    }

    #[test]
    fn symbolic_rust_emission_is_size_generic() {
        let out = compile(
            TABLE2_SYMBOLIC,
            &Options {
                emit: Emit::Rust,
                bind: vec![("n".into(), 40), ("m".into(), 20)],
                ..Options::default()
            },
        )
        .unwrap();
        assert!(out.contains("pub fn compute(n: usize, m: usize"), "{out}");
    }

    #[test]
    fn symbolic_check_mode_validates() {
        let out = compile(
            "Matrix A (n, n) <SPD>\nMatrix B (n, m)\nX := A^-1 * B\n",
            &Options {
                check: true,
                bind: vec![("n".into(), 30), ("m".into(), 10)],
                ..Options::default()
            },
        )
        .unwrap();
        assert!(out.contains("check: OK"), "{out}");
    }

    #[test]
    fn symbolic_missing_binding_is_reported() {
        let err = compile(
            TABLE2_SYMBOLIC,
            &Options {
                bind: vec![("n".into(), 2000)],
                ..Options::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("unbound dimension variables m"), "{err}");
        assert!(err.contains("--bind"), "{err}");
    }

    #[test]
    fn symbolic_time_metric_rejected() {
        let err = compile(
            TABLE2_SYMBOLIC,
            &Options {
                metric: Metric::Time,
                bind: vec![("n".into(), 10), ("m".into(), 10)],
                ..Options::default()
            },
        )
        .unwrap_err();
        assert!(err.contains("flops metric"), "{err}");
    }

    #[test]
    fn sum_assignments_rejected_as_chains() {
        let err = compile(
            "Matrix A (5, 5)\nMatrix B (5, 5)\nX := A + B\n",
            &Options::default(),
        )
        .unwrap_err();
        assert!(err.contains("not a matrix chain"));
    }
}
