//! The `gmcc workload` subcommands: generate, describe and replay
//! serving-traffic traces (`gmc-bench`'s workload layer).
//!
//! ```text
//! gmcc workload gen [--preset NAME] [--seed N] [--requests N]
//!                   [--structures N] [--hit-ratio F] [--name S] [--out PATH]
//! gmcc workload describe [TRACE]
//! gmcc workload faults [--seed N] [--requests N] [--panics N] [--kills N]
//!                      [--delays N] [--delay-ms N] [--drops N] [--expires N]
//!                      [--bursts N] [--burst-size N] [--queue-capacity N]
//!                      [--out PATH]
//! gmcc workload replay [TRACE] [--workers N] [--verify all|none|sample N]
//!                      [--mode compositional|deep] [--timing] [--window N]
//!                      [--faults PLAN] [--queue-capacity N] [--quick]
//! ```
//!
//! `gen` writes the trace JSON (stdout by default); the same flags
//! always produce the same bytes, and so does `faults` for its seeded
//! `gmc-faults/1` plan. `replay` prints one JSON line per request to
//! stdout — deterministic across runs of the same trace (the racy
//! hit/miss outcome is deliberately *not* included) — and the
//! counter/latency summary to stderr; it exits nonzero when any
//! serving invariant or bitwise verification fails, including the
//! chaos invariants when `--faults` injects panics, overload bursts
//! and expired deadlines. `--quick` replays a small built-in trace
//! (no TRACE argument) as a smoke check.

use gmc_bench::replay::{replay_trace, ReplayOptions, ReplayReport, Verify};
use gmc_bench::workload::{generate, Trace, WorkloadSpec};
use gmc_serve::faults::{FaultPlan, FaultSpec};
use serde::Value;
use std::io::{Read as _, Write as _};

/// Runs `gmcc workload <gen|describe|faults|replay> ...`; returns the
/// process exit code.
pub fn run_workload(args: &[String]) -> u8 {
    match args.first().map(String::as_str) {
        Some("gen") => workload_gen(&args[1..]),
        Some("describe") => workload_describe(&args[1..]),
        Some("faults") => workload_faults(&args[1..]),
        Some("replay") => workload_replay(&args[1..]),
        _ => {
            eprintln!(
                "gmcc workload: expected a subcommand: gen, describe, faults or replay \
                 (try --help)"
            );
            2
        }
    }
}

fn read_trace_input(file: Option<&str>) -> Result<Trace, String> {
    let text = match file {
        Some(path) => {
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?
        }
        None => {
            let mut s = String::new();
            std::io::stdin()
                .read_to_string(&mut s)
                .map_err(|_| "cannot read stdin".to_owned())?;
            s
        }
    };
    Trace::from_json_str(&text)
}

fn workload_gen(args: &[String]) -> u8 {
    let mut preset = "mixed".to_owned();
    let mut seed = 42u64;
    let mut requests: Option<usize> = None;
    let mut structures: Option<usize> = None;
    let mut hit_ratio: Option<f64> = None;
    let mut name: Option<String> = None;
    let mut out: Option<String> = None;
    let mut args = args.iter().map(String::as_str);
    while let Some(arg) = args.next() {
        match arg {
            "--preset" => match args.next() {
                Some(p) => preset = p.to_owned(),
                None => return usage_error("gen", "--preset needs a name"),
            },
            "--seed" => match args.next().map(str::parse) {
                Some(Ok(s)) => seed = s,
                _ => return usage_error("gen", "--seed needs an integer"),
            },
            "--requests" => match args.next().map(str::parse) {
                Some(Ok(n)) if n > 0 => requests = Some(n),
                _ => return usage_error("gen", "--requests needs a positive integer"),
            },
            "--structures" => match args.next().map(str::parse) {
                Some(Ok(n)) if n > 0 => structures = Some(n),
                _ => return usage_error("gen", "--structures needs a positive integer"),
            },
            "--hit-ratio" => match args.next().map(str::parse::<f64>) {
                Some(Ok(r)) if (0.0..=1.0).contains(&r) => hit_ratio = Some(r),
                _ => return usage_error("gen", "--hit-ratio needs a value in [0, 1]"),
            },
            "--name" => match args.next() {
                Some(n) => name = Some(n.to_owned()),
                None => return usage_error("gen", "--name needs a value"),
            },
            "--out" => match args.next() {
                Some(p) => out = Some(p.to_owned()),
                None => return usage_error("gen", "--out needs a path"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: gmcc workload gen [--preset {}] [--seed N] [--requests N] \
                     [--structures N] [--hit-ratio F] [--name S] [--out PATH]",
                    WorkloadSpec::PRESETS.join("|")
                );
                return 0;
            }
            other => return usage_error("gen", &format!("unknown argument `{other}`")),
        }
    }
    let Some(mut spec) = WorkloadSpec::preset(&preset, seed) else {
        eprintln!(
            "gmcc workload gen: unknown preset `{preset}` (expected one of {})",
            WorkloadSpec::PRESETS.join(", ")
        );
        return 2;
    };
    if let Some(n) = requests {
        spec.requests = n;
    }
    if let Some(n) = structures {
        spec.alias_structures = spec.alias_structures.min(n);
        spec.structures = n;
    }
    if let Some(r) = hit_ratio {
        spec.hit_ratio = r;
    }
    if let Some(n) = name {
        spec.name = n;
    }
    let trace = match generate(&spec) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("gmcc workload gen: {e}");
            return 1;
        }
    };
    let json = trace.to_json_string();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("gmcc workload gen: cannot write {path}: {e}");
                return 1;
            }
            eprintln!(
                "wrote {} requests over {} structures to {path}",
                trace.requests.len(),
                trace.structures.len()
            );
        }
        None => print!("{json}"),
    }
    0
}

fn workload_describe(args: &[String]) -> u8 {
    let mut file: Option<String> = None;
    for arg in args {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("usage: gmcc workload describe [TRACE] (stdin when omitted)");
                return 0;
            }
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_owned()),
            other => return usage_error("describe", &format!("unknown argument `{other}`")),
        }
    }
    match read_trace_input(file.as_deref()) {
        Ok(trace) => {
            print!("{}", trace.describe());
            0
        }
        Err(e) => {
            eprintln!("gmcc workload describe: {e}");
            1
        }
    }
}

fn workload_faults(args: &[String]) -> u8 {
    let mut spec = FaultSpec::default();
    let mut out: Option<String> = None;
    let mut args = args.iter().map(String::as_str);
    while let Some(arg) = args.next() {
        let mut int_flag = |name: &str, slot: &mut usize| -> Result<(), u8> {
            match args.next().map(str::parse) {
                Some(Ok(n)) => {
                    *slot = n;
                    Ok(())
                }
                _ => Err(usage_error("faults", &format!("{name} needs an integer"))),
            }
        };
        match arg {
            "--seed" => match args.next().map(str::parse) {
                Some(Ok(s)) => spec.seed = s,
                _ => return usage_error("faults", "--seed needs an integer"),
            },
            "--requests" => {
                if let Err(code) = int_flag("--requests", &mut spec.requests) {
                    return code;
                }
            }
            "--panics" => {
                if let Err(code) = int_flag("--panics", &mut spec.panics) {
                    return code;
                }
            }
            "--kills" => {
                if let Err(code) = int_flag("--kills", &mut spec.kills) {
                    return code;
                }
            }
            "--delays" => {
                if let Err(code) = int_flag("--delays", &mut spec.delays) {
                    return code;
                }
            }
            "--delay-ms" => match args.next().map(str::parse) {
                Some(Ok(ms)) => spec.delay_ms = ms,
                _ => return usage_error("faults", "--delay-ms needs an integer"),
            },
            "--drops" => {
                if let Err(code) = int_flag("--drops", &mut spec.drops) {
                    return code;
                }
            }
            "--expires" => {
                if let Err(code) = int_flag("--expires", &mut spec.expires) {
                    return code;
                }
            }
            "--bursts" => {
                if let Err(code) = int_flag("--bursts", &mut spec.bursts) {
                    return code;
                }
            }
            "--burst-size" => {
                if let Err(code) = int_flag("--burst-size", &mut spec.burst_size) {
                    return code;
                }
            }
            "--queue-capacity" => {
                if let Err(code) = int_flag("--queue-capacity", &mut spec.queue_capacity) {
                    return code;
                }
            }
            "--out" => match args.next() {
                Some(p) => out = Some(p.to_owned()),
                None => return usage_error("faults", "--out needs a path"),
            },
            "--help" | "-h" => {
                println!(
                    "usage: gmcc workload faults [--seed N] [--requests N] [--panics N] \
                     [--kills N] [--delays N] [--delay-ms N] [--drops N] [--expires N] \
                     [--bursts N] [--burst-size N] [--queue-capacity N] [--out PATH]"
                );
                return 0;
            }
            other => return usage_error("faults", &format!("unknown argument `{other}`")),
        }
    }
    let plan = match FaultPlan::seeded(&spec) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("gmcc workload faults: {e}");
            return 1;
        }
    };
    let json = plan.to_json_string();
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, &json) {
                eprintln!("gmcc workload faults: cannot write {path}: {e}");
                return 1;
            }
            eprintln!(
                "wrote {} fault(s) over {} requests to {path}",
                plan.entries.len(),
                spec.requests
            );
        }
        None => print!("{json}"),
    }
    0
}

fn workload_replay(args: &[String]) -> u8 {
    let mut file: Option<String> = None;
    let mut opts = ReplayOptions::default();
    let mut quick = false;
    let mut args = args.iter().map(String::as_str);
    while let Some(arg) = args.next() {
        match arg {
            "--workers" => match args.next().map(str::parse) {
                Some(Ok(n)) if n > 0 => opts.workers = n,
                _ => return usage_error("replay", "--workers needs a positive integer"),
            },
            "--verify" => match args.next() {
                Some("all") => opts.verify = Verify::All,
                Some("none") => opts.verify = Verify::None,
                Some("sample") => match args.next().map(str::parse) {
                    Some(Ok(n)) => opts.verify = Verify::Sample(n),
                    _ => return usage_error("replay", "--verify sample needs a count"),
                },
                _ => return usage_error("replay", "--verify expects all, none or sample N"),
            },
            "--mode" => match args.next() {
                Some("compositional") => opts.inference = gmc::InferenceMode::Compositional,
                Some("deep") => opts.inference = gmc::InferenceMode::Deep,
                _ => return usage_error("replay", "--mode expects compositional or deep"),
            },
            "--timing" => opts.honor_timing = true,
            "--window" => match args.next().map(str::parse) {
                Some(Ok(n)) => opts.window = n,
                _ => return usage_error("replay", "--window needs an integer (0 = one batch)"),
            },
            "--faults" => match args.next() {
                Some(path) => {
                    let text = match std::fs::read_to_string(path) {
                        Ok(t) => t,
                        Err(e) => {
                            eprintln!("gmcc workload replay: cannot read {path}: {e}");
                            return 1;
                        }
                    };
                    match FaultPlan::from_json_str(&text) {
                        Ok(plan) => opts.faults = Some(plan),
                        Err(e) => {
                            eprintln!("gmcc workload replay: bad fault plan {path}: {e}");
                            return 1;
                        }
                    }
                }
                None => return usage_error("replay", "--faults needs a plan path"),
            },
            "--queue-capacity" => match args.next().map(str::parse) {
                Some(Ok(n)) if n > 0 => opts.queue_capacity = Some(n),
                _ => return usage_error("replay", "--queue-capacity needs a positive integer"),
            },
            "--quick" => quick = true,
            "--help" | "-h" => {
                println!(
                    "usage: gmcc workload replay [TRACE] [--workers N] \
                     [--verify all|none|sample N] [--mode compositional|deep] \
                     [--timing] [--window N] [--faults PLAN] [--queue-capacity N] \
                     [--quick]"
                );
                return 0;
            }
            other if !other.starts_with('-') && file.is_none() => file = Some(other.to_owned()),
            other => return usage_error("replay", &format!("unknown argument `{other}`")),
        }
    }

    let trace = if quick {
        // A small built-in smoke trace: mixed traffic, everything
        // verified against cold solves, two workers unless overridden.
        let mut spec = WorkloadSpec::preset("mixed", 42).expect("mixed preset exists");
        spec.requests = 80;
        opts.verify = Verify::All;
        if file.is_some() {
            eprintln!("gmcc workload replay: --quick ignores the TRACE argument");
        }
        match generate(&spec) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("gmcc workload replay: {e}");
                return 1;
            }
        }
    } else {
        match read_trace_input(file.as_deref()) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("gmcc workload replay: {e}");
                return 1;
            }
        }
    };

    let report = match replay_trace(&trace, &opts) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("gmcc workload replay: {e}");
            return 1;
        }
    };
    print_report(&report);
    if report.is_clean() {
        0
    } else {
        for v in &report.violations {
            eprintln!("gmcc workload replay: VIOLATION: {v}");
        }
        1
    }
}

/// Per-request results to stdout (deterministic for a given trace: the
/// racy hit/miss outcome is excluded), summary to stderr.
fn print_report(report: &ReplayReport) {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for r in &report.results {
        let mut fields = vec![("structure".to_owned(), Value::String(r.structure.clone()))];
        match &r.error {
            None => {
                fields.push(("cost".to_owned(), Value::Number(r.cost)));
                fields.push(("flops".to_owned(), Value::Number(r.flops)));
                fields.push((
                    "parenthesization".to_owned(),
                    Value::String(r.parenthesization.clone()),
                ));
                fields.push((
                    "kernels".to_owned(),
                    Value::Array(r.kernels.iter().map(|k| Value::String(k.clone())).collect()),
                ));
            }
            Some(e) => {
                fields.push(("error".to_owned(), Value::String(e.clone())));
                if let Some(code) = &r.code {
                    fields.push(("code".to_owned(), Value::String(code.clone())));
                }
            }
        }
        let line = serde_json::to_string(&Value::Object(fields)).expect("finite reply values");
        writeln!(out, "{line}").expect("stdout write");
    }
    let stats = &report.stats;
    eprintln!(
        "replayed {} requests in {:.3}s ({:.0} req/s), verified {}: {}",
        report.submitted,
        report.elapsed,
        report.submitted as f64 / report.elapsed.max(1e-9),
        report.verified,
        stats
    );
    if !stats.latency.stages.is_empty() {
        let breakdown: Vec<String> = stats
            .latency
            .stages
            .iter()
            .map(|s| {
                format!(
                    "{} p50 {}ns p99 {}ns",
                    s.stage,
                    s.snapshot.quantile(0.5),
                    s.snapshot.quantile(0.99)
                )
            })
            .collect();
        eprintln!("stages: {}", breakdown.join("; "));
    }
    if report.queue_full_replies
        + report.expired_replies
        + report.internal_replies
        + report.abandoned
        > 0
        || report.worker_panics > 0
    {
        eprintln!(
            "chaos: {} queue-full, {} expired, {} internal, {} abandoned; \
             {} worker panic(s), {} respawn(s)",
            report.queue_full_replies,
            report.expired_replies,
            report.internal_replies,
            report.abandoned,
            report.worker_panics,
            report.respawns
        );
    }
}

fn usage_error(sub: &str, msg: &str) -> u8 {
    eprintln!("gmcc workload {sub}: {msg}");
    2
}
