//! The `gmcc serve` / `gmcc request` drivers.
//!
//! `serve` loads a problem file, registers every assignment as a named
//! structure with a [`gmc_serve::Server`] (the parse-once front door),
//! optionally warm-starts the plan cache from a plan store and
//! pre-enumerates small structures, then either answers a batch
//! requests file in-process (`--requests`) or listens on TCP
//! (`--listen`). `request` is the matching line-protocol client.

use gmc::InferenceMode;
use gmc_expr::SymChain;
use gmc_kernels::KernelRegistry;
use gmc_serve::protocol::{parse_request_line, reply_to_json, stats_to_json};
use gmc_serve::{ServeConfig, Server};
use std::io::{BufRead, BufReader, Write as _};
use std::sync::Arc;

/// Options of the `gmcc serve` subcommand.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// Worker threads.
    pub workers: usize,
    /// Inference mode for the shared cache.
    pub inference: InferenceMode,
    /// Plan-store path: load before serving (if it exists), save after
    /// a batch run.
    pub plan_store: Option<String>,
    /// Pre-enumerate every registered structure small enough for it.
    pub pre_enumerate: bool,
    /// Admission capacity (in-flight request bound); `None` keeps the
    /// server default.
    pub queue_capacity: Option<usize>,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            workers: 4,
            inference: InferenceMode::default(),
            plan_store: None,
            pre_enumerate: false,
            queue_capacity: None,
        }
    }
}

/// Builds a server from a problem text: every assignment (concrete or
/// symbolic) becomes a registered structure under its target name.
/// Returns the server and a report of the registration steps.
pub(crate) fn build_server(
    input: &str,
    options: &ServeOptions,
) -> Result<(Server, String), String> {
    let problem = gmc_frontend::parse(input).map_err(|e| gmc_frontend::render_error(input, &e))?;
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let server = Server::start(
        registry,
        ServeConfig {
            workers: options.workers,
            inference: options.inference,
            queue_capacity: options
                .queue_capacity
                .unwrap_or(ServeConfig::default().queue_capacity),
            ..ServeConfig::default()
        },
    );
    let mut report = String::new();

    // Collect (name, chain) pairs: symbolic assignments as parsed,
    // concrete ones lifted into the symbolic pipeline (single-region
    // structures).
    let mut structures: Vec<(String, SymChain)> = Vec::new();
    for (target, expr) in &problem.assignments {
        let chain =
            gmc_expr::Chain::from_expr(expr).map_err(|e| format!("assignment `{target}`: {e}"))?;
        let sym =
            SymChain::from_chain(&chain).map_err(|e| format!("assignment `{target}`: {e}"))?;
        structures.push((target.clone(), sym));
    }
    if let Some(symbolic) = &problem.symbolic {
        for (target, chain) in &symbolic.chains {
            structures.push((target.clone(), chain.clone()));
        }
    }
    if structures.is_empty() {
        return Err("problem file has no assignments to serve".to_owned());
    }

    if let Some(store) = &options.plan_store {
        if let Some(line) = warm_start_plan_store(server.cache(), store)? {
            report.push_str(&line);
        }
    }

    for (name, chain) in structures {
        if options.pre_enumerate {
            match server.register_pre_enumerated(&name, chain) {
                Ok(regions) => {
                    report.push_str(&format!(
                        "# registered {name} (pre-enumerated {regions} regions)\n"
                    ));
                }
                Err(e) => {
                    // Too large to enumerate: registered anyway, warms
                    // up on demand.
                    report.push_str(&format!("# registered {name} (on-demand: {e})\n"));
                }
            }
        } else {
            server
                .register(&name, chain)
                .map_err(|e| format!("register `{name}`: {e}"))?;
            report.push_str(&format!("# registered {name}\n"));
        }
    }
    Ok((server, report))
}

/// Runs the in-process batch driver: serves every request line of
/// `requests` against the problem in `input` and renders one JSON
/// reply line per request plus a trailing stats line.
///
/// # Errors
///
/// Returns a rendered message for parse errors in the problem file;
/// malformed request lines become error replies, not driver errors.
pub fn run_serve_batch(
    input: &str,
    requests: &str,
    options: &ServeOptions,
) -> Result<String, String> {
    let (server, mut out) = build_server(input, options)?;
    let handle = server.handle();

    // Submit the whole file as one batch so requests sharing a
    // (structure, region) group and identical bindings coalesce.
    // `line_results` records, per line, how its output slot is filled:
    // positionally from the replies stream, a literal message
    // (malformed line), or the counters (a `STATS` line).
    enum Line {
        Reply,
        Literal(String),
        Stats,
        Metrics,
        Slow,
        Cache,
    }
    let mut parsed = Vec::new();
    let mut line_results: Vec<Line> = Vec::new();
    for line in requests.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "STATS" {
            line_results.push(Line::Stats);
            continue;
        }
        if line == "METRICS" {
            line_results.push(Line::Metrics);
            continue;
        }
        if line == "SLOW" {
            line_results.push(Line::Slow);
            continue;
        }
        if line == "CACHE" {
            line_results.push(Line::Cache);
            continue;
        }
        match parse_request_line(line) {
            Ok((name, vars, deadline_ms)) => {
                let opts = match deadline_ms {
                    Some(ms) => gmc_serve::RequestOptions::with_deadline_in(
                        std::time::Duration::from_millis(ms),
                    ),
                    None => gmc_serve::RequestOptions::default(),
                };
                line_results.push(Line::Reply);
                parsed.push((name, vars, opts));
            }
            Err(e) => line_results.push(Line::Literal(format!("# bad request `{line}`: {e}"))),
        }
    }
    let tickets = handle.submit_raw_batch(parsed);
    // Resolve every reply before rendering, so a `STATS` line reflects
    // the whole batch wherever it appears in the file.
    let replies: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    let mut replies = replies.into_iter();
    for entry in line_results {
        match entry {
            Line::Reply => {
                let reply = replies.next().expect("one reply per parsed request");
                out.push_str(&reply_to_json(&reply));
                out.push('\n');
            }
            Line::Literal(msg) => {
                out.push_str(&msg);
                out.push('\n');
            }
            // Counters as of after the batch resolved (the batch is
            // submitted whole, so this reflects every request above).
            Line::Stats => {
                out.push_str(&stats_to_json(&handle.stats()));
                out.push('\n');
            }
            // Multi-line Prometheus exposition, `# EOF`-terminated
            // like the wire protocol.
            Line::Metrics => {
                let body = handle.metrics_prometheus();
                out.push_str(&body);
                if !body.is_empty() && !body.ends_with('\n') {
                    out.push('\n');
                }
                out.push_str("# EOF\n");
            }
            Line::Slow => {
                out.push_str(&handle.slow_traces_json());
                out.push('\n');
            }
            Line::Cache => {
                out.push_str(&handle.cache_introspection_json());
                out.push('\n');
            }
        }
    }
    out.push_str(&stats_to_json(&handle.stats()));
    out.push('\n');

    if let Some(store) = &options.plan_store {
        out.push_str(&save_plan_store(server.cache(), store)?);
    }
    server.shutdown();
    Ok(out)
}

/// Loads `store` into `cache` if the file exists; returns the report
/// line. Shared by the compile path and both serve modes so the
/// plan-store policy cannot drift between them.
pub(crate) fn warm_start_plan_store(
    cache: &gmc_plan::PlanCache,
    store: &str,
) -> Result<Option<String>, String> {
    if !std::path::Path::new(store).exists() {
        return Ok(None);
    }
    let adopted = cache.load(store).map_err(|e| e.to_string())?;
    Ok(Some(format!(
        "# plan store: warm start, {adopted} regions from {store}\n"
    )))
}

/// Saves `cache` to `store`; returns the report line.
pub(crate) fn save_plan_store(cache: &gmc_plan::PlanCache, store: &str) -> Result<String, String> {
    cache.save(store).map_err(|e| e.to_string())?;
    Ok(format!("# plan store: saved to {store}\n"))
}

/// Starts the TCP front door and serves until the process is killed.
/// Prints the registration report and the bound address (so `--listen
/// 127.0.0.1:0` is usable in scripts) before blocking.
///
/// # Errors
///
/// Returns a rendered message for problem parse errors and bind
/// failures.
pub fn serve_listen(input: &str, addr: &str, options: &ServeOptions) -> Result<(), String> {
    let (server, report) = build_server(input, options)?;
    let door = gmc_serve::tcp::TcpFrontDoor::bind(server.handle(), addr)
        .map_err(|e| format!("cannot listen on {addr}: {e}"))?;
    print!("{report}");
    println!(
        "# gmc-serve listening on {} ({} workers, {:?} inference)",
        door.local_addr(),
        options.workers,
        options.inference
    );
    match &options.plan_store {
        // A listening server only exits by being killed, so the plan
        // store is persisted periodically (the save is atomic: temp
        // file + rename) instead of on an exit path that never runs.
        Some(store) => {
            println!("# plan store: persisting to {store} every {PERSIST_SECS}s");
            let store = store.clone();
            // Skip ticks with nothing new: regions are only recorded
            // through cache misses (pre-enumeration happened above),
            // so unchanged miss counters mean an identical snapshot.
            let mut saved_recordings = u64::MAX;
            loop {
                std::thread::sleep(std::time::Duration::from_secs(PERSIST_SECS));
                let stats = server.cache().stats();
                let recordings = stats.structure_misses + stats.region_misses;
                if recordings == saved_recordings {
                    continue;
                }
                match server.cache().save(&store) {
                    Ok(()) => saved_recordings = recordings,
                    Err(e) => eprintln!("gmcc serve: plan store save failed: {e}"),
                }
            }
        }
        // Connections are handled by the front door's own threads.
        None => loop {
            std::thread::park();
        },
    }
}

/// How often `gmcc serve --listen --plan-store` persists the snapshot.
const PERSIST_SECS: u64 = 30;

/// Runs the line-protocol client: connects to `addr`, sends every
/// non-empty request line of `requests`, and returns the reply lines.
///
/// # Errors
///
/// Returns a rendered message on connection or I/O failure.
pub fn run_request(addr: &str, requests: &str) -> Result<String, String> {
    let stream =
        std::net::TcpStream::connect(addr).map_err(|e| format!("cannot connect to {addr}: {e}"))?;
    let mut writer = stream
        .try_clone()
        .map_err(|e| format!("cannot clone connection: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut out = String::new();
    for line in requests.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        writer
            .write_all(format!("{line}\n").as_bytes())
            .map_err(|e| format!("send failed: {e}"))?;
        writer.flush().map_err(|e| format!("send failed: {e}"))?;
        // Every reply is one line, except `METRICS`: a multi-line
        // Prometheus exposition the server terminates with `# EOF`.
        loop {
            let mut reply = String::new();
            reader
                .read_line(&mut reply)
                .map_err(|e| format!("receive failed: {e}"))?;
            if reply.is_empty() {
                return Err("server closed the connection".to_owned());
            }
            out.push_str(&reply);
            if line != "METRICS" || reply.trim_end() == "# EOF" {
                break;
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROBLEM: &str = "\
Matrix A (n, n) <SPD>
Matrix B (n, m)
Matrix C (m, m) <LowerTriangular>
X := A^-1 * B * C^T
";

    #[test]
    fn batch_driver_serves_and_reports() {
        let requests = "\
X n=2000,m=200
X n=4000,m=400

# a comment
X n=10,m=900
nope n=1
X oops
X bogus_dim=5
STATS
";
        let out = run_serve_batch(PROBLEM, requests, &ServeOptions::default()).unwrap();
        assert!(out.contains("# registered X"), "{out}");
        assert!(out.contains("\"outcome\":\"miss_structure\""), "{out}");
        assert!(out.contains("\"outcome\":\"hit\""), "{out}");
        assert!(out.contains("TRMM_RLT"), "{out}");
        assert!(out.contains("unknown structure"), "{out}");
        assert!(out.contains("# bad request"), "{out}");
        assert!(
            out.contains("unknown dimension variable `bogus_dim`"),
            "{out}"
        );
        // The STATS line renders the counters in place, and the
        // trailing stats line is always appended.
        assert_eq!(out.matches("\"requests\":3").count(), 2, "{out}");
    }

    #[test]
    fn pre_enumeration_makes_the_first_request_hit() {
        let requests = "X n=123,m=456\n";
        let out = run_serve_batch(
            PROBLEM,
            requests,
            &ServeOptions {
                pre_enumerate: true,
                ..ServeOptions::default()
            },
        )
        .unwrap();
        assert!(out.contains("pre-enumerated"), "{out}");
        assert!(out.contains("\"outcome\":\"hit\""), "{out}");
    }

    #[test]
    fn concrete_assignments_are_served_too() {
        let problem = "\
Matrix A (30, 40)
Matrix B (40, 5)
Y := A * B
";
        let out = run_serve_batch(problem, "Y\nY\n", &ServeOptions::default()).unwrap();
        assert!(out.contains("\"kernels\":[\"GEMM_NN\"]"), "{out}");
        // Identical requests in one batch coalesce into a single
        // instantiate: one cache request, one reply fanned out twice.
        assert!(out.contains("\"coalesced\":1"), "{out}");
        assert!(out.contains("\"requests\":1"), "{out}");
    }

    #[test]
    fn plan_store_round_trips_through_the_batch_driver() {
        let path =
            std::env::temp_dir().join(format!("gmcc_serve_store_{}.json", std::process::id()));
        let store = path.to_string_lossy().into_owned();
        let opts = ServeOptions {
            plan_store: Some(store.clone()),
            ..ServeOptions::default()
        };
        let out = run_serve_batch(PROBLEM, "X n=2000,m=200\n", &opts).unwrap();
        assert!(out.contains("\"outcome\":\"miss_structure\""), "{out}");
        assert!(out.contains("plan store: saved"), "{out}");
        // Second run warm-starts: the same request is now a hit.
        let out = run_serve_batch(PROBLEM, "X n=2000,m=200\n", &opts).unwrap();
        assert!(out.contains("warm start"), "{out}");
        assert!(out.contains("\"outcome\":\"hit\""), "{out}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn metrics_slow_and_cache_lines_work_in_both_drivers() {
        // In-process batch driver.
        let requests = "X n=2000,m=200\nX n=4000,m=400\nMETRICS\nSLOW\nCACHE\n";
        let out = run_serve_batch(PROBLEM, requests, &ServeOptions::default()).unwrap();
        assert!(
            out.contains("# TYPE gmc_serve_stage_latency_ns histogram"),
            "{out}"
        );
        assert!(out.contains("# EOF"), "{out}");
        assert!(out.contains("\"format\":\"gmc-traces/1\""), "{out}");
        assert!(out.contains("\"shards\":["), "{out}");

        // Over the wire through `run_request`.
        let (server, _report) = build_server(PROBLEM, &ServeOptions::default()).unwrap();
        let door = gmc_serve::tcp::TcpFrontDoor::bind(server.handle(), "127.0.0.1:0").unwrap();
        let addr = door.local_addr().to_string();
        let out = run_request(&addr, requests).unwrap();
        assert!(
            out.contains("# TYPE gmc_serve_stage_latency_ns histogram"),
            "{out}"
        );
        assert!(out.lines().any(|l| l == "# EOF"), "{out}");
        assert!(out.contains("\"format\":\"gmc-traces/1\""), "{out}");
        assert!(out.contains("\"shards\":["), "{out}");
        // The exposition covers the two completed requests' stages.
        assert!(
            out.contains("gmc_serve_stage_latency_ns_count{stage=\"solve\"} 2"),
            "{out}"
        );
        door.shutdown();
        server.shutdown();
    }

    #[test]
    fn bad_problem_files_error() {
        assert!(run_serve_batch("Matrix A (5, 5)\n", "X\n", &ServeOptions::default()).is_err());
    }

    #[test]
    fn error_codes_round_trip_through_gmcc_request() {
        let (server, _report) = build_server(PROBLEM, &ServeOptions::default()).unwrap();
        let door = gmc_serve::tcp::TcpFrontDoor::bind(server.handle(), "127.0.0.1:0").unwrap();
        let addr = door.local_addr().to_string();
        let requests = "\
X n=2000,m=200
nope n=1
X bogus=5
X n=10
X n=2000,m=200,deadline_ms=0
";
        let out = run_request(&addr, requests).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5, "{out}");
        assert!(lines[0].contains("\"outcome\":"), "{}", lines[0]);
        assert!(
            lines[1].contains("\"code\":\"unknown_structure\""),
            "{}",
            lines[1]
        );
        assert!(
            lines[2].contains("\"code\":\"bad_request\""),
            "{}",
            lines[2]
        );
        assert!(lines[3].contains("\"code\":\"plan\""), "{}", lines[3]);
        assert!(
            lines[4].contains("\"code\":\"deadline_exceeded\""),
            "{}",
            lines[4]
        );
        door.shutdown();
        server.shutdown();
    }
}
