//! Compositional vs. Deep [`InferenceMode`] on the symmetry-loss
//! example `(AᵀB)(BᵀA)` from the optimizer's own test suite (see
//! `deep_inference_recovers_split_dependent_properties` in
//! `src/gmc.rs` and DESIGN ablation #1).
//!
//! The point of the example: with `X := BᵀA` the chain is `Xᵀ·X`, so
//! the *whole* product is symmetric (indeed SPD for full-rank inputs) —
//! but no split of the chain exposes that to compositional inference,
//! because the two halves `AᵀB` and `BᵀA` carry no properties of their
//! own. Only re-deriving properties from the fully unfolded sub-chain
//! (`InferenceMode::Deep`) recovers it.

use gmc::{FlopCount, GmcOptimizer, InferenceMode};
use gmc_analysis::infer_properties;
use gmc_expr::{Chain, Expr, Operand, Property};
use gmc_kernels::KernelRegistry;

fn symmetry_loss_chain() -> (Operand, Operand, Chain) {
    let a = Operand::matrix("A", 60, 4);
    let b = Operand::matrix("B", 60, 4);
    let chain = Chain::from_expr(&(a.transpose() * b.expr() * b.transpose() * a.expr()))
        .expect("well-formed chain");
    (a, b, chain)
}

/// The analysis engine itself sees the palindrome when given the whole
/// expression — this is exactly what Deep mode feeds it.
#[test]
fn unfolded_expression_is_inferred_symmetric() {
    let (a, b, _) = symmetry_loss_chain();
    let full = Expr::times(vec![a.transpose(), b.expr(), b.transpose(), a.expr()]);
    let props = infer_properties(&full);
    assert!(
        props.contains(Property::Symmetric),
        "deep inference input (AᵀB)(BᵀA) must be recognized as symmetric, got {props}"
    );
}

/// Compositional inference on the binary product of the halves — what
/// the paper's Fig. 4 line 10 sees after the `(AᵀB)·(BᵀA)` split —
/// cannot recover the symmetry, because each half is an unstructured
/// temporary.
#[test]
fn split_product_of_temporaries_loses_symmetry() {
    let (a, b, _) = symmetry_loss_chain();
    let left = Expr::times(vec![a.transpose(), b.expr()]);
    let right = Expr::times(vec![b.transpose(), a.expr()]);
    let left_props = infer_properties(&left);
    let right_props = infer_properties(&right);
    // Neither half has properties of its own...
    assert!(left_props.is_empty());
    assert!(right_props.is_empty());
    // ...so the temporaries standing in for them are bare operands
    // (both half-products are 4×4), and the composed product is not
    // inferred symmetric.
    let t_left = Operand::square("T0", 4).with_properties(left_props.iter());
    let t_right = Operand::square("T1", 4).with_properties(right_props.iter());
    let product = t_left.expr() * t_right.expr();
    assert!(
        !infer_properties(&product).contains(Property::Symmetric),
        "compositional inference should NOT see the split-dependent symmetry"
    );
}

/// End to end: Deep mode annotates the optimizer's result temporary
/// with the recovered symmetry, Compositional does not, and Deep never
/// produces a costlier solution.
#[test]
fn deep_mode_recovers_what_compositional_loses() {
    let (_, _, chain) = symmetry_loss_chain();
    let registry = KernelRegistry::blas_lapack();
    let comp = GmcOptimizer::new(&registry, FlopCount)
        .with_inference(InferenceMode::Compositional)
        .solve(&chain)
        .expect("computable");
    let deep = GmcOptimizer::new(&registry, FlopCount)
        .with_inference(InferenceMode::Deep)
        .solve(&chain)
        .expect("computable");

    let comp_result = &comp.steps().last().expect("nonempty program").dest;
    let deep_result = &deep.steps().last().expect("nonempty program").dest;
    assert!(
        !comp_result.properties().contains(Property::Symmetric),
        "compositional mode unexpectedly recovered symmetry on {comp_result}"
    );
    assert!(
        deep_result.properties().contains(Property::Symmetric),
        "deep mode must annotate the (AᵀB)(BᵀA) result as symmetric"
    );
    assert!(
        deep.flops() <= comp.flops(),
        "deep mode must never cost more"
    );
}

/// Compositional is the paper's semantics and the default.
#[test]
fn compositional_is_the_default_mode() {
    assert_eq!(InferenceMode::default(), InferenceMode::Compositional);
}
