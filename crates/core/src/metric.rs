//! Pluggable cost metrics (paper Sec. 3.3).
//!
//! The GMC algorithm minimizes an arbitrary, user-selected cost metric.
//! A metric assigns a [`Cost`] to each instantiated kernel operation;
//! costs only need to support addition and a total order, so besides the
//! classic FLOP count this module provides a calibrated execution-time
//! model and lexicographic *vector* metrics (paper Sec. 5 explicitly
//! allows vector-valued metrics with a total order).

use gmc_kernels::{KernelFamily, KernelOp};
use std::fmt;
use std::marker::PhantomData;

/// A cost value: orderable and addable, with a zero.
///
/// Implemented for `f64` (FLOPs, seconds, bytes, …) and [`Lex2`]
/// (lexicographic pairs).
pub trait Cost: Clone + PartialOrd + fmt::Debug {
    /// The cost of doing nothing (`cost(M[i,i]) = 0`).
    fn zero() -> Self;
    /// Accumulates two costs.
    fn add(&self, other: &Self) -> Self;
}

impl Cost for f64 {
    fn zero() -> Self {
        0.0
    }

    fn add(&self, other: &Self) -> Self {
        self + other
    }
}

/// A two-component lexicographic cost: compare the first component,
/// break ties with the second.
///
/// # Example
///
/// ```
/// use gmc::Lex2;
///
/// let a = Lex2(100.0, 3.0);
/// let b = Lex2(100.0, 2.0);
/// assert!(b < a); // same primary cost, fewer kernels wins
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Lex2(pub f64, pub f64);

impl PartialOrd for Lex2 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.0.total_cmp(&other.0).then(self.1.total_cmp(&other.1)))
    }
}

impl Cost for Lex2 {
    fn zero() -> Self {
        Lex2(0.0, 0.0)
    }

    fn add(&self, other: &Self) -> Self {
        Lex2(self.0 + other.0, self.1 + other.1)
    }
}

/// Assigns a cost to each kernel operation.
pub trait CostMetric {
    /// The cost type this metric produces.
    type Cost: Cost;

    /// The cost of one kernel call.
    fn op_cost(&self, op: &KernelOp) -> Self::Cost;

    /// A short human-readable name for reports.
    fn name(&self) -> &str {
        "metric"
    }
}

impl<M: CostMetric + ?Sized> CostMetric for &M {
    type Cost = M::Cost;

    fn op_cost(&self, op: &KernelOp) -> Self::Cost {
        (**self).op_cost(op)
    }

    fn name(&self) -> &str {
        (**self).name()
    }
}

/// The classic metric: number of floating point operations, using the
/// paper's per-kernel formulas (Table 1).
#[derive(Clone, Copy, Debug, Default)]
pub struct FlopCount;

impl CostMetric for FlopCount {
    type Cost = f64;

    fn op_cost(&self, op: &KernelOp) -> f64 {
        op.flops()
    }

    fn name(&self) -> &str {
        "flops"
    }
}

/// An execution-time model: `time = flops / (peak · efficiency)` plus a
/// fixed per-call overhead.
///
/// "Efficiency" captures that not all FLOPs cost the same (paper
/// Sec. 3.3, footnote 3): BLAS-3 kernels run near peak, solvers are
/// somewhat slower, and BLAS-2 kernels are memory bound at a small
/// fraction of peak. Small operands are additionally penalized with a
/// saturating ramp, which reproduces the paper's observation that the
/// FLOP-optimal parenthesization is not always the time-optimal one.
#[derive(Clone, Copy, Debug)]
pub struct TimeModel {
    /// Peak double-precision throughput, FLOPs per second.
    pub peak_flops: f64,
    /// Memory bandwidth in bytes per second (used for copies).
    pub bandwidth: f64,
    /// Fixed per-kernel-call overhead in seconds.
    pub call_overhead: f64,
}

impl Default for TimeModel {
    fn default() -> Self {
        // A modest single core: 20 GFLOP/s peak, 20 GB/s bandwidth.
        TimeModel {
            peak_flops: 2.0e10,
            bandwidth: 2.0e10,
            call_overhead: 1.0e-6,
        }
    }
}

impl TimeModel {
    /// The asymptotic efficiency (fraction of peak) for a kernel family.
    pub fn efficiency(family: KernelFamily) -> f64 {
        match family {
            KernelFamily::Gemm => 0.95,
            KernelFamily::Symm => 0.90,
            KernelFamily::Syrk => 0.90,
            KernelFamily::Trmm => 0.80,
            KernelFamily::Trsm => 0.75,
            KernelFamily::Posv => 0.70,
            KernelFamily::Gesv => 0.65,
            KernelFamily::InvPair => 0.60,
            KernelFamily::Inv => 0.60,
            // Memory-bound BLAS-1/2 and diagonal kernels.
            KernelFamily::Dot => 0.15,
            KernelFamily::Gemv | KernelFamily::Symv | KernelFamily::Ger => 0.12,
            KernelFamily::Trmv | KernelFamily::Trsv => 0.10,
            KernelFamily::Diag => 0.10,
            KernelFamily::Copy => 1.0, // handled via bandwidth
        }
    }

    fn size_ramp(op: &KernelOp) -> f64 {
        // Small problems do not reach asymptotic efficiency; saturate
        // around a characteristic dimension of ~64. Visits operands
        // without allocating: this runs once per split candidate on the
        // optimizer's hot path.
        let mut s = 1usize;
        op.for_each_operand(|o| s = s.max(o.shape().rows().min(o.shape().cols())));
        let s = s as f64;
        s / (s + 64.0)
    }
}

impl CostMetric for TimeModel {
    type Cost = f64;

    fn op_cost(&self, op: &KernelOp) -> f64 {
        let base = if op.family() == KernelFamily::Copy {
            let s = op.result_shape();
            (s.len() as f64) * 8.0 / self.bandwidth
        } else {
            let eff = Self::efficiency(op.family()) * Self::size_ramp(op);
            op.flops() / (self.peak_flops * eff.max(1e-3))
        };
        base + self.call_overhead
    }

    fn name(&self) -> &str {
        "time-model"
    }
}

/// A vector metric: minimize FLOPs first, then the number of kernel
/// calls (demonstrates the paper's Sec. 5 extension to vector measures).
#[derive(Clone, Copy, Debug, Default)]
pub struct FlopsThenKernels;

impl CostMetric for FlopsThenKernels {
    type Cost = Lex2;

    fn op_cost(&self, op: &KernelOp) -> Lex2 {
        Lex2(op.flops(), 1.0)
    }

    fn name(&self) -> &str {
        "flops-then-kernels"
    }
}

/// Adapts a closure into a metric — e.g. for measurement-backed costs
/// (ELAPS-style, paper Sec. 3.3) supplied by the runtime.
pub struct FnMetric<C, F> {
    f: F,
    name: String,
    _marker: PhantomData<fn() -> C>,
}

impl<C: Cost, F: Fn(&KernelOp) -> C> FnMetric<C, F> {
    /// Wraps a closure as a metric.
    pub fn new(name: impl Into<String>, f: F) -> Self {
        FnMetric {
            f,
            name: name.into(),
            _marker: PhantomData,
        }
    }
}

impl<C: Cost, F: Fn(&KernelOp) -> C> CostMetric for FnMetric<C, F> {
    type Cost = C;

    fn op_cost(&self, op: &KernelOp) -> C {
        (self.f)(op)
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl<C, F> fmt::Debug for FnMetric<C, F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FnMetric({})", self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_expr::Operand;

    fn gemm_op(n: usize) -> KernelOp {
        KernelOp::Gemm {
            ta: false,
            tb: false,
            a: Operand::square("A", n),
            b: Operand::square("B", n),
        }
    }

    #[test]
    fn flop_count_matches_op_flops() {
        let op = gemm_op(10);
        assert_eq!(FlopCount.op_cost(&op), 2000.0);
    }

    #[test]
    fn lex2_ordering() {
        assert!(Lex2(1.0, 5.0) < Lex2(2.0, 0.0));
        assert!(Lex2(1.0, 1.0) < Lex2(1.0, 2.0));
        assert_eq!(Lex2(1.0, 1.0).add(&Lex2(2.0, 3.0)), Lex2(3.0, 4.0));
        assert_eq!(Lex2::zero(), Lex2(0.0, 0.0));
    }

    #[test]
    fn time_model_prefers_gemm_over_gemv_per_flop() {
        let t = TimeModel::default();
        let mm = gemm_op(200);
        let mv = KernelOp::Gemv {
            trans: false,
            a: Operand::matrix("A", 200, 200),
            x: Operand::col_vector("x", 200),
        };
        let mm_per_flop = t.op_cost(&mm) / mm.flops();
        let mv_per_flop = t.op_cost(&mv) / mv.flops();
        assert!(
            mv_per_flop > 3.0 * mm_per_flop,
            "BLAS-2 should be much less efficient per FLOP"
        );
    }

    #[test]
    fn time_model_small_size_penalty() {
        let t = TimeModel::default();
        let small = gemm_op(8);
        let large = gemm_op(512);
        let small_per_flop = t.op_cost(&small) / small.flops();
        let large_per_flop = t.op_cost(&large) / large.flops();
        assert!(small_per_flop > large_per_flop);
    }

    #[test]
    fn fn_metric_wraps_closure() {
        let m = FnMetric::new("unit", |_: &KernelOp| 1.0);
        assert_eq!(m.op_cost(&gemm_op(4)), 1.0);
        assert_eq!(m.name(), "unit");
    }

    #[test]
    fn flops_then_kernels_counts_calls() {
        let m = FlopsThenKernels;
        let c = m.op_cost(&gemm_op(4));
        assert_eq!(c.1, 1.0);
    }

    #[test]
    fn metric_by_reference() {
        fn takes_metric<M: CostMetric>(m: M, op: &KernelOp) -> M::Cost {
            m.op_cost(op)
        }
        let op = gemm_op(3);
        assert_eq!(takes_metric(&FlopCount, &op), FlopCount.op_cost(&op));
    }
}
