//! The Generalized Matrix Chain algorithm (Barthels, Copik, Bientinesi —
//! CGO 2018).
//!
//! Given a matrix chain `M := f0 · f1 ··· f(n-1)` whose factors may be
//! transposed and/or inverted and whose operands carry structural
//! properties, the [`GmcOptimizer`] finds the parenthesization *and*
//! kernel mapping minimizing a pluggable [`CostMetric`], producing an
//! executable kernel sequence ([`GmcSolution`]).
//!
//! The crate also contains the classic matrix chain DP ([`mcp`]) that
//! the GMC algorithm generalizes (paper Sec. 2).
//!
//! # Quickstart
//!
//! ```
//! use gmc::{FlopCount, GmcOptimizer};
//! use gmc_expr::{Chain, Operand, Property};
//! use gmc_kernels::KernelRegistry;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // X := A⁻¹ B Cᵀ with A SPD and C lower triangular (paper Table 2).
//! let a = Operand::square("A", 2000).with_property(Property::SymmetricPositiveDefinite);
//! let b = Operand::matrix("B", 2000, 200);
//! let c = Operand::square("C", 200).with_property(Property::LowerTriangular);
//! let chain = Chain::from_expr(&(a.inverse() * b.expr() * c.transpose()))?;
//!
//! let registry = KernelRegistry::blas_lapack();
//! let solution = GmcOptimizer::new(&registry, FlopCount).solve(&chain)?;
//!
//! // A Cholesky solve and a triangular multiply — never an explicit
//! // inverse.
//! assert_eq!(solution.kernel_names(), vec!["TRMM_RLT", "POSV_LN"]);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gmc;
pub mod mcp;
mod metric;
pub mod reference;

pub use gmc::{GmcError, GmcOptimizer, GmcSolution, GmcWorkspace, InferenceMode, Step};
pub use metric::{Cost, CostMetric, FlopCount, FlopsThenKernels, FnMetric, Lex2, TimeModel};
