//! The standard matrix chain algorithm (paper Sec. 2, Fig. 3).
//!
//! Classic `O(n³)` dynamic programming over the size array: factor `i`
//! has shape `sizes[i] × sizes[i+1]`, and the cost of a product
//! `A·B` with `A ∈ R^{n×k}`, `B ∈ R^{k×m}` is `2·m·n·k` FLOPs.

use std::fmt;

/// The result of the classic matrix chain DP: optimal FLOP count and the
/// split table for reconstructing the parenthesization.
#[derive(Clone, Debug)]
pub struct McpSolution {
    sizes: Vec<usize>,
    /// `costs[i][j]`: minimal FLOPs for the sub-chain `M[i..=j]`.
    costs: Vec<Vec<f64>>,
    /// `splits[i][j]`: the `k` realizing the optimum.
    splits: Vec<Vec<usize>>,
}

impl McpSolution {
    /// Number of factors.
    pub fn len(&self) -> usize {
        self.sizes.len() - 1
    }

    /// Chains are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The optimal FLOP count for the whole chain.
    pub fn flops(&self) -> f64 {
        self.costs[0][self.len() - 1]
    }

    /// The optimal FLOP count for the sub-chain `M[i..=j]`.
    ///
    /// # Panics
    ///
    /// Panics if `i > j` or `j` is out of range.
    pub fn sub_flops(&self, i: usize, j: usize) -> f64 {
        assert!(i <= j && j < self.len(), "invalid sub-chain range");
        self.costs[i][j]
    }

    /// The optimal split `k` for the sub-chain `M[i..=j]` (the product
    /// is computed as `M[i..=k] · M[k+1..=j]`).
    ///
    /// # Panics
    ///
    /// Panics if `i >= j` or `j` is out of range.
    pub fn split(&self, i: usize, j: usize) -> usize {
        assert!(i < j && j < self.len(), "invalid sub-chain range");
        self.splits[i][j]
    }

    /// The fully parenthesized chain, using the provided factor names.
    ///
    /// # Panics
    ///
    /// Panics if `names.len() != self.len()`.
    pub fn parenthesization(&self, names: &[&str]) -> String {
        assert_eq!(names.len(), self.len(), "one name per factor required");
        let mut out = String::new();
        self.write_paren(0, self.len() - 1, names, &mut out);
        out
    }

    fn write_paren(&self, i: usize, j: usize, names: &[&str], out: &mut String) {
        if i == j {
            out.push_str(names[i]);
        } else {
            let k = self.splits[i][j];
            out.push('(');
            self.write_paren(i, k, names, out);
            self.write_paren(k + 1, j, names, out);
            out.push(')');
        }
    }

    /// The multiplication order as a list of `(i, j, k)` triples in
    /// dependency order: compute `M[i..=j] = M[i..=k]·M[k+1..=j]`.
    pub fn order(&self) -> Vec<(usize, usize, usize)> {
        let mut out = Vec::new();
        self.collect_order(0, self.len() - 1, &mut out);
        out
    }

    fn collect_order(&self, i: usize, j: usize, out: &mut Vec<(usize, usize, usize)>) {
        if i == j {
            return;
        }
        let k = self.splits[i][j];
        self.collect_order(i, k, out);
        self.collect_order(k + 1, j, out);
        out.push((i, j, k));
    }
}

impl fmt::Display for McpSolution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<String> = (0..self.len()).map(|i| format!("M{i}")).collect();
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        write!(
            f,
            "{} ({} flops)",
            self.parenthesization(&refs),
            self.flops()
        )
    }
}

/// Runs the classic matrix chain DP (paper Fig. 3).
///
/// `sizes` has length `n+1`: factor `i` is `sizes[i] × sizes[i+1]`.
///
/// # Panics
///
/// Panics if fewer than two factors are described (`sizes.len() < 3`).
pub fn matrix_chain_order(sizes: &[usize]) -> McpSolution {
    assert!(sizes.len() >= 3, "need at least two factors");
    let n = sizes.len() - 1;
    let mut costs = vec![vec![0.0_f64; n]; n];
    let mut splits = vec![vec![0_usize; n]; n];
    for l in 1..n {
        for i in 0..(n - l) {
            let j = i + l;
            let mut best = f64::INFINITY;
            let mut best_k = i;
            for k in i..j {
                let c = 2.0 * (sizes[i] * sizes[k + 1] * sizes[j + 1]) as f64;
                let cost = costs[i][k] + costs[k + 1][j] + c;
                if cost < best {
                    best = cost;
                    best_k = k;
                }
            }
            costs[i][j] = best;
            splits[i][j] = best_k;
        }
    }
    McpSolution {
        sizes: sizes.to_vec(),
        costs,
        splits,
    }
}

/// Exhaustively enumerates all parenthesizations and returns the optimal
/// FLOP count — exponential, for testing the DP (n ≤ ~12).
pub fn brute_force_flops(sizes: &[usize]) -> f64 {
    assert!(sizes.len() >= 2, "need at least one factor");
    fn rec(sizes: &[usize], i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for k in i..j {
            let c = 2.0 * (sizes[i] * sizes[k + 1] * sizes[j + 1]) as f64;
            let total = rec(sizes, i, k) + rec(sizes, k + 1, j) + c;
            if total < best {
                best = total;
            }
        }
        best
    }
    rec(sizes, 0, sizes.len() - 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn textbook_example() {
        // CLRS-style example with easy hand-checkable sizes.
        // A: 10x100, B: 100x5, C: 5x50.
        // (AB)C: 2*(10*100*5) + 2*(10*5*50) = 10000 + 5000 = 15000.
        // A(BC): 2*(100*5*50) + 2*(10*100*50) = 50000 + 100000 = 150000.
        let sol = matrix_chain_order(&[10, 100, 5, 50]);
        assert_eq!(sol.flops(), 15000.0);
        assert_eq!(sol.parenthesization(&["A", "B", "C"]), "((AB)C)");
    }

    #[test]
    fn paper_sec33_chain() {
        // ABCDE with sizes 130, 700, 383, 1340, 193, 900 — the paper
        // reports 3.16e8 FLOPs for the optimum (((AB)C)D)E.
        let sol = matrix_chain_order(&[130, 700, 383, 1340, 193, 900]);
        assert_eq!(
            sol.parenthesization(&["A", "B", "C", "D", "E"]),
            "((((AB)C)D)E)"
        );
        assert!((sol.flops() - 3.16e8).abs() / 3.16e8 < 0.01);
    }

    #[test]
    fn matches_brute_force() {
        // A deterministic battery of small size arrays.
        let cases: &[&[usize]] = &[
            &[5, 10, 3, 12, 5],
            &[40, 20, 30, 10, 30],
            &[10, 20, 30],
            &[7, 3, 9, 2, 11, 4, 6],
            &[100, 1, 100, 1, 100],
        ];
        for sizes in cases {
            let dp = matrix_chain_order(sizes);
            let bf = brute_force_flops(sizes);
            assert_eq!(dp.flops(), bf, "sizes {sizes:?}");
        }
    }

    #[test]
    fn order_respects_dependencies() {
        let sol = matrix_chain_order(&[10, 100, 5, 50, 1]);
        let order = sol.order();
        assert_eq!(order.len(), 3); // n-1 products for n factors
                                    // The final entry must be the full chain.
        assert_eq!(order.last().unwrap().0, 0);
        assert_eq!(order.last().unwrap().1, 3);
        // Every sub-product must appear before a product that contains it.
        for (idx, &(i, j, _)) in order.iter().enumerate() {
            for &(i2, j2, _) in &order[idx + 1..] {
                assert!(!(i2 >= i && j2 <= j && (i2, j2) != (i, j)));
            }
        }
    }

    #[test]
    fn length_two_chain() {
        let sol = matrix_chain_order(&[3, 4, 5]);
        assert_eq!(sol.flops(), 120.0);
        assert_eq!(sol.parenthesization(&["A", "B"]), "(AB)");
    }

    #[test]
    fn vector_chain_prefers_right_to_left() {
        // M1 M2 v: evaluating matrix-vector products right-to-left is
        // optimal.
        let sol = matrix_chain_order(&[100, 100, 100, 1]);
        assert_eq!(sol.parenthesization(&["M1", "M2", "v"]), "(M1(M2v))");
    }

    #[test]
    fn sub_flops_accessors() {
        let sol = matrix_chain_order(&[10, 100, 5, 50]);
        assert_eq!(sol.sub_flops(0, 0), 0.0);
        assert_eq!(sol.sub_flops(0, 1), 2.0 * 10.0 * 100.0 * 5.0);
        assert_eq!(sol.split(0, 2), 1);
    }
}
