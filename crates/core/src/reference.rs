//! The original collecting GMC solver, retained verbatim as a testing
//! oracle.
//!
//! [`solve_reference`] is the pre-optimization implementation of
//! [`GmcOptimizer::solve`](crate::GmcOptimizer::solve): per split
//! candidate it builds an owned `Expr::Times`, collects a `Vec` of
//! kernel matches, and re-derives metric costs inside the `min_by`
//! comparison. It is deliberately **not** refactored onto the
//! allocation-free hot path — equivalence tests (`tests/properties.rs`,
//! `solve_matches_naive_reference`) compare the two implementations on
//! random chains, which only means something while this one stays
//! independent.

use crate::gmc::{GmcError, GmcSolution, InferenceMode, Step};
use crate::metric::{Cost, CostMetric};
use gmc_analysis::infer_properties;
use gmc_expr::{Chain, Expr, Operand, PropertySet};
use gmc_kernels::{KernelMatch, KernelRegistry};

#[derive(Clone, Debug)]
struct ChosenKernel<C> {
    name: String,
    op: gmc_kernels::KernelOp,
    op_cost: C,
    properties: PropertySet,
}

/// Solves the GMCP with the original bottom-up implementation.
///
/// Selects the same parenthesization, kernels and costs as
/// [`GmcOptimizer::solve`](crate::GmcOptimizer::solve) configured with
/// the same registry, metric and inference mode.
///
/// # Errors
///
/// Returns [`GmcError::NotComputable`] under the same conditions as
/// [`GmcOptimizer::solve`](crate::GmcOptimizer::solve).
pub fn solve_reference<M: CostMetric>(
    registry: &KernelRegistry,
    metric: &M,
    inference: InferenceMode,
    chain: &Chain,
) -> Result<GmcSolution<M::Cost>, GmcError> {
    let n = chain.len();
    // exprs[i][j]: the symbolic value representing M[i..=j]; leaves
    // are the factor expressions, interior entries temporaries.
    let mut exprs: Vec<Vec<Option<Expr>>> = vec![vec![None; n]; n];
    let mut costs: Vec<Vec<Option<M::Cost>>> = vec![vec![None; n]; n];
    let mut chosen: Vec<Vec<Option<ChosenKernel<M::Cost>>>> = vec![vec![None; n]; n];
    let mut splits: Vec<Vec<usize>> = vec![vec![0; n]; n];

    for i in 0..n {
        exprs[i][i] = Some(chain.factor(i).expr());
        costs[i][i] = Some(M::Cost::zero());
    }

    for l in 1..n {
        for i in 0..(n - l) {
            let j = i + l;
            let mut best: Option<(M::Cost, usize, ChosenKernel<M::Cost>)> = None;
            for k in i..j {
                let (Some(cl), Some(cr)) = (costs[i][k].clone(), costs[k + 1][j].clone()) else {
                    continue;
                };
                let (Some(le), Some(re)) = (&exprs[i][k], &exprs[k + 1][j]) else {
                    continue;
                };
                let product = Expr::times([le.clone(), re.clone()]);
                let Some(m) = best_kernel(registry, metric, &product) else {
                    continue;
                };
                let op_cost = metric.op_cost(&m.op);
                let total = cl.add(&cr).add(&op_cost);
                let better = match &best {
                    None => true,
                    Some((c, _, _)) => total < *c,
                };
                if better {
                    let properties = temp_properties(inference, chain, i, j, &product);
                    best = Some((
                        total,
                        k,
                        ChosenKernel {
                            name: m.kernel.name().to_owned(),
                            op: m.op,
                            op_cost,
                            properties,
                        },
                    ));
                }
            }
            if let Some((total, k, ck)) = best {
                let shape = ck.op.result_shape();
                let temp = Operand::temporary(format!("T{i}_{j}"), shape, ck.properties);
                exprs[i][j] = Some(temp.expr());
                costs[i][j] = Some(total);
                splits[i][j] = k;
                chosen[i][j] = Some(ck);
            }
        }
    }

    if costs[0][n - 1].is_none() {
        return Err(GmcError::NotComputable {
            chain: chain.to_string(),
        });
    }

    let mut steps = Vec::with_capacity(n - 1);
    construct_solution(0, n - 1, &splits, &chosen, &exprs, &mut steps);
    let total_cost = costs[0][n - 1].clone().expect("checked above");
    let total_flops = steps.iter().map(|s: &Step<M::Cost>| s.op.flops()).sum();
    let paren = parenthesization(chain, 0, n - 1, &splits);
    Ok(GmcSolution::from_parts(
        steps,
        total_cost,
        total_flops,
        paren,
    ))
}

/// The original collecting kernel selection: materialize all matches,
/// then `min_by` with the metric evaluated inside every comparison.
fn best_kernel<'r, M: CostMetric>(
    registry: &'r KernelRegistry,
    metric: &M,
    product: &Expr,
) -> Option<KernelMatch<'r>> {
    let matches = registry.match_expr(product);
    matches.into_iter().min_by(|p, q| {
        let cp = metric.op_cost(&p.op);
        let cq = metric.op_cost(&q.op);
        cp.partial_cmp(&cq)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| q.kernel.specificity().cmp(&p.kernel.specificity()))
    })
}

fn temp_properties(
    inference: InferenceMode,
    chain: &Chain,
    i: usize,
    j: usize,
    product: &Expr,
) -> PropertySet {
    match inference {
        InferenceMode::Compositional => infer_properties(product),
        InferenceMode::Deep => {
            let unfolded = Expr::times((i..=j).map(|t| chain.factor(t).expr()).collect::<Vec<_>>());
            infer_properties(&unfolded)
        }
    }
}

fn construct_solution<C: Cost>(
    i: usize,
    j: usize,
    splits: &[Vec<usize>],
    chosen: &[Vec<Option<ChosenKernel<C>>>],
    exprs: &[Vec<Option<Expr>>],
    out: &mut Vec<Step<C>>,
) {
    if i == j {
        return;
    }
    let k = splits[i][j];
    construct_solution(i, k, splits, chosen, exprs, out);
    construct_solution(k + 1, j, splits, chosen, exprs, out);
    let ck = chosen[i][j]
        .as_ref()
        .expect("solution entries are complete");
    let dest = match exprs[i][j].as_ref().expect("solution entries are complete") {
        Expr::Symbol(op) => op.clone(),
        other => unreachable!("temporary must be a symbol, got {other}"),
    };
    out.push(Step {
        dest,
        op: ck.op.clone(),
        kernel: ck.name.clone(),
        cost: ck.op_cost.clone(),
    });
}

fn parenthesization(chain: &Chain, i: usize, j: usize, splits: &[Vec<usize>]) -> String {
    if i == j {
        return chain.factor(i).to_string();
    }
    let k = splits[i][j];
    format!(
        "({} {})",
        parenthesization(chain, i, k, splits),
        parenthesization(chain, k + 1, j, splits)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::FlopCount;
    use gmc_expr::Property;

    #[test]
    fn reference_reproduces_paper_table2() {
        let registry = KernelRegistry::blas_lapack();
        let a = Operand::square("A", 2000).with_property(Property::SymmetricPositiveDefinite);
        let b = Operand::matrix("B", 2000, 200);
        let c = Operand::square("C", 200).with_property(Property::LowerTriangular);
        let chain =
            Chain::from_expr(&(a.inverse() * b.expr() * c.transpose())).expect("valid chain");
        let sol = solve_reference(&registry, &FlopCount, InferenceMode::default(), &chain)
            .expect("computable");
        assert_eq!(sol.kernel_names(), vec!["TRMM_RLT", "POSV_LN"]);
        assert_eq!(sol.parenthesization(), "(A^-1 (B C^T))");
    }
}
