//! The Generalized Matrix Chain algorithm (paper Sec. 3, Fig. 4).

use crate::metric::{Cost, CostMetric};
use gmc_analysis::infer_properties;
use gmc_codegen::{Instruction, Program};
use gmc_expr::{Chain, Expr, Operand, PropertySet};
use gmc_kernels::{KernelMatch, KernelRegistry};
use std::fmt;

/// Errors produced by the optimizer.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GmcError {
    /// No combination of kernels can compute the chain: some sub-product
    /// has no matching kernel under every parenthesization (paper
    /// Sec. 3.4 discusses when this can happen).
    NotComputable {
        /// Display form of the chain.
        chain: String,
    },
}

impl fmt::Display for GmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GmcError::NotComputable { chain } => {
                write!(f, "no kernel sequence can compute the chain {chain}")
            }
        }
    }
}

impl std::error::Error for GmcError {}

/// How temporaries' properties are derived (DESIGN.md ablation #1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InferenceMode {
    /// As in the paper (Fig. 4 line 10): infer from the binary product
    /// expression of the chosen split, compositionally via the
    /// temporaries' stored property sets.
    #[default]
    Compositional,
    /// Re-derive properties from the fully unfolded sub-chain expression.
    /// Catches split-dependent property loss (e.g. symmetry of
    /// `(AᵀB)(BᵀA)`), at a modestly higher inference cost.
    Deep,
}

/// One step of a generated kernel sequence.
#[derive(Clone, Debug)]
pub struct Step<C> {
    /// The temporary receiving the result.
    pub dest: Operand,
    /// The kernel operation computing it.
    pub op: gmc_kernels::KernelOp,
    /// Name of the kernel that was selected (e.g. `"TRMM_RLT"`).
    pub kernel: String,
    /// The metric cost of this step.
    pub cost: C,
}

/// A solution to the GMCP: a parenthesization together with a mapping of
/// expressions to kernels (paper Sec. 1.1), materialized as an ordered
/// kernel sequence.
#[derive(Clone, Debug)]
pub struct GmcSolution<C> {
    steps: Vec<Step<C>>,
    total_cost: C,
    total_flops: f64,
    paren: String,
}

impl<C: Cost> GmcSolution<C> {
    /// The kernel calls, in dependency order (paper Fig. 7).
    pub fn steps(&self) -> &[Step<C>] {
        &self.steps
    }

    /// The accumulated metric cost.
    pub fn cost(&self) -> C {
        self.total_cost.clone()
    }

    /// The accumulated FLOP count (available regardless of the metric).
    pub fn flops(&self) -> f64 {
        self.total_flops
    }

    /// The parenthesization that was selected, e.g. `"(A^-1 (B C^T))"`.
    pub fn parenthesization(&self) -> &str {
        &self.paren
    }

    /// The names of the selected kernels, in execution order.
    pub fn kernel_names(&self) -> Vec<&str> {
        self.steps.iter().map(|s| s.kernel.as_str()).collect()
    }

    /// Lowers the solution to a [`Program`] for code generation or
    /// execution. The last instruction's destination is the chain result.
    pub fn program(&self) -> Program {
        Program::new(
            self.steps
                .iter()
                .map(|s| Instruction::new(s.dest.clone(), s.op.clone()))
                .collect(),
        )
    }
}

impl<C: Cost> fmt::Display for GmcSolution<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "parenthesization: {}", self.paren)?;
        for s in &self.steps {
            writeln!(f, "  {} := {}    # {}", s.dest, s.op, s.kernel)?;
        }
        write!(f, "cost: {:?}", self.total_cost)
    }
}

/// The Generalized Matrix Chain optimizer.
///
/// Couples a [`KernelRegistry`] with a [`CostMetric`] and solves the
/// GMCP by bottom-up dynamic programming over symbolic expressions
/// (paper Fig. 4): for every sub-chain and split it matches the binary
/// product against the kernel set, infers the properties of the
/// temporary, and keeps the cheapest computable alternative.
///
/// # Example
///
/// ```
/// use gmc::{FlopCount, GmcOptimizer};
/// use gmc_expr::{Chain, Operand, Property};
/// use gmc_kernels::KernelRegistry;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let registry = KernelRegistry::blas_lapack();
/// let gmc = GmcOptimizer::new(&registry, FlopCount);
///
/// // Paper Table 2: X := A⁻¹ B Cᵀ, A SPD, C lower triangular.
/// let a = Operand::square("A", 2000).with_property(Property::SymmetricPositiveDefinite);
/// let b = Operand::matrix("B", 2000, 200);
/// let c = Operand::square("C", 200).with_property(Property::LowerTriangular);
/// let chain = Chain::from_expr(&(a.inverse() * b.expr() * c.transpose()))?;
///
/// let solution = gmc.solve(&chain)?;
/// assert_eq!(solution.kernel_names(), vec!["TRMM_RLT", "POSV_LN"]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GmcOptimizer<'r, M> {
    registry: &'r KernelRegistry,
    metric: M,
    inference: InferenceMode,
}

impl<'r, M: CostMetric> GmcOptimizer<'r, M> {
    /// Creates an optimizer over a kernel registry with a cost metric.
    pub fn new(registry: &'r KernelRegistry, metric: M) -> Self {
        GmcOptimizer {
            registry,
            metric,
            inference: InferenceMode::Compositional,
        }
    }

    /// Selects the property-inference mode (see [`InferenceMode`]).
    #[must_use]
    pub fn with_inference(mut self, mode: InferenceMode) -> Self {
        self.inference = mode;
        self
    }

    /// The registry in use.
    pub fn registry(&self) -> &KernelRegistry {
        self.registry
    }

    /// Solves the GMCP for `chain` (paper Fig. 4).
    ///
    /// # Errors
    ///
    /// Returns [`GmcError::NotComputable`] if no parenthesization exposes
    /// only kernel-computable binary products (possible only with
    /// restricted registries; see paper Sec. 3.4).
    pub fn solve(&self, chain: &Chain) -> Result<GmcSolution<M::Cost>, GmcError> {
        let n = chain.len();
        // exprs[i][j]: the symbolic value representing M[i..=j]; leaves
        // are the factor expressions, interior entries temporaries.
        let mut exprs: Vec<Vec<Option<Expr>>> = vec![vec![None; n]; n];
        let mut costs: Vec<Vec<Option<M::Cost>>> = vec![vec![None; n]; n];
        let mut chosen: Vec<Vec<Option<ChosenKernel<M::Cost>>>> = vec![vec![None; n]; n];
        let mut splits: Vec<Vec<usize>> = vec![vec![0; n]; n];

        for i in 0..n {
            exprs[i][i] = Some(chain.factor(i).expr());
            costs[i][i] = Some(M::Cost::zero());
        }

        for l in 1..n {
            for i in 0..(n - l) {
                let j = i + l;
                let mut best: Option<(M::Cost, usize, ChosenKernel<M::Cost>)> = None;
                for k in i..j {
                    let (Some(cl), Some(cr)) = (costs[i][k].clone(), costs[k + 1][j].clone())
                    else {
                        continue;
                    };
                    let (Some(le), Some(re)) = (&exprs[i][k], &exprs[k + 1][j]) else {
                        continue;
                    };
                    let product = Expr::times([le.clone(), re.clone()]);
                    let Some(m) = self.best_kernel(&product) else {
                        continue;
                    };
                    let op_cost = self.metric.op_cost(&m.op);
                    let total = cl.add(&cr).add(&op_cost);
                    let better = match &best {
                        None => true,
                        Some((c, _, _)) => total < *c,
                    };
                    if better {
                        let properties = self.temp_properties(chain, i, j, &product);
                        best = Some((
                            total,
                            k,
                            ChosenKernel {
                                name: m.kernel.name().to_owned(),
                                op: m.op,
                                op_cost,
                                properties,
                            },
                        ));
                    }
                }
                if let Some((total, k, ck)) = best {
                    let shape = ck.op.result_shape();
                    let temp = Operand::temporary(format!("T{i}_{j}"), shape, ck.properties);
                    exprs[i][j] = Some(temp.expr());
                    costs[i][j] = Some(total);
                    splits[i][j] = k;
                    chosen[i][j] = Some(ck);
                }
            }
        }

        if costs[0][n - 1].is_none() {
            return Err(GmcError::NotComputable {
                chain: chain.to_string(),
            });
        }

        // Reconstruct the kernel sequence in dependency order (Fig. 7).
        let mut steps = Vec::with_capacity(n - 1);
        construct_solution(0, n - 1, &splits, &chosen, &exprs, &mut steps);
        let total_cost = costs[0][n - 1].clone().expect("checked above");
        let total_flops = steps.iter().map(|s: &Step<M::Cost>| s.op.flops()).sum();
        let paren = parenthesization(chain, 0, n - 1, &splits);
        Ok(GmcSolution {
            steps,
            total_cost,
            total_flops,
            paren,
        })
    }

    /// Solves the GMCP with top-down memoized recursion instead of the
    /// bottom-up table fill — the other classic formulation of the DP
    /// (paper Sec. 2). Produces the same solutions as [`solve`](Self::solve)
    /// (ties may rarely resolve differently under partial-order metrics).
    ///
    /// # Errors
    ///
    /// Returns [`GmcError::NotComputable`] under the same conditions as
    /// [`solve`](Self::solve).
    pub fn solve_top_down(&self, chain: &Chain) -> Result<GmcSolution<M::Cost>, GmcError> {
        let n = chain.len();
        let mut memo = TopDownMemo {
            exprs: vec![vec![None; n]; n],
            costs: vec![vec![None; n]; n],
            chosen: vec![vec![None; n]; n],
            splits: vec![vec![0; n]; n],
            done: vec![vec![false; n]; n],
        };
        for i in 0..n {
            memo.exprs[i][i] = Some(chain.factor(i).expr());
            memo.costs[i][i] = Some(M::Cost::zero());
            memo.done[i][i] = true;
        }
        self.top_down(chain, 0, n - 1, &mut memo);
        if memo.costs[0][n - 1].is_none() {
            return Err(GmcError::NotComputable {
                chain: chain.to_string(),
            });
        }
        let mut steps = Vec::with_capacity(n - 1);
        construct_solution(
            0,
            n - 1,
            &memo.splits,
            &memo.chosen,
            &memo.exprs,
            &mut steps,
        );
        let total_cost = memo.costs[0][n - 1].clone().expect("checked above");
        let total_flops = steps.iter().map(|s: &Step<M::Cost>| s.op.flops()).sum();
        let paren = parenthesization(chain, 0, n - 1, &memo.splits);
        Ok(GmcSolution {
            steps,
            total_cost,
            total_flops,
            paren,
        })
    }

    fn top_down(&self, chain: &Chain, i: usize, j: usize, memo: &mut TopDownMemo<M::Cost>) {
        if memo.done[i][j] {
            return;
        }
        memo.done[i][j] = true;
        let mut best: Option<(M::Cost, usize, ChosenKernel<M::Cost>)> = None;
        for k in i..j {
            self.top_down(chain, i, k, memo);
            self.top_down(chain, k + 1, j, memo);
            let (Some(cl), Some(cr)) = (memo.costs[i][k].clone(), memo.costs[k + 1][j].clone())
            else {
                continue;
            };
            let (Some(le), Some(re)) = (&memo.exprs[i][k], &memo.exprs[k + 1][j]) else {
                continue;
            };
            let product = Expr::times([le.clone(), re.clone()]);
            let Some(m) = self.best_kernel(&product) else {
                continue;
            };
            let op_cost = self.metric.op_cost(&m.op);
            let total = cl.add(&cr).add(&op_cost);
            let better = match &best {
                None => true,
                Some((c, _, _)) => total < *c,
            };
            if better {
                let properties = self.temp_properties(chain, i, j, &product);
                best = Some((
                    total,
                    k,
                    ChosenKernel {
                        name: m.kernel.name().to_owned(),
                        op: m.op,
                        op_cost,
                        properties,
                    },
                ));
            }
        }
        if let Some((total, k, ck)) = best {
            let shape = ck.op.result_shape();
            let temp = Operand::temporary(format!("T{i}_{j}"), shape, ck.properties);
            memo.exprs[i][j] = Some(temp.expr());
            memo.costs[i][j] = Some(total);
            memo.splits[i][j] = k;
            memo.chosen[i][j] = Some(ck);
        }
    }

    /// Selects the kernel minimizing the metric among all matches,
    /// breaking ties in favor of higher specificity.
    fn best_kernel(&self, product: &Expr) -> Option<KernelMatch<'r>> {
        let matches = self.registry.match_expr(product);
        matches.into_iter().min_by(|p, q| {
            let cp = self.metric.op_cost(&p.op);
            let cq = self.metric.op_cost(&q.op);
            cp.partial_cmp(&cq)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| q.kernel.specificity().cmp(&p.kernel.specificity()))
        })
    }

    fn temp_properties(&self, chain: &Chain, i: usize, j: usize, product: &Expr) -> PropertySet {
        match self.inference {
            InferenceMode::Compositional => infer_properties(product),
            InferenceMode::Deep => {
                let unfolded =
                    Expr::times((i..=j).map(|t| chain.factor(t).expr()).collect::<Vec<_>>());
                infer_properties(&unfolded)
            }
        }
    }
}

#[derive(Clone, Debug)]
struct ChosenKernel<C> {
    name: String,
    op: gmc_kernels::KernelOp,
    op_cost: C,
    properties: PropertySet,
}

struct TopDownMemo<C> {
    exprs: Vec<Vec<Option<Expr>>>,
    costs: Vec<Vec<Option<C>>>,
    chosen: Vec<Vec<Option<ChosenKernel<C>>>>,
    splits: Vec<Vec<usize>>,
    done: Vec<Vec<bool>>,
}

fn construct_solution<C: Cost>(
    i: usize,
    j: usize,
    splits: &[Vec<usize>],
    chosen: &[Vec<Option<ChosenKernel<C>>>],
    exprs: &[Vec<Option<Expr>>],
    out: &mut Vec<Step<C>>,
) {
    if i == j {
        return;
    }
    let k = splits[i][j];
    construct_solution(i, k, splits, chosen, exprs, out);
    construct_solution(k + 1, j, splits, chosen, exprs, out);
    let ck = chosen[i][j]
        .as_ref()
        .expect("solution entries are complete");
    let dest = match exprs[i][j].as_ref().expect("solution entries are complete") {
        Expr::Symbol(op) => op.clone(),
        other => unreachable!("temporary must be a symbol, got {other}"),
    };
    out.push(Step {
        dest,
        op: ck.op.clone(),
        kernel: ck.name.clone(),
        cost: ck.op_cost.clone(),
    });
}

fn parenthesization(chain: &Chain, i: usize, j: usize, splits: &[Vec<usize>]) -> String {
    if i == j {
        return chain.factor(i).to_string();
    }
    let k = splits[i][j];
    format!(
        "({} {})",
        parenthesization(chain, i, k, splits),
        parenthesization(chain, k + 1, j, splits)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcp::matrix_chain_order;
    use crate::metric::{FlopCount, FlopsThenKernels, TimeModel};
    use gmc_expr::{Factor, Property};
    use gmc_kernels::KernelFamily;

    fn chain_of(expr: &Expr) -> Chain {
        Chain::from_expr(expr).expect("well-formed chain")
    }

    #[test]
    fn two_factor_chain() {
        let registry = KernelRegistry::blas_lapack();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let a = Operand::matrix("A", 2, 3);
        let b = Operand::matrix("B", 3, 4);
        let sol = gmc.solve(&chain_of(&(a.expr() * b.expr()))).unwrap();
        assert_eq!(sol.steps().len(), 1);
        assert_eq!(sol.kernel_names(), vec!["GEMM_NN"]);
        assert_eq!(sol.flops(), 48.0);
        assert_eq!(sol.parenthesization(), "(A B)");
    }

    #[test]
    fn matches_classic_mcp_on_plain_chains() {
        // On chains without operators/properties, GMC with the full
        // registry must find the classic MCP optimum.
        let registry = KernelRegistry::blas_lapack();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let sizes = [130usize, 700, 383, 1340, 193, 900];
        let ops: Vec<Operand> = (0..5)
            .map(|i| Operand::matrix(format!("M{i}"), sizes[i], sizes[i + 1]))
            .collect();
        let chain = Chain::new(ops.into_iter().map(Factor::plain).collect()).unwrap();
        let sol = gmc.solve(&chain).unwrap();
        let classic = matrix_chain_order(&sizes);
        assert_eq!(sol.flops(), classic.flops());
        assert_eq!(sol.parenthesization(), "((((M0 M1) M2) M3) M4)");
    }

    #[test]
    fn paper_table2_kernel_sequence() {
        let registry = KernelRegistry::blas_lapack();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let a = Operand::square("A", 2000).with_property(Property::SymmetricPositiveDefinite);
        let b = Operand::matrix("B", 2000, 200);
        let c = Operand::square("C", 200).with_property(Property::LowerTriangular);
        let chain = chain_of(&(a.inverse() * b.expr() * c.transpose()));
        let sol = gmc.solve(&chain).unwrap();
        assert_eq!(sol.kernel_names(), vec!["TRMM_RLT", "POSV_LN"]);
        assert_eq!(sol.parenthesization(), "(A^-1 (B C^T))");
    }

    #[test]
    fn paper_sec32_property_changes_parenthesization() {
        // X := AᵀAB with A 20x20, B 20x15 (paper Sec. 3.2, without SYRK
        // so AᵀA is priced as a general product):
        //   (AᵀA)B with SYMM: 16000 + 6000 = 22000 flops
        //   Aᵀ(AB) with two GEMMs: 24000 flops.
        let registry = KernelRegistry::builder()
            .without_family(KernelFamily::Syrk)
            .build();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let a = Operand::square("A", 20);
        let b = Operand::matrix("B", 20, 15);
        let chain = chain_of(&(a.transpose() * a.expr() * b.expr()));
        let sol = gmc.solve(&chain).unwrap();
        assert_eq!(sol.flops(), 22000.0);
        assert_eq!(sol.parenthesization(), "((A^T A) B)");
        assert_eq!(sol.kernel_names(), vec!["GEMM_TN", "SYMM_LN"]);
    }

    #[test]
    fn paper_sec32_with_syrk() {
        // With SYRK in the registry, AᵀA costs half: 8000 + 6000 = 14000.
        let registry = KernelRegistry::blas_lapack();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let a = Operand::square("A", 20);
        let b = Operand::matrix("B", 20, 15);
        let chain = chain_of(&(a.transpose() * a.expr() * b.expr()));
        let sol = gmc.solve(&chain).unwrap();
        assert_eq!(sol.flops(), 14000.0);
        assert_eq!(sol.kernel_names(), vec!["SYRK_T", "SYMM_LN"]);
    }

    #[test]
    fn completeness_inverse_pair_via_two_solves() {
        // Paper Sec. 3.4: X := A⁻¹B⁻¹C with no kernel for X⁻¹Y⁻¹ is
        // still computable as A⁻¹(B⁻¹C).
        let registry = KernelRegistry::builder()
            .without_composite_inverse()
            .build();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let a = Operand::square("A", 100);
        let b = Operand::square("B", 100);
        let c = Operand::matrix("C", 100, 10);
        let chain = chain_of(&(a.inverse() * b.inverse() * c.expr()));
        let sol = gmc.solve(&chain).unwrap();
        assert_eq!(sol.parenthesization(), "(A^-1 (B^-1 C))");
        assert_eq!(sol.kernel_names(), vec!["GESV_LN", "GESV_LN"]);
    }

    #[test]
    fn not_computable_without_any_solver() {
        // Remove every kernel that can process an inverse: the chain
        // A⁻¹B becomes uncomputable.
        let registry = KernelRegistry::builder()
            .only_families([KernelFamily::Gemm])
            .build();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let a = Operand::square("A", 10);
        let b = Operand::matrix("B", 10, 4);
        let chain = chain_of(&(a.inverse() * b.expr()));
        assert!(matches!(
            gmc.solve(&chain),
            Err(GmcError::NotComputable { .. })
        ));
    }

    #[test]
    fn property_propagation_through_temporaries() {
        // L1 L2 B with both L lower triangular: (L1 L2) is inferred
        // lower triangular, so the second product can use TRMM again.
        let registry = KernelRegistry::blas_lapack();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let l1 = Operand::square("L1", 100).with_property(Property::LowerTriangular);
        let l2 = Operand::square("L2", 100).with_property(Property::LowerTriangular);
        let b = Operand::matrix("B", 100, 80);
        let chain = chain_of(&(l1.expr() * l2.expr() * b.expr()));
        let sol = gmc.solve(&chain).unwrap();
        // (L1 L2) B: TRMM (1e6) + TRMM via temp property (8e5·... ) —
        // check that at least one step besides the first is property
        // specialized.
        let fams: Vec<_> = sol.steps().iter().map(|s| s.op.family()).collect();
        assert!(fams.contains(&KernelFamily::Trmm));
        // The right-to-left evaluation L1 (L2 B) costs 2·TRMM(100²·80);
        // the left-first (L1 L2) B costs TRMM(100³)+TRMM(100²·80) which
        // is more. So the parenthesization is right-to-left and both
        // steps are TRMM.
        assert_eq!(sol.parenthesization(), "(L1 (L2 B))");
        assert_eq!(sol.kernel_names(), vec!["TRMM_LLN", "TRMM_LLN"]);
    }

    #[test]
    fn vector_chain_gemv_cascade() {
        // M1 M2 v1 v2ᵀ: optimal is GEMV cascade then outer product
        // (paper Sec. 4 discussion).
        let registry = KernelRegistry::blas_lapack();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let m1 = Operand::square("M1", 500);
        let m2 = Operand::square("M2", 500);
        let v1 = Operand::col_vector("v1", 500);
        let v2 = Operand::col_vector("v2", 400);
        let chain = chain_of(&(m1.expr() * m2.expr() * v1.expr() * v2.transpose()));
        let sol = gmc.solve(&chain).unwrap();
        assert_eq!(sol.parenthesization(), "((M1 (M2 v1)) v2^T)");
        assert_eq!(sol.kernel_names(), vec!["GEMV_N", "GEMV_N", "GER"]);
    }

    #[test]
    fn time_metric_can_change_the_solution() {
        // With FLOPs, a BLAS-2-heavy evaluation may win; the time model
        // penalizes BLAS-2 and can prefer keeping BLAS-3 kernels.
        let registry = KernelRegistry::blas_lapack();
        let a = Operand::matrix("A", 300, 40);
        let b = Operand::matrix("B", 40, 300);
        let c = Operand::matrix("C", 300, 40);
        let chain = chain_of(&(a.expr() * b.expr() * c.expr()));
        let flops_sol = GmcOptimizer::new(&registry, FlopCount)
            .solve(&chain)
            .unwrap();
        let time_sol = GmcOptimizer::new(&registry, TimeModel::default())
            .solve(&chain)
            .unwrap();
        // Both must be valid; FLOP counts must agree with their own
        // metric's optimum ordering.
        assert!(flops_sol.flops() <= time_sol.flops());
    }

    #[test]
    fn lexicographic_metric_minimizes_kernel_count_second() {
        let registry = KernelRegistry::blas_lapack();
        let gmc = GmcOptimizer::new(&registry, FlopsThenKernels);
        let a = Operand::matrix("A", 10, 20);
        let b = Operand::matrix("B", 20, 30);
        let c = Operand::matrix("C", 30, 5);
        let chain = chain_of(&(a.expr() * b.expr() * c.expr()));
        let sol = gmc.solve(&chain).unwrap();
        let lex = sol.cost();
        assert_eq!(lex.1, 2.0); // two kernel calls
    }

    #[test]
    fn deep_inference_recovers_split_dependent_properties() {
        // (Aᵀ B)(Bᵀ A): compositional inference on the chosen split may
        // miss symmetry of the overall product; deep inference sees the
        // full palindrome.
        let registry = KernelRegistry::blas_lapack();
        let a = Operand::matrix("A", 60, 4);
        let b = Operand::matrix("B", 60, 4);
        let chain = chain_of(&(a.transpose() * b.expr() * b.transpose() * a.expr()));
        let deep = GmcOptimizer::new(&registry, FlopCount)
            .with_inference(InferenceMode::Deep)
            .solve(&chain)
            .unwrap();
        // Deep mode must not be worse.
        let comp = GmcOptimizer::new(&registry, FlopCount)
            .solve(&chain)
            .unwrap();
        assert!(deep.flops() <= comp.flops());
    }

    #[test]
    fn solution_program_has_one_instruction_per_step() {
        let registry = KernelRegistry::blas_lapack();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let a = Operand::matrix("A", 4, 5);
        let b = Operand::matrix("B", 5, 6);
        let c = Operand::matrix("C", 6, 7);
        let chain = chain_of(&(a.expr() * b.expr() * c.expr()));
        let sol = gmc.solve(&chain).unwrap();
        let program = sol.program();
        assert_eq!(program.len(), sol.steps().len());
    }

    #[test]
    fn top_down_matches_bottom_up() {
        use gmc_expr::UnaryOp;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let registry = KernelRegistry::blas_lapack();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..30 {
            // Random square chain with random ops and properties.
            let n = rng.gen_range(2..=7);
            let dim = rng.gen_range(2..=6usize) * 10;
            let factors: Vec<Factor> = (0..n)
                .map(|i| {
                    let mut op = Operand::square(format!("M{i}"), dim);
                    if rng.gen_bool(0.5) {
                        let p = [
                            Property::Diagonal,
                            Property::LowerTriangular,
                            Property::UpperTriangular,
                            Property::Symmetric,
                            Property::SymmetricPositiveDefinite,
                        ][rng.gen_range(0..5usize)];
                        op = op.with_property(p);
                    }
                    let u = [
                        UnaryOp::None,
                        UnaryOp::Transpose,
                        UnaryOp::Inverse,
                        UnaryOp::InverseTranspose,
                    ][rng.gen_range(0..4usize)];
                    Factor::new(op, u)
                })
                .collect();
            let chain = Chain::new(factors).unwrap();
            let bottom_up = gmc.solve(&chain).unwrap();
            let top_down = gmc.solve_top_down(&chain).unwrap();
            assert_eq!(bottom_up.cost(), top_down.cost(), "chain {chain}");
            assert_eq!(
                bottom_up.parenthesization(),
                top_down.parenthesization(),
                "chain {chain}"
            );
            assert_eq!(bottom_up.kernel_names(), top_down.kernel_names());
        }
    }

    #[test]
    fn top_down_reports_not_computable() {
        let registry = KernelRegistry::builder()
            .only_families([KernelFamily::Gemm])
            .build();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let a = Operand::square("A", 10);
        let b = Operand::matrix("B", 10, 4);
        let chain = chain_of(&(a.inverse() * b.expr()));
        assert!(matches!(
            gmc.solve_top_down(&chain),
            Err(GmcError::NotComputable { .. })
        ));
    }

    #[test]
    fn display_lists_steps() {
        let registry = KernelRegistry::blas_lapack();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let a = Operand::matrix("A", 4, 5);
        let b = Operand::matrix("B", 5, 6);
        let chain = chain_of(&(a.expr() * b.expr()));
        let sol = gmc.solve(&chain).unwrap();
        let text = sol.to_string();
        assert!(text.contains("GEMM_NN"));
        assert!(text.contains("T0_1"));
    }
}
