//! The Generalized Matrix Chain algorithm (paper Sec. 3, Fig. 4).

use crate::metric::{Cost, CostMetric};
use gmc_analysis::infer_properties;
use gmc_codegen::{Instruction, Program};
use gmc_expr::{Chain, Expr, Operand};
use gmc_kernels::{FlatTermScratch, KernelRegistry, ProductMatch};
use std::fmt;

/// Errors produced by the optimizer.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum GmcError {
    /// No combination of kernels can compute the chain: some sub-product
    /// has no matching kernel under every parenthesization (paper
    /// Sec. 3.4 discusses when this can happen).
    NotComputable {
        /// Display form of the chain.
        chain: String,
    },
}

impl fmt::Display for GmcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GmcError::NotComputable { chain } => {
                write!(f, "no kernel sequence can compute the chain {chain}")
            }
        }
    }
}

impl GmcError {
    /// Builds a [`GmcError::NotComputable`] for a chain's display form.
    ///
    /// The enum is `#[non_exhaustive]`, so out-of-crate solvers that
    /// share this error type (the symbolic planner in `gmc-plan`) need a
    /// constructor.
    pub fn not_computable(chain: impl Into<String>) -> GmcError {
        GmcError::NotComputable {
            chain: chain.into(),
        }
    }
}

impl std::error::Error for GmcError {}

/// How temporaries' properties are derived (DESIGN.md ablation #1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InferenceMode {
    /// As in the paper (Fig. 4 line 10): infer from the binary product
    /// expression of the chosen split, compositionally via the
    /// temporaries' stored property sets.
    #[default]
    Compositional,
    /// Re-derive properties from the fully unfolded sub-chain expression.
    /// Catches split-dependent property loss (e.g. symmetry of
    /// `(AᵀB)(BᵀA)`), at a modestly higher inference cost.
    Deep,
}

/// One step of a generated kernel sequence.
#[derive(Clone, Debug)]
pub struct Step<C> {
    /// The temporary receiving the result.
    pub dest: Operand,
    /// The kernel operation computing it.
    pub op: gmc_kernels::KernelOp,
    /// Name of the kernel that was selected (e.g. `"TRMM_RLT"`).
    pub kernel: String,
    /// The metric cost of this step.
    pub cost: C,
}

/// A solution to the GMCP: a parenthesization together with a mapping of
/// expressions to kernels (paper Sec. 1.1), materialized as an ordered
/// kernel sequence.
#[derive(Clone, Debug)]
pub struct GmcSolution<C> {
    steps: Vec<Step<C>>,
    total_cost: C,
    total_flops: f64,
    paren: String,
}

impl<C: Cost> GmcSolution<C> {
    /// Assembles a solution from its parts.
    ///
    /// Used by the retained reference implementation in
    /// [`crate::reference`] and by the symbolic plan instantiation path
    /// in `gmc-plan`, both of which reproduce the optimizer's output
    /// through independent code paths.
    #[doc(hidden)]
    pub fn from_parts(steps: Vec<Step<C>>, total_cost: C, total_flops: f64, paren: String) -> Self {
        GmcSolution {
            steps,
            total_cost,
            total_flops,
            paren,
        }
    }

    /// The kernel calls, in dependency order (paper Fig. 7).
    pub fn steps(&self) -> &[Step<C>] {
        &self.steps
    }

    /// The accumulated metric cost.
    pub fn cost(&self) -> C {
        self.total_cost.clone()
    }

    /// The accumulated FLOP count (available regardless of the metric).
    pub fn flops(&self) -> f64 {
        self.total_flops
    }

    /// The parenthesization that was selected, e.g. `"(A^-1 (B C^T))"`.
    pub fn parenthesization(&self) -> &str {
        &self.paren
    }

    /// The names of the selected kernels, in execution order.
    pub fn kernel_names(&self) -> Vec<&str> {
        self.steps.iter().map(|s| s.kernel.as_str()).collect()
    }

    /// Lowers the solution to a [`Program`] for code generation or
    /// execution. The last instruction's destination is the chain result.
    pub fn program(&self) -> Program {
        Program::new(
            self.steps
                .iter()
                .map(|s| Instruction::new(s.dest.clone(), s.op.clone()))
                .collect(),
        )
    }
}

impl<C: Cost> fmt::Display for GmcSolution<C> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "parenthesization: {}", self.paren)?;
        for s in &self.steps {
            writeln!(f, "  {} := {}    # {}", s.dest, s.op, s.kernel)?;
        }
        write!(f, "cost: {:?}", self.total_cost)
    }
}

/// The Generalized Matrix Chain optimizer.
///
/// Couples a [`KernelRegistry`] with a [`CostMetric`] and solves the
/// GMCP by bottom-up dynamic programming over symbolic expressions
/// (paper Fig. 4): for every sub-chain and split it matches the binary
/// product against the kernel set, infers the properties of the
/// temporary, and keeps the cheapest computable alternative.
///
/// # Example
///
/// ```
/// use gmc::{FlopCount, GmcOptimizer};
/// use gmc_expr::{Chain, Operand, Property};
/// use gmc_kernels::KernelRegistry;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let registry = KernelRegistry::blas_lapack();
/// let gmc = GmcOptimizer::new(&registry, FlopCount);
///
/// // Paper Table 2: X := A⁻¹ B Cᵀ, A SPD, C lower triangular.
/// let a = Operand::square("A", 2000).with_property(Property::SymmetricPositiveDefinite);
/// let b = Operand::matrix("B", 2000, 200);
/// let c = Operand::square("C", 200).with_property(Property::LowerTriangular);
/// let chain = Chain::from_expr(&(a.inverse() * b.expr() * c.transpose()))?;
///
/// let solution = gmc.solve(&chain)?;
/// assert_eq!(solution.kernel_names(), vec!["TRMM_RLT", "POSV_LN"]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct GmcOptimizer<'r, M> {
    registry: &'r KernelRegistry,
    metric: M,
    inference: InferenceMode,
}

impl<'r, M: CostMetric> GmcOptimizer<'r, M> {
    /// Creates an optimizer over a kernel registry with a cost metric.
    pub fn new(registry: &'r KernelRegistry, metric: M) -> Self {
        GmcOptimizer {
            registry,
            metric,
            inference: InferenceMode::Compositional,
        }
    }

    /// Selects the property-inference mode (see [`InferenceMode`]).
    #[must_use]
    pub fn with_inference(mut self, mode: InferenceMode) -> Self {
        self.inference = mode;
        self
    }

    /// The registry in use.
    pub fn registry(&self) -> &KernelRegistry {
        self.registry
    }

    /// Solves the GMCP for `chain` (paper Fig. 4).
    ///
    /// Allocates a fresh [`GmcWorkspace`]; batch callers solving many
    /// chains should hold one workspace and use
    /// [`solve_with`](Self::solve_with) to amortize the DP table and
    /// matcher scratch allocations.
    ///
    /// # Errors
    ///
    /// Returns [`GmcError::NotComputable`] if no parenthesization exposes
    /// only kernel-computable binary products (possible only with
    /// restricted registries; see paper Sec. 3.4).
    pub fn solve(&self, chain: &Chain) -> Result<GmcSolution<M::Cost>, GmcError> {
        self.solve_with(chain, &mut GmcWorkspace::new())
    }

    /// Solves the GMCP for `chain` using caller-provided DP state.
    ///
    /// This is the allocation-free hot path: per split candidate no
    /// heap allocation is performed — no expression subtrees are
    /// cloned, no owned binary product is built, and kernel matches
    /// stream off the discrimination net instead of being collected.
    /// Temporary names and property inference run only for the winning
    /// split of each sub-chain. The workspace is reset on entry and
    /// its buffers are reused across calls.
    ///
    /// # Errors
    ///
    /// Returns [`GmcError::NotComputable`] under the same conditions as
    /// [`solve`](Self::solve).
    pub fn solve_with(
        &self,
        chain: &Chain,
        workspace: &mut GmcWorkspace<M::Cost>,
    ) -> Result<GmcSolution<M::Cost>, GmcError> {
        let n = chain.len();
        let GmcWorkspace { grid, scratch } = workspace;
        grid.reset_for(chain);
        for l in 1..n {
            for i in 0..(n - l) {
                self.fill_cell(chain, i, i + l, grid, scratch);
            }
        }
        self.extract_solution(chain, grid)
    }

    /// Solves the GMCP with top-down memoized recursion instead of the
    /// bottom-up table fill — the other classic formulation of the DP
    /// (paper Sec. 2). Produces the same solutions as [`solve`](Self::solve)
    /// (ties may rarely resolve differently under partial-order metrics).
    ///
    /// # Errors
    ///
    /// Returns [`GmcError::NotComputable`] under the same conditions as
    /// [`solve`](Self::solve).
    pub fn solve_top_down(&self, chain: &Chain) -> Result<GmcSolution<M::Cost>, GmcError> {
        self.solve_top_down_with(chain, &mut GmcWorkspace::new())
    }

    /// [`solve_top_down`](Self::solve_top_down) with caller-provided DP
    /// state, like [`solve_with`](Self::solve_with).
    ///
    /// # Errors
    ///
    /// Returns [`GmcError::NotComputable`] under the same conditions as
    /// [`solve`](Self::solve).
    pub fn solve_top_down_with(
        &self,
        chain: &Chain,
        workspace: &mut GmcWorkspace<M::Cost>,
    ) -> Result<GmcSolution<M::Cost>, GmcError> {
        let n = chain.len();
        let GmcWorkspace { grid, scratch } = workspace;
        grid.reset_for(chain);
        self.top_down(chain, 0, n - 1, grid, scratch);
        self.extract_solution(chain, grid)
    }

    fn top_down(
        &self,
        chain: &Chain,
        i: usize,
        j: usize,
        grid: &mut CellGrid<M::Cost>,
        scratch: &mut FlatTermScratch,
    ) {
        if grid.cell(i, j).done {
            return;
        }
        grid.cell_mut(i, j).done = true;
        for k in i..j {
            self.top_down(chain, i, k, grid, scratch);
            self.top_down(chain, k + 1, j, grid, scratch);
        }
        self.fill_cell(chain, i, j, grid, scratch);
    }

    /// Computes cell `(i, j)` from its (already computed) sub-cells:
    /// scans every split, keeps the cheapest computable alternative,
    /// and materializes the temporary for the winner. Shared by the
    /// bottom-up and top-down formulations so the two cannot drift.
    fn fill_cell(
        &self,
        chain: &Chain,
        i: usize,
        j: usize,
        grid: &mut CellGrid<M::Cost>,
        scratch: &mut FlatTermScratch,
    ) {
        let Some((total, k, pick)) = self.select_best_split(grid, scratch, i, j) else {
            return;
        };
        // Winner-only work, deliberately outside the split loop: the
        // temporary's property inference (and its name) are needed once
        // per cell, not once per candidate.
        let properties = match self.inference {
            InferenceMode::Compositional => {
                let le = grid.cell(i, k).expr.as_ref().expect("winning split");
                let re = grid.cell(k + 1, j).expr.as_ref().expect("winning split");
                let product = Expr::times([le.clone(), re.clone()]);
                infer_properties(&product)
            }
            // The unfolded sub-chain expression is split-independent,
            // so it is built once per (i, j) instead of per candidate.
            InferenceMode::Deep => {
                let unfolded =
                    Expr::times((i..=j).map(|t| chain.factor(t).expr()).collect::<Vec<_>>());
                infer_properties(&unfolded)
            }
        };
        let shape = pick.op.result_shape();
        let temp = Operand::temporary(format!("T{i}_{j}"), shape, properties);
        let cell = grid.cell_mut(i, j);
        cell.expr = Some(temp.expr());
        cell.cost = Some(total);
        cell.split = k;
        cell.chosen = Some(ChosenKernel {
            name: pick.kernel.name().to_owned(),
            op: pick.op,
            op_cost: pick.cost,
        });
    }

    /// The cheapest split of `M[i..=j]`: for each candidate `k` the
    /// binary product of the sub-results is matched *in place* (no
    /// owned product expression, no collected match vector) and the
    /// winning kernel's metric cost is computed exactly once.
    fn select_best_split(
        &self,
        grid: &CellGrid<M::Cost>,
        scratch: &mut FlatTermScratch,
        i: usize,
        j: usize,
    ) -> Option<(M::Cost, usize, ProductMatch<'r, M::Cost>)> {
        let mut best: Option<(M::Cost, usize, ProductMatch<'r, M::Cost>)> = None;
        for k in i..j {
            let left = grid.cell(i, k);
            let right = grid.cell(k + 1, j);
            let (Some(cl), Some(cr)) = (&left.cost, &right.cost) else {
                continue;
            };
            let (Some(le), Some(re)) = (&left.expr, &right.expr) else {
                continue;
            };
            let Some(m) = self
                .registry
                .best_product_match(le, re, scratch, |op| self.metric.op_cost(op))
            else {
                continue;
            };
            let total = cl.add(cr).add(&m.cost);
            let better = match &best {
                None => true,
                Some((c, _, _)) => total < *c,
            };
            if better {
                best = Some((total, k, m));
            }
        }
        best
    }

    fn extract_solution(
        &self,
        chain: &Chain,
        grid: &CellGrid<M::Cost>,
    ) -> Result<GmcSolution<M::Cost>, GmcError> {
        let n = chain.len();
        let root = grid.cell(0, n - 1);
        let Some(total_cost) = root.cost.clone() else {
            return Err(GmcError::NotComputable {
                chain: chain.to_string(),
            });
        };
        // Reconstruct the kernel sequence in dependency order (Fig. 7).
        let mut steps = Vec::with_capacity(n - 1);
        construct_solution(0, n - 1, grid, &mut steps);
        let total_flops = steps.iter().map(|s: &Step<M::Cost>| s.op.flops()).sum();
        let paren = parenthesization(chain, 0, n - 1, grid);
        Ok(GmcSolution {
            steps,
            total_cost,
            total_flops,
            paren,
        })
    }
}

/// Reusable DP state for [`GmcOptimizer::solve_with`] and
/// [`GmcOptimizer::solve_top_down_with`].
///
/// Holds the flat triangular cell table and the matcher's flatterm
/// scratch buffer. Batch callers (the experiments harness, benches,
/// the CLI) keep one workspace alive and solve many chains through it,
/// so table allocation is amortized: after the first solve of the
/// largest chain length, further solves allocate nothing beyond the
/// per-winner temporaries.
#[derive(Debug)]
pub struct GmcWorkspace<C> {
    grid: CellGrid<C>,
    scratch: FlatTermScratch,
}

impl<C> GmcWorkspace<C> {
    /// Creates an empty workspace; tables grow on first use.
    pub fn new() -> Self {
        GmcWorkspace {
            grid: CellGrid {
                cells: Vec::new(),
                n: 0,
            },
            scratch: FlatTermScratch::new(),
        }
    }
}

impl<C> Default for GmcWorkspace<C> {
    fn default() -> Self {
        GmcWorkspace::new()
    }
}

/// One DP cell for the sub-chain `M[i..=j]` — the row of all five
/// former per-table entries (expression, cost, chosen kernel, split,
/// memo flag), stored contiguously in a flat triangular table.
#[derive(Debug)]
struct Cell<C> {
    /// The symbolic value of `M[i..=j]`: the factor expression on the
    /// diagonal, a temporary symbol in the interior.
    expr: Option<Expr>,
    cost: Option<C>,
    chosen: Option<ChosenKernel<C>>,
    split: usize,
    /// Memoization flag for the top-down formulation.
    done: bool,
}

impl<C> Cell<C> {
    fn empty() -> Self {
        Cell {
            expr: None,
            cost: None,
            chosen: None,
            split: 0,
            done: false,
        }
    }
}

/// A flat, triangular-indexed `n × n` upper-triangle cell table: cell
/// `(i, j)` with `i ≤ j` lives at `i·n − i(i−1)/2 + (j − i)`. One
/// contiguous allocation replaces the five `Vec<Vec<Option<…>>>`
/// tables of the original implementation.
#[derive(Debug)]
struct CellGrid<C> {
    cells: Vec<Cell<C>>,
    n: usize,
}

impl<C> CellGrid<C> {
    /// Clears the grid for `chain` (reusing the existing allocation
    /// when it is large enough) and seeds the diagonal: leaf cells hold
    /// the factor expression at zero cost and count as computed for the
    /// top-down memoization. Shared by both DP formulations.
    fn reset_for(&mut self, chain: &Chain)
    where
        C: Cost,
    {
        let n = chain.len();
        self.n = n;
        let len = n * (n + 1) / 2;
        self.cells.clear();
        self.cells.resize_with(len, Cell::empty);
        for i in 0..n {
            let cell = self.cell_mut(i, i);
            cell.expr = Some(chain.factor(i).expr());
            cell.cost = Some(C::zero());
            cell.done = true;
        }
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i <= j && j < self.n, "cell ({i}, {j}) out of range");
        // Row offset: Σ_{r<i} (n − r) = i·(2n − i + 1)/2.
        i * (2 * self.n - i + 1) / 2 + (j - i)
    }

    #[inline]
    fn cell(&self, i: usize, j: usize) -> &Cell<C> {
        &self.cells[self.index(i, j)]
    }

    #[inline]
    fn cell_mut(&mut self, i: usize, j: usize) -> &mut Cell<C> {
        let idx = self.index(i, j);
        &mut self.cells[idx]
    }
}

#[derive(Clone, Debug)]
struct ChosenKernel<C> {
    name: String,
    op: gmc_kernels::KernelOp,
    op_cost: C,
}

fn construct_solution<C: Cost>(i: usize, j: usize, grid: &CellGrid<C>, out: &mut Vec<Step<C>>) {
    if i == j {
        return;
    }
    let cell = grid.cell(i, j);
    let k = cell.split;
    construct_solution(i, k, grid, out);
    construct_solution(k + 1, j, grid, out);
    let ck = cell.chosen.as_ref().expect("solution entries are complete");
    let dest = match cell.expr.as_ref().expect("solution entries are complete") {
        Expr::Symbol(op) => op.clone(),
        other => unreachable!("temporary must be a symbol, got {other}"),
    };
    out.push(Step {
        dest,
        op: ck.op.clone(),
        kernel: ck.name.clone(),
        cost: ck.op_cost.clone(),
    });
}

fn parenthesization<C>(chain: &Chain, i: usize, j: usize, grid: &CellGrid<C>) -> String {
    if i == j {
        return chain.factor(i).to_string();
    }
    let k = grid.cell(i, j).split;
    format!(
        "({} {})",
        parenthesization(chain, i, k, grid),
        parenthesization(chain, k + 1, j, grid)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mcp::matrix_chain_order;
    use crate::metric::{FlopCount, FlopsThenKernels, TimeModel};
    use gmc_expr::{Factor, Property};
    use gmc_kernels::KernelFamily;

    fn chain_of(expr: &Expr) -> Chain {
        Chain::from_expr(expr).expect("well-formed chain")
    }

    #[test]
    fn two_factor_chain() {
        let registry = KernelRegistry::blas_lapack();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let a = Operand::matrix("A", 2, 3);
        let b = Operand::matrix("B", 3, 4);
        let sol = gmc.solve(&chain_of(&(a.expr() * b.expr()))).unwrap();
        assert_eq!(sol.steps().len(), 1);
        assert_eq!(sol.kernel_names(), vec!["GEMM_NN"]);
        assert_eq!(sol.flops(), 48.0);
        assert_eq!(sol.parenthesization(), "(A B)");
    }

    #[test]
    fn matches_classic_mcp_on_plain_chains() {
        // On chains without operators/properties, GMC with the full
        // registry must find the classic MCP optimum.
        let registry = KernelRegistry::blas_lapack();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let sizes = [130usize, 700, 383, 1340, 193, 900];
        let ops: Vec<Operand> = (0..5)
            .map(|i| Operand::matrix(format!("M{i}"), sizes[i], sizes[i + 1]))
            .collect();
        let chain = Chain::new(ops.into_iter().map(Factor::plain).collect()).unwrap();
        let sol = gmc.solve(&chain).unwrap();
        let classic = matrix_chain_order(&sizes);
        assert_eq!(sol.flops(), classic.flops());
        assert_eq!(sol.parenthesization(), "((((M0 M1) M2) M3) M4)");
    }

    #[test]
    fn paper_table2_kernel_sequence() {
        let registry = KernelRegistry::blas_lapack();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let a = Operand::square("A", 2000).with_property(Property::SymmetricPositiveDefinite);
        let b = Operand::matrix("B", 2000, 200);
        let c = Operand::square("C", 200).with_property(Property::LowerTriangular);
        let chain = chain_of(&(a.inverse() * b.expr() * c.transpose()));
        let sol = gmc.solve(&chain).unwrap();
        assert_eq!(sol.kernel_names(), vec!["TRMM_RLT", "POSV_LN"]);
        assert_eq!(sol.parenthesization(), "(A^-1 (B C^T))");
    }

    #[test]
    fn paper_sec32_property_changes_parenthesization() {
        // X := AᵀAB with A 20x20, B 20x15 (paper Sec. 3.2, without SYRK
        // so AᵀA is priced as a general product):
        //   (AᵀA)B with SYMM: 16000 + 6000 = 22000 flops
        //   Aᵀ(AB) with two GEMMs: 24000 flops.
        let registry = KernelRegistry::builder()
            .without_family(KernelFamily::Syrk)
            .build();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let a = Operand::square("A", 20);
        let b = Operand::matrix("B", 20, 15);
        let chain = chain_of(&(a.transpose() * a.expr() * b.expr()));
        let sol = gmc.solve(&chain).unwrap();
        assert_eq!(sol.flops(), 22000.0);
        assert_eq!(sol.parenthesization(), "((A^T A) B)");
        assert_eq!(sol.kernel_names(), vec!["GEMM_TN", "SYMM_LN"]);
    }

    #[test]
    fn paper_sec32_with_syrk() {
        // With SYRK in the registry, AᵀA costs half: 8000 + 6000 = 14000.
        let registry = KernelRegistry::blas_lapack();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let a = Operand::square("A", 20);
        let b = Operand::matrix("B", 20, 15);
        let chain = chain_of(&(a.transpose() * a.expr() * b.expr()));
        let sol = gmc.solve(&chain).unwrap();
        assert_eq!(sol.flops(), 14000.0);
        assert_eq!(sol.kernel_names(), vec!["SYRK_T", "SYMM_LN"]);
    }

    #[test]
    fn completeness_inverse_pair_via_two_solves() {
        // Paper Sec. 3.4: X := A⁻¹B⁻¹C with no kernel for X⁻¹Y⁻¹ is
        // still computable as A⁻¹(B⁻¹C).
        let registry = KernelRegistry::builder()
            .without_composite_inverse()
            .build();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let a = Operand::square("A", 100);
        let b = Operand::square("B", 100);
        let c = Operand::matrix("C", 100, 10);
        let chain = chain_of(&(a.inverse() * b.inverse() * c.expr()));
        let sol = gmc.solve(&chain).unwrap();
        assert_eq!(sol.parenthesization(), "(A^-1 (B^-1 C))");
        assert_eq!(sol.kernel_names(), vec!["GESV_LN", "GESV_LN"]);
    }

    #[test]
    fn not_computable_without_any_solver() {
        // Remove every kernel that can process an inverse: the chain
        // A⁻¹B becomes uncomputable.
        let registry = KernelRegistry::builder()
            .only_families([KernelFamily::Gemm])
            .build();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let a = Operand::square("A", 10);
        let b = Operand::matrix("B", 10, 4);
        let chain = chain_of(&(a.inverse() * b.expr()));
        assert!(matches!(
            gmc.solve(&chain),
            Err(GmcError::NotComputable { .. })
        ));
    }

    #[test]
    fn property_propagation_through_temporaries() {
        // L1 L2 B with both L lower triangular: (L1 L2) is inferred
        // lower triangular, so the second product can use TRMM again.
        let registry = KernelRegistry::blas_lapack();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let l1 = Operand::square("L1", 100).with_property(Property::LowerTriangular);
        let l2 = Operand::square("L2", 100).with_property(Property::LowerTriangular);
        let b = Operand::matrix("B", 100, 80);
        let chain = chain_of(&(l1.expr() * l2.expr() * b.expr()));
        let sol = gmc.solve(&chain).unwrap();
        // (L1 L2) B: TRMM (1e6) + TRMM via temp property (8e5·... ) —
        // check that at least one step besides the first is property
        // specialized.
        let fams: Vec<_> = sol.steps().iter().map(|s| s.op.family()).collect();
        assert!(fams.contains(&KernelFamily::Trmm));
        // The right-to-left evaluation L1 (L2 B) costs 2·TRMM(100²·80);
        // the left-first (L1 L2) B costs TRMM(100³)+TRMM(100²·80) which
        // is more. So the parenthesization is right-to-left and both
        // steps are TRMM.
        assert_eq!(sol.parenthesization(), "(L1 (L2 B))");
        assert_eq!(sol.kernel_names(), vec!["TRMM_LLN", "TRMM_LLN"]);
    }

    #[test]
    fn vector_chain_gemv_cascade() {
        // M1 M2 v1 v2ᵀ: optimal is GEMV cascade then outer product
        // (paper Sec. 4 discussion).
        let registry = KernelRegistry::blas_lapack();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let m1 = Operand::square("M1", 500);
        let m2 = Operand::square("M2", 500);
        let v1 = Operand::col_vector("v1", 500);
        let v2 = Operand::col_vector("v2", 400);
        let chain = chain_of(&(m1.expr() * m2.expr() * v1.expr() * v2.transpose()));
        let sol = gmc.solve(&chain).unwrap();
        assert_eq!(sol.parenthesization(), "((M1 (M2 v1)) v2^T)");
        assert_eq!(sol.kernel_names(), vec!["GEMV_N", "GEMV_N", "GER"]);
    }

    #[test]
    fn time_metric_can_change_the_solution() {
        // With FLOPs, a BLAS-2-heavy evaluation may win; the time model
        // penalizes BLAS-2 and can prefer keeping BLAS-3 kernels.
        let registry = KernelRegistry::blas_lapack();
        let a = Operand::matrix("A", 300, 40);
        let b = Operand::matrix("B", 40, 300);
        let c = Operand::matrix("C", 300, 40);
        let chain = chain_of(&(a.expr() * b.expr() * c.expr()));
        let flops_sol = GmcOptimizer::new(&registry, FlopCount)
            .solve(&chain)
            .unwrap();
        let time_sol = GmcOptimizer::new(&registry, TimeModel::default())
            .solve(&chain)
            .unwrap();
        // Both must be valid; FLOP counts must agree with their own
        // metric's optimum ordering.
        assert!(flops_sol.flops() <= time_sol.flops());
    }

    #[test]
    fn lexicographic_metric_minimizes_kernel_count_second() {
        let registry = KernelRegistry::blas_lapack();
        let gmc = GmcOptimizer::new(&registry, FlopsThenKernels);
        let a = Operand::matrix("A", 10, 20);
        let b = Operand::matrix("B", 20, 30);
        let c = Operand::matrix("C", 30, 5);
        let chain = chain_of(&(a.expr() * b.expr() * c.expr()));
        let sol = gmc.solve(&chain).unwrap();
        let lex = sol.cost();
        assert_eq!(lex.1, 2.0); // two kernel calls
    }

    #[test]
    fn deep_inference_recovers_split_dependent_properties() {
        // (Aᵀ B)(Bᵀ A): compositional inference on the chosen split may
        // miss symmetry of the overall product; deep inference sees the
        // full palindrome.
        let registry = KernelRegistry::blas_lapack();
        let a = Operand::matrix("A", 60, 4);
        let b = Operand::matrix("B", 60, 4);
        let chain = chain_of(&(a.transpose() * b.expr() * b.transpose() * a.expr()));
        let deep = GmcOptimizer::new(&registry, FlopCount)
            .with_inference(InferenceMode::Deep)
            .solve(&chain)
            .unwrap();
        // Deep mode must not be worse.
        let comp = GmcOptimizer::new(&registry, FlopCount)
            .solve(&chain)
            .unwrap();
        assert!(deep.flops() <= comp.flops());
    }

    #[test]
    fn solution_program_has_one_instruction_per_step() {
        let registry = KernelRegistry::blas_lapack();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let a = Operand::matrix("A", 4, 5);
        let b = Operand::matrix("B", 5, 6);
        let c = Operand::matrix("C", 6, 7);
        let chain = chain_of(&(a.expr() * b.expr() * c.expr()));
        let sol = gmc.solve(&chain).unwrap();
        let program = sol.program();
        assert_eq!(program.len(), sol.steps().len());
    }

    #[test]
    fn top_down_matches_bottom_up() {
        use gmc_expr::UnaryOp;
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let registry = KernelRegistry::blas_lapack();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let mut rng = StdRng::seed_from_u64(99);
        // Both formulations share one workspace each across all chains
        // to also exercise the reset path.
        let mut ws_bu = GmcWorkspace::new();
        let mut ws_td = GmcWorkspace::new();
        for _ in 0..60 {
            // Random chain of length up to 12 mixing matrices and
            // vectors: boundary dimension 1 produces column/row-vector
            // operands and outer-product / GEMV sub-problems.
            let n = rng.gen_range(2..=12);
            let dims: Vec<usize> = (0..=n)
                .map(|_| {
                    if rng.gen_bool(0.15) {
                        1
                    } else {
                        rng.gen_range(2..=6usize) * 10
                    }
                })
                .collect();
            let factors: Vec<Factor> = (0..n)
                .map(|i| {
                    let (rows, cols) = (dims[i], dims[i + 1]);
                    let transposed = rng.gen_bool(0.25);
                    let mut op = if transposed {
                        Operand::matrix(format!("M{i}"), cols, rows)
                    } else {
                        Operand::matrix(format!("M{i}"), rows, cols)
                    };
                    if rows == cols && rows > 1 && rng.gen_bool(0.5) {
                        let p = [
                            Property::Diagonal,
                            Property::LowerTriangular,
                            Property::UpperTriangular,
                            Property::Symmetric,
                            Property::SymmetricPositiveDefinite,
                        ][rng.gen_range(0..5usize)];
                        op = op.with_property(p);
                    }
                    let u = if rows == cols && rng.gen_bool(0.3) {
                        if transposed {
                            [UnaryOp::InverseTranspose, UnaryOp::Transpose]
                                [rng.gen_range(0..2usize)]
                        } else {
                            [UnaryOp::Inverse, UnaryOp::None][rng.gen_range(0..2usize)]
                        }
                    } else if transposed {
                        UnaryOp::Transpose
                    } else {
                        UnaryOp::None
                    };
                    Factor::new(op, u)
                })
                .collect();
            let chain = Chain::new(factors).unwrap();
            let bottom_up = gmc.solve_with(&chain, &mut ws_bu).unwrap();
            let top_down = gmc.solve_top_down_with(&chain, &mut ws_td).unwrap();
            assert_eq!(bottom_up.cost(), top_down.cost(), "chain {chain}");
            assert_eq!(
                bottom_up.parenthesization(),
                top_down.parenthesization(),
                "chain {chain}"
            );
            assert_eq!(bottom_up.kernel_names(), top_down.kernel_names());
        }
    }

    #[test]
    fn workspace_reuse_is_equivalent_to_fresh_solves() {
        // Solving chains of *decreasing* length through one workspace
        // must not leak stale cells from the larger solve.
        let registry = KernelRegistry::blas_lapack();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let mut ws = GmcWorkspace::new();
        for n in [9usize, 5, 3, 2] {
            let ops: Vec<Operand> = (0..n)
                .map(|i| Operand::matrix(format!("M{i}"), 10 + 7 * i, 10 + 7 * (i + 1)))
                .collect();
            let chain = Chain::new(ops.into_iter().map(Factor::plain).collect()).unwrap();
            let fresh = gmc.solve(&chain).unwrap();
            let reused = gmc.solve_with(&chain, &mut ws).unwrap();
            assert_eq!(fresh.cost(), reused.cost());
            assert_eq!(fresh.parenthesization(), reused.parenthesization());
            assert_eq!(fresh.kernel_names(), reused.kernel_names());
        }
    }

    #[test]
    fn top_down_reports_not_computable() {
        let registry = KernelRegistry::builder()
            .only_families([KernelFamily::Gemm])
            .build();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let a = Operand::square("A", 10);
        let b = Operand::matrix("B", 10, 4);
        let chain = chain_of(&(a.inverse() * b.expr()));
        assert!(matches!(
            gmc.solve_top_down(&chain),
            Err(GmcError::NotComputable { .. })
        ));
    }

    #[test]
    fn display_lists_steps() {
        let registry = KernelRegistry::blas_lapack();
        let gmc = GmcOptimizer::new(&registry, FlopCount);
        let a = Operand::matrix("A", 4, 5);
        let b = Operand::matrix("B", 5, 6);
        let chain = chain_of(&(a.expr() * b.expr()));
        let sol = gmc.solve(&chain).unwrap();
        let text = sol.to_string();
        assert!(text.contains("GEMM_NN"));
        assert!(text.contains("T0_1"));
    }
}
