//! The nine competitor strategies of the paper's evaluation (Sec. 4).
//!
//! Each strategy simulates how a library/language evaluates a matrix
//! chain: its association order, its handling of the inverse operator
//! (explicit `inv()` for the *naive* variants, linear solves for the
//! *recommended* ones), and how declared operand properties influence
//! kernel selection. All strategies compile a [`Chain`] to a
//! [`Program`] over the same kernel vocabulary as the GMC optimizer, so
//! their generated code runs on the same substrate.

use crate::builder::{ProgramBuilder, SolveKind, Value};
use gmc_codegen::Program;
use gmc_expr::{Chain, Operand, Property};
use gmc_kernels::{InvKind, Side, Uplo};

/// A chain evaluation strategy (one of the paper's baselines).
pub trait Strategy: Sync {
    /// The paper's figure label, e.g. `"Jl n"`.
    fn label(&self) -> &'static str;

    /// A stable identifier, e.g. `"julia_naive"`.
    fn id(&self) -> &'static str;

    /// Compiles a chain into a kernel program according to the
    /// library's evaluation semantics.
    fn compile(&self, chain: &Chain) -> Program;
}

/// Association order of a library's chain evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Order {
    /// Strict left-to-right folding (Julia, Matlab, Eigen — paper
    /// Sec. 1.2).
    LeftToRight,
    /// Left-to-right, except that a trailing matrix-vector cascade is
    /// evaluated right-to-left (`A·B·v = A(Bv)`, Blaze — paper Sec. 4).
    BlazeVector,
    /// Armadillo's chain heuristic: chains of length ≤ 4 compare
    /// intermediate sizes; longer chains are broken into ≤4-term chunks
    /// from the left, following C++'s left-associative expression
    /// templates (paper Sec. 4).
    Armadillo,
}

/// How the inverse operator is realized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inverses {
    /// `inv(A)` — explicit inversion, then ordinary products (the
    /// *naive* implementations).
    Explicit,
    /// `A \ B`-style linear solves (the *recommended* implementations).
    Solve,
}

/// A library profile: everything that distinguishes one baseline from
/// another.
#[derive(Clone, Debug)]
pub struct Profile {
    label: &'static str,
    id: &'static str,
    order: Order,
    inverses: Inverses,
    /// Whether declared properties drive kernel selection for products
    /// (types/views/adaptors). Matlab has no such mechanism.
    typed_products: bool,
    /// Whether explicit inverses keep triangular/diagonal structure
    /// (Julia's typed `inv`).
    preserves_inverse_structure: bool,
    inv_kind: fn(&Operand) -> InvKind,
    solve_kind: fn(&Operand) -> SolveKind,
}

fn tri_uplo(op: &Operand) -> Option<Uplo> {
    if op.properties().contains(Property::LowerTriangular) {
        Some(Uplo::Lower)
    } else if op.properties().contains(Property::UpperTriangular) {
        Some(Uplo::Upper)
    } else {
        None
    }
}

// --- per-library explicit-inverse specialization -----------------------

fn inv_untyped(_: &Operand) -> InvKind {
    InvKind::General
}

fn inv_julia(op: &Operand) -> InvKind {
    if op.properties().contains(Property::Diagonal) {
        InvKind::Diagonal
    } else if let Some(u) = tri_uplo(op) {
        InvKind::Triangular(u)
    } else {
        InvKind::General
    }
}

fn inv_armadillo(op: &Operand) -> InvKind {
    if op.properties().contains(Property::Diagonal) {
        InvKind::Diagonal
    } else if op
        .properties()
        .contains(Property::SymmetricPositiveDefinite)
    {
        // arma::inv_sympd.
        InvKind::Spd
    } else if let Some(u) = tri_uplo(op) {
        // trimatl/trimatu views.
        InvKind::Triangular(u)
    } else {
        InvKind::General
    }
}

fn inv_eigen(op: &Operand) -> InvKind {
    if op.properties().contains(Property::Diagonal) {
        InvKind::Diagonal
    } else {
        // A.inverse() — general, regardless of other structure.
        InvKind::General
    }
}

fn inv_blaze(op: &Operand) -> InvKind {
    if op.properties().contains(Property::Diagonal) {
        InvKind::Diagonal
    } else if let Some(u) = tri_uplo(op) {
        InvKind::Triangular(u)
    } else {
        InvKind::General
    }
}

// --- per-library solve specialization -----------------------------------

fn solve_julia(op: &Operand) -> SolveKind {
    if op.properties().contains(Property::Diagonal) {
        SolveKind::Dgsv
    } else if let Some(u) = tri_uplo(op) {
        SolveKind::Trsm(u)
    } else {
        // `\` on a dense (or Symmetric-typed) matrix: LU-class solve.
        SolveKind::Gesv
    }
}

fn solve_matlab(op: &Operand) -> SolveKind {
    // mldivide inspects the matrix at runtime: triangular → back
    // substitution, Hermitian positive definite → Cholesky, else LU.
    if op.properties().contains(Property::Diagonal) {
        SolveKind::Dgsv
    } else if let Some(u) = tri_uplo(op) {
        SolveKind::Trsm(u)
    } else if op
        .properties()
        .contains(Property::SymmetricPositiveDefinite)
    {
        SolveKind::Posv
    } else {
        SolveKind::Gesv
    }
}

fn solve_eigen(op: &Operand) -> SolveKind {
    // llt().solve for SPD, triangularView solve, partialPivLu otherwise.
    if op.properties().contains(Property::Diagonal) {
        SolveKind::Dgsv
    } else if let Some(u) = tri_uplo(op) {
        SolveKind::Trsm(u)
    } else if op
        .properties()
        .contains(Property::SymmetricPositiveDefinite)
    {
        SolveKind::Posv
    } else {
        SolveKind::Gesv
    }
}

fn solve_armadillo(op: &Operand) -> SolveKind {
    // arma::solve with solve_opts::fast: triangular detection via
    // trimatl/trimatu, otherwise LU (no automatic Cholesky).
    if op.properties().contains(Property::Diagonal) {
        SolveKind::Dgsv
    } else if let Some(u) = tri_uplo(op) {
        SolveKind::Trsm(u)
    } else {
        SolveKind::Gesv
    }
}

// --- the nine baselines --------------------------------------------------

/// `Jl n` — Julia, naive: left-to-right, `inv()` (typed, so triangular
/// and diagonal inverses stay structured).
pub static JULIA_NAIVE: Profile = Profile {
    label: "Jl n",
    id: "julia_naive",
    order: Order::LeftToRight,
    inverses: Inverses::Explicit,
    typed_products: true,
    preserves_inverse_structure: true,
    inv_kind: inv_julia,
    solve_kind: solve_julia,
};

/// `Jl r` — Julia, recommended: left-to-right with `\` and `/`.
pub static JULIA_RECOMMENDED: Profile = Profile {
    label: "Jl r",
    id: "julia_recommended",
    order: Order::LeftToRight,
    inverses: Inverses::Solve,
    typed_products: true,
    preserves_inverse_structure: true,
    inv_kind: inv_julia,
    solve_kind: solve_julia,
};

/// `Arma n` — Armadillo, naive: chain heuristic, specialized `inv`.
pub static ARMADILLO_NAIVE: Profile = Profile {
    label: "Arma n",
    id: "armadillo_naive",
    order: Order::Armadillo,
    inverses: Inverses::Explicit,
    typed_products: true,
    preserves_inverse_structure: false,
    inv_kind: inv_armadillo,
    solve_kind: solve_armadillo,
};

/// `Arma r` — Armadillo, recommended: `arma::solve` with the fast
/// option, chain heuristic for the products.
pub static ARMADILLO_RECOMMENDED: Profile = Profile {
    label: "Arma r",
    id: "armadillo_recommended",
    order: Order::Armadillo,
    inverses: Inverses::Solve,
    typed_products: true,
    preserves_inverse_structure: false,
    inv_kind: inv_armadillo,
    solve_kind: solve_armadillo,
};

/// `Eig n` — Eigen, naive: left-to-right, `.inverse()`.
pub static EIGEN_NAIVE: Profile = Profile {
    label: "Eig n",
    id: "eigen_naive",
    order: Order::LeftToRight,
    inverses: Inverses::Explicit,
    typed_products: true,
    preserves_inverse_structure: false,
    inv_kind: inv_eigen,
    solve_kind: solve_eigen,
};

/// `Eig r` — Eigen, recommended: decomposition `.solve()` methods and
/// views.
pub static EIGEN_RECOMMENDED: Profile = Profile {
    label: "Eig r",
    id: "eigen_recommended",
    order: Order::LeftToRight,
    inverses: Inverses::Solve,
    typed_products: true,
    preserves_inverse_structure: false,
    inv_kind: inv_eigen,
    solve_kind: solve_eigen,
};

/// `Bl n` — Blaze, naive (Blaze offers no solver, so there is no
/// recommended variant — paper Sec. 4): adaptors for products, the
/// `A(Bv)` rule for matrix-vector chains, `blaze::inv`.
pub static BLAZE_NAIVE: Profile = Profile {
    label: "Bl n",
    id: "blaze_naive",
    order: Order::BlazeVector,
    inverses: Inverses::Explicit,
    typed_products: true,
    preserves_inverse_structure: false,
    inv_kind: inv_blaze,
    solve_kind: solve_julia,
};

/// `Mat n` — Matlab, naive: left-to-right, `inv()`, untyped products.
pub static MATLAB_NAIVE: Profile = Profile {
    label: "Mat n",
    id: "matlab_naive",
    order: Order::LeftToRight,
    inverses: Inverses::Explicit,
    typed_products: false,
    preserves_inverse_structure: false,
    inv_kind: inv_untyped,
    solve_kind: solve_matlab,
};

/// `Mat r` — Matlab, recommended: `\` and `/` with runtime structure
/// detection, untyped products.
pub static MATLAB_RECOMMENDED: Profile = Profile {
    label: "Mat r",
    id: "matlab_recommended",
    order: Order::LeftToRight,
    inverses: Inverses::Solve,
    typed_products: false,
    preserves_inverse_structure: false,
    inv_kind: inv_untyped,
    solve_kind: solve_matlab,
};

/// All nine baselines, in the paper's Fig. 8 order.
pub fn all_strategies() -> Vec<&'static Profile> {
    vec![
        &JULIA_NAIVE,
        &JULIA_RECOMMENDED,
        &ARMADILLO_NAIVE,
        &ARMADILLO_RECOMMENDED,
        &EIGEN_NAIVE,
        &EIGEN_RECOMMENDED,
        &BLAZE_NAIVE,
        &MATLAB_NAIVE,
        &MATLAB_RECOMMENDED,
    ]
}

impl Strategy for Profile {
    fn label(&self) -> &'static str {
        self.label
    }

    fn id(&self) -> &'static str {
        self.id
    }

    fn compile(&self, chain: &Chain) -> Program {
        let mut pb = ProgramBuilder::new("S");
        let result = match self.inverses {
            Inverses::Explicit => {
                let values: Vec<Value> = chain
                    .factors()
                    .iter()
                    .map(|f| {
                        if f.op().is_inverted() {
                            pb.invert(
                                (self.inv_kind)(f.operand()),
                                f.operand(),
                                f.op().is_transposed(),
                                self.preserves_inverse_structure,
                            )
                        } else {
                            Value {
                                operand: f.operand().clone(),
                                trans: f.op().is_transposed(),
                            }
                        }
                    })
                    .collect();
                self.associate(&values, &mut pb)
            }
            Inverses::Solve => self.fold_with_solves(chain, &mut pb),
        };
        // A chain of plain inputs with no product (cannot happen for
        // well-formed chains of length ≥ 2) would leave an input as the
        // result; chains always emit at least one instruction.
        debug_assert!(result.operand.kind() == gmc_expr::OperandKind::Temporary);
        pb.finish()
    }
}

impl Profile {
    /// Multiplies a slice of (explicitly materialized) values according
    /// to the library's association order.
    fn associate(&self, values: &[Value], pb: &mut ProgramBuilder) -> Value {
        match self.order {
            Order::LeftToRight => {
                let mut acc = values[0].clone();
                for v in &values[1..] {
                    acc = pb.product(&acc, v, self.typed_products);
                }
                acc
            }
            Order::BlazeVector => {
                // Find the first column-vector value: everything up to
                // it is a matrix-vector cascade evaluated right-to-left.
                match values.iter().position(|v| v.shape().is_col_vector()) {
                    Some(k) if k > 0 => {
                        let mut acc = values[k].clone();
                        for v in values[..k].iter().rev() {
                            acc = pb.product(v, &acc, self.typed_products);
                        }
                        for v in &values[k + 1..] {
                            acc = pb.product(&acc, v, self.typed_products);
                        }
                        acc
                    }
                    _ => {
                        let mut acc = values[0].clone();
                        for v in &values[1..] {
                            acc = pb.product(&acc, v, self.typed_products);
                        }
                        acc
                    }
                }
            }
            Order::Armadillo => self.arma_chain(values, pb),
        }
    }

    /// Armadillo's deterministic chunking for chains longer than four:
    /// C++ `*` is left-associative and each `glue_times` node flattens
    /// at most four terms, so the *leading* four operands are evaluated
    /// with the 4-term heuristic, the result joins the next ≤3 operands,
    /// and so on.
    fn arma_chain(&self, values: &[Value], pb: &mut ProgramBuilder) -> Value {
        if values.len() <= 4 {
            return self.arma_upto4(values, pb);
        }
        let mut acc = self.arma_upto4(&values[..4], pb);
        let mut idx = 4;
        while idx < values.len() {
            let take = (values.len() - idx).min(3);
            let mut chunk = Vec::with_capacity(take + 1);
            chunk.push(acc);
            chunk.extend(values[idx..idx + take].iter().cloned());
            acc = self.arma_upto4(&chunk, pb);
            idx += take;
        }
        acc
    }

    fn arma_upto4(&self, values: &[Value], pb: &mut ProgramBuilder) -> Value {
        match values {
            [a] => a.clone(),
            [a, b] => pb.product(a, b, self.typed_products),
            [a, b, c] => self.arma3(a, b, c, pb),
            [a, b, c, d] => {
                // (ABC)D if size(ABC) ≤ size(BCD), else A(BCD).
                let abc = a.shape().rows() * c.shape().cols();
                let bcd = b.shape().rows() * d.shape().cols();
                if abc <= bcd {
                    let t = self.arma3(a, b, c, pb);
                    pb.product(&t, d, self.typed_products)
                } else {
                    let t = self.arma3(b, c, d, pb);
                    pb.product(a, &t, self.typed_products)
                }
            }
            _ => unreachable!("arma_upto4 called with 1..=4 values"),
        }
    }

    fn arma3(&self, a: &Value, b: &Value, c: &Value, pb: &mut ProgramBuilder) -> Value {
        // (AB)C if size(AB) ≤ size(BC), else A(BC).
        let ab = a.shape().rows() * b.shape().cols();
        let bc = b.shape().rows() * c.shape().cols();
        if ab <= bc {
            let t = pb.product(a, b, self.typed_products);
            pb.product(&t, c, self.typed_products)
        } else {
            let t = pb.product(b, c, self.typed_products);
            pb.product(a, &t, self.typed_products)
        }
    }

    /// The *recommended* evaluation: a left-to-right walk where inverted
    /// factors become solves. Leading inverses accumulate and apply
    /// right-to-left once the first plain value arrives (`A⁻¹B⁻¹C` is
    /// written `A\(B\C)`); later inverses are right-solves (`T/A`).
    ///
    /// For the Armadillo order, each inverse is first fused with its
    /// following factor as `solve(A, B)` (that is how users write it),
    /// and the chain heuristic then runs over the reduced value list.
    fn fold_with_solves(&self, chain: &Chain, pb: &mut ProgramBuilder) -> Value {
        // Turn factors into a work list.
        #[derive(Clone)]
        enum Item {
            Val(Value),
            Inv(Operand, bool), // operand, transposed
        }
        let mut items: Vec<Item> = chain
            .factors()
            .iter()
            .map(|f| {
                if f.op().is_inverted() {
                    Item::Inv(f.operand().clone(), f.op().is_transposed())
                } else {
                    Item::Val(Value {
                        operand: f.operand().clone(),
                        trans: f.op().is_transposed(),
                    })
                }
            })
            .collect();

        if self.order == Order::Armadillo {
            // Fuse each inverse with its following value: solve(A, B).
            // Right-to-left so that A⁻¹B⁻¹C fuses into solve(A, solve(B, C)).
            let mut i = items.len();
            while i > 1 {
                i -= 1;
                if let (Item::Inv(a, t), Item::Val(v)) = (items[i - 1].clone(), items[i].clone()) {
                    let s = pb.solve((self.solve_kind)(&a), Side::Left, &a, t, &v);
                    items[i - 1] = Item::Val(s);
                    items.remove(i);
                }
            }
            // Trailing inverses (…·A⁻¹) have no following factor; users
            // fall back to an explicit inverse there.
            let values: Vec<Value> = items
                .into_iter()
                .map(|item| match item {
                    Item::Val(v) => v,
                    Item::Inv(a, t) => {
                        pb.invert((self.inv_kind)(&a), &a, t, self.preserves_inverse_structure)
                    }
                })
                .collect();
            return self.associate(&values, pb);
        }

        // Left-to-right with pending leading solves.
        let mut pending: Vec<(Operand, bool)> = Vec::new();
        let mut acc: Option<Value> = None;
        for item in items {
            match item {
                Item::Inv(a, t) => match acc.take() {
                    // Mid-chain inverse: T := T · A⁻¹ (a right solve,
                    // `T / A`).
                    Some(v) => {
                        let s = pb.solve((self.solve_kind)(&a), Side::Right, &a, t, &v);
                        acc = Some(s);
                    }
                    // Leading inverse: postponed until a value arrives.
                    None => pending.push((a, t)),
                },
                Item::Val(v) => {
                    let mut cur = match acc.take() {
                        Some(prev) => pb.product(&prev, &v, self.typed_products),
                        None => v,
                    };
                    // Drain pending solves right-to-left: A\(B\cur).
                    while let Some((a, t)) = pending.pop() {
                        cur = pb.solve((self.solve_kind)(&a), Side::Left, &a, t, &cur);
                    }
                    acc = Some(cur);
                }
            }
        }
        match acc {
            Some(v) if pending.is_empty() => v,
            _ => {
                // The chain consists entirely of inverses: invert the
                // innermost explicitly and solve outwards.
                let (a, t) = pending.pop().expect("non-empty chain");
                let mut cur =
                    pb.invert((self.inv_kind)(&a), &a, t, self.preserves_inverse_structure);
                while let Some((a, t)) = pending.pop() {
                    cur = pb.solve((self.solve_kind)(&a), Side::Left, &a, t, &cur);
                }
                cur
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_expr::{Factor, Operand};
    use gmc_kernels::KernelFamily;

    fn table2_chain() -> Chain {
        let a = Operand::square("A", 100).with_property(Property::SymmetricPositiveDefinite);
        let b = Operand::matrix("B", 100, 40);
        let c = Operand::square("C", 40).with_property(Property::LowerTriangular);
        Chain::new(vec![
            Factor::inverted(a),
            Factor::plain(b),
            Factor::transposed(c),
        ])
        .unwrap()
    }

    fn families(p: &Program) -> Vec<KernelFamily> {
        p.instructions().iter().map(|i| i.op().family()).collect()
    }

    use gmc_codegen::Program;

    #[test]
    fn julia_naive_inverts_then_multiplies() {
        let p = JULIA_NAIVE.compile(&table2_chain());
        let f = families(&p);
        // inv(A), then (invA * B), then (… * C').
        assert_eq!(f[0], KernelFamily::Inv);
        assert_eq!(f.len(), 3);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn julia_recommended_solves() {
        let p = JULIA_RECOMMENDED.compile(&table2_chain());
        let f = families(&p);
        // (A\B) — Julia's `\` on a dense SPD matrix is LU-class — then
        // a TRMM with C'.
        assert_eq!(f, vec![KernelFamily::Gesv, KernelFamily::Trmm]);
    }

    #[test]
    fn matlab_recommended_detects_spd() {
        let p = MATLAB_RECOMMENDED.compile(&table2_chain());
        let f = families(&p);
        // mldivide detects positive definiteness: Cholesky solve; the
        // product stays a GEMM (no types in Matlab).
        assert_eq!(f, vec![KernelFamily::Posv, KernelFamily::Gemm]);
    }

    #[test]
    fn matlab_naive_is_all_general() {
        let p = MATLAB_NAIVE.compile(&table2_chain());
        let f = families(&p);
        assert_eq!(
            f,
            vec![KernelFamily::Inv, KernelFamily::Gemm, KernelFamily::Gemm]
        );
        // The explicit inverse is a *general* inverse despite A being SPD.
        match p.instructions()[0].op() {
            gmc_kernels::KernelOp::Inv { kind, .. } => {
                assert_eq!(*kind, InvKind::General)
            }
            other => panic!("expected Inv, got {other}"),
        }
    }

    #[test]
    fn armadillo_naive_uses_inv_sympd() {
        let p = ARMADILLO_NAIVE.compile(&table2_chain());
        match p.instructions()[0].op() {
            gmc_kernels::KernelOp::Inv { kind, .. } => assert_eq!(*kind, InvKind::Spd),
            other => panic!("expected Inv, got {other}"),
        }
    }

    #[test]
    fn armadillo_recommended_matches_paper_table2() {
        // arma::solve(A, B) * C.t()
        let p = ARMADILLO_RECOMMENDED.compile(&table2_chain());
        let f = families(&p);
        assert_eq!(f, vec![KernelFamily::Gesv, KernelFamily::Trmm]);
    }

    #[test]
    fn blaze_vector_rule() {
        // A B v: Blaze computes A(Bv).
        let a = Operand::matrix("A", 50, 60);
        let b = Operand::matrix("B", 60, 70);
        let v = Operand::col_vector("v", 70);
        let chain = Chain::new(vec![Factor::plain(a), Factor::plain(b), Factor::plain(v)]).unwrap();
        let p = BLAZE_NAIVE.compile(&chain);
        let f = families(&p);
        assert_eq!(f, vec![KernelFamily::Gemv, KernelFamily::Gemv]);
        // Julia (left-to-right) instead computes (AB)v.
        let p = JULIA_NAIVE.compile(&chain);
        let f = families(&p);
        assert_eq!(f, vec![KernelFamily::Gemm, KernelFamily::Gemv]);
    }

    #[test]
    fn armadillo_heuristic_length_3() {
        // Sizes chosen so (AB)C is smaller: A 10x10, B 10x10, C 10x1000.
        // size(AB) = 100 ≤ size(BC) = 10000 → (AB)C.
        let a = Operand::matrix("A", 10, 10);
        let b = Operand::matrix("B", 10, 10);
        let c = Operand::matrix("C", 10, 1000);
        let chain = Chain::new(vec![
            Factor::plain(a.clone()),
            Factor::plain(b.clone()),
            Factor::plain(c.clone()),
        ])
        .unwrap();
        let p = ARMADILLO_NAIVE.compile(&chain);
        // First product must be A·B (10x10 operands).
        match p.instructions()[0].op() {
            gmc_kernels::KernelOp::Gemm { a, b, .. } => {
                assert_eq!(a.name(), "A");
                assert_eq!(b.name(), "B");
            }
            other => panic!("unexpected {other}"),
        }

        // Reversed: A 1000x10, B 10x10, C 10x10 → size(AB) = 10000 >
        // size(BC) = 100 → A(BC).
        let a = Operand::matrix("A", 1000, 10);
        let b = Operand::matrix("B", 10, 10);
        let c = Operand::matrix("C", 10, 10);
        let chain = Chain::new(vec![
            Factor::plain(a),
            Factor::plain(b.clone()),
            Factor::plain(c.clone()),
        ])
        .unwrap();
        let p = ARMADILLO_NAIVE.compile(&chain);
        match p.instructions()[0].op() {
            gmc_kernels::KernelOp::Gemm { a, b, .. } => {
                assert_eq!(a.name(), "B");
                assert_eq!(b.name(), "C");
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn armadillo_cannot_find_ab_cd() {
        // Sizes where (AB)(CD) is optimal: 100x1 · 1x100 · 100x1 · 1x100.
        // Optimal: (AB)(CD) — two rank-1 products then 100x100 × 100x100?
        // That is expensive; the truly optimal split is A((BC)D)… the
        // point here is only that Armadillo never produces the split
        // (AB)(CD): its first product always involves an original
        // operand pair adjacent in the reduced chain, and every later
        // product includes the accumulated temporary.
        let a = Operand::matrix("A", 30, 10);
        let b = Operand::matrix("B", 10, 40);
        let c = Operand::matrix("C", 40, 10);
        let d = Operand::matrix("D", 10, 35);
        let chain = Chain::new(vec![
            Factor::plain(a),
            Factor::plain(b),
            Factor::plain(c),
            Factor::plain(d),
        ])
        .unwrap();
        let p = ARMADILLO_NAIVE.compile(&chain);
        assert_eq!(p.len(), 3);
        // (AB)(CD) would require an instruction whose two arguments are
        // both temporaries; Armadillo's heuristic never does that.
        for instr in p.instructions() {
            let args = instr.op().operands();
            let both_temps = args
                .iter()
                .all(|o| o.kind() == gmc_expr::OperandKind::Temporary);
            assert!(!both_temps, "Armadillo produced (AB)(CD)-style split");
        }
    }

    #[test]
    fn armadillo_long_chain_chunks_from_left() {
        // Six same-size square matrices: the chunking is
        // h4(M0..M3), then h4(T, M4, M5).
        let ops: Vec<Operand> = (0..6)
            .map(|i| Operand::square(format!("M{i}"), 8))
            .collect();
        let chain = Chain::new(ops.into_iter().map(Factor::plain).collect()).unwrap();
        let p = ARMADILLO_NAIVE.compile(&chain);
        assert_eq!(p.len(), 5);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn leading_inverse_stack() {
        // A⁻¹ B⁻¹ C → gesv(B, C) then gesv(A, ·) for Julia recommended.
        let a = Operand::square("A", 10);
        let b = Operand::square("B", 10);
        let c = Operand::matrix("C", 10, 4);
        let chain = Chain::new(vec![
            Factor::inverted(a),
            Factor::inverted(b),
            Factor::plain(c),
        ])
        .unwrap();
        let p = JULIA_RECOMMENDED.compile(&chain);
        let f = families(&p);
        assert_eq!(f, vec![KernelFamily::Gesv, KernelFamily::Gesv]);
        match p.instructions()[0].op() {
            gmc_kernels::KernelOp::Gesv { a, .. } => assert_eq!(a.name(), "B"),
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn mid_chain_inverse_right_solve() {
        // B A⁻¹ C for Julia recommended: (B/A)·C.
        let a = Operand::square("A", 10);
        let b = Operand::matrix("B", 4, 10);
        let c = Operand::matrix("C", 10, 6);
        let chain = Chain::new(vec![
            Factor::plain(b),
            Factor::inverted(a),
            Factor::plain(c),
        ])
        .unwrap();
        let p = JULIA_RECOMMENDED.compile(&chain);
        let f = families(&p);
        assert_eq!(f, vec![KernelFamily::Gesv, KernelFamily::Gemm]);
        match p.instructions()[0].op() {
            gmc_kernels::KernelOp::Gesv { side, .. } => {
                assert_eq!(*side, Side::Right)
            }
            other => panic!("unexpected {other}"),
        }
    }

    #[test]
    fn all_inverse_chain() {
        // A⁻¹ B⁻¹: recommended falls back to inv(B) then A\·.
        let a = Operand::square("A", 10);
        let b = Operand::square("B", 10);
        let chain = Chain::new(vec![Factor::inverted(a), Factor::inverted(b)]).unwrap();
        for s in all_strategies() {
            let p = s.compile(&chain);
            assert!(p.validate().is_ok(), "{} produced invalid program", s.id());
            assert!(!p.is_empty());
        }
    }

    #[test]
    fn all_strategies_have_distinct_ids() {
        let ids: Vec<_> = all_strategies().iter().map(|s| s.id()).collect();
        let mut dedup = ids.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        assert_eq!(ids.len(), 9);
    }

    #[test]
    fn eigen_recommended_uses_llt_for_spd() {
        let p = EIGEN_RECOMMENDED.compile(&table2_chain());
        let f = families(&p);
        assert_eq!(f[0], KernelFamily::Posv);
    }
}
