//! Evaluation-strategy simulators for the libraries and languages the
//! GMC paper compares against (Sec. 4): Julia, Matlab, Eigen, Blaze and
//! Armadillo, each in *naive* (`inv(A)*B`) and — where the library
//! offers solvers — *recommended* (`A\B`) form.
//!
//! Rather than linking the real libraries, each [`Strategy`] reimplements
//! the library's documented evaluation semantics (association order,
//! inverse handling, property-driven kernel dispatch) and compiles the
//! chain to a [`gmc_codegen::Program`] over the same kernel vocabulary
//! as the GMC optimizer. All ten implementations (GMC + 9 baselines)
//! therefore execute on one substrate, which preserves exactly the
//! effects the paper measures: parenthesization quality and kernel
//! specialization.
//!
//! # Example
//!
//! ```
//! use gmc_baselines::{Strategy, JULIA_NAIVE, JULIA_RECOMMENDED};
//! use gmc_expr::{Chain, Operand, Property};
//!
//! # fn main() -> Result<(), gmc_expr::ExprError> {
//! let a = Operand::square("A", 100).with_property(Property::SymmetricPositiveDefinite);
//! let b = Operand::matrix("B", 100, 20);
//! let chain = Chain::from_expr(&(a.inverse() * b.expr()))?;
//!
//! let naive = JULIA_NAIVE.compile(&chain);       // inv(A) * B
//! let recommended = JULIA_RECOMMENDED.compile(&chain); // A \ B
//! assert!(naive.flops() > recommended.flops());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod strategies;

pub use builder::{product_op, ProgramBuilder, SolveKind, Value};
pub use strategies::{
    all_strategies, Inverses, Order, Profile, Strategy, ARMADILLO_NAIVE, ARMADILLO_RECOMMENDED,
    BLAZE_NAIVE, EIGEN_NAIVE, EIGEN_RECOMMENDED, JULIA_NAIVE, JULIA_RECOMMENDED, MATLAB_NAIVE,
    MATLAB_RECOMMENDED,
};
