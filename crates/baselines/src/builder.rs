//! Shared machinery for building baseline programs: values, temporaries
//! and the pairwise product/solve/inverse compilers.

use gmc_codegen::{Instruction, Program};
use gmc_expr::{Operand, Property, PropertySet, Shape};
use gmc_kernels::{InvKind, KernelOp, Side, Uplo};

/// A computed (or input) value flowing through a baseline evaluation:
/// an operand plus a pending transpose. Libraries fold transposes into
/// kernel flags instead of materializing them, and so do we.
#[derive(Clone, Debug)]
pub struct Value {
    /// The operand holding the value.
    pub operand: Operand,
    /// Whether the value is used transposed.
    pub trans: bool,
}

impl Value {
    /// A plain value.
    pub fn plain(operand: Operand) -> Self {
        Value {
            operand,
            trans: false,
        }
    }

    /// The effective shape (transpose applied).
    pub fn shape(&self) -> Shape {
        if self.trans {
            self.operand.shape().transposed()
        } else {
            self.operand.shape()
        }
    }

    fn has(&self, p: Property) -> bool {
        self.operand.properties().contains(p)
    }

    fn is_col_vec(&self) -> bool {
        self.shape().is_col_vector()
    }
}

/// How a library computes an explicit inverse and a linear solve for an
/// operand with declared properties.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveKind {
    /// Triangular solve.
    Trsm(Uplo),
    /// Cholesky solve (SPD).
    Posv,
    /// Diagonal solve.
    Dgsv,
    /// LU solve.
    Gesv,
}

/// Accumulates instructions and mints fresh temporaries.
#[derive(Debug)]
pub struct ProgramBuilder {
    program: Program,
    counter: usize,
    prefix: &'static str,
}

impl ProgramBuilder {
    /// Creates a builder; temporaries are named `{prefix}{counter}`.
    pub fn new(prefix: &'static str) -> Self {
        ProgramBuilder {
            program: Program::default(),
            counter: 0,
            prefix,
        }
    }

    /// Emits an instruction computing `op` into a fresh temporary with
    /// the given properties; returns the temporary as a [`Value`].
    pub fn emit(&mut self, op: KernelOp, properties: PropertySet) -> Value {
        let shape = op.result_shape();
        let dest = Operand::temporary(
            format!("{}{}", self.prefix, self.counter),
            shape,
            properties,
        );
        self.counter += 1;
        self.program.push(Instruction::new(dest.clone(), op));
        Value::plain(dest)
    }

    /// Finishes the build.
    pub fn finish(self) -> Program {
        self.program
    }

    /// Emits the pairwise product `l · r`, choosing the kernel the way a
    /// library with declared ("typed") properties would: vector kernels
    /// for vector shapes, then DGMM/TRMM/SYMM by the structured
    /// operand's declared property, otherwise GEMM with transpose flags.
    /// With `typed == false` (Matlab-style untyped values) everything
    /// but the vector cases is a GEMM.
    pub fn product(&mut self, l: &Value, r: &Value, typed: bool) -> Value {
        let op = product_op(l, r, typed);
        self.emit(op, PropertySet::new())
    }

    /// Emits the solve `a⁻¹·rhs` (left) or `rhs·a⁻¹` (right).
    pub fn solve(
        &mut self,
        kind: SolveKind,
        side: Side,
        a: &Operand,
        a_trans: bool,
        rhs: &Value,
    ) -> Value {
        let op = match kind {
            SolveKind::Trsm(uplo) => KernelOp::Trsm {
                side,
                uplo,
                trans: a_trans,
                tb: rhs.trans,
                a: a.clone(),
                b: rhs.operand.clone(),
            },
            SolveKind::Posv => KernelOp::Posv {
                side,
                tb: rhs.trans,
                a: a.clone(),
                b: rhs.operand.clone(),
            },
            SolveKind::Dgsv => KernelOp::Diag {
                side,
                inv: true,
                tb: rhs.trans,
                d: a.clone(),
                b: rhs.operand.clone(),
            },
            SolveKind::Gesv => KernelOp::Gesv {
                side,
                trans: a_trans,
                tb: rhs.trans,
                a: a.clone(),
                b: rhs.operand.clone(),
            },
        };
        self.emit(op, PropertySet::new())
    }

    /// Emits an explicit inversion of `a`, computed according to `kind`.
    /// The pending transpose stays on the returned [`Value`] (libraries
    /// fuse it into the next product). When `preserve_structure` is set
    /// (Julia's typed `inv`), triangularity/diagonality carries over to
    /// the inverse.
    pub fn invert(
        &mut self,
        kind: InvKind,
        a: &Operand,
        trans: bool,
        preserve_structure: bool,
    ) -> Value {
        let op = KernelOp::Inv {
            kind,
            trans: false,
            a: a.clone(),
        };
        let mut props = PropertySet::new();
        if preserve_structure {
            for p in [
                Property::Diagonal,
                Property::LowerTriangular,
                Property::UpperTriangular,
            ] {
                if a.properties().contains(p) {
                    props.insert(p);
                }
            }
        }
        let mut v = self.emit(op, props);
        v.trans = trans;
        v
    }
}

/// The pairwise product kernel selection shared by all baselines.
pub fn product_op(l: &Value, r: &Value, typed: bool) -> KernelOp {
    // Vector-shaped cases first (all libraries have fast paths here).
    let l_col = l.operand.shape().is_col_vector();
    let r_col = r.operand.shape().is_col_vector();
    if l_col && l.trans && r_col && !r.trans {
        return KernelOp::Dot {
            x: l.operand.clone(),
            y: r.operand.clone(),
        };
    }
    if l_col && !l.trans && r_col && r.trans {
        return KernelOp::Ger {
            x: l.operand.clone(),
            y: r.operand.clone(),
        };
    }
    if r.is_col_vec() && r_col && !l.operand.shape().is_vector() {
        if typed {
            if l.has(Property::Diagonal) {
                return KernelOp::Diag {
                    side: Side::Left,
                    inv: false,
                    tb: false,
                    d: l.operand.clone(),
                    b: r.operand.clone(),
                };
            }
            if l.has(Property::LowerTriangular) {
                return KernelOp::Trmv {
                    uplo: Uplo::Lower,
                    trans: l.trans,
                    a: l.operand.clone(),
                    x: r.operand.clone(),
                };
            }
            if l.has(Property::UpperTriangular) {
                return KernelOp::Trmv {
                    uplo: Uplo::Upper,
                    trans: l.trans,
                    a: l.operand.clone(),
                    x: r.operand.clone(),
                };
            }
            if l.has(Property::Symmetric) {
                return KernelOp::Symv {
                    a: l.operand.clone(),
                    x: r.operand.clone(),
                };
            }
        }
        return KernelOp::Gemv {
            trans: l.trans,
            a: l.operand.clone(),
            x: r.operand.clone(),
        };
    }
    if typed {
        // Structured matrix-matrix products. BLAS TRMM/SYMM cannot
        // transpose the general operand, so those cases fall through to
        // GEMM, exactly as the libraries do.
        if l.has(Property::Diagonal) && !l.operand.shape().is_vector() {
            return KernelOp::Diag {
                side: Side::Left,
                inv: false,
                tb: r.trans,
                d: l.operand.clone(),
                b: r.operand.clone(),
            };
        }
        if r.has(Property::Diagonal) && !r.operand.shape().is_vector() {
            return KernelOp::Diag {
                side: Side::Right,
                inv: false,
                tb: l.trans,
                d: r.operand.clone(),
                b: l.operand.clone(),
            };
        }
        if !r.trans {
            if l.has(Property::LowerTriangular) {
                return KernelOp::Trmm {
                    side: Side::Left,
                    uplo: Uplo::Lower,
                    trans: l.trans,
                    a: l.operand.clone(),
                    b: r.operand.clone(),
                };
            }
            if l.has(Property::UpperTriangular) {
                return KernelOp::Trmm {
                    side: Side::Left,
                    uplo: Uplo::Upper,
                    trans: l.trans,
                    a: l.operand.clone(),
                    b: r.operand.clone(),
                };
            }
            if l.has(Property::Symmetric) {
                return KernelOp::Symm {
                    side: Side::Left,
                    a: l.operand.clone(),
                    b: r.operand.clone(),
                };
            }
        }
        if !l.trans {
            if r.has(Property::LowerTriangular) {
                return KernelOp::Trmm {
                    side: Side::Right,
                    uplo: Uplo::Lower,
                    trans: r.trans,
                    a: r.operand.clone(),
                    b: l.operand.clone(),
                };
            }
            if r.has(Property::UpperTriangular) {
                return KernelOp::Trmm {
                    side: Side::Right,
                    uplo: Uplo::Upper,
                    trans: r.trans,
                    a: r.operand.clone(),
                    b: l.operand.clone(),
                };
            }
            if r.has(Property::Symmetric) {
                return KernelOp::Symm {
                    side: Side::Right,
                    a: r.operand.clone(),
                    b: l.operand.clone(),
                };
            }
        }
    }
    KernelOp::Gemm {
        ta: l.trans,
        tb: r.trans,
        a: l.operand.clone(),
        b: r.operand.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmc_kernels::KernelFamily;

    fn val(op: Operand) -> Value {
        Value::plain(op)
    }

    #[test]
    fn product_selects_structured_kernels_when_typed() {
        let l = Operand::square("L", 8).with_property(Property::LowerTriangular);
        let b = Operand::matrix("B", 8, 4);
        let op = product_op(&val(l.clone()), &val(b.clone()), true);
        assert_eq!(op.family(), KernelFamily::Trmm);
        // Untyped: GEMM.
        let op = product_op(&val(l), &val(b), false);
        assert_eq!(op.family(), KernelFamily::Gemm);
    }

    #[test]
    fn product_vector_cases() {
        let a = Operand::matrix("A", 8, 4);
        let x = Operand::col_vector("x", 4);
        let op = product_op(&val(a), &val(x.clone()), true);
        assert_eq!(op.family(), KernelFamily::Gemv);

        let y = Operand::col_vector("y", 8);
        let mut yt = val(y.clone());
        yt.trans = true;
        let op = product_op(&val(Operand::col_vector("x", 4)), &yt, true);
        assert_eq!(op.family(), KernelFamily::Ger);

        let mut xt = val(Operand::col_vector("x", 8));
        xt.trans = true;
        let op = product_op(&xt, &val(y), true);
        assert_eq!(op.family(), KernelFamily::Dot);
    }

    #[test]
    fn trmm_falls_back_to_gemm_on_transposed_general_operand() {
        let l = Operand::square("L", 8).with_property(Property::LowerTriangular);
        let b = Operand::matrix("B", 4, 8);
        let mut bt = val(b);
        bt.trans = true;
        let op = product_op(&val(l), &bt, true);
        assert_eq!(op.family(), KernelFamily::Gemm);
    }

    #[test]
    fn builder_mints_fresh_temps() {
        let mut pb = ProgramBuilder::new("S");
        let a = Operand::matrix("A", 3, 4);
        let b = Operand::matrix("B", 4, 5);
        let t = pb.product(&val(a), &val(b), true);
        assert_eq!(t.operand.name(), "S0");
        assert_eq!(t.shape(), Shape::new(3, 5));
        let c = Operand::matrix("C", 5, 2);
        let t2 = pb.product(&t, &val(c), true);
        assert_eq!(t2.operand.name(), "S1");
        let program = pb.finish();
        assert_eq!(program.len(), 2);
        assert!(program.validate().is_ok());
    }

    #[test]
    fn invert_preserves_structure_when_asked() {
        let mut pb = ProgramBuilder::new("S");
        let l = Operand::square("L", 8).with_property(Property::LowerTriangular);
        let v = pb.invert(InvKind::Triangular(Uplo::Lower), &l, false, true);
        assert!(v.operand.properties().contains(Property::LowerTriangular));
        let v = pb.invert(InvKind::Triangular(Uplo::Lower), &l, false, false);
        assert!(v.operand.properties().is_empty());
    }

    #[test]
    fn solve_kinds_produce_expected_ops() {
        let mut pb = ProgramBuilder::new("S");
        let a = Operand::square("A", 6).with_property(Property::SymmetricPositiveDefinite);
        let b = Operand::matrix("B", 6, 3);
        let v = pb.solve(SolveKind::Posv, Side::Left, &a, false, &val(b.clone()));
        assert_eq!(v.shape(), Shape::new(6, 3));
        let program = pb.finish();
        assert_eq!(program.instructions()[0].op().family(), KernelFamily::Posv);
    }
}
