//! Property tests for the workload layer: random specs must compile to
//! traces that round-trip through the JSON format *byte-identically*
//! and regenerate deterministically from the same seed.

use gmc_bench::replay::{replay_trace, ReplayOptions};
use gmc_bench::workload::{generate, ArrivalProcess, BindingDist, Trace, WorkloadSpec};
use proptest::prelude::*;

#[allow(clippy::too_many_arguments)]
fn spec_from_parts(
    seed: u64,
    structures: usize,
    aliases: usize,
    len_lo: usize,
    len_span: usize,
    zipf_s: f64,
    hit_ratio: f64,
    duplicate_ratio: f64,
    requests: usize,
    arrivals_pick: u8,
    loguniform: bool,
) -> WorkloadSpec {
    WorkloadSpec {
        name: "prop".to_owned(),
        seed,
        structures,
        alias_structures: aliases.min(structures),
        min_len: len_lo,
        max_len: len_lo + len_span,
        zipf_s,
        bindings: if loguniform {
            vec![
                BindingDist::LogUniform { lo: 4, hi: 512 },
                BindingDist::Uniform { lo: 8, hi: 64 },
            ]
        } else {
            vec![BindingDist::Uniform { lo: 4, hi: 256 }]
        },
        arrivals: match arrivals_pick % 3 {
            0 => ArrivalProcess::ClosedLoop,
            1 => ArrivalProcess::OpenLoop {
                rate_per_sec: 50_000.0,
            },
            _ => ArrivalProcess::Bursty {
                rate_per_sec: 80_000.0,
                on_ms: 2,
                off_ms: 3,
            },
        },
        requests,
        hit_ratio,
        duplicate_ratio,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// gen → save → load → save is byte-identical, and generating twice
    /// from the same spec gives the same trace (same request order, same
    /// bindings, same arrivals).
    #[test]
    fn trace_json_round_trips_byte_identically(
        seed in 0u64..1_000_000,
        structures in 1usize..5,
        aliases in 0usize..3,
        len_lo in 2usize..4,
        len_span in 0usize..3,
        zipf_s in 0.0f64..2.0,
        hit_ratio in 0.0f64..1.0,
        duplicate_ratio in 0.0f64..1.0,
        requests in 1usize..40,
        arrivals_pick in 0u8..3,
        loguniform in any::<bool>(),
    ) {
        let spec = spec_from_parts(
            seed, structures, aliases, len_lo, len_span, zipf_s,
            hit_ratio, duplicate_ratio, requests, arrivals_pick, loguniform,
        );
        let trace = generate(&spec).expect("valid spec generates");
        prop_assert_eq!(trace.requests.len(), requests);

        // Byte-identical JSON round trip: save → load → save.
        let json = trace.to_json_string();
        let back = Trace::from_json_str(&json).expect("own JSON parses");
        prop_assert_eq!(&back, &trace);
        prop_assert_eq!(back.to_json_string(), json.clone());

        // Deterministic regeneration from the same seed.
        let again = generate(&spec).expect("regenerates");
        prop_assert_eq!(&again, &trace);
        prop_assert_eq!(again.to_json_string(), json);

        // Structural sanity the replayer relies on.
        trace.validate().expect("generated trace validates");
    }
}

// Replaying the same small trace twice yields identical per-request
// answers (outcomes race; answers must not).
#[test]
fn replay_results_are_deterministic_for_a_fixed_trace() {
    let spec = spec_from_parts(7, 3, 1, 2, 2, 1.0, 0.6, 0.3, 24, 0, true);
    let trace = generate(&spec).unwrap();
    let opts = ReplayOptions {
        workers: 2,
        ..ReplayOptions::default()
    };
    let a = replay_trace(&trace, &opts).unwrap();
    let b = replay_trace(&trace, &opts).unwrap();
    assert!(a.is_clean(), "violations: {:?}", a.violations);
    assert!(b.is_clean(), "violations: {:?}", b.violations);
    assert_eq!(a.results, b.results);
}
