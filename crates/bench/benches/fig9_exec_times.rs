//! Fig. 9 as a Criterion bench: per-problem execution time of the
//! GMC-generated program across a spread of random test problems (the
//! paper's x-axis). Baselines are covered by `fig8_speedup`; this bench
//! tracks the distribution of GMC's own execution times.
//!
//! Run: `cargo bench -p gmc-bench --bench fig9_exec_times`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmc::{FlopCount, GmcOptimizer};
use gmc_bench::bench_chains;
use gmc_kernels::KernelRegistry;
use gmc_runtime::{execute, Env};
use std::time::Duration;

fn fig9(c: &mut Criterion) {
    let registry = KernelRegistry::blas_lapack();
    let optimizer = GmcOptimizer::new(&registry, FlopCount);
    let chains = bench_chains(6);
    let mut group = c.benchmark_group("fig9_gmc_exec");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    for (ci, chain) in chains.iter().enumerate() {
        let program = optimizer.solve(chain).expect("computable").program();
        let env = Env::random_for_chain(chain, 42);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("problem{ci}_len{}", chain.len())),
            &program,
            |b, program| {
                b.iter(|| {
                    let mut e = env.clone();
                    execute(program, &mut e).expect("runs")
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);
