//! Ablation benches for the design decisions called out in DESIGN.md:
//! property-inference depth, cost metrics, and the classic-MCP special
//! case of the optimizer.
//!
//! Run: `cargo bench -p gmc-bench --bench ablations`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmc::mcp::matrix_chain_order;
use gmc::{FlopCount, FlopsThenKernels, GmcOptimizer, InferenceMode, TimeModel};
use gmc_bench::paper_scale_chains;
use gmc_kernels::KernelRegistry;
use std::time::Duration;

/// Ablation 1 (DESIGN.md): compositional (paper) vs deep property
/// inference — optimizer runtime cost of the richer analysis.
fn ablation_inference(c: &mut Criterion) {
    let registry = KernelRegistry::blas_lapack();
    let chains = paper_scale_chains(10);
    let mut group = c.benchmark_group("ablation_inference");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    for (mode, name) in [
        (InferenceMode::Compositional, "compositional"),
        (InferenceMode::Deep, "deep"),
    ] {
        let optimizer = GmcOptimizer::new(&registry, FlopCount).with_inference(mode);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                for chain in &chains {
                    criterion::black_box(optimizer.solve(chain).expect("computable"));
                }
            })
        });
    }
    group.finish();
}

/// Ablation 2: cost metrics — FLOPs vs the time model vs the
/// lexicographic vector metric. All run the same DP; the metric only
/// changes the per-kernel cost computation.
fn ablation_metric(c: &mut Criterion) {
    let registry = KernelRegistry::blas_lapack();
    let chains = paper_scale_chains(10);
    let mut group = c.benchmark_group("ablation_metric");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    group.bench_function("flops", |b| {
        let o = GmcOptimizer::new(&registry, FlopCount);
        b.iter(|| {
            for chain in &chains {
                criterion::black_box(o.solve(chain).expect("computable"));
            }
        })
    });
    group.bench_function("time_model", |b| {
        let o = GmcOptimizer::new(&registry, TimeModel::default());
        b.iter(|| {
            for chain in &chains {
                criterion::black_box(o.solve(chain).expect("computable"));
            }
        })
    });
    group.bench_function("lexicographic", |b| {
        let o = GmcOptimizer::new(&registry, FlopsThenKernels);
        b.iter(|| {
            for chain in &chains {
                criterion::black_box(o.solve(chain).expect("computable"));
            }
        })
    });
    group.finish();
}

/// The classic `O(n³)` MCP DP on plain size arrays, for scaling
/// reference (paper Sec. 2).
fn classic_mcp(c: &mut Criterion) {
    let mut group = c.benchmark_group("classic_mcp");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_secs(1));
    for n in [10usize, 50, 100] {
        let sizes: Vec<usize> = (0..=n).map(|i| 50 + (i * 37) % 500).collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &sizes, |b, sizes| {
            b.iter(|| matrix_chain_order(sizes))
        });
    }
    group.finish();
}

criterion_group!(benches, ablation_inference, ablation_metric, classic_mcp);
criterion_main!(benches);
