//! The Sec. 4 generation-time experiment as a Criterion bench: how fast
//! the GMC optimizer itself runs, by chain length and at paper-scale
//! operand sizes (generation time is size-independent).
//!
//! `generation_time_by_length/{10,20,40,80}` are the tracked hot-path
//! benchmarks: their before/after medians are recorded in
//! `BENCH_gentime.json` at the repo root (regenerate with
//! `tools/bench_gentime.sh`).
//!
//! Run: `cargo bench -p gmc-bench --bench generation_time`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmc::{FlopCount, GmcOptimizer, GmcWorkspace};
use gmc_bench::{length_chain, paper_scale_chains};
use gmc_kernels::KernelRegistry;
use std::time::Duration;

fn by_chain_length(c: &mut Criterion) {
    let registry = KernelRegistry::blas_lapack();
    let optimizer = GmcOptimizer::new(&registry, FlopCount);
    let mut group = c.benchmark_group("generation_time_by_length");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    for n in [3usize, 6, 10, 20, 40, 80] {
        let chain = length_chain(n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &chain, |b, chain| {
            b.iter(|| optimizer.solve(chain).expect("computable"))
        });
    }
    group.finish();
}

fn workspace_reuse(c: &mut Criterion) {
    // Amortized batch solving: one GmcWorkspace shared across
    // iterations, versus a cold table allocation per solve.
    let registry = KernelRegistry::blas_lapack();
    let optimizer = GmcOptimizer::new(&registry, FlopCount);
    let mut group = c.benchmark_group("generation_time_workspace");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    for n in [10usize, 40] {
        let chain = length_chain(n);
        group.bench_with_input(BenchmarkId::new("cold", n), &chain, |b, chain| {
            b.iter(|| optimizer.solve(chain).expect("computable"))
        });
        let mut ws = GmcWorkspace::new();
        group.bench_with_input(BenchmarkId::new("reused", n), &chain, |b, chain| {
            b.iter(|| optimizer.solve_with(chain, &mut ws).expect("computable"))
        });
    }
    group.finish();
}

fn paper_protocol(c: &mut Criterion) {
    let registry = KernelRegistry::blas_lapack();
    let optimizer = GmcOptimizer::new(&registry, FlopCount);
    let chains = paper_scale_chains(20);
    let mut group = c.benchmark_group("generation_time_paper_chains");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    group.bench_function("20_random_chains", |b| {
        b.iter(|| {
            for chain in &chains {
                criterion::black_box(optimizer.solve(chain).expect("computable"));
            }
        })
    });
    group.bench_function("20_random_chains_reused_workspace", |b| {
        let mut ws = GmcWorkspace::new();
        b.iter(|| {
            for chain in &chains {
                criterion::black_box(optimizer.solve_with(chain, &mut ws).expect("computable"));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, by_chain_length, workspace_reuse, paper_protocol);
criterion_main!(benches);
