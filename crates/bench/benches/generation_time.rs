//! The Sec. 4 generation-time experiment as a Criterion bench: how fast
//! the GMC optimizer itself runs, by chain length and at paper-scale
//! operand sizes (generation time is size-independent).
//!
//! Run: `cargo bench -p gmc-bench --bench generation_time`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmc::{FlopCount, GmcOptimizer};
use gmc_bench::paper_scale_chains;
use gmc_expr::{Chain, Factor, Operand};
use gmc_kernels::KernelRegistry;
use std::time::Duration;

fn by_chain_length(c: &mut Criterion) {
    let registry = KernelRegistry::blas_lapack();
    let optimizer = GmcOptimizer::new(&registry, FlopCount);
    let mut group = c.benchmark_group("generation_time_by_length");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    for n in [3usize, 6, 10] {
        let ops: Vec<Operand> = (0..n)
            .map(|i| Operand::matrix(format!("M{i}"), 100 + 50 * i, 100 + 50 * (i + 1)))
            .collect();
        let chain = Chain::new(ops.into_iter().map(Factor::plain).collect()).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &chain, |b, chain| {
            b.iter(|| optimizer.solve(chain).expect("computable"))
        });
    }
    group.finish();
}

fn paper_protocol(c: &mut Criterion) {
    let registry = KernelRegistry::blas_lapack();
    let optimizer = GmcOptimizer::new(&registry, FlopCount);
    let chains = paper_scale_chains(20);
    let mut group = c.benchmark_group("generation_time_paper_chains");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_secs(1));
    group.bench_function("20_random_chains", |b| {
        b.iter(|| {
            for chain in &chains {
                criterion::black_box(optimizer.solve(chain).expect("computable"));
            }
        })
    });
    group.finish();
}

criterion_group!(benches, by_chain_length, paper_protocol);
criterion_main!(benches);
