//! Fig. 8 as a Criterion bench: executes the GMC-generated program and
//! every baseline's program on the same inputs, per test chain. The
//! ratio of the per-implementation times reproduces the speedup bars.
//!
//! Run: `cargo bench -p gmc-bench --bench fig8_speedup`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmc_bench::bench_chains;
use gmc_experiments::harness::compile_all;
use gmc_kernels::KernelRegistry;
use gmc_runtime::{execute, Env};
use std::time::Duration;

fn fig8(c: &mut Criterion) {
    let registry = KernelRegistry::blas_lapack();
    let chains = bench_chains(3);
    let mut group = c.benchmark_group("fig8");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    for (ci, chain) in chains.iter().enumerate() {
        let programs = compile_all(chain, &registry).expect("computable");
        let env = Env::random_for_chain(chain, 42);
        for (label, program) in &programs {
            group.bench_with_input(
                BenchmarkId::new(label.replace(' ', "_"), format!("chain{ci}")),
                program,
                |b, program| {
                    b.iter(|| {
                        let mut e = env.clone();
                        execute(program, &mut e).expect("runs")
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, fig8);
criterion_main!(benches);
