//! Substrate kernel benches: verify the performance hierarchy the
//! paper's cost model relies on — TRMM/TRSM run in roughly half the
//! time of GEMM at the same `m²n` volume, SYRK in roughly half of its
//! GEMM equivalent, and POSV beats GESV beats explicit inversion.
//!
//! Run: `cargo bench -p gmc-bench --bench kernel_substrate`

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gmc_linalg::{blas3, lapack, random, Matrix, Triangle};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Duration;

const N: usize = 192;

fn multiply_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let a = random::general(&mut rng, N, N);
    let b = random::general(&mut rng, N, N);
    let l = random::lower_triangular(&mut rng, N);
    let s = random::symmetric(&mut rng, N);
    let mut group = c.benchmark_group("table1_multiply_kernels");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    group.bench_function(BenchmarkId::new("gemm", N), |bch| {
        bch.iter(|| blas3::gemm(1.0, &a, false, &b, false))
    });
    group.bench_function(BenchmarkId::new("trmm", N), |bch| {
        bch.iter(|| {
            blas3::trmm(
                blas3::Side::Left,
                Triangle::Lower,
                false,
                false,
                1.0,
                &l,
                &b,
            )
        })
    });
    group.bench_function(BenchmarkId::new("symm", N), |bch| {
        bch.iter(|| blas3::symm(blas3::Side::Left, 1.0, &s, &b))
    });
    group.bench_function(BenchmarkId::new("syrk", N), |bch| {
        bch.iter(|| blas3::syrk(1.0, &a, true))
    });
    group.finish();
}

fn solve_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(2);
    let spd = random::spd(&mut rng, N);
    let gen = random::invertible(&mut rng, N);
    let l = random::lower_triangular(&mut rng, N);
    let b = random::general(&mut rng, N, 32);
    let mut group = c.benchmark_group("solver_hierarchy");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    group.bench_function(BenchmarkId::new("trsm", N), |bch| {
        bch.iter(|| {
            blas3::trsm(
                blas3::Side::Left,
                Triangle::Lower,
                false,
                false,
                1.0,
                &l,
                &b,
            )
        })
    });
    group.bench_function(BenchmarkId::new("posv", N), |bch| {
        bch.iter(|| lapack::posv(&spd, &b).expect("SPD"))
    });
    group.bench_function(BenchmarkId::new("gesv", N), |bch| {
        bch.iter(|| lapack::gesv(&gen, &b).expect("invertible"))
    });
    group.bench_function(BenchmarkId::new("inv_then_gemm", N), |bch| {
        bch.iter(|| {
            let inv = lapack::getri(&gen).expect("invertible");
            blas3::gemm(1.0, &inv, false, &b, false)
        })
    });
    group.finish();
}

fn vector_kernels(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let a = random::general(&mut rng, N, N);
    let x = random::general(&mut rng, N, 1);
    let mut group = c.benchmark_group("vector_kernels");
    group
        .sample_size(30)
        .measurement_time(Duration::from_secs(1))
        .warm_up_time(Duration::from_secs(1));
    group.bench_function(BenchmarkId::new("gemv", N), |bch| {
        bch.iter(|| gmc_linalg::blas2::gemv(1.0, &a, false, x.col(0)))
    });
    group.bench_function(BenchmarkId::new("gemm_n1", N), |bch| {
        bch.iter(|| blas3::gemm(1.0, &a, false, &x, false))
    });
    group.finish();
}

fn factorizations(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(4);
    let spd = random::spd(&mut rng, N);
    let gen = random::invertible(&mut rng, N);
    let mut group = c.benchmark_group("factorizations");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_secs(1));
    group.bench_function(BenchmarkId::new("potrf", N), |bch| {
        bch.iter(|| {
            let mut m = spd.clone();
            lapack::potrf(&mut m).expect("SPD");
            m
        })
    });
    group.bench_function(BenchmarkId::new("getrf", N), |bch| {
        bch.iter(|| {
            let mut m: Matrix = gen.clone();
            lapack::getrf(&mut m).expect("invertible");
            m
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    multiply_kernels,
    solve_kernels,
    vector_kernels,
    factorizations
);
criterion_main!(benches);
