//! Emits `BENCH_gentime.json`: tracked median generation times of the
//! GMC optimizer by chain length, mirroring the
//! `generation_time_by_length` Criterion bench (same chains, same
//! dimension formula), so the JSON numbers are comparable with the
//! bench output across commits.
//!
//! ```text
//! gentime_json [--quick] [--out PATH]
//! ```
//!
//! The `before` slot is measured from the retained pre-refactor
//! implementation (`gmc::reference::solve_reference`) and the `after`
//! slot from the allocation-free hot path (`GmcOptimizer::solve`,
//! plus `solve_with` on a reused [`gmc::GmcWorkspace`]) — in the same
//! process, interleaved per chain length, so the speedups are immune
//! to machine-condition drift between runs. The `plan_cache` group
//! measures the symbolic pipeline (ISSUE 3): a cold symbolic solve
//! (structure miss, records the region plan) vs a cached instantiate
//! at fresh sizes in the same region, with the hit-vs-concrete-solve
//! speedup tracked per length. `--quick` cuts the sample count for CI
//! smoke runs.

use gmc::reference::solve_reference;
use gmc::{FlopCount, GmcOptimizer, GmcWorkspace, InferenceMode};
use gmc_bench::{length_bindings, length_chain, symbolic_length_chain};
use gmc_kernels::KernelRegistry;
use gmc_plan::{PlanCache, PlanOutcome};
use serde::Value;
use std::time::Instant;

/// Chain lengths tracked by the benchmark (ISSUE 2 acceptance set).
const LENGTHS: [usize; 4] = [10, 20, 40, 80];

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(f64::total_cmp);
    let mid = times.len() / 2;
    if times.len() % 2 == 1 {
        times[mid]
    } else {
        0.5 * (times[mid - 1] + times[mid])
    }
}

/// Median seconds per call of `run` over `samples` timed calls (after
/// one warm-up call).
fn measure(samples: usize, mut run: impl FnMut()) -> f64 {
    run();
    let times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed().as_secs_f64()
        })
        .collect();
    median(times)
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_gentime.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a value"),
            other => panic!("unknown argument `{other}`"),
        }
    }
    let samples = if quick { 5 } else { 25 };

    let registry = KernelRegistry::blas_lapack();
    let optimizer = GmcOptimizer::new(&registry, FlopCount);

    let mut before_medians: Vec<(String, Value)> = Vec::new();
    let mut after_medians: Vec<(String, Value)> = Vec::new();
    let mut reuse_medians: Vec<(String, Value)> = Vec::new();
    let mut speedups: Vec<(String, Value)> = Vec::new();
    let mut plan_cold_medians: Vec<(String, Value)> = Vec::new();
    let mut plan_warm_medians: Vec<(String, Value)> = Vec::new();
    let mut plan_speedups: Vec<(String, Value)> = Vec::new();
    for n in LENGTHS {
        let chain = length_chain(n);
        let before = measure(samples, || {
            std::hint::black_box(
                solve_reference(&registry, &FlopCount, InferenceMode::default(), &chain)
                    .expect("computable"),
            );
        });
        let after = measure(samples, || {
            std::hint::black_box(optimizer.solve(&chain).expect("computable"));
        });
        let mut ws = GmcWorkspace::new();
        let reused = measure(samples, || {
            std::hint::black_box(optimizer.solve_with(&chain, &mut ws).expect("computable"));
        });

        // Plan-cache group: cold symbolic solve (structure miss,
        // records the region plan) vs cached instantiate at *different*
        // sizes in the same region (the serving hot path).
        let sym = symbolic_length_chain(n);
        let base = length_bindings(n, 1);
        let scaled = length_bindings(n, 2);
        let plan_cold = measure(samples, || {
            let mut cache = PlanCache::new(&registry, InferenceMode::default());
            std::hint::black_box(cache.solve(&sym, &base).expect("computable"));
        });
        let mut cache = PlanCache::new(&registry, InferenceMode::default());
        cache.solve(&sym, &base).expect("computable");
        let (_, outcome) = cache.solve(&sym, &scaled).expect("computable");
        assert_eq!(
            outcome,
            PlanOutcome::Hit,
            "scaled sizes must share the region"
        );
        let mut flip = false;
        let plan_warm = measure(samples, || {
            // Alternate two bindings so no per-binding state is warm.
            flip = !flip;
            let b = if flip { &scaled } else { &base };
            std::hint::black_box(cache.solve(&sym, b).expect("computable"));
        });

        eprintln!(
            "n={n:<3} reference {:>9.1} us   solve {:>9.1} us   solve_with(reused) {:>9.1} us   speedup {:.2}x   plan cold {:>9.1} us   plan hit {:>9.1} us   hit vs solve {:.2}x",
            before * 1e6,
            after * 1e6,
            reused * 1e6,
            before / after,
            plan_cold * 1e6,
            plan_warm * 1e6,
            after / plan_warm
        );
        before_medians.push((n.to_string(), Value::Number(before)));
        after_medians.push((n.to_string(), Value::Number(after)));
        reuse_medians.push((n.to_string(), Value::Number(reused)));
        speedups.push((n.to_string(), Value::Number(before / after)));
        plan_cold_medians.push((n.to_string(), Value::Number(plan_cold)));
        plan_warm_medians.push((n.to_string(), Value::Number(plan_warm)));
        plan_speedups.push((n.to_string(), Value::Number(after / plan_warm)));
    }

    let doc = Value::Object(vec![
        (
            "benchmark".to_owned(),
            Value::String(
                "generation_time_by_length: median seconds per solve, before vs after the \
                 allocation-free hot path (both measured in this run: `before` drives the \
                 retained pre-refactor gmc::reference::solve_reference, `after` drives \
                 GmcOptimizer::solve)"
                    .into(),
            ),
        ),
        (
            "regenerate".to_owned(),
            Value::String("tools/bench_gentime.sh (see README § Performance)".into()),
        ),
        ("samples".to_owned(), Value::Number(samples as f64)),
        (
            "before".to_owned(),
            Value::Object(vec![(
                "median_seconds_by_length".to_owned(),
                Value::Object(before_medians),
            )]),
        ),
        (
            "after".to_owned(),
            Value::Object(vec![
                (
                    "median_seconds_by_length".to_owned(),
                    Value::Object(after_medians),
                ),
                (
                    "median_seconds_by_length_workspace_reuse".to_owned(),
                    Value::Object(reuse_medians),
                ),
            ]),
        ),
        ("speedup_median".to_owned(), Value::Object(speedups)),
        (
            "plan_cache".to_owned(),
            Value::Object(vec![
                (
                    "cold_symbolic_solve_median_seconds_by_length".to_owned(),
                    Value::Object(plan_cold_medians),
                ),
                (
                    "cached_instantiate_median_seconds_by_length".to_owned(),
                    Value::Object(plan_warm_medians),
                ),
                (
                    "instantiate_speedup_vs_concrete_solve".to_owned(),
                    Value::Object(plan_speedups),
                ),
            ]),
        ),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("finite numbers only");
    std::fs::write(&out_path, json + "\n").expect("write bench json");
    println!("wrote {out_path}");
}
