//! Emits `BENCH_gentime.json`: tracked median generation times of the
//! GMC optimizer by chain length, mirroring the
//! `generation_time_by_length` Criterion bench (same chains, same
//! dimension formula), so the JSON numbers are comparable with the
//! bench output across commits.
//!
//! ```text
//! gentime_json [--quick] [--out PATH]
//! ```
//!
//! The `before` slot is measured from the retained pre-refactor
//! implementation (`gmc::reference::solve_reference`) and the `after`
//! slot from the allocation-free hot path (`GmcOptimizer::solve`,
//! plus `solve_with` on a reused [`gmc::GmcWorkspace`]) — in the same
//! process, interleaved per chain length, so the speedups are immune
//! to machine-condition drift between runs. `--quick` cuts the sample
//! count for CI smoke runs.

use gmc::reference::solve_reference;
use gmc::{FlopCount, GmcOptimizer, GmcWorkspace, InferenceMode};
use gmc_bench::length_chain;
use gmc_kernels::KernelRegistry;
use serde::Value;
use std::time::Instant;

/// Chain lengths tracked by the benchmark (ISSUE 2 acceptance set).
const LENGTHS: [usize; 4] = [10, 20, 40, 80];

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(f64::total_cmp);
    let mid = times.len() / 2;
    if times.len() % 2 == 1 {
        times[mid]
    } else {
        0.5 * (times[mid - 1] + times[mid])
    }
}

/// Median seconds per call of `run` over `samples` timed calls (after
/// one warm-up call).
fn measure(samples: usize, mut run: impl FnMut()) -> f64 {
    run();
    let times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed().as_secs_f64()
        })
        .collect();
    median(times)
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_gentime.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a value"),
            other => panic!("unknown argument `{other}`"),
        }
    }
    let samples = if quick { 5 } else { 25 };

    let registry = KernelRegistry::blas_lapack();
    let optimizer = GmcOptimizer::new(&registry, FlopCount);

    let mut before_medians: Vec<(String, Value)> = Vec::new();
    let mut after_medians: Vec<(String, Value)> = Vec::new();
    let mut reuse_medians: Vec<(String, Value)> = Vec::new();
    let mut speedups: Vec<(String, Value)> = Vec::new();
    for n in LENGTHS {
        let chain = length_chain(n);
        let before = measure(samples, || {
            std::hint::black_box(
                solve_reference(&registry, &FlopCount, InferenceMode::default(), &chain)
                    .expect("computable"),
            );
        });
        let after = measure(samples, || {
            std::hint::black_box(optimizer.solve(&chain).expect("computable"));
        });
        let mut ws = GmcWorkspace::new();
        let reused = measure(samples, || {
            std::hint::black_box(optimizer.solve_with(&chain, &mut ws).expect("computable"));
        });
        eprintln!(
            "n={n:<3} reference {:>9.1} us   solve {:>9.1} us   solve_with(reused) {:>9.1} us   speedup {:.2}x",
            before * 1e6,
            after * 1e6,
            reused * 1e6,
            before / after
        );
        before_medians.push((n.to_string(), Value::Number(before)));
        after_medians.push((n.to_string(), Value::Number(after)));
        reuse_medians.push((n.to_string(), Value::Number(reused)));
        speedups.push((n.to_string(), Value::Number(before / after)));
    }

    let doc = Value::Object(vec![
        (
            "benchmark".to_owned(),
            Value::String(
                "generation_time_by_length: median seconds per solve, before vs after the \
                 allocation-free hot path (both measured in this run: `before` drives the \
                 retained pre-refactor gmc::reference::solve_reference, `after` drives \
                 GmcOptimizer::solve)"
                    .into(),
            ),
        ),
        (
            "regenerate".to_owned(),
            Value::String("tools/bench_gentime.sh (see README § Performance)".into()),
        ),
        ("samples".to_owned(), Value::Number(samples as f64)),
        (
            "before".to_owned(),
            Value::Object(vec![(
                "median_seconds_by_length".to_owned(),
                Value::Object(before_medians),
            )]),
        ),
        (
            "after".to_owned(),
            Value::Object(vec![
                (
                    "median_seconds_by_length".to_owned(),
                    Value::Object(after_medians),
                ),
                (
                    "median_seconds_by_length_workspace_reuse".to_owned(),
                    Value::Object(reuse_medians),
                ),
            ]),
        ),
        ("speedup_median".to_owned(), Value::Object(speedups)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("finite numbers only");
    std::fs::write(&out_path, json + "\n").expect("write bench json");
    println!("wrote {out_path}");
}
