//! Emits `BENCH_gentime.json`: tracked median generation times of the
//! GMC optimizer by chain length, mirroring the
//! `generation_time_by_length` Criterion bench (same chains, same
//! dimension formula), so the JSON numbers are comparable with the
//! bench output across commits.
//!
//! ```text
//! gentime_json [--quick] [--out PATH]
//! ```
//!
//! The `before` slot is measured from the retained pre-refactor
//! implementation (`gmc::reference::solve_reference`) and the `after`
//! slot from the allocation-free hot path (`GmcOptimizer::solve`,
//! plus `solve_with` on a reused [`gmc::GmcWorkspace`]) — in the same
//! process, interleaved per chain length, so the speedups are immune
//! to machine-condition drift between runs. The `plan_cache` group
//! measures the symbolic pipeline (ISSUE 3): a cold symbolic solve
//! (structure miss, records the region plan) vs a cached instantiate
//! at fresh sizes in the same region, with the hit-vs-concrete-solve
//! speedup tracked per length. The `serve_throughput` group (ISSUE 5)
//! drives the `gmc-serve` front door end to end — submission channel,
//! batching dispatcher, worker pool, shared concurrent cache — at 1, 2,
//! 4 and 8 workers over a hit-ratio sweep, recording requests/second
//! and the scaling relative to one worker. The host's available
//! parallelism is recorded alongside: on a single-core container the
//! sweep measures contention overhead (scaling ≈ 1.0 is the best
//! possible there), while multi-core hosts show the lock-free hit
//! path scaling with workers. The `replay_latency` group (ISSUE 6)
//! replays seeded workload traces (`gmcc workload gen` presets) and
//! reads back the serve-side latency histograms as p50/p99/max per
//! scenario, with invariant checking and sampled bitwise verification.
//! The `obs_overhead` group (ISSUE 9) compares the bare cache-hit path
//! against the fully instrumented one (per-stage histogram records and
//! a slow-trace ring offer per request) with a ~5% budget.
//! `--quick` cuts the sample and request counts for CI smoke runs.

use gmc::reference::solve_reference;
use gmc::{FlopCount, GmcOptimizer, GmcWorkspace, InferenceMode};
use gmc_bench::replay::{replay_trace, ReplayOptions, Verify};
use gmc_bench::workload::{generate, WorkloadSpec};
use gmc_bench::{length_bindings, length_chain, symbolic_length_chain};
use gmc_expr::{DimBindings, SymChain};
use gmc_kernels::KernelRegistry;
use gmc_obs::trace::{SlowTraceRing, Span, Trace};
use gmc_obs::MetricsRegistry;
use gmc_plan::{PlanCache, PlanOutcome};
use gmc_serve::{ServeConfig, Server, STAGES};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Value;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

/// Chain lengths tracked by the benchmark (ISSUE 2 acceptance set).
const LENGTHS: [usize; 4] = [10, 20, 40, 80];

/// Chain length driven through the serving front door.
const SERVE_CHAIN_LEN: usize = 10;

/// Worker-pool sizes of the `serve_throughput` sweep.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Hit ratios of the `serve_throughput` sweep.
const HIT_RATIOS: [f64; 2] = [1.0, 0.5];

/// Workload presets replayed by the `replay_latency` group.
const REPLAY_SCENARIOS: [&str; 4] = ["steady", "mixed", "churn", "storm"];

/// Worker count of the `replay_latency` group.
const REPLAY_WORKERS: usize = 4;

fn median(mut times: Vec<f64>) -> f64 {
    times.sort_by(f64::total_cmp);
    let mid = times.len() / 2;
    if times.len() % 2 == 1 {
        times[mid]
    } else {
        0.5 * (times[mid - 1] + times[mid])
    }
}

/// Median seconds per call of `run` over `samples` timed calls (after
/// one warm-up call).
fn measure(samples: usize, mut run: impl FnMut()) -> f64 {
    run();
    let times: Vec<f64> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            run();
            start.elapsed().as_secs_f64()
        })
        .collect();
    median(times)
}

/// A binding assigning the permuted dimension ladder
/// `scale · (100 + 50·perm[i])` to `d<i>`: distinct permutations give
/// distinct size regions; one permutation at different scales stays in
/// its region (the serving hit path).
fn permuted_bindings(perm: &[usize], scale: usize) -> DimBindings {
    let mut b = DimBindings::new();
    for (i, &p) in perm.iter().enumerate() {
        b.set(&format!("d{i}"), scale * (100 + 50 * p));
    }
    b
}

/// Fisher–Yates permutation of `0..len`.
fn random_perm(rng: &mut StdRng, len: usize) -> Vec<usize> {
    let mut perm: Vec<usize> = (0..len).collect();
    for i in (1..len).rev() {
        let j = rng.gen_range(0..=i);
        perm.swap(i, j);
    }
    perm
}

/// A deterministic request stream at the given hit ratio: hits cycle
/// over the pre-warmed regions at fresh scales, misses each open a
/// brand-new region (a fresh permutation).
fn serve_request_stream(
    rng: &mut StdRng,
    warm_perms: &[Vec<usize>],
    used: &mut BTreeSet<Vec<usize>>,
    total: usize,
    hit_ratio: f64,
) -> Vec<DimBindings> {
    let dims = warm_perms[0].len();
    let mut out = Vec::with_capacity(total);
    let mut hit_cursor = 0usize;
    for i in 0..total {
        let hits_before = (i as f64 * hit_ratio).floor() as usize;
        let hits_after = ((i + 1) as f64 * hit_ratio).floor() as usize;
        if hits_after > hits_before {
            let perm = &warm_perms[hit_cursor % warm_perms.len()];
            // A fresh scale per hit keeps every binding distinct, so
            // the measured hit path is real instantiates, not
            // dispatcher coalescing of identical requests.
            let scale = 2 + hit_cursor / warm_perms.len();
            hit_cursor += 1;
            out.push(permuted_bindings(perm, scale));
        } else {
            let perm = loop {
                let p = random_perm(rng, dims);
                if used.insert(p.clone()) {
                    break p;
                }
            };
            out.push(permuted_bindings(&perm, 1));
        }
    }
    out
}

struct ServeRun {
    requests_per_second: f64,
    achieved_hit_ratio: f64,
    coalesced: u64,
}

/// Drives `requests` through a fresh front door with `workers` workers
/// (cache pre-warmed with `warm_perms`) and measures end-to-end
/// throughput: submission channel, dispatcher grouping, worker-pool
/// instantiates, reply channels.
fn run_serve_throughput(
    registry: &Arc<KernelRegistry>,
    chain: &SymChain,
    workers: usize,
    warm_perms: &[Vec<usize>],
    requests: &[DimBindings],
) -> ServeRun {
    let server = Server::start(
        registry.clone(),
        ServeConfig {
            workers,
            ..ServeConfig::default()
        },
    );
    server.register("X", chain.clone()).expect("register");
    for perm in warm_perms {
        server
            .cache()
            .solve(chain, &permuted_bindings(perm, 1))
            .expect("warm-up solve");
    }
    let before = server.stats().cache;
    let handle = server.handle();
    let start = Instant::now();
    let tickets: Vec<_> = requests
        .iter()
        .map(|b| handle.submit("X", b.clone()))
        .collect();
    for t in tickets {
        t.wait().result.expect("served");
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = server.stats();
    let after = stats.cache;
    server.shutdown();
    ServeRun {
        requests_per_second: requests.len() as f64 / elapsed,
        achieved_hit_ratio: (after.hits - before.hits) as f64 / requests.len() as f64,
        coalesced: stats.coalesced,
    }
}

fn main() {
    let mut quick = false;
    let mut out_path = "BENCH_gentime.json".to_owned();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = args.next().expect("--out needs a value"),
            other => panic!("unknown argument `{other}`"),
        }
    }
    let samples = if quick { 5 } else { 25 };

    let registry = std::sync::Arc::new(KernelRegistry::blas_lapack());
    let optimizer = GmcOptimizer::new(&registry, FlopCount);

    let mut before_medians: Vec<(String, Value)> = Vec::new();
    let mut after_medians: Vec<(String, Value)> = Vec::new();
    let mut reuse_medians: Vec<(String, Value)> = Vec::new();
    let mut speedups: Vec<(String, Value)> = Vec::new();
    let mut plan_cold_medians: Vec<(String, Value)> = Vec::new();
    let mut plan_warm_medians: Vec<(String, Value)> = Vec::new();
    let mut plan_speedups: Vec<(String, Value)> = Vec::new();
    for n in LENGTHS {
        let chain = length_chain(n);
        let before = measure(samples, || {
            std::hint::black_box(
                solve_reference(&registry, &FlopCount, InferenceMode::default(), &chain)
                    .expect("computable"),
            );
        });
        let after = measure(samples, || {
            std::hint::black_box(optimizer.solve(&chain).expect("computable"));
        });
        let mut ws = GmcWorkspace::new();
        let reused = measure(samples, || {
            std::hint::black_box(optimizer.solve_with(&chain, &mut ws).expect("computable"));
        });

        // Plan-cache group: cold symbolic solve (structure miss,
        // records the region plan) vs cached instantiate at *different*
        // sizes in the same region (the serving hot path).
        let sym = symbolic_length_chain(n);
        let base = length_bindings(n, 1);
        let scaled = length_bindings(n, 2);
        let plan_cold = measure(samples, || {
            let cache = PlanCache::new(registry.clone(), InferenceMode::default());
            std::hint::black_box(cache.solve(&sym, &base).expect("computable"));
        });
        let cache = PlanCache::new(registry.clone(), InferenceMode::default());
        cache.solve(&sym, &base).expect("computable");
        let (_, outcome) = cache.solve(&sym, &scaled).expect("computable");
        assert_eq!(
            outcome,
            PlanOutcome::Hit,
            "scaled sizes must share the region"
        );
        let mut flip = false;
        let plan_warm = measure(samples, || {
            // Alternate two bindings so no per-binding state is warm.
            flip = !flip;
            let b = if flip { &scaled } else { &base };
            std::hint::black_box(cache.solve(&sym, b).expect("computable"));
        });

        eprintln!(
            "n={n:<3} reference {:>9.1} us   solve {:>9.1} us   solve_with(reused) {:>9.1} us   speedup {:.2}x   plan cold {:>9.1} us   plan hit {:>9.1} us   hit vs solve {:.2}x",
            before * 1e6,
            after * 1e6,
            reused * 1e6,
            before / after,
            plan_cold * 1e6,
            plan_warm * 1e6,
            after / plan_warm
        );
        before_medians.push((n.to_string(), Value::Number(before)));
        after_medians.push((n.to_string(), Value::Number(after)));
        reuse_medians.push((n.to_string(), Value::Number(reused)));
        speedups.push((n.to_string(), Value::Number(before / after)));
        plan_cold_medians.push((n.to_string(), Value::Number(plan_cold)));
        plan_warm_medians.push((n.to_string(), Value::Number(plan_warm)));
        plan_speedups.push((n.to_string(), Value::Number(after / plan_warm)));
    }

    // serve_throughput group: the gmc-serve front door end to end, by
    // worker count and hit ratio.
    let serve_chain = symbolic_length_chain(SERVE_CHAIN_LEN);
    let warm_regions = if quick { 8 } else { 16 };
    let request_count = if quick { 120 } else { 1200 };
    let mut rng = StdRng::seed_from_u64(0x5E11E);
    let mut used: BTreeSet<Vec<usize>> = BTreeSet::new();
    let mut warm_perms: Vec<Vec<usize>> = Vec::new();
    while warm_perms.len() < warm_regions {
        let p = random_perm(&mut rng, SERVE_CHAIN_LEN + 1);
        if used.insert(p.clone()) {
            warm_perms.push(p);
        }
    }
    let host_parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut ratio_groups: Vec<(String, Value)> = Vec::new();
    for ratio in HIT_RATIOS {
        let requests = serve_request_stream(&mut rng, &warm_perms, &mut used, request_count, ratio);
        let mut rps: Vec<(String, Value)> = Vec::new();
        let mut scaling: Vec<(String, Value)> = Vec::new();
        let mut base_rps = 0.0f64;
        let mut achieved = 0.0f64;
        for workers in WORKER_COUNTS {
            let run =
                run_serve_throughput(&registry, &serve_chain, workers, &warm_perms, &requests);
            if workers == 1 {
                base_rps = run.requests_per_second;
            }
            achieved = run.achieved_hit_ratio;
            eprintln!(
                "serve_throughput hit_ratio={ratio:.2} workers={workers} {:>10.0} req/s   scaling {:.2}x   achieved hit ratio {:.2}   coalesced {}",
                run.requests_per_second,
                run.requests_per_second / base_rps,
                run.achieved_hit_ratio,
                run.coalesced
            );
            rps.push((workers.to_string(), Value::Number(run.requests_per_second)));
            scaling.push((
                workers.to_string(),
                Value::Number(run.requests_per_second / base_rps),
            ));
        }
        ratio_groups.push((
            format!("hit_ratio_{ratio:.2}"),
            Value::Object(vec![
                (
                    "requests_per_second_by_workers".to_owned(),
                    Value::Object(rps),
                ),
                ("scaling_vs_1_worker".to_owned(), Value::Object(scaling)),
                ("achieved_hit_ratio".to_owned(), Value::Number(achieved)),
            ]),
        ));
    }
    let mut serve_group = vec![
        (
            "description".to_owned(),
            Value::String(
                "gmc-serve front door end to end (submission channel, batching dispatcher, \
                 worker pool, shared concurrent PlanCache): requests/second by worker count \
                 over a hit-ratio sweep. Hits instantiate cached region plans of the \
                 length-10 symbolic chain; misses each record a brand-new size region. \
                 Scaling is relative to 1 worker on the same host; host_parallelism records \
                 the cores available (on a 1-core container, flat scaling = no contention \
                 loss on the lock-free hit path; >= 2x at 4 workers is expected from \
                 host_parallelism >= 4)."
                    .into(),
            ),
        ),
        (
            "chain_length".to_owned(),
            Value::Number(SERVE_CHAIN_LEN as f64),
        ),
        (
            "warm_regions".to_owned(),
            Value::Number(warm_regions as f64),
        ),
        ("requests".to_owned(), Value::Number(request_count as f64)),
        (
            "host_parallelism".to_owned(),
            Value::Number(host_parallelism as f64),
        ),
    ];
    serve_group.append(&mut ratio_groups);

    // replay_latency group: seeded workload traces (gmc-bench's
    // workload layer) replayed through the front door, reading the
    // serve-side latency histograms back per scenario.
    let replay_requests = if quick { 150 } else { 1000 };
    let mut replay_scenarios: Vec<(String, Value)> = Vec::new();
    for scenario in REPLAY_SCENARIOS {
        let mut spec = WorkloadSpec::preset(scenario, 42).expect("known preset");
        spec.requests = replay_requests;
        let trace = generate(&spec).expect("preset generates");
        let report = replay_trace(
            &trace,
            &ReplayOptions {
                workers: REPLAY_WORKERS,
                verify: Verify::Sample(if quick { 10 } else { 50 }),
                ..ReplayOptions::default()
            },
        )
        .expect("replay runs");
        assert!(
            report.is_clean(),
            "replay `{scenario}` violated invariants: {:?}",
            report.violations
        );
        let total = &report.stats.latency.total;
        let served = report.stats.served;
        let rps = report.submitted as f64 / report.elapsed.max(1e-9);
        let achieved = served.hits as f64 / served.completed.max(1) as f64;
        eprintln!(
            "replay_latency {scenario:<7} {:>9.0} req/s   p50 {:>9} ns   p99 {:>9} ns   max {:>9} ns   hit ratio {:.2}   coalesced {}",
            rps,
            total.quantile(0.5),
            total.quantile(0.99),
            total.max(),
            achieved,
            report.stats.coalesced
        );
        replay_scenarios.push((
            scenario.to_owned(),
            Value::Object(vec![
                ("requests_per_second".to_owned(), Value::Number(rps)),
                (
                    "p50_ns".to_owned(),
                    Value::Number(total.quantile(0.5) as f64),
                ),
                (
                    "p99_ns".to_owned(),
                    Value::Number(total.quantile(0.99) as f64),
                ),
                ("max_ns".to_owned(), Value::Number(total.max() as f64)),
                (
                    "queue_p99_ns".to_owned(),
                    Value::Number(report.stats.latency.queue.quantile(0.99) as f64),
                ),
                ("achieved_hit_ratio".to_owned(), Value::Number(achieved)),
                (
                    "coalesced".to_owned(),
                    Value::Number(report.stats.coalesced as f64),
                ),
            ]),
        ));
    }
    let mut replay_group = vec![
        (
            "description".to_owned(),
            Value::String(
                "seeded workload traces (gmcc workload gen presets, seed 42) replayed \
                 end to end through the gmc-serve front door at 4 workers, with invariant \
                 checking and sampled bitwise verification against cold solves. Latency is \
                 the serve-side enqueue->complete histogram (log-linear buckets, ~6% \
                 resolution); quantiles report the bucket upper bound. steady = 95% \
                 hit-ratio traffic over 3 structures; mixed = 50% hits over 6 structures; \
                 churn = all-miss region churn over 10 structures; storm = 90% duplicates \
                 over 2 structures (dispatcher coalescing)."
                    .into(),
            ),
        ),
        ("workers".to_owned(), Value::Number(REPLAY_WORKERS as f64)),
        (
            "requests_per_scenario".to_owned(),
            Value::Number(replay_requests as f64),
        ),
    ];
    replay_group.append(&mut replay_scenarios);

    // obs_overhead group (ISSUE 9): the fully instrumented cache-hit
    // path (timed solve + per-stage histogram records + slow-trace
    // ring offer) against the bare hit path, in the same process.
    let obs_chain = symbolic_length_chain(SERVE_CHAIN_LEN);
    let obs_base = length_bindings(SERVE_CHAIN_LEN, 1);
    let obs_scaled = length_bindings(SERVE_CHAIN_LEN, 2);
    let obs_cache = PlanCache::new(registry.clone(), InferenceMode::default());
    obs_cache.solve(&obs_chain, &obs_base).expect("computable");
    let obs_samples = if quick { 200 } else { 2000 };
    let mut flip = false;
    let bare_hit = measure(obs_samples, || {
        flip = !flip;
        let b = if flip { &obs_scaled } else { &obs_base };
        std::hint::black_box(obs_cache.solve(&obs_chain, b).expect("computable"));
    });
    let obs_registry = MetricsRegistry::new();
    let stage_hists = STAGES.map(|stage| {
        obs_registry.histogram(
            "gmc.serve.stage.latency.ns",
            "Per-stage request span duration in nanoseconds",
            &[("stage", stage)],
        )
    });
    let ring = SlowTraceRing::new(32);
    let mut trace_id = 0u64;
    let instrumented_hit = measure(obs_samples, || {
        flip = !flip;
        let b = if flip { &obs_scaled } else { &obs_base };
        let (solution, _outcome, timing) =
            obs_cache.solve_traced(&obs_chain, b).expect("computable");
        std::hint::black_box(solution);
        // The serve hot path's full instrumentation: one sample per
        // stage (synthetic queueing spans around the two measured
        // cache spans) plus a ring offer.
        let durs: [u64; STAGES.len()] = [50, 100, 80, 60, timing.lookup_ns, timing.work_ns, 120];
        for (hist, dur) in stage_hists.iter().zip(durs) {
            hist.record(dur);
        }
        let total_ns: u64 = durs.iter().sum();
        trace_id += 1;
        ring.offer_with(total_ns, || {
            let mut start_ns = 0u64;
            let spans = STAGES
                .iter()
                .zip(durs)
                .map(|(stage, dur_ns)| {
                    let span = Span {
                        stage,
                        start_ns,
                        dur_ns,
                    };
                    start_ns += dur_ns;
                    span
                })
                .collect();
            Trace {
                id: trace_id,
                label: "X".to_owned(),
                class: "hit".to_owned(),
                total_ns,
                spans,
            }
        });
    });
    let overhead_percent = (instrumented_hit / bare_hit - 1.0) * 100.0;
    eprintln!(
        "obs_overhead bare hit {:>9.2} us   instrumented hit {:>9.2} us   overhead {:+.2}% (budget 5%)",
        bare_hit * 1e6,
        instrumented_hit * 1e6,
        overhead_percent
    );
    let obs_group = vec![
        (
            "description".to_owned(),
            Value::String(
                "observability overhead on the cache-hit serving path: a bare \
                 PlanCache::solve hit vs solve_traced plus the full per-request \
                 instrumentation (7 per-stage histogram records through live \
                 MetricsRegistry handles and a slow-trace ring offer), alternating two \
                 bindings of the length-10 symbolic chain's warm region. The budget is \
                 ~5%: the instrumented path must stay within it (medians; small \
                 negative values are measurement noise)."
                    .into(),
            ),
        ),
        ("samples".to_owned(), Value::Number(obs_samples as f64)),
        (
            "bare_hit_median_seconds".to_owned(),
            Value::Number(bare_hit),
        ),
        (
            "instrumented_hit_median_seconds".to_owned(),
            Value::Number(instrumented_hit),
        ),
        (
            "overhead_percent".to_owned(),
            Value::Number(overhead_percent),
        ),
        ("budget_percent".to_owned(), Value::Number(5.0)),
    ];

    let doc = Value::Object(vec![
        (
            "benchmark".to_owned(),
            Value::String(
                "generation_time_by_length: median seconds per solve, before vs after the \
                 allocation-free hot path (both measured in this run: `before` drives the \
                 retained pre-refactor gmc::reference::solve_reference, `after` drives \
                 GmcOptimizer::solve)"
                    .into(),
            ),
        ),
        (
            "regenerate".to_owned(),
            Value::String("tools/bench_gentime.sh (see README § Performance)".into()),
        ),
        ("samples".to_owned(), Value::Number(samples as f64)),
        (
            "before".to_owned(),
            Value::Object(vec![(
                "median_seconds_by_length".to_owned(),
                Value::Object(before_medians),
            )]),
        ),
        (
            "after".to_owned(),
            Value::Object(vec![
                (
                    "median_seconds_by_length".to_owned(),
                    Value::Object(after_medians),
                ),
                (
                    "median_seconds_by_length_workspace_reuse".to_owned(),
                    Value::Object(reuse_medians),
                ),
            ]),
        ),
        ("speedup_median".to_owned(), Value::Object(speedups)),
        (
            "plan_cache".to_owned(),
            Value::Object(vec![
                (
                    "cold_symbolic_solve_median_seconds_by_length".to_owned(),
                    Value::Object(plan_cold_medians),
                ),
                (
                    "cached_instantiate_median_seconds_by_length".to_owned(),
                    Value::Object(plan_warm_medians),
                ),
                (
                    "instantiate_speedup_vs_concrete_solve".to_owned(),
                    Value::Object(plan_speedups),
                ),
                (
                    "instantiate_path".to_owned(),
                    Value::String(
                        "hits replay per-region plans with pre-materialized temporary names \
                         and recorded winner-only property inference (per candidate split), \
                         on a thread-local allocation-free workspace"
                            .into(),
                    ),
                ),
            ]),
        ),
        ("serve_throughput".to_owned(), Value::Object(serve_group)),
        ("replay_latency".to_owned(), Value::Object(replay_group)),
        ("obs_overhead".to_owned(), Value::Object(obs_group)),
    ]);
    let json = serde_json::to_string_pretty(&doc).expect("finite numbers only");
    std::fs::write(&out_path, json + "\n").expect("write bench json");
    println!("wrote {out_path}");
}
