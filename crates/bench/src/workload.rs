//! Deterministic workload synthesis for the serving tier.
//!
//! A [`WorkloadSpec`] describes *traffic shape* — a population of chain
//! structures with Zipf-distributed popularity, per-dimension-variable
//! binding distributions, an arrival process (closed-loop or open-loop
//! with bursty on-off phases) and a target hit ratio — and compiles,
//! deterministically from its seed, into a [`Trace`]: the concrete
//! request sequence with a stable on-disk JSON format
//! (`gmc-trace/1`). The same spec always produces byte-identical trace
//! JSON, so traces are replayable evidence: a latency or throughput
//! number is meaningful only together with the trace that produced it.
//!
//! The generated population deliberately includes the adversarial
//! shapes the serving tier has been bitten by: structures that are
//! *canonically identical* but use different dimension-variable names
//! (the PR 5 aliasing crash family) can be requested via
//! `alias_structures`, and `duplicate_ratio` emits exact duplicate
//! bindings to exercise dispatcher coalescing.

use gmc_expr::{Dim, DimBindings, SymChain, SymFactor, SymOperand, UnaryOp};
use gmc_plan::region_signature;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::BTreeSet;

/// The trace format tag; bump when the on-disk layout changes.
pub const TRACE_FORMAT: &str = "gmc-trace/1";

/// A binding-value distribution for one dimension variable.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BindingDist {
    /// Uniform over `lo..=hi`.
    Uniform {
        /// Smallest value (inclusive).
        lo: usize,
        /// Largest value (inclusive).
        hi: usize,
    },
    /// Log-uniform over `lo..=hi`: sizes spread evenly across orders of
    /// magnitude (most real dimension distributions are heavy-tailed).
    LogUniform {
        /// Smallest value (inclusive).
        lo: usize,
        /// Largest value (inclusive).
        hi: usize,
    },
}

impl BindingDist {
    fn validate(&self) -> Result<(), String> {
        let (lo, hi) = match self {
            BindingDist::Uniform { lo, hi } | BindingDist::LogUniform { lo, hi } => (*lo, *hi),
        };
        if lo == 0 {
            return Err("binding distribution lower bound must be positive".to_owned());
        }
        if hi < lo {
            return Err(format!(
                "binding distribution bounds inverted ({lo} > {hi})"
            ));
        }
        if hi > 1 << 40 {
            return Err("binding distribution upper bound too large (> 2^40)".to_owned());
        }
        Ok(())
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        match *self {
            BindingDist::Uniform { lo, hi } => rng.gen_range(lo..=hi),
            BindingDist::LogUniform { lo, hi } => {
                if lo == hi {
                    return lo;
                }
                let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
                let v = (rng.gen_range(llo..lhi)).exp().round() as usize;
                v.clamp(lo, hi)
            }
        }
    }
}

impl Serialize for BindingDist {
    fn to_value(&self) -> Value {
        let (dist, lo, hi) = match self {
            BindingDist::Uniform { lo, hi } => ("uniform", lo, hi),
            BindingDist::LogUniform { lo, hi } => ("loguniform", lo, hi),
        };
        Value::Object(vec![
            ("dist".to_owned(), Value::String(dist.to_owned())),
            ("lo".to_owned(), Value::Number(*lo as f64)),
            ("hi".to_owned(), Value::Number(*hi as f64)),
        ])
    }
}

impl Deserialize for BindingDist {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let dist = String::from_value(v.get_field("dist")?)?;
        let lo = usize::from_value(v.get_field("lo")?)?;
        let hi = usize::from_value(v.get_field("hi")?)?;
        match dist.as_str() {
            "uniform" => Ok(BindingDist::Uniform { lo, hi }),
            "loguniform" => Ok(BindingDist::LogUniform { lo, hi }),
            other => Err(DeError(format!("unknown binding distribution `{other}`"))),
        }
    }
}

/// The arrival process of a workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ArrivalProcess {
    /// Requests arrive as fast as the server absorbs them (all
    /// `at_us = 0`); replay applies maximum pressure.
    ClosedLoop,
    /// Poisson arrivals at a fixed mean rate; `at_us` carries the
    /// arrival offsets.
    OpenLoop {
        /// Mean arrivals per second.
        rate_per_sec: f64,
    },
    /// On-off bursts: Poisson arrivals at `rate_per_sec` during `on_ms`
    /// phases separated by silent `off_ms` gaps.
    Bursty {
        /// Mean arrivals per second while a burst is on.
        rate_per_sec: f64,
        /// Burst length in milliseconds.
        on_ms: u64,
        /// Gap between bursts in milliseconds.
        off_ms: u64,
    },
}

impl ArrivalProcess {
    fn validate(&self) -> Result<(), String> {
        match *self {
            ArrivalProcess::ClosedLoop => Ok(()),
            ArrivalProcess::OpenLoop { rate_per_sec } => {
                if rate_per_sec > 0.0 && rate_per_sec.is_finite() {
                    Ok(())
                } else {
                    Err("open-loop arrival rate must be positive and finite".to_owned())
                }
            }
            ArrivalProcess::Bursty {
                rate_per_sec,
                on_ms,
                ..
            } => {
                if !(rate_per_sec > 0.0 && rate_per_sec.is_finite()) {
                    Err("bursty arrival rate must be positive and finite".to_owned())
                } else if on_ms == 0 {
                    Err("bursty on-phase must be non-empty".to_owned())
                } else {
                    Ok(())
                }
            }
        }
    }
}

impl Serialize for ArrivalProcess {
    fn to_value(&self) -> Value {
        match *self {
            ArrivalProcess::ClosedLoop => Value::Object(vec![(
                "process".to_owned(),
                Value::String("closed".to_owned()),
            )]),
            ArrivalProcess::OpenLoop { rate_per_sec } => Value::Object(vec![
                ("process".to_owned(), Value::String("open".to_owned())),
                ("rate_per_sec".to_owned(), Value::Number(rate_per_sec)),
            ]),
            ArrivalProcess::Bursty {
                rate_per_sec,
                on_ms,
                off_ms,
            } => Value::Object(vec![
                ("process".to_owned(), Value::String("bursty".to_owned())),
                ("rate_per_sec".to_owned(), Value::Number(rate_per_sec)),
                ("on_ms".to_owned(), Value::Number(on_ms as f64)),
                ("off_ms".to_owned(), Value::Number(off_ms as f64)),
            ]),
        }
    }
}

impl Deserialize for ArrivalProcess {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let process = String::from_value(v.get_field("process")?)?;
        match process.as_str() {
            "closed" => Ok(ArrivalProcess::ClosedLoop),
            "open" => Ok(ArrivalProcess::OpenLoop {
                rate_per_sec: f64::from_value(v.get_field("rate_per_sec")?)?,
            }),
            "bursty" => Ok(ArrivalProcess::Bursty {
                rate_per_sec: f64::from_value(v.get_field("rate_per_sec")?)?,
                on_ms: u64::from_value(v.get_field("on_ms")?)?,
                off_ms: u64::from_value(v.get_field("off_ms")?)?,
            }),
            other => Err(DeError(format!("unknown arrival process `{other}`"))),
        }
    }
}

/// A seeded description of synthetic serving traffic. Compiling the
/// same spec always yields the same [`Trace`], byte for byte.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadSpec {
    /// Human-readable scenario name (carried into the trace).
    pub name: String,
    /// The RNG seed every generated byte derives from.
    pub seed: u64,
    /// Structure population size (Zipf rank 0 is the most popular).
    pub structures: usize,
    /// How many of the first structures get a *renamed twin*: same
    /// canonical structure key, different dimension-variable names —
    /// the PR 5 aliasing crash family.
    pub alias_structures: usize,
    /// Chain length bounds (factors per chain), inclusive.
    pub min_len: usize,
    /// Upper chain length bound, inclusive.
    pub max_len: usize,
    /// Zipf popularity exponent (0 = uniform; ~1 = web-like skew).
    pub zipf_s: f64,
    /// Per-dimension-variable value distributions: variable `i` of a
    /// structure draws from `bindings[i % bindings.len()]`.
    pub bindings: Vec<BindingDist>,
    /// Arrival process compiled into the per-request `at_us` offsets.
    pub arrivals: ArrivalProcess,
    /// Total requests to emit.
    pub requests: usize,
    /// Target fraction of requests that land in an already-seen size
    /// region of their structure (the cache-hit class). Best effort:
    /// the first request of a structure is always fresh.
    pub hit_ratio: f64,
    /// Fraction of warm requests that duplicate an earlier binding
    /// *exactly* (exercises dispatcher coalescing); the rest rescale an
    /// earlier binding, staying in its region with fresh sizes.
    pub duplicate_ratio: f64,
}

impl WorkloadSpec {
    /// A named preset at the given seed, or `None` for an unknown name.
    /// Presets: `steady` (hit-heavy), `mixed` (50/50), `churn`
    /// (all-miss region churn), `storm` (duplicate coalescing storm),
    /// `bursty` (open-loop on-off arrivals), `aliased`
    /// (renamed-variable twins interleaved).
    pub fn preset(name: &str, seed: u64) -> Option<WorkloadSpec> {
        let base = WorkloadSpec {
            name: name.to_owned(),
            seed,
            structures: 6,
            alias_structures: 0,
            min_len: 3,
            max_len: 6,
            zipf_s: 1.1,
            bindings: vec![
                BindingDist::LogUniform { lo: 8, hi: 2048 },
                BindingDist::Uniform { lo: 16, hi: 512 },
            ],
            arrivals: ArrivalProcess::ClosedLoop,
            requests: 400,
            hit_ratio: 0.5,
            duplicate_ratio: 0.1,
        };
        Some(match name {
            "steady" => WorkloadSpec {
                structures: 3,
                hit_ratio: 0.95,
                ..base
            },
            "mixed" => base,
            "churn" => WorkloadSpec {
                structures: 10,
                hit_ratio: 0.0,
                duplicate_ratio: 0.0,
                zipf_s: 0.0,
                ..base
            },
            "storm" => WorkloadSpec {
                structures: 2,
                hit_ratio: 0.9,
                duplicate_ratio: 0.9,
                ..base
            },
            "bursty" => WorkloadSpec {
                hit_ratio: 0.7,
                arrivals: ArrivalProcess::Bursty {
                    rate_per_sec: 20_000.0,
                    on_ms: 5,
                    off_ms: 10,
                },
                ..base
            },
            "aliased" => WorkloadSpec {
                structures: 4,
                alias_structures: 4,
                hit_ratio: 0.5,
                ..base
            },
            _ => return None,
        })
    }

    /// The preset names accepted by [`WorkloadSpec::preset`].
    pub const PRESETS: [&'static str; 6] =
        ["steady", "mixed", "churn", "storm", "bursty", "aliased"];

    fn validate(&self) -> Result<(), String> {
        if self.structures == 0 {
            return Err("workload needs at least one structure".to_owned());
        }
        if self.alias_structures > self.structures {
            return Err("alias_structures exceeds the structure count".to_owned());
        }
        if self.min_len < 2 {
            return Err("chains need at least two factors".to_owned());
        }
        if self.max_len < self.min_len {
            return Err("max_len below min_len".to_owned());
        }
        if self.max_len > 16 {
            return Err("max_len above 16 (symbolic solves get slow)".to_owned());
        }
        if self.bindings.is_empty() {
            return Err("at least one binding distribution is required".to_owned());
        }
        for b in &self.bindings {
            b.validate()?;
        }
        if !(0.0..=1.0).contains(&self.hit_ratio) || !self.hit_ratio.is_finite() {
            return Err("hit_ratio must be in [0, 1]".to_owned());
        }
        if !(0.0..=1.0).contains(&self.duplicate_ratio) || !self.duplicate_ratio.is_finite() {
            return Err("duplicate_ratio must be in [0, 1]".to_owned());
        }
        if !(self.zipf_s.is_finite() && self.zipf_s >= 0.0) {
            return Err("zipf_s must be finite and non-negative".to_owned());
        }
        self.arrivals.validate()
    }
}

impl Serialize for WorkloadSpec {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".to_owned(), Value::String(self.name.clone())),
            ("seed".to_owned(), Value::Number(self.seed as f64)),
            (
                "structures".to_owned(),
                Value::Number(self.structures as f64),
            ),
            (
                "alias_structures".to_owned(),
                Value::Number(self.alias_structures as f64),
            ),
            ("min_len".to_owned(), Value::Number(self.min_len as f64)),
            ("max_len".to_owned(), Value::Number(self.max_len as f64)),
            ("zipf_s".to_owned(), Value::Number(self.zipf_s)),
            ("bindings".to_owned(), self.bindings.to_value()),
            ("arrivals".to_owned(), self.arrivals.to_value()),
            ("requests".to_owned(), Value::Number(self.requests as f64)),
            ("hit_ratio".to_owned(), Value::Number(self.hit_ratio)),
            (
                "duplicate_ratio".to_owned(),
                Value::Number(self.duplicate_ratio),
            ),
        ])
    }
}

impl Deserialize for WorkloadSpec {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(WorkloadSpec {
            name: String::from_value(v.get_field("name")?)?,
            seed: u64::from_value(v.get_field("seed")?)?,
            structures: usize::from_value(v.get_field("structures")?)?,
            alias_structures: usize::from_value(v.get_field("alias_structures")?)?,
            min_len: usize::from_value(v.get_field("min_len")?)?,
            max_len: usize::from_value(v.get_field("max_len")?)?,
            zipf_s: f64::from_value(v.get_field("zipf_s")?)?,
            bindings: Vec::<BindingDist>::from_value(v.get_field("bindings")?)?,
            arrivals: ArrivalProcess::from_value(v.get_field("arrivals")?)?,
            requests: usize::from_value(v.get_field("requests")?)?,
            hit_ratio: f64::from_value(v.get_field("hit_ratio")?)?,
            duplicate_ratio: f64::from_value(v.get_field("duplicate_ratio")?)?,
        })
    }
}

/// One structure of a trace: a dense chain of `dims.len() - 1` factors
/// where factor `i` spans `(dims[i], dims[i+1])`, optionally stored
/// transposed (the factor's operand has the flipped shape and a `^T`).
#[derive(Clone, Debug, PartialEq)]
pub struct TraceStructure {
    /// Registration name (`S0`, `S1`, …; alias twins are `S0x`, …).
    pub name: String,
    /// Boundary dimension-variable names, length `factors + 1`. All
    /// distinct within the structure; alias twins use different names
    /// than their base (that is the point).
    pub dims: Vec<String>,
    /// Per-factor transposed-storage flags, length `dims.len() - 1`.
    pub transposed: Vec<bool>,
}

impl TraceStructure {
    /// The chain this structure registers: effective factor `i` spans
    /// `(dims[i], dims[i+1])`, stored transposed where flagged.
    pub fn chain(&self) -> Result<SymChain, String> {
        let factors: Vec<SymFactor> = (0..self.transposed.len())
            .map(|i| {
                let (rows, cols) = (Dim::var(&self.dims[i]), Dim::var(&self.dims[i + 1]));
                let name = format!("M{i}");
                if self.transposed[i] {
                    SymFactor::new(SymOperand::new(name, cols, rows), UnaryOp::Transpose)
                } else {
                    SymFactor::plain(SymOperand::new(name, rows, cols))
                }
            })
            .collect();
        SymChain::new(factors).map_err(|e| format!("structure `{}`: {e}", self.name))
    }

    /// Bindings assigning `values[i]` to `dims[i]`.
    pub fn bindings(&self, values: &[usize]) -> DimBindings {
        let mut b = DimBindings::new();
        for (name, value) in self.dims.iter().zip(values) {
            b.set(name, *value);
        }
        b
    }

    fn validate(&self) -> Result<(), String> {
        if self.dims.len() < 2 || self.transposed.len() + 1 != self.dims.len() {
            return Err(format!(
                "structure `{}`: inconsistent dims/transposed lengths",
                self.name
            ));
        }
        let distinct: BTreeSet<&String> = self.dims.iter().collect();
        if distinct.len() != self.dims.len() {
            return Err(format!(
                "structure `{}`: duplicate dimension variables",
                self.name
            ));
        }
        Ok(())
    }
}

impl Serialize for TraceStructure {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("name".to_owned(), Value::String(self.name.clone())),
            ("dims".to_owned(), self.dims.to_value()),
            ("transposed".to_owned(), self.transposed.to_value()),
        ])
    }
}

impl Deserialize for TraceStructure {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(TraceStructure {
            name: String::from_value(v.get_field("name")?)?,
            dims: Vec::<String>::from_value(v.get_field("dims")?)?,
            transposed: Vec::<bool>::from_value(v.get_field("transposed")?)?,
        })
    }
}

/// The intended class of one request, recorded at generation time
/// (replay measures the *actual* hit/miss; races can differ).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RequestClass {
    /// First visit to a size region: intended miss.
    Fresh,
    /// Rescaled earlier binding, same region: intended hit.
    Warm,
    /// Exact duplicate of an earlier binding: intended hit, and a
    /// coalescing candidate when adjacent in a dispatch window.
    Duplicate,
}

impl RequestClass {
    /// Stable wire label.
    pub fn label(&self) -> &'static str {
        match self {
            RequestClass::Fresh => "fresh",
            RequestClass::Warm => "warm",
            RequestClass::Duplicate => "duplicate",
        }
    }

    fn from_label(s: &str) -> Result<Self, DeError> {
        match s {
            "fresh" => Ok(RequestClass::Fresh),
            "warm" => Ok(RequestClass::Warm),
            "duplicate" => Ok(RequestClass::Duplicate),
            other => Err(DeError(format!("unknown request class `{other}`"))),
        }
    }
}

/// One request of a trace.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRequest {
    /// Arrival offset in microseconds from trace start (0 for
    /// closed-loop traces).
    pub at_us: u64,
    /// Index into [`Trace::structures`].
    pub structure: usize,
    /// One value per structure dimension variable, in `dims` order.
    pub values: Vec<usize>,
    /// The intended hit/miss class.
    pub class: RequestClass,
}

impl Serialize for TraceRequest {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("at_us".to_owned(), Value::Number(self.at_us as f64)),
            ("structure".to_owned(), Value::Number(self.structure as f64)),
            ("values".to_owned(), self.values.to_value()),
            (
                "class".to_owned(),
                Value::String(self.class.label().to_owned()),
            ),
        ])
    }
}

impl Deserialize for TraceRequest {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(TraceRequest {
            at_us: u64::from_value(v.get_field("at_us")?)?,
            structure: usize::from_value(v.get_field("structure")?)?,
            values: Vec::<usize>::from_value(v.get_field("values")?)?,
            class: RequestClass::from_label(&String::from_value(v.get_field("class")?)?)?,
        })
    }
}

/// A compiled, replayable traffic trace.
#[derive(Clone, Debug, PartialEq)]
pub struct Trace {
    /// The spec this trace was compiled from (including its seed).
    pub spec: WorkloadSpec,
    /// The structure population, in registration order.
    pub structures: Vec<TraceStructure>,
    /// The request sequence, in submission order, `at_us` non-
    /// decreasing.
    pub requests: Vec<TraceRequest>,
}

impl Serialize for Trace {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("format".to_owned(), Value::String(TRACE_FORMAT.to_owned())),
            ("spec".to_owned(), self.spec.to_value()),
            ("structures".to_owned(), self.structures.to_value()),
            ("requests".to_owned(), self.requests.to_value()),
        ])
    }
}

impl Deserialize for Trace {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let format = String::from_value(v.get_field("format")?)?;
        if format != TRACE_FORMAT {
            return Err(DeError(format!(
                "unsupported trace format `{format}` (expected `{TRACE_FORMAT}`)"
            )));
        }
        Ok(Trace {
            spec: WorkloadSpec::from_value(v.get_field("spec")?)?,
            structures: Vec::<TraceStructure>::from_value(v.get_field("structures")?)?,
            requests: Vec::<TraceRequest>::from_value(v.get_field("requests")?)?,
        })
    }
}

impl Trace {
    /// Serializes to the stable on-disk JSON form (pretty-printed,
    /// trailing newline). The same trace always renders the same bytes.
    pub fn to_json_string(&self) -> String {
        let mut s = serde_json::to_string_pretty(&self.to_value()).expect("trace values finite");
        s.push('\n');
        s
    }

    /// Parses and validates a trace from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed or inconsistent
    /// part (bad JSON, unknown format tag, out-of-range structure
    /// indices, wrong value counts).
    pub fn from_json_str(s: &str) -> Result<Trace, String> {
        let value: Value = serde_json::from_str(s).map_err(|e| format!("trace JSON: {e}"))?;
        let trace = Trace::from_value(&value).map_err(|e| format!("trace JSON: {e}"))?;
        trace.validate()?;
        Ok(trace)
    }

    /// Structural validation: every request references a structure and
    /// carries exactly one value per dimension variable; arrivals are
    /// non-decreasing.
    pub fn validate(&self) -> Result<(), String> {
        if self.structures.is_empty() {
            return Err("trace has no structures".to_owned());
        }
        for s in &self.structures {
            s.validate()?;
        }
        let mut last_at = 0u64;
        for (i, r) in self.requests.iter().enumerate() {
            let s = self.structures.get(r.structure).ok_or_else(|| {
                format!("request {i}: structure index {} out of range", r.structure)
            })?;
            if r.values.len() != s.dims.len() {
                return Err(format!(
                    "request {i}: {} values for {} dims of `{}`",
                    r.values.len(),
                    s.dims.len(),
                    s.name
                ));
            }
            if r.values.contains(&0) {
                return Err(format!("request {i}: zero dimension value"));
            }
            if r.at_us < last_at {
                return Err(format!("request {i}: arrival offsets decrease"));
            }
            last_at = r.at_us;
        }
        Ok(())
    }

    /// A deterministic human-readable summary (structure population,
    /// popularity counts, class mix, arrival shape).
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let spec = &self.spec;
        writeln!(
            out,
            "trace `{}` (seed {}): {} structures, {} requests",
            spec.name,
            spec.seed,
            self.structures.len(),
            self.requests.len()
        )
        .expect("string write");
        writeln!(
            out,
            "arrivals: {:?}; target hit ratio {:.2}, duplicate ratio {:.2}, zipf_s {:.2}",
            spec.arrivals, spec.hit_ratio, spec.duplicate_ratio, spec.zipf_s
        )
        .expect("string write");
        let mut popularity = vec![0usize; self.structures.len()];
        let (mut fresh, mut warm, mut dup) = (0usize, 0usize, 0usize);
        for r in &self.requests {
            popularity[r.structure] += 1;
            match r.class {
                RequestClass::Fresh => fresh += 1,
                RequestClass::Warm => warm += 1,
                RequestClass::Duplicate => dup += 1,
            }
        }
        writeln!(out, "classes: {fresh} fresh, {warm} warm, {dup} duplicate")
            .expect("string write");
        for (s, count) in self.structures.iter().zip(&popularity) {
            writeln!(
                out,
                "  {:<6} {} factors, dims [{}]{}: {count} requests",
                s.name,
                s.transposed.len(),
                s.dims.join(", "),
                if s.transposed.iter().any(|&t| t) {
                    " (some transposed)"
                } else {
                    ""
                }
            )
            .expect("string write");
        }
        if let Some(last) = self.requests.last() {
            if last.at_us > 0 {
                writeln!(out, "span: {} us", last.at_us).expect("string write");
            }
        }
        out
    }
}

/// Compiles `spec` into its trace. Deterministic: the same spec (same
/// seed included) always returns the same trace.
///
/// # Errors
///
/// Returns a description of the first invalid spec field, or a
/// structure that fails chain validation.
pub fn generate(spec: &WorkloadSpec) -> Result<Trace, String> {
    spec.validate()?;
    let mut rng = StdRng::seed_from_u64(spec.seed);

    // Structure population. Alias twins (same lengths/transposes,
    // different variable names) share a *canonical* structure key in
    // the plan cache; `canon[i]` groups them for region bookkeeping.
    let mut structures: Vec<TraceStructure> = Vec::new();
    let mut canon: Vec<usize> = Vec::new();
    for s in 0..spec.structures {
        let len = rng.gen_range(spec.min_len..=spec.max_len);
        let transposed: Vec<bool> = (0..len).map(|_| rng.gen_bool(0.25)).collect();
        let dims: Vec<String> = (0..=len).map(|i| format!("w{s}d{i}")).collect();
        canon.push(structures.len());
        structures.push(TraceStructure {
            name: format!("S{s}"),
            dims,
            transposed,
        });
    }
    for s in 0..spec.alias_structures {
        let base = structures[s].clone();
        canon.push(s);
        structures.push(TraceStructure {
            name: format!("S{s}x"),
            dims: (0..base.dims.len()).map(|i| format!("w{s}xd{i}")).collect(),
            transposed: base.transposed,
        });
    }
    // Validate every structure compiles into a chain once, up front.
    let chains: Vec<SymChain> = structures
        .iter()
        .map(TraceStructure::chain)
        .collect::<Result<_, _>>()?;

    // Zipf popularity over the population (rank = index).
    let weights: Vec<f64> = (0..structures.len())
        .map(|k| 1.0 / ((k + 1) as f64).powf(spec.zipf_s))
        .collect();
    let total_weight: f64 = weights.iter().sum();
    let mut cumulative = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w / total_weight;
        cumulative.push(acc);
    }
    let pick_structure = |rng: &mut StdRng| -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        cumulative
            .iter()
            .position(|&c| u < c)
            .unwrap_or(structures.len() - 1)
    };

    // Region bookkeeping per canonical group: seen signatures, and the
    // base (unscaled) value vectors already emitted per structure.
    let mut seen_regions: Vec<BTreeSet<Vec<i8>>> = vec![BTreeSet::new(); structures.len()];
    let mut history: Vec<Vec<Vec<usize>>> = vec![Vec::new(); structures.len()];
    let mut emitted: Vec<BTreeSet<Vec<usize>>> = vec![BTreeSet::new(); structures.len()];

    // Arrival clock.
    let mut clock_us = 0u64;
    let mut arrive = |rng: &mut StdRng| -> u64 {
        match spec.arrivals {
            ArrivalProcess::ClosedLoop => 0,
            ArrivalProcess::OpenLoop { rate_per_sec } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let gap_us = (-u.ln() / rate_per_sec * 1e6).round() as u64;
                clock_us += gap_us;
                clock_us
            }
            ArrivalProcess::Bursty {
                rate_per_sec,
                on_ms,
                off_ms,
            } => {
                let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                let gap_us = (-u.ln() / rate_per_sec * 1e6).round() as u64;
                clock_us += gap_us;
                // Fold the clock into on/off phases: arrivals landing
                // in an off window are pushed to the next on phase.
                let (on_us, period_us) = (on_ms * 1000, (on_ms + off_ms) * 1000);
                let into = clock_us % period_us;
                if into >= on_us {
                    clock_us += period_us - into;
                }
                clock_us
            }
        }
    };

    let mut requests: Vec<TraceRequest> = Vec::with_capacity(spec.requests);
    for _ in 0..spec.requests {
        let sidx = pick_structure(&mut rng);
        let group = canon[sidx];
        let structure = &structures[sidx];
        let chain = &chains[sidx];
        let warm_wanted = rng.gen_bool(spec.hit_ratio) && !history[group].is_empty();
        let (values, class) = if warm_wanted {
            let entry = &history[group][rng.gen_range(0..history[group].len())];
            // Alias twins share a canonical group, so a warm request
            // for the twin reuses the *base* value vector — same
            // region under the canonical key, bound through the twin's
            // own variable names (the PR 5 regression shape).
            if rng.gen_bool(spec.duplicate_ratio) {
                (entry.clone(), RequestClass::Duplicate)
            } else {
                // Rescale into the same region with fresh sizes. Retry
                // scales until the scaled vector is new for this
                // structure (exact repeats are the Duplicate class).
                let mut scale = rng.gen_range(2usize..=6);
                let mut scaled: Vec<usize>;
                loop {
                    scaled = entry.iter().map(|&v| v * scale).collect();
                    if emitted[sidx].insert(scaled.clone()) {
                        break;
                    }
                    scale += 1;
                }
                (scaled, RequestClass::Warm)
            }
        } else {
            // Fresh draw; steer toward an unseen region of the
            // canonical group (best effort, bounded retries).
            let mut values: Vec<usize> = Vec::new();
            let mut is_fresh = false;
            for _ in 0..8 {
                values = (0..structure.dims.len())
                    .map(|i| spec.bindings[i % spec.bindings.len()].sample(&mut rng))
                    .collect();
                let sizes = chain
                    .bind_dims(&structure.bindings(&values))
                    .map_err(|e| format!("structure `{}`: {e}", structure.name))?;
                if seen_regions[group].insert(region_signature(&sizes)) {
                    is_fresh = true;
                    break;
                }
            }
            emitted[sidx].insert(values.clone());
            history[group].push(values.clone());
            let class = if is_fresh {
                RequestClass::Fresh
            } else {
                // Every nearby region is already seen: an intended
                // warm request in practice.
                RequestClass::Warm
            };
            (values, class)
        };
        requests.push(TraceRequest {
            at_us: arrive(&mut rng),
            structure: sidx,
            values,
            class,
        });
    }

    let trace = Trace {
        spec: spec.clone(),
        structures,
        requests,
    };
    trace.validate()?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_generate_and_round_trip() {
        for preset in WorkloadSpec::PRESETS {
            let mut spec = WorkloadSpec::preset(preset, 42).unwrap();
            spec.requests = 60;
            let trace = generate(&spec).unwrap();
            assert_eq!(trace.requests.len(), 60, "{preset}");
            let json = trace.to_json_string();
            let back = Trace::from_json_str(&json).unwrap();
            assert_eq!(back, trace, "{preset}");
            assert_eq!(back.to_json_string(), json, "{preset}");
            // Regeneration from the same spec is byte-identical.
            assert_eq!(generate(&spec).unwrap().to_json_string(), json, "{preset}");
        }
        assert!(WorkloadSpec::preset("nope", 1).is_none());
    }

    #[test]
    fn aliased_preset_has_renamed_twins() {
        let mut spec = WorkloadSpec::preset("aliased", 7).unwrap();
        spec.requests = 40;
        let trace = generate(&spec).unwrap();
        assert_eq!(trace.structures.len(), 8);
        let base = &trace.structures[0];
        let twin = &trace.structures[4];
        assert_eq!(twin.name, format!("{}x", base.name));
        assert_eq!(twin.transposed, base.transposed);
        assert_ne!(twin.dims, base.dims, "twin must rename its variables");
        // Both sides of at least one alias pair get traffic.
        assert!(
            trace.requests.iter().any(|r| r.structure >= 4),
            "aliased preset should hit a twin"
        );
    }

    #[test]
    fn churn_preset_is_all_fresh() {
        let mut spec = WorkloadSpec::preset("churn", 3).unwrap();
        spec.requests = 50;
        let trace = generate(&spec).unwrap();
        assert!(trace
            .requests
            .iter()
            .all(|r| r.class == RequestClass::Fresh || r.class == RequestClass::Warm));
        let fresh = trace
            .requests
            .iter()
            .filter(|r| r.class == RequestClass::Fresh)
            .count();
        assert!(fresh * 10 >= trace.requests.len() * 8, "{fresh} fresh");
    }

    #[test]
    fn bursty_arrivals_are_monotone_with_gaps() {
        let mut spec = WorkloadSpec::preset("bursty", 11).unwrap();
        spec.requests = 80;
        let trace = generate(&spec).unwrap();
        let arrivals: Vec<u64> = trace.requests.iter().map(|r| r.at_us).collect();
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
        assert!(arrivals.last().copied().unwrap_or(0) > 0);
    }

    #[test]
    fn bad_specs_are_rejected() {
        let good = WorkloadSpec::preset("mixed", 1).unwrap();
        for breaker in [
            |s: &mut WorkloadSpec| s.structures = 0,
            |s: &mut WorkloadSpec| s.min_len = 1,
            |s: &mut WorkloadSpec| s.max_len = 1,
            |s: &mut WorkloadSpec| s.hit_ratio = 1.5,
            |s: &mut WorkloadSpec| s.bindings.clear(),
            |s: &mut WorkloadSpec| s.alias_structures = 99,
            |s: &mut WorkloadSpec| {
                s.bindings = vec![BindingDist::Uniform { lo: 0, hi: 5 }];
            },
        ] {
            let mut spec = good.clone();
            breaker(&mut spec);
            assert!(generate(&spec).is_err());
        }
    }

    #[test]
    fn describe_is_deterministic_and_informative() {
        let mut spec = WorkloadSpec::preset("mixed", 5).unwrap();
        spec.requests = 30;
        let trace = generate(&spec).unwrap();
        let d = trace.describe();
        assert_eq!(d, trace.describe());
        assert!(d.contains("30 requests"), "{d}");
        assert!(d.contains("S0"), "{d}");
    }
}
