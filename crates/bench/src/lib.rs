//! Shared helpers for the Criterion benches regenerating the paper's
//! evaluation. The benches live in `benches/`; see EXPERIMENTS.md for
//! the mapping from paper figures/tables to bench targets.

#![forbid(unsafe_code)]

use gmc_experiments::generator::{random_chains, GeneratorConfig};
use gmc_expr::{Chain, Factor, Operand};

/// The dense chain measured by `generation_time_by_length/<n>` — shared
/// by the Criterion bench and the `gentime_json` bin so
/// `BENCH_gentime.json` always tracks exactly the chains the bench
/// reports.
pub fn length_chain(n: usize) -> Chain {
    let ops: Vec<Operand> = (0..n)
        .map(|i| Operand::matrix(format!("M{i}"), 100 + 50 * i, 100 + 50 * (i + 1)))
        .collect();
    Chain::new(ops.into_iter().map(Factor::plain).collect()).expect("dense chain is well-formed")
}

/// A small, deterministic set of representative test chains at
/// bench-friendly sizes.
pub fn bench_chains(count: usize) -> Vec<Chain> {
    let config = GeneratorConfig {
        size_min: 50,
        size_max: 150,
        size_step: 50,
        ..GeneratorConfig::default()
    };
    random_chains(&config, count, 0xBEEF)
}

/// Paper-scale chains (sizes up to 2000) for generation-time benches —
/// the optimizer's cost is size-independent, so these are cheap to
/// *optimize* even though they would be slow to execute.
pub fn paper_scale_chains(count: usize) -> Vec<Chain> {
    random_chains(&GeneratorConfig::default(), count, 0xBEEF)
}
