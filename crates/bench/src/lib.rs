//! Shared helpers for the Criterion benches regenerating the paper's
//! evaluation. The benches live in `benches/`; see EXPERIMENTS.md for
//! the mapping from paper figures/tables to bench targets.

#![forbid(unsafe_code)]

pub mod replay;
pub mod workload;

use gmc_experiments::generator::{random_chains, GeneratorConfig};
use gmc_expr::{Chain, Dim, DimBindings, Factor, Operand, SymChain, SymFactor, SymOperand};

/// The dense chain measured by `generation_time_by_length/<n>` — shared
/// by the Criterion bench and the `gentime_json` bin so
/// `BENCH_gentime.json` always tracks exactly the chains the bench
/// reports.
pub fn length_chain(n: usize) -> Chain {
    let ops: Vec<Operand> = (0..n)
        .map(|i| Operand::matrix(format!("M{i}"), 100 + 50 * i, 100 + 50 * (i + 1)))
        .collect();
    Chain::new(ops.into_iter().map(Factor::plain).collect()).expect("dense chain is well-formed")
}

/// The symbolic counterpart of [`length_chain`]: every boundary
/// dimension is a distinct variable `d0..dn`. [`length_bindings`] with
/// `scale = 1` reproduces exactly the sizes of `length_chain(n)`, and
/// any positive `scale` stays in the same size region (the dimensions
/// remain strictly increasing), so scaled bindings exercise the plan
/// cache's instantiate path.
pub fn symbolic_length_chain(n: usize) -> SymChain {
    let factors: Vec<SymFactor> = (0..n)
        .map(|i| {
            SymFactor::plain(SymOperand::new(
                format!("M{i}"),
                Dim::var(&format!("d{i}")),
                Dim::var(&format!("d{}", i + 1)),
            ))
        })
        .collect();
    SymChain::new(factors).expect("dense chain is well-formed")
}

/// Bindings for [`symbolic_length_chain`]: `d<i> = scale · (100 + 50·i)`.
pub fn length_bindings(n: usize, scale: usize) -> DimBindings {
    let mut b = DimBindings::new();
    for i in 0..=n {
        b.set(&format!("d{i}"), scale * (100 + 50 * i));
    }
    b
}

/// A small, deterministic set of representative test chains at
/// bench-friendly sizes.
pub fn bench_chains(count: usize) -> Vec<Chain> {
    let config = GeneratorConfig {
        size_min: 50,
        size_max: 150,
        size_step: 50,
        ..GeneratorConfig::default()
    };
    random_chains(&config, count, 0xBEEF)
}

/// Paper-scale chains (sizes up to 2000) for generation-time benches —
/// the optimizer's cost is size-independent, so these are cheap to
/// *optimize* even though they would be slow to execute.
pub fn paper_scale_chains(count: usize) -> Vec<Chain> {
    random_chains(&GeneratorConfig::default(), count, 0xBEEF)
}
