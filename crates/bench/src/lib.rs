//! Shared helpers for the Criterion benches regenerating the paper's
//! evaluation. The benches live in `benches/`; see EXPERIMENTS.md for
//! the mapping from paper figures/tables to bench targets.

#![forbid(unsafe_code)]

use gmc_experiments::generator::{random_chains, GeneratorConfig};
use gmc_expr::Chain;

/// A small, deterministic set of representative test chains at
/// bench-friendly sizes.
pub fn bench_chains(count: usize) -> Vec<Chain> {
    let config = GeneratorConfig {
        size_min: 50,
        size_max: 150,
        size_step: 50,
        ..GeneratorConfig::default()
    };
    random_chains(&config, count, 0xBEEF)
}

/// Paper-scale chains (sizes up to 2000) for generation-time benches —
/// the optimizer's cost is size-independent, so these are cheap to
/// *optimize* even though they would be slow to execute.
pub fn paper_scale_chains(count: usize) -> Vec<Chain> {
    random_chains(&GeneratorConfig::default(), count, 0xBEEF)
}
