//! Trace replay against a live serving front door, with invariant
//! checking and bitwise result verification.
//!
//! [`replay_trace`] builds a fresh [`Server`], registers the trace's
//! structure population, drives the request sequence through
//! [`ServeHandle`] submission (respecting the recorded arrival offsets
//! when asked, or closed-loop windows otherwise), and returns every
//! per-request result next to the server's counter and latency
//! snapshot. After the run it checks the accounting invariants the
//! serving tier promises — every submitted request is answered exactly
//! once, the consistent served counters balance, the latency
//! histograms saw exactly one sample per completed request — and, when
//! verification is on, replays each distinct `(structure, bindings)`
//! pair through a cold [`GmcOptimizer`] solve and demands the served
//! answer be *bit-identical* (cost bits, parenthesization, kernel
//! sequence). Violations are collected, not panicked, so soak tests
//! and the CLI can report all of them.

use crate::workload::Trace;
use gmc::{FlopCount, GmcOptimizer, InferenceMode};
use gmc_expr::DimBindings;
use gmc_kernels::KernelRegistry;
use gmc_serve::{ServeConfig, ServeReply, Server, ServerStats, Ticket};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How much of the replay to verify against cold reference solves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verify {
    /// No reference solves.
    None,
    /// Verify up to this many distinct `(structure, bindings)` pairs
    /// (the first ones encountered, deterministically).
    Sample(usize),
    /// Verify every distinct pair.
    All,
}

/// Replay configuration.
#[derive(Clone, Copy, Debug)]
pub struct ReplayOptions {
    /// Worker threads of the replayed-into server.
    pub workers: usize,
    /// Inference mode of the server's plan cache (and the reference
    /// solves).
    pub inference: InferenceMode,
    /// Reference-solve verification depth.
    pub verify: Verify,
    /// Honor the trace's `at_us` arrival offsets (sleeps between
    /// submissions). Off = submit as fast as the mode allows.
    pub honor_timing: bool,
    /// Closed-loop submission window: submit this many requests as one
    /// batch, wait for all replies, then continue. `0` means submit
    /// the whole trace as a single batch — the maximum-coalescing
    /// storm shape. Ignored when `honor_timing` is set.
    pub window: usize,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            workers: 4,
            inference: InferenceMode::default(),
            verify: Verify::None,
            honor_timing: false,
            window: 64,
        }
    }
}

/// One replayed request's served answer, in trace order.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestResult {
    /// The structure the request addressed.
    pub structure: String,
    /// Served cost (FLOPs); 0.0 on error.
    pub cost: f64,
    /// Served FLOP count; 0.0 on error.
    pub flops: f64,
    /// The chosen parenthesization ("" on error).
    pub parenthesization: String,
    /// Kernel names in execution order (empty on error).
    pub kernels: Vec<String>,
    /// The serve error, if the request failed.
    pub error: Option<String>,
}

impl RequestResult {
    fn from_reply(reply: &ServeReply) -> RequestResult {
        match &reply.result {
            Ok(served) => RequestResult {
                structure: reply.structure.clone(),
                cost: served.cost,
                flops: served.flops,
                parenthesization: served.parenthesization.clone(),
                kernels: served.kernels.clone(),
                error: None,
            },
            Err(e) => RequestResult {
                structure: reply.structure.clone(),
                cost: 0.0,
                flops: 0.0,
                parenthesization: String::new(),
                kernels: Vec::new(),
                error: Some(e.to_string()),
            },
        }
    }
}

/// The full outcome of one replay run.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Per-request results, exactly one per trace request, in order.
    pub results: Vec<RequestResult>,
    /// The server's counters and latency snapshot after the run.
    pub stats: ServerStats,
    /// Wall-clock seconds from first submission to last reply.
    pub elapsed: f64,
    /// Requests submitted (== trace length).
    pub submitted: usize,
    /// Distinct `(structure, bindings)` pairs verified against cold
    /// reference solves.
    pub verified: usize,
    /// Invariant and verification failures (empty on a clean run).
    pub violations: Vec<String>,
}

impl ReplayReport {
    /// Whether the run upheld every invariant (and verification).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Replays `trace` against a fresh server; see the module docs.
///
/// # Errors
///
/// Returns an error when the trace itself is unusable (invalid
/// structure, registration failure). Serving-layer failures and
/// invariant violations are *reported* in the returned
/// [`ReplayReport::violations`] instead, so callers see all of them.
pub fn replay_trace(trace: &Trace, opts: &ReplayOptions) -> Result<ReplayReport, String> {
    trace.validate()?;
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let server = Server::start(
        registry.clone(),
        ServeConfig {
            workers: opts.workers.max(1),
            inference: opts.inference,
            ..ServeConfig::default()
        },
    );
    let chains: Vec<_> = trace
        .structures
        .iter()
        .map(|s| s.chain())
        .collect::<Result<Vec<_>, _>>()?;
    for (s, chain) in trace.structures.iter().zip(&chains) {
        server
            .register(&s.name, chain.clone())
            .map_err(|e| format!("register `{}`: {e}", s.name))?;
    }
    let handle = server.handle();

    // Submit the trace and collect replies in trace order.
    let request_of = |i: usize| -> (String, DimBindings) {
        let r = &trace.requests[i];
        let s = &trace.structures[r.structure];
        (s.name.clone(), s.bindings(&r.values))
    };
    let start = Instant::now();
    let mut replies: Vec<ServeReply> = Vec::with_capacity(trace.requests.len());
    if opts.honor_timing {
        let mut tickets: Vec<Ticket> = Vec::with_capacity(trace.requests.len());
        for (i, r) in trace.requests.iter().enumerate() {
            let due = Duration::from_micros(r.at_us);
            let now = start.elapsed();
            if due > now {
                std::thread::sleep(due - now);
            }
            let (name, bindings) = request_of(i);
            tickets.push(handle.submit(&name, bindings));
        }
        replies.extend(tickets.into_iter().map(Ticket::wait));
    } else {
        let window = if opts.window == 0 {
            trace.requests.len().max(1)
        } else {
            opts.window
        };
        let mut next = 0usize;
        while next < trace.requests.len() {
            let end = (next + window).min(trace.requests.len());
            let batch: Vec<(String, DimBindings)> = (next..end).map(request_of).collect();
            let tickets = handle.submit_batch(batch);
            replies.extend(tickets.into_iter().map(Ticket::wait));
            next = end;
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = server.stats();
    server.shutdown();

    let results: Vec<RequestResult> = replies.iter().map(RequestResult::from_reply).collect();
    let mut violations = Vec::new();

    // Accounting invariants: every request is answered exactly once
    // and the consistent served counters balance with the histograms.
    let submitted = trace.requests.len();
    if results.len() != submitted {
        violations.push(format!(
            "replies ({}) != submitted requests ({submitted})",
            results.len()
        ));
    }
    let served = stats.served;
    if served.completed + served.rejected != submitted as u64 {
        violations.push(format!(
            "completed ({}) + rejected ({}) != submitted ({submitted})",
            served.completed, served.rejected
        ));
    }
    if served.hits + served.misses + served.failed != served.completed {
        violations.push(format!(
            "hits ({}) + misses ({}) + failed ({}) != completed ({})",
            served.hits, served.misses, served.failed, served.completed
        ));
    }
    if stats.latency.total.count() != served.completed {
        violations.push(format!(
            "total latency samples ({}) != completed ({})",
            stats.latency.total.count(),
            served.completed
        ));
    }
    if stats.latency.queue.count() != served.completed {
        violations.push(format!(
            "queue latency samples ({}) != completed ({})",
            stats.latency.queue.count(),
            served.completed
        ));
    }
    // Class histograms record only successful solves: exactly one
    // sample per hit or miss, none for failures.
    let class_total: u64 = stats
        .latency
        .classes
        .iter()
        .map(|c| c.snapshot.count())
        .sum();
    if class_total != served.hits + served.misses {
        violations.push(format!(
            "class latency samples ({class_total}) != hits ({}) + misses ({})",
            served.hits, served.misses
        ));
    }
    // The serve layer never duplicates a recording: cache instantiates
    // cannot exceed completions.
    if stats.cache.requests() > served.completed {
        violations.push(format!(
            "cache instantiates ({}) exceed completed requests ({})",
            stats.cache.requests(),
            served.completed
        ));
    }

    // Identical requests must be answered identically, replay-wide —
    // coalesced or not, raced or not.
    let mut first_answer: HashMap<(usize, &[usize]), usize> = HashMap::new();
    for (i, r) in trace.requests.iter().enumerate() {
        if i >= results.len() {
            break;
        }
        match first_answer.entry((r.structure, r.values.as_slice())) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(i);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                let first = &results[*e.get()];
                let this = &results[i];
                if !bitwise_eq(first, this) {
                    violations.push(format!(
                        "request {i} answered differently from identical request {}: \
                         {:?} vs {:?}",
                        e.get(),
                        this,
                        first
                    ));
                }
            }
        }
    }

    // Bitwise verification against cold reference solves.
    let budget = match opts.verify {
        Verify::None => 0,
        Verify::Sample(n) => n,
        Verify::All => usize::MAX,
    };
    let mut verified = 0usize;
    if budget > 0 {
        let gmc = GmcOptimizer::new(&registry, FlopCount).with_inference(opts.inference);
        let mut seen: HashMap<(usize, &[usize]), ()> = HashMap::new();
        for (i, r) in trace.requests.iter().enumerate() {
            if verified >= budget || i >= results.len() {
                break;
            }
            if seen
                .insert((r.structure, r.values.as_slice()), ())
                .is_some()
            {
                continue;
            }
            let s = &trace.structures[r.structure];
            let bound = match chains[r.structure].bind(&s.bindings(&r.values)) {
                Ok(chain) => chain,
                Err(e) => {
                    // The server must have rejected it too.
                    if results[i].error.is_none() {
                        violations.push(format!(
                            "request {i}: unbindable for reference ({e}) but served OK"
                        ));
                    }
                    verified += 1;
                    continue;
                }
            };
            match gmc.solve(&bound) {
                Ok(reference) => {
                    let got = &results[i];
                    if let Some(err) = &got.error {
                        violations.push(format!(
                            "request {i} (`{}`): reference solved but serve failed: {err}",
                            s.name
                        ));
                    } else if got.cost.to_bits() != reference.cost().to_bits()
                        || got.flops.to_bits() != reference.flops().to_bits()
                        || got.parenthesization != reference.parenthesization()
                        || got.kernels != reference.kernel_names()
                    {
                        violations.push(format!(
                            "request {i} (`{}`): served answer differs from cold solve: \
                             served ({}, {:?}) vs reference ({}, {:?})",
                            s.name,
                            got.parenthesization,
                            got.kernels,
                            reference.parenthesization(),
                            reference.kernel_names()
                        ));
                    }
                }
                Err(e) => {
                    if results[i].error.is_none() {
                        violations.push(format!(
                            "request {i} (`{}`): reference solve failed ({e}) but serve \
                             answered OK",
                            s.name
                        ));
                    }
                }
            }
            verified += 1;
        }
    }

    Ok(ReplayReport {
        results,
        stats,
        elapsed,
        submitted,
        verified,
        violations,
    })
}

fn bitwise_eq(a: &RequestResult, b: &RequestResult) -> bool {
    a.structure == b.structure
        && a.cost.to_bits() == b.cost.to_bits()
        && a.flops.to_bits() == b.flops.to_bits()
        && a.parenthesization == b.parenthesization
        && a.kernels == b.kernels
        && a.error == b.error
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, WorkloadSpec};

    #[test]
    fn mixed_replay_is_clean_and_verified() {
        let mut spec = WorkloadSpec::preset("mixed", 9).unwrap();
        spec.requests = 40;
        let trace = generate(&spec).unwrap();
        let report = replay_trace(
            &trace,
            &ReplayOptions {
                workers: 2,
                verify: Verify::All,
                ..ReplayOptions::default()
            },
        )
        .unwrap();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.results.len(), 40);
        assert!(report.verified > 0);
        assert_eq!(report.stats.served.completed, 40);
        assert!(report.results.iter().all(|r| r.error.is_none()));
    }

    #[test]
    fn storm_replay_coalesces_single_batch() {
        let mut spec = WorkloadSpec::preset("storm", 4).unwrap();
        spec.requests = 60;
        let trace = generate(&spec).unwrap();
        let report = replay_trace(
            &trace,
            &ReplayOptions {
                workers: 4,
                window: 0,
                verify: Verify::Sample(10),
                ..ReplayOptions::default()
            },
        )
        .unwrap();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(
            report.stats.coalesced > 0,
            "single-batch storm should coalesce duplicates"
        );
    }

    #[test]
    fn replay_is_deterministic_in_results() {
        let mut spec = WorkloadSpec::preset("aliased", 21).unwrap();
        spec.requests = 30;
        let trace = generate(&spec).unwrap();
        let opts = ReplayOptions {
            workers: 3,
            ..ReplayOptions::default()
        };
        let a = replay_trace(&trace, &opts).unwrap();
        let b = replay_trace(&trace, &opts).unwrap();
        assert!(a.is_clean(), "violations: {:?}", a.violations);
        assert!(b.is_clean(), "violations: {:?}", b.violations);
        // Hit/miss outcomes race across runs; the *answers* must not.
        assert_eq!(a.results, b.results);
    }
}
