//! Trace replay against a live serving front door, with invariant
//! checking, bitwise result verification, and deterministic chaos.
//!
//! [`replay_trace`] builds a fresh [`Server`], registers the trace's
//! structure population, drives the request sequence through
//! [`ServeHandle`] submission (respecting the recorded arrival offsets
//! when asked, or closed-loop windows otherwise), and returns every
//! per-request result next to the server's counter and latency
//! snapshot. After the run it checks the accounting invariants the
//! serving tier promises — every submitted request is answered exactly
//! once, the consistent served counters balance, the latency
//! histograms saw exactly one sample per completed request — and, when
//! verification is on, replays each distinct `(structure, bindings)`
//! pair through a cold [`GmcOptimizer`] solve and demands the served
//! answer be *bit-identical* (cost bits, parenthesization, kernel
//! sequence). Violations are collected, not panicked, so soak tests
//! and the CLI can report all of them.
//!
//! With [`ReplayOptions::faults`] set, the harness injects the plan's
//! faults at their request indices: worker panics and kills become
//! [`gmc_serve::SolveFault`]s, `Expire` entries submit with an
//! already-expired deadline, `Drop` entries abandon their ticket (the
//! server must survive replying into a dead channel), and `Burst`
//! entries override the window so `size` requests hit admission as one
//! batch. Ordinary windows are clamped to the admission capacity in
//! that mode, so queue-full shedding happens exactly at the bursts.

use crate::workload::Trace;
use gmc::{FlopCount, GmcOptimizer, InferenceMode};
use gmc_expr::DimBindings;
use gmc_kernels::KernelRegistry;
use gmc_serve::faults::{silence_injected_panics, FaultKind, FaultPlan};
use gmc_serve::{RequestOptions, ServeConfig, ServeReply, Server, ServerStats, Ticket};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How much of the replay to verify against cold reference solves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Verify {
    /// No reference solves.
    None,
    /// Verify up to this many distinct `(structure, bindings)` pairs
    /// (the first ones encountered, deterministically).
    Sample(usize),
    /// Verify every distinct pair.
    All,
}

/// Replay configuration.
#[derive(Clone, Debug)]
pub struct ReplayOptions {
    /// Worker threads of the replayed-into server.
    pub workers: usize,
    /// Inference mode of the server's plan cache (and the reference
    /// solves).
    pub inference: InferenceMode,
    /// Reference-solve verification depth.
    pub verify: Verify,
    /// Honor the trace's `at_us` arrival offsets (sleeps between
    /// submissions). Off = submit as fast as the mode allows.
    pub honor_timing: bool,
    /// Closed-loop submission window: submit this many requests as one
    /// batch, wait for all replies, then continue. `0` means submit
    /// the whole trace as a single batch — the maximum-coalescing
    /// storm shape. Ignored when `honor_timing` is set.
    pub window: usize,
    /// Admission capacity for the replayed-into server. `None` takes
    /// the fault plan's capacity if one is set, else the server
    /// default.
    pub queue_capacity: Option<usize>,
    /// Deterministic fault schedule to inject (see
    /// [`gmc_serve::faults`]).
    pub faults: Option<FaultPlan>,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            workers: 4,
            inference: InferenceMode::default(),
            verify: Verify::None,
            honor_timing: false,
            window: 64,
            queue_capacity: None,
            faults: None,
        }
    }
}

/// Reply codes produced by shedding or injected faults rather than by
/// solving; requests answered with one of these are exempt from
/// bitwise verification and identical-answer comparison.
const SHED_CODES: [&str; 5] = [
    "queue_full",
    "deadline_exceeded",
    "internal",
    "dropped",
    "closed",
];

/// One replayed request's served answer, in trace order.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestResult {
    /// The structure the request addressed.
    pub structure: String,
    /// Served cost (FLOPs); 0.0 on error.
    pub cost: f64,
    /// Served FLOP count; 0.0 on error.
    pub flops: f64,
    /// The chosen parenthesization ("" on error).
    pub parenthesization: String,
    /// Kernel names in execution order (empty on error).
    pub kernels: Vec<String>,
    /// The serve error, if the request failed.
    pub error: Option<String>,
    /// The error's stable wire code (`ServeError::code`), or
    /// `"dropped"` for a reply abandoned by an injected connection
    /// drop; `None` on success.
    pub code: Option<String>,
}

impl RequestResult {
    fn from_reply(reply: &ServeReply) -> RequestResult {
        match &reply.result {
            Ok(served) => RequestResult {
                structure: reply.structure.clone(),
                cost: served.cost,
                flops: served.flops,
                parenthesization: served.parenthesization.clone(),
                kernels: served.kernels.clone(),
                error: None,
                code: None,
            },
            Err(e) => RequestResult {
                structure: reply.structure.clone(),
                cost: 0.0,
                flops: 0.0,
                parenthesization: String::new(),
                kernels: Vec::new(),
                error: Some(e.to_string()),
                code: Some(e.code().to_owned()),
            },
        }
    }

    fn abandoned(structure: String) -> RequestResult {
        RequestResult {
            structure,
            cost: 0.0,
            flops: 0.0,
            parenthesization: String::new(),
            kernels: Vec::new(),
            error: Some("reply abandoned by client (injected connection drop)".to_owned()),
            code: Some("dropped".to_owned()),
        }
    }

    fn is_shed(&self) -> bool {
        self.code
            .as_deref()
            .is_some_and(|c| SHED_CODES.contains(&c))
    }
}

/// The full outcome of one replay run.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// Per-request results, exactly one per trace request, in order.
    pub results: Vec<RequestResult>,
    /// The server's counters and latency snapshot after shutdown (so
    /// supervision counters are final).
    pub stats: ServerStats,
    /// Wall-clock seconds from first submission to last reply.
    pub elapsed: f64,
    /// Requests submitted (== trace length).
    pub submitted: usize,
    /// Distinct `(structure, bindings)` pairs verified against cold
    /// reference solves.
    pub verified: usize,
    /// Replies shed by admission control (`queue_full`).
    pub queue_full_replies: usize,
    /// Replies shed by deadline expiry (`deadline_exceeded`).
    pub expired_replies: usize,
    /// Replies answered `internal` (injected or real worker panics).
    pub internal_replies: usize,
    /// Tickets abandoned by injected connection drops.
    pub abandoned: usize,
    /// Worker threads that died by panic (from the shutdown report).
    pub worker_panics: u64,
    /// Workers the supervisor respawned.
    pub respawns: u64,
    /// Invariant and verification failures (empty on a clean run).
    pub violations: Vec<String>,
}

impl ReplayReport {
    /// Whether the run upheld every invariant (and verification).
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Replays `trace` against a fresh server; see the module docs.
///
/// # Errors
///
/// Returns an error when the trace itself is unusable (invalid
/// structure, registration failure) or the fault plan is malformed.
/// Serving-layer failures and invariant violations are *reported* in
/// the returned [`ReplayReport::violations`] instead, so callers see
/// all of them.
pub fn replay_trace(trace: &Trace, opts: &ReplayOptions) -> Result<ReplayReport, String> {
    trace.validate()?;
    let faults: BTreeMap<usize, FaultKind> = match &opts.faults {
        Some(plan) => {
            plan.validate()?;
            if plan.injects_panics() {
                // Injected panics are expected noise; keep real ones
                // loud.
                silence_injected_panics();
            }
            plan.by_request()
        }
        None => BTreeMap::new(),
    };
    let queue_capacity = opts.queue_capacity.unwrap_or_else(|| match &opts.faults {
        Some(plan) if plan.queue_capacity > 0 => plan.queue_capacity,
        _ => ServeConfig::default().queue_capacity,
    });
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let server = Server::start(
        registry.clone(),
        ServeConfig {
            workers: opts.workers.max(1),
            inference: opts.inference,
            queue_capacity,
            ..ServeConfig::default()
        },
    );
    let chains: Vec<_> = trace
        .structures
        .iter()
        .map(|s| s.chain())
        .collect::<Result<Vec<_>, _>>()?;
    for (s, chain) in trace.structures.iter().zip(&chains) {
        server
            .register(&s.name, chain.clone())
            .map_err(|e| format!("register `{}`: {e}", s.name))?;
    }
    let handle = server.handle();
    let mut violations = Vec::new();

    // Submit the trace and collect replies in trace order. Dropped
    // tickets leave a `None`; their placeholder result is synthesized
    // afterwards.
    let request_of = |i: usize| -> (String, DimBindings) {
        let r = &trace.requests[i];
        let s = &trace.structures[r.structure];
        (s.name.clone(), s.bindings(&r.values))
    };
    let options_of = |i: usize| -> RequestOptions {
        let mut o = RequestOptions::default();
        match faults.get(&i) {
            // An already-expired deadline: the dispatcher must shed it.
            Some(FaultKind::Expire) => o.deadline = Some(Instant::now()),
            Some(kind) => o.fault = kind.solve_fault(),
            None => {}
        }
        o
    };
    let total = trace.requests.len();
    let mut replies: Vec<Option<ServeReply>> = (0..total).map(|_| None).collect();
    let mut abandoned = 0usize;
    let start = Instant::now();
    if opts.honor_timing {
        let mut tickets: Vec<(usize, Ticket)> = Vec::with_capacity(total);
        for (i, r) in trace.requests.iter().enumerate() {
            let due = Duration::from_micros(r.at_us);
            let now = start.elapsed();
            if due > now {
                std::thread::sleep(due - now);
            }
            let (name, bindings) = request_of(i);
            let ticket = handle.submit_opts(&name, bindings, options_of(i));
            if matches!(faults.get(&i), Some(FaultKind::Drop)) {
                drop(ticket);
                abandoned += 1;
            } else {
                tickets.push((i, ticket));
            }
        }
        for (i, ticket) in tickets {
            replies[i] = Some(ticket.wait());
        }
    } else {
        let base = if opts.window == 0 {
            total.max(1)
        } else {
            opts.window
        };
        // Under a fault plan, ordinary windows stay within the
        // admission capacity so shedding happens exactly at the
        // bursts (closed-loop waiting returns every permit between
        // windows).
        let base = if faults.is_empty() {
            base
        } else {
            base.min(queue_capacity).max(1)
        };
        let mut next = 0usize;
        while next < total {
            let end = if let Some(FaultKind::Burst { size }) = faults.get(&next) {
                (next + (*size).max(1)).min(total)
            } else {
                let mut end = (next + base).min(total);
                // Cut the window short at the next burst start so the
                // burst arrives at admission as one batch.
                if let Some((&burst_at, _)) = faults
                    .range(next + 1..end)
                    .find(|(_, k)| matches!(k, FaultKind::Burst { .. }))
                {
                    end = burst_at;
                }
                end
            };
            let batch: Vec<(String, DimBindings, RequestOptions)> = (next..end)
                .map(|i| {
                    let (name, bindings) = request_of(i);
                    (name, bindings, options_of(i))
                })
                .collect();
            let tickets = handle.submit_batch_opts(batch);
            let mut window_dropped = false;
            for (offset, ticket) in tickets.into_iter().enumerate() {
                let i = next + offset;
                if matches!(faults.get(&i), Some(FaultKind::Drop)) {
                    drop(ticket);
                    abandoned += 1;
                    window_dropped = true;
                } else {
                    replies[i] = Some(ticket.wait());
                }
            }
            if window_dropped {
                // The abandoned tickets' permits come back only when
                // the server answers them; wait for that so the next
                // window (and any burst) sees a quiet gate.
                if !await_answered(&handle, end as u64) {
                    violations.push(format!(
                        "server never finished answering the {end} requests \
                         submitted so far (abandoned tickets lost?)"
                    ));
                    break;
                }
            }
            next = end;
        }
    }
    // A killed worker answers its job *before* it dies, so the last
    // reply can reach us while the supervisor is still processing the
    // death. Let supervision settle before shutdown closes the gate,
    // so the respawn count is deterministic.
    let kills = faults
        .values()
        .filter(|k| matches!(k, FaultKind::Kill))
        .count() as u64;
    if kills > 0 {
        let expected_respawns = kills.min(ServeConfig::default().restart_budget as u64);
        let deadline = Instant::now() + Duration::from_secs(5);
        while Instant::now() < deadline {
            let supervision = handle.stats().supervision;
            if supervision.worker_panics >= kills && supervision.respawns >= expected_respawns {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    // Shutdown drains in-flight work, so the post-shutdown snapshot is
    // the final word on accounting (supervision counters included).
    let shutdown = server.shutdown();
    let stats = handle.stats();

    let results: Vec<RequestResult> = replies
        .iter()
        .enumerate()
        .map(|(i, reply)| match reply {
            Some(reply) => RequestResult::from_reply(reply),
            None => RequestResult::abandoned(request_of(i).0),
        })
        .collect();

    // Accounting invariants: every request is answered exactly once
    // and the consistent served counters balance with the histograms.
    let submitted = trace.requests.len();
    if results.len() != submitted {
        violations.push(format!(
            "replies ({}) != submitted requests ({submitted})",
            results.len()
        ));
    }
    let served = stats.served;
    if served.completed + served.rejected != submitted as u64 {
        violations.push(format!(
            "completed ({}) + rejected ({}) != submitted ({submitted})",
            served.completed, served.rejected
        ));
    }
    if served.hits + served.misses + served.failed != served.completed {
        violations.push(format!(
            "hits ({}) + misses ({}) + failed ({}) != completed ({})",
            served.hits, served.misses, served.failed, served.completed
        ));
    }
    if served.rejected_overload + served.expired > served.rejected {
        violations.push(format!(
            "overload ({}) + expired ({}) exceed rejected ({})",
            served.rejected_overload, served.expired, served.rejected
        ));
    }
    if stats.latency.total.count() != served.completed {
        violations.push(format!(
            "total latency samples ({}) != completed ({})",
            stats.latency.total.count(),
            served.completed
        ));
    }
    if stats.latency.queue.count() != served.completed {
        violations.push(format!(
            "queue latency samples ({}) != completed ({})",
            stats.latency.queue.count(),
            served.completed
        ));
    }
    if stats.latency.expired.count() != served.expired {
        violations.push(format!(
            "expired latency samples ({}) != expired counter ({})",
            stats.latency.expired.count(),
            served.expired
        ));
    }
    // Stage span histograms record exactly once per completed request:
    // after shutdown drains, every stage's sample count equals
    // `completed`.
    for stage in &stats.latency.stages {
        if stage.snapshot.count() != served.completed {
            violations.push(format!(
                "stage `{}` span samples ({}) != completed ({})",
                stage.stage,
                stage.snapshot.count(),
                served.completed
            ));
        }
    }
    // Class histograms record only successful solves: exactly one
    // sample per hit or miss, none for failures.
    let class_total: u64 = stats
        .latency
        .classes
        .iter()
        .map(|c| c.snapshot.count())
        .sum();
    if class_total != served.hits + served.misses {
        violations.push(format!(
            "class latency samples ({class_total}) != hits ({}) + misses ({})",
            served.hits, served.misses
        ));
    }
    // The serve layer never duplicates a recording: cache instantiates
    // cannot exceed completions.
    if stats.cache.requests() > served.completed {
        violations.push(format!(
            "cache instantiates ({}) exceed completed requests ({})",
            stats.cache.requests(),
            served.completed
        ));
    }
    // Pool health: the dispatcher must never die, and workers only by
    // injection.
    if shutdown.dispatcher_panicked {
        violations.push("dispatcher thread panicked".to_owned());
    }
    let expects_panics = opts.faults.as_ref().is_some_and(FaultPlan::injects_panics);
    if shutdown.worker_panics > 0 && !expects_panics {
        violations.push(format!(
            "{} worker panic(s) without injected panics",
            shutdown.worker_panics
        ));
    }
    // Each injected fault must surface as the reply it promises (or as
    // admission shedding, which outranks the worker-side fault).
    for (&i, kind) in &faults {
        if i >= results.len() {
            continue;
        }
        let code = results[i].code.as_deref();
        match kind {
            FaultKind::Panic | FaultKind::Kill => {
                if !matches!(code, Some("internal") | Some("queue_full")) {
                    violations.push(format!(
                        "request {i}: injected {kind:?} but reply code is {code:?}"
                    ));
                }
            }
            FaultKind::Expire => {
                if !matches!(code, Some("deadline_exceeded") | Some("queue_full")) {
                    violations.push(format!(
                        "request {i}: injected {kind:?} but reply code is {code:?}"
                    ));
                }
            }
            FaultKind::Delay { .. } | FaultKind::Drop | FaultKind::Burst { .. } => {}
        }
    }

    // Identical successful requests must be answered identically,
    // replay-wide — coalesced or not, raced or not. Shed replies are
    // exempt: whether a duplicate was shed depends on admission, not
    // on the answer.
    let mut first_answer: HashMap<(usize, &[usize]), usize> = HashMap::new();
    for (i, r) in trace.requests.iter().enumerate() {
        if i >= results.len() || results[i].is_shed() {
            continue;
        }
        match first_answer.entry((r.structure, r.values.as_slice())) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(i);
            }
            std::collections::hash_map::Entry::Occupied(e) => {
                let first = &results[*e.get()];
                let this = &results[i];
                if !bitwise_eq(first, this) {
                    violations.push(format!(
                        "request {i} answered differently from identical request {}: \
                         {:?} vs {:?}",
                        e.get(),
                        this,
                        first
                    ));
                }
            }
        }
    }

    // Bitwise verification against cold reference solves. Shed replies
    // carry no answer to verify; they are skipped without consuming
    // the budget (a successful duplicate later still gets checked).
    let budget = match opts.verify {
        Verify::None => 0,
        Verify::Sample(n) => n,
        Verify::All => usize::MAX,
    };
    let mut verified = 0usize;
    if budget > 0 {
        let gmc = GmcOptimizer::new(&registry, FlopCount).with_inference(opts.inference);
        let mut seen: HashMap<(usize, &[usize]), ()> = HashMap::new();
        for (i, r) in trace.requests.iter().enumerate() {
            if verified >= budget || i >= results.len() {
                break;
            }
            if results[i].is_shed() {
                continue;
            }
            if seen
                .insert((r.structure, r.values.as_slice()), ())
                .is_some()
            {
                continue;
            }
            let s = &trace.structures[r.structure];
            let bound = match chains[r.structure].bind(&s.bindings(&r.values)) {
                Ok(chain) => chain,
                Err(e) => {
                    // The server must have rejected it too.
                    if results[i].error.is_none() {
                        violations.push(format!(
                            "request {i}: unbindable for reference ({e}) but served OK"
                        ));
                    }
                    verified += 1;
                    continue;
                }
            };
            match gmc.solve(&bound) {
                Ok(reference) => {
                    let got = &results[i];
                    if let Some(err) = &got.error {
                        violations.push(format!(
                            "request {i} (`{}`): reference solved but serve failed: {err}",
                            s.name
                        ));
                    } else if got.cost.to_bits() != reference.cost().to_bits()
                        || got.flops.to_bits() != reference.flops().to_bits()
                        || got.parenthesization != reference.parenthesization()
                        || got.kernels != reference.kernel_names()
                    {
                        violations.push(format!(
                            "request {i} (`{}`): served answer differs from cold solve: \
                             served ({}, {:?}) vs reference ({}, {:?})",
                            s.name,
                            got.parenthesization,
                            got.kernels,
                            reference.parenthesization(),
                            reference.kernel_names()
                        ));
                    }
                }
                Err(e) => {
                    if results[i].error.is_none() {
                        violations.push(format!(
                            "request {i} (`{}`): reference solve failed ({e}) but serve \
                             answered OK",
                            s.name
                        ));
                    }
                }
            }
            verified += 1;
        }
    }

    let queue_full_replies = count_code(&results, "queue_full");
    let expired_replies = count_code(&results, "deadline_exceeded");
    let internal_replies = count_code(&results, "internal");
    Ok(ReplayReport {
        results,
        stats,
        elapsed,
        submitted,
        verified,
        queue_full_replies,
        expired_replies,
        internal_replies,
        abandoned,
        worker_panics: shutdown.worker_panics,
        respawns: shutdown.respawns,
        violations,
    })
}

/// Polls the served counters until `target` requests have been
/// answered (completed or rejected); `false` on timeout.
fn await_answered(handle: &gmc_serve::ServeHandle, target: u64) -> bool {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let served = handle.stats().served;
        if served.completed + served.rejected >= target {
            return true;
        }
        if Instant::now() > deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn count_code(results: &[RequestResult], code: &str) -> usize {
    results
        .iter()
        .filter(|r| r.code.as_deref() == Some(code))
        .count()
}

fn bitwise_eq(a: &RequestResult, b: &RequestResult) -> bool {
    a.structure == b.structure
        && a.cost.to_bits() == b.cost.to_bits()
        && a.flops.to_bits() == b.flops.to_bits()
        && a.parenthesization == b.parenthesization
        && a.kernels == b.kernels
        && a.error == b.error
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{generate, WorkloadSpec};

    #[test]
    fn mixed_replay_is_clean_and_verified() {
        let mut spec = WorkloadSpec::preset("mixed", 9).unwrap();
        spec.requests = 40;
        let trace = generate(&spec).unwrap();
        let report = replay_trace(
            &trace,
            &ReplayOptions {
                workers: 2,
                verify: Verify::All,
                ..ReplayOptions::default()
            },
        )
        .unwrap();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert_eq!(report.results.len(), 40);
        assert!(report.verified > 0);
        assert_eq!(report.stats.served.completed, 40);
        assert!(report.results.iter().all(|r| r.error.is_none()));
    }

    #[test]
    fn storm_replay_coalesces_single_batch() {
        let mut spec = WorkloadSpec::preset("storm", 4).unwrap();
        spec.requests = 60;
        let trace = generate(&spec).unwrap();
        let report = replay_trace(
            &trace,
            &ReplayOptions {
                workers: 4,
                window: 0,
                verify: Verify::Sample(10),
                ..ReplayOptions::default()
            },
        )
        .unwrap();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        assert!(
            report.stats.coalesced > 0,
            "single-batch storm should coalesce duplicates"
        );
    }

    #[test]
    fn replay_is_deterministic_in_results() {
        let mut spec = WorkloadSpec::preset("aliased", 21).unwrap();
        spec.requests = 30;
        let trace = generate(&spec).unwrap();
        let opts = ReplayOptions {
            workers: 3,
            ..ReplayOptions::default()
        };
        let a = replay_trace(&trace, &opts).unwrap();
        let b = replay_trace(&trace, &opts).unwrap();
        assert!(a.is_clean(), "violations: {:?}", a.violations);
        assert!(b.is_clean(), "violations: {:?}", b.violations);
        // Hit/miss outcomes race across runs; the *answers* must not.
        assert_eq!(a.results, b.results);
    }

    #[test]
    fn burst_overflows_a_small_queue_deterministically() {
        let mut spec = WorkloadSpec::preset("mixed", 5).unwrap();
        spec.requests = 48;
        let trace = generate(&spec).unwrap();
        let plan = FaultPlan {
            seed: 0,
            queue_capacity: 4,
            entries: vec![gmc_serve::faults::FaultEntry {
                request: 8,
                kind: FaultKind::Burst { size: 12 },
            }],
        };
        let report = replay_trace(
            &trace,
            &ReplayOptions {
                workers: 2,
                faults: Some(plan),
                ..ReplayOptions::default()
            },
        )
        .unwrap();
        assert!(report.is_clean(), "violations: {:?}", report.violations);
        // Closed-loop windows return every permit before the burst, so
        // exactly size - capacity of its requests are shed.
        assert_eq!(report.queue_full_replies, 12 - 4);
        assert_eq!(report.stats.served.rejected_overload, 8);
    }
}
