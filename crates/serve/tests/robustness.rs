//! Robustness tests for the serving tier: bounded admission, deadline
//! shedding, worker supervision and graceful shutdown.

use gmc_expr::{Dim, DimBindings, SymChain, SymFactor, SymOperand};
use gmc_kernels::KernelRegistry;
use gmc_serve::faults::silence_injected_panics;
use gmc_serve::{RequestOptions, ServeConfig, ServeError, Server, SolveFault, SubmitError};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn plain(name: &str, r: Dim, c: Dim) -> SymFactor {
    SymFactor::plain(SymOperand::new(name, r, c))
}

fn dense_chain() -> SymChain {
    let (n, m, k) = (Dim::var("rb_n"), Dim::var("rb_m"), Dim::var("rb_k"));
    SymChain::new(vec![plain("A", n, m), plain("B", m, k), plain("C", k, n)]).unwrap()
}

fn bindings(n: usize, m: usize, k: usize) -> DimBindings {
    DimBindings::new()
        .with("rb_n", n)
        .with("rb_m", m)
        .with("rb_k", k)
}

fn start(config: ServeConfig) -> Server {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let server = Server::start(registry, config);
    server.register("X", dense_chain()).unwrap();
    server
}

#[test]
fn batch_overflow_sheds_newest_deterministically() {
    let server = start(ServeConfig {
        queue_capacity: 4,
        ..ServeConfig::default()
    });
    let handle = server.handle();
    // Ten requests into an empty gate of capacity 4, submitted as one
    // batch: admission is decided in submission order, so exactly the
    // last six are shed — every run.
    let batch: Vec<_> = (0..10)
        .map(|i| {
            (
                "X".to_owned(),
                bindings(10 + i, 20, 30),
                RequestOptions::default(),
            )
        })
        .collect();
    let replies: Vec<_> = handle
        .submit_batch_opts(batch)
        .into_iter()
        .map(|t| t.wait())
        .collect();
    for (i, reply) in replies.iter().enumerate() {
        if i < 4 {
            assert!(reply.result.is_ok(), "request {i}: {reply:?}");
        } else {
            assert!(
                matches!(reply.result, Err(ServeError::QueueFull)),
                "request {i}: {reply:?}"
            );
        }
    }
    let stats = handle.stats();
    assert_eq!(stats.served.completed, 4);
    assert_eq!(stats.served.rejected, 6);
    assert_eq!(stats.served.rejected_overload, 6);
    let report = server.shutdown();
    assert!(report.is_clean(), "{report:?}");
}

#[test]
fn try_submit_reports_queue_full_then_recovers() {
    let server = start(ServeConfig {
        queue_capacity: 1,
        workers: 1,
        ..ServeConfig::default()
    });
    let handle = server.handle();
    // The first request holds the only permit until its (delayed)
    // reply; the second must be refused at the door.
    let slow = RequestOptions {
        fault: Some(SolveFault::Delay(Duration::from_millis(300))),
        ..RequestOptions::default()
    };
    let first = handle.try_submit("X", bindings(10, 20, 30), slow).unwrap();
    assert_eq!(
        handle
            .try_submit("X", bindings(11, 20, 30), RequestOptions::default())
            .unwrap_err(),
        SubmitError::QueueFull { capacity: 1 }
    );
    assert!(first.wait().result.is_ok());
    // The permit came back with the reply: the gate admits again.
    let again = handle
        .try_submit("X", bindings(11, 20, 30), RequestOptions::default())
        .unwrap();
    assert!(again.wait().result.is_ok());
    server.shutdown();
    assert_eq!(
        handle
            .try_submit("X", bindings(12, 20, 30), RequestOptions::default())
            .unwrap_err(),
        SubmitError::ShuttingDown
    );
}

#[test]
fn expired_deadlines_are_shed_before_grouping() {
    let server = start(ServeConfig::default());
    let handle = server.handle();
    let expired = RequestOptions {
        deadline: Some(Instant::now()),
        ..RequestOptions::default()
    };
    let reply = handle
        .submit_opts("X", bindings(10, 20, 30), expired)
        .wait();
    assert!(
        matches!(reply.result, Err(ServeError::DeadlineExceeded)),
        "{reply:?}"
    );
    // A generous deadline changes nothing.
    let roomy = RequestOptions::with_deadline_in(Duration::from_secs(30));
    let reply = handle.submit_opts("X", bindings(10, 20, 30), roomy).wait();
    assert!(reply.result.is_ok(), "{reply:?}");

    let stats = handle.stats();
    assert_eq!(stats.served.expired, 1);
    assert_eq!(stats.served.rejected, 1);
    assert_eq!(stats.served.completed, 1);
    // Expired requests record into their own latency class, keeping
    // `total`/`queue` exactly one sample per *completed* request.
    assert_eq!(stats.latency.expired.count(), 1);
    assert_eq!(stats.latency.total.count(), 1);
    assert_eq!(stats.latency.queue.count(), 1);
    let report = server.shutdown();
    assert!(report.is_clean(), "{report:?}");
}

#[test]
fn injected_panic_is_answered_internal_and_pool_survives() {
    silence_injected_panics();
    let server = start(ServeConfig {
        workers: 2,
        ..ServeConfig::default()
    });
    let handle = server.handle();
    let faulty = RequestOptions {
        fault: Some(SolveFault::Panic),
        ..RequestOptions::default()
    };
    let reply = handle.submit_opts("X", bindings(10, 20, 30), faulty).wait();
    match &reply.result {
        Err(ServeError::Internal(msg)) => {
            assert!(msg.contains("injected"), "{msg}");
        }
        other => panic!("expected Internal, got {other:?}"),
    }
    // The panic was caught inside the worker: no thread died, and the
    // pool keeps serving.
    let reply = handle
        .submit_opts("X", bindings(10, 20, 30), RequestOptions::default())
        .wait();
    assert!(reply.result.is_ok(), "{reply:?}");
    let stats = handle.stats();
    assert_eq!(stats.served.failed, 1);
    assert_eq!(stats.supervision.worker_panics, 0);
    let report = server.shutdown();
    assert!(report.is_clean(), "{report:?}");
}

#[test]
fn killed_worker_is_respawned_within_budget() {
    silence_injected_panics();
    let server = start(ServeConfig {
        workers: 1,
        restart_budget: 2,
        ..ServeConfig::default()
    });
    let handle = server.handle();
    let lethal = RequestOptions {
        fault: Some(SolveFault::Kill),
        ..RequestOptions::default()
    };
    let reply = handle.submit_opts("X", bindings(10, 20, 30), lethal).wait();
    assert!(
        matches!(reply.result, Err(ServeError::Internal(_))),
        "{reply:?}"
    );
    // The single worker died after answering; the respawned one picks
    // the next job up.
    let reply = handle
        .submit_opts("X", bindings(11, 20, 30), RequestOptions::default())
        .wait();
    assert!(reply.result.is_ok(), "{reply:?}");
    let report = server.shutdown();
    assert_eq!(report.worker_panics, 1);
    assert_eq!(report.respawns, 1);
    assert!(!report.is_clean());
}

#[test]
fn exhausted_restart_budget_closes_the_door() {
    silence_injected_panics();
    let server = start(ServeConfig {
        workers: 1,
        restart_budget: 0,
        ..ServeConfig::default()
    });
    let handle = server.handle();
    let lethal = RequestOptions {
        fault: Some(SolveFault::Kill),
        ..RequestOptions::default()
    };
    let reply = handle.submit_opts("X", bindings(10, 20, 30), lethal).wait();
    assert!(
        matches!(reply.result, Err(ServeError::Internal(_))),
        "{reply:?}"
    );
    // With no restart budget the pool is dead; the supervisor latches
    // the gate shut so callers fail fast instead of hanging. Poll
    // until the event is processed (tickets from the race window are
    // dropped, never waited).
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match handle.try_submit("X", bindings(11, 20, 30), RequestOptions::default()) {
            Err(SubmitError::ShuttingDown) => break,
            Err(e) => panic!("unexpected admission error: {e}"),
            Ok(_ticket) => {
                assert!(
                    Instant::now() < deadline,
                    "gate never closed after pool death"
                );
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
    let reply = handle.solve("X", bindings(12, 20, 30));
    assert!(matches!(reply.result, Err(ServeError::Closed)), "{reply:?}");
    let stats = handle.stats();
    assert_eq!(stats.supervision.workers_alive, 0);
    assert_eq!(stats.supervision.worker_panics, 1);
    assert_eq!(stats.supervision.respawns, 0);
    let report = server.shutdown();
    assert_eq!(report.worker_panics, 1);
    assert_eq!(report.respawns, 0);
}

#[test]
fn dropping_a_server_after_a_worker_panic_does_not_panic() {
    silence_injected_panics();
    let server = start(ServeConfig {
        workers: 1,
        ..ServeConfig::default()
    });
    let handle = server.handle();
    let lethal = RequestOptions {
        fault: Some(SolveFault::Kill),
        ..RequestOptions::default()
    };
    let reply = handle.submit_opts("X", bindings(10, 20, 30), lethal).wait();
    assert!(reply.result.is_err());
    // No shutdown(): Drop must never join (let alone expect on) dead
    // threads.
    drop(server);
}

#[test]
fn abandoned_tickets_do_not_leak_permits() {
    let server = start(ServeConfig {
        queue_capacity: 2,
        ..ServeConfig::default()
    });
    let handle = server.handle();
    // The client walks away; the server replies into a dead channel
    // and must still release the admission slot.
    for i in 0..10 {
        let ticket = handle.submit_opts("X", bindings(10 + i, 20, 30), RequestOptions::default());
        drop(ticket);
    }
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let served = handle.stats().served;
        if served.completed + served.rejected >= 10 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "abandoned requests never drained"
        );
        std::thread::sleep(Duration::from_millis(2));
    }
    // All permits are back: a full-capacity batch is admitted whole.
    let replies: Vec<_> = handle
        .submit_batch_opts(vec![
            (
                "X".to_owned(),
                bindings(50, 20, 30),
                RequestOptions::default(),
            ),
            (
                "X".to_owned(),
                bindings(51, 20, 30),
                RequestOptions::default(),
            ),
        ])
        .into_iter()
        .map(|t| t.wait())
        .collect();
    assert!(replies.iter().all(|r| r.result.is_ok()), "{replies:?}");
    let report = server.shutdown();
    assert!(report.is_clean(), "{report:?}");
}
