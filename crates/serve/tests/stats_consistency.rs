//! Concurrency test for the consistent served-counter snapshot: a
//! reader hammering `ServeHandle::stats()` during a burst must see
//! `hits + misses + failed == completed` in *every* snapshot — the
//! counters are updated behind a seqlock, so a torn read (class counted
//! but completion not yet, or vice versa) is a bug, not bad luck.

use gmc_expr::{Dim, DimBindings, SymChain, SymFactor, SymOperand};
use gmc_kernels::KernelRegistry;
use gmc_serve::{ServeConfig, Server};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn chain() -> SymChain {
    let (n, m, k) = (Dim::var("sc_n"), Dim::var("sc_m"), Dim::var("sc_k"));
    SymChain::new(vec![
        SymFactor::plain(SymOperand::new("A", n, m)),
        SymFactor::plain(SymOperand::new("B", m, k)),
        SymFactor::plain(SymOperand::new("C", k, n)),
    ])
    .unwrap()
}

fn bindings(n: usize, m: usize, k: usize) -> DimBindings {
    DimBindings::new()
        .with("sc_n", n)
        .with("sc_m", m)
        .with("sc_k", k)
}

#[test]
fn every_stats_snapshot_balances_during_a_burst() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let server = Server::start(
        registry,
        ServeConfig {
            workers: 4,
            ..ServeConfig::default()
        },
    );
    server.register("X", chain()).unwrap();
    let handle = server.handle();

    // Reader thread: snapshot as fast as possible for the whole burst,
    // checking the balance invariant on every single snapshot.
    let stop = Arc::new(AtomicBool::new(false));
    let reader = {
        let handle = handle.clone();
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut snapshots = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let s = handle.stats();
                assert_eq!(
                    s.served.hits + s.served.misses + s.served.failed,
                    s.served.completed,
                    "torn served-counter snapshot: {:?}",
                    s.served
                );
                // (Histogram sample counts are relaxed atomics updated
                // just before the counter frame, so mid-burst they may
                // lead or lag `completed` — only the final quiescent
                // totals must balance; that is asserted below.)
                snapshots += 1;
            }
            snapshots
        })
    };

    // The burst: a mix of misses (distinct regions), hits (rescales)
    // and exact duplicates, plus some rejected requests (bad binding).
    let submitted = 600usize;
    let rejected_every = 50usize; // 12 rejected in total
    let mut tickets = Vec::with_capacity(submitted);
    for i in 0..submitted {
        if i % rejected_every == 0 {
            // Missing variables: rejected before dispatch.
            tickets.push(handle.submit("X", DimBindings::new().with("sc_n", 5)));
        } else {
            let scale = 1 + (i % 7);
            let (n, m, k) = match i % 3 {
                0 => (10 * scale, 200 * scale, 30 * scale),
                1 => (300 * scale, 20 * scale, 100 * scale),
                _ => (20 * scale, 400 * scale, 60 * scale),
            };
            tickets.push(handle.submit("X", bindings(n, m, k)));
        }
    }
    let mut ok = 0usize;
    let mut failed = 0usize;
    for t in tickets {
        match t.wait().result {
            Ok(_) => ok += 1,
            Err(_) => failed += 1,
        }
    }
    stop.store(true, Ordering::Relaxed);
    let snapshots = reader.join().unwrap();
    assert!(snapshots > 0, "reader never snapshotted");
    assert_eq!(ok + failed, submitted);

    // Final accounting: every request ended in exactly one bucket, and
    // the latency layer saw exactly one sample per completion.
    let s = server.stats();
    assert_eq!(
        s.served.completed + s.served.rejected,
        submitted as u64,
        "completed + rejected must account for every request: {:?}",
        s.served
    );
    assert_eq!(s.served.rejected, (submitted / rejected_every) as u64);
    assert_eq!(
        s.served.hits + s.served.misses + s.served.failed,
        s.served.completed
    );
    assert_eq!(s.latency.total.count(), s.served.completed);
    assert_eq!(s.latency.queue.count(), s.served.completed);
    let class_total: u64 = s.latency.classes.iter().map(|c| c.snapshot.count()).sum();
    assert_eq!(class_total, s.served.hits + s.served.misses);
    server.shutdown();
}
