//! End-to-end tests of the serving front door: correctness against the
//! concrete optimizer, batching/coalescing, pre-enumeration, the TCP
//! line protocol and shutdown semantics.

use gmc::{FlopCount, GmcOptimizer};
use gmc_expr::{Dim, DimBindings, Property, SymChain, SymFactor, SymOperand, UnaryOp};
use gmc_kernels::KernelRegistry;
use gmc_serve::tcp::TcpFrontDoor;
use gmc_serve::{RequestOptions, ServeConfig, ServeError, Server};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn plain(name: &str, r: Dim, c: Dim) -> SymFactor {
    SymFactor::plain(SymOperand::new(name, r, c))
}

fn dense_chain() -> SymChain {
    let (n, m, k) = (Dim::var("sv_n"), Dim::var("sv_m"), Dim::var("sv_k"));
    SymChain::new(vec![plain("A", n, m), plain("B", m, k), plain("C", k, n)]).unwrap()
}

fn table2_chain() -> SymChain {
    let (n, m) = (Dim::var("sv_n"), Dim::var("sv_m"));
    let spd = SymOperand::square("S", n)
        .with_property(Property::SymmetricPositiveDefinite)
        .unwrap();
    let tri = SymOperand::square("L", m)
        .with_property(Property::LowerTriangular)
        .unwrap();
    SymChain::new(vec![
        SymFactor::new(spd, UnaryOp::Inverse),
        plain("B", n, m),
        SymFactor::new(tri, UnaryOp::Transpose),
    ])
    .unwrap()
}

fn dense_bindings(n: usize, m: usize, k: usize) -> DimBindings {
    DimBindings::new()
        .with("sv_n", n)
        .with("sv_m", m)
        .with("sv_k", k)
}

#[test]
fn served_replies_match_concrete_solves() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let server = Server::start(registry.clone(), ServeConfig::default());
    server.register("X", dense_chain()).unwrap();
    server.register("T2", table2_chain()).unwrap();
    let handle = server.handle();

    let optimizer = GmcOptimizer::new(&registry, FlopCount);
    let cases: Vec<(&str, SymChain, DimBindings)> = vec![
        ("X", dense_chain(), dense_bindings(10, 200, 30)),
        ("X", dense_chain(), dense_bindings(300, 20, 100)),
        ("X", dense_chain(), dense_bindings(20, 400, 60)),
        (
            "T2",
            table2_chain(),
            DimBindings::new().with("sv_n", 2000).with("sv_m", 200),
        ),
    ];
    for (name, chain, bindings) in &cases {
        let served = handle.solve(name, bindings.clone()).result.unwrap();
        let want = optimizer.solve(&chain.bind(bindings).unwrap()).unwrap();
        assert_eq!(want.cost().to_bits(), served.cost.to_bits());
        assert_eq!(want.parenthesization(), served.parenthesization);
        assert_eq!(want.kernel_names(), served.kernels);
    }
    // Replay: everything hits now.
    for (name, _, bindings) in &cases {
        let served = handle.solve(name, bindings.clone()).result.unwrap();
        assert_eq!(served.outcome, gmc_plan::PlanOutcome::Hit);
    }
    server.shutdown();
}

#[test]
fn batch_submission_coalesces_identical_requests() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let server = Server::start(
        registry,
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    server.register("X", dense_chain()).unwrap();
    let handle = server.handle();

    // Eight identical requests + two distinct ones, submitted as one
    // unit: the identical eight must collapse into one instantiate.
    let mut batch: Vec<(String, DimBindings)> = (0..8)
        .map(|_| ("X".to_owned(), dense_bindings(10, 200, 30)))
        .collect();
    batch.push(("X".to_owned(), dense_bindings(11, 220, 33))); // same region
    batch.push(("X".to_owned(), dense_bindings(300, 20, 100))); // other region
    let tickets = handle.submit_batch(batch);
    let replies: Vec<_> = tickets.into_iter().map(|t| t.wait()).collect();
    assert_eq!(replies.len(), 10);
    let first = replies[0].result.as_ref().unwrap();
    for r in &replies[..8] {
        let served = r.result.as_ref().unwrap();
        assert_eq!(served.cost.to_bits(), first.cost.to_bits());
        assert_eq!(served.outcome, first.outcome);
    }
    let stats = handle.stats();
    assert_eq!(stats.coalesced, 7, "8 identical requests, 7 coalesced");
    // 3 distinct bindings in 2 regions of 1 structure: one instantiate
    // per distinct binding.
    assert_eq!(stats.cache.requests(), 3);
    assert_eq!(stats.cache.structure_misses, 1);
    assert_eq!(stats.cache.region_misses, 1);
    assert_eq!(stats.cache.hits, 1);
    server.shutdown();
}

#[test]
fn unknown_structures_and_bad_bindings_error_cleanly() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let server = Server::start(registry, ServeConfig::default());
    server.register("X", dense_chain()).unwrap();
    let handle = server.handle();

    let reply = handle.solve("nope", DimBindings::new());
    assert!(matches!(
        reply.result,
        Err(ServeError::UnknownStructure(ref n)) if n == "nope"
    ));

    // Missing bindings surface the plan layer's chain error.
    let reply = handle.solve("X", DimBindings::new().with("sv_n", 5));
    assert!(matches!(reply.result, Err(ServeError::Plan(_))));

    // The untrusted raw path rejects variable names outside the
    // structure's vocabulary (they must never reach the interner).
    let reply = handle.solve_raw(
        "X",
        vec![("totally_bogus_var".to_owned(), 5)],
        RequestOptions::default(),
    );
    assert!(
        matches!(reply.result, Err(ServeError::BadRequest(ref m)) if m.contains("totally_bogus_var")),
        "{reply:?}"
    );
    // …while known names resolve fine through the same path.
    let reply = handle.solve_raw(
        "X",
        vec![
            ("sv_n".to_owned(), 10),
            ("sv_m".to_owned(), 20),
            ("sv_k".to_owned(), 30),
        ],
        RequestOptions::default(),
    );
    assert!(reply.result.is_ok(), "{reply:?}");
    server.shutdown();
}

#[test]
fn pre_enumerated_structures_always_hit() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let server = Server::start(registry, ServeConfig::default());
    let recorded = server
        .register_pre_enumerated("T2", table2_chain())
        .unwrap();
    assert!(recorded >= 1);
    let handle = server.handle();
    for (n, m) in [(2000, 200), (3, 900), (7, 7), (1, 4)] {
        let served = handle
            .solve("T2", DimBindings::new().with("sv_n", n).with("sv_m", m))
            .result
            .unwrap();
        assert_eq!(
            served.outcome,
            gmc_plan::PlanOutcome::Hit,
            "pre-enumerated structure must hit at ({n}, {m})"
        );
    }
    server.shutdown();
}

#[test]
fn tcp_front_door_round_trips() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let server = Server::start(registry, ServeConfig::default());
    server.register("T2", table2_chain()).unwrap();
    let door = TcpFrontDoor::bind(server.handle(), "127.0.0.1:0").unwrap();
    let addr = door.local_addr();

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut lines = BufReader::new(stream).lines();
    writer
        .write_all(b"T2 sv_n=2000,sv_m=200\nT2 sv_n=4000,sv_m=400\nbogus\nT2 sv_n=oops\nSTATS\n")
        .unwrap();
    writer.flush().unwrap();

    let l1 = lines.next().unwrap().unwrap();
    assert!(l1.contains("\"outcome\":\"miss_structure\""), "{l1}");
    assert!(l1.contains("TRMM_RLT"), "{l1}");
    let l2 = lines.next().unwrap().unwrap();
    assert!(l2.contains("\"outcome\":\"hit\""), "{l2}");
    let l3 = lines.next().unwrap().unwrap();
    assert!(l3.contains("unknown structure"), "{l3}");
    let l4 = lines.next().unwrap().unwrap();
    assert!(l4.contains("bad request"), "{l4}");
    let l5 = lines.next().unwrap().unwrap();
    assert!(l5.contains("\"hits\":1"), "{l5}");
    drop(writer);
    drop(lines);

    door.shutdown();
    server.shutdown();
}

#[test]
fn shutdown_rejects_late_requests() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let server = Server::start(registry, ServeConfig::default());
    server.register("X", dense_chain()).unwrap();
    let handle = server.handle();
    assert!(handle.solve("X", dense_bindings(10, 20, 30)).result.is_ok());
    server.shutdown();
    let reply = handle.solve("X", dense_bindings(10, 20, 30));
    assert!(matches!(reply.result, Err(ServeError::Closed)));
}
