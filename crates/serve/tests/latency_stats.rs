//! Regression test: the `STATS` wire reply carries the latency layer —
//! quantiles, histogram buckets and per-(structure, hit/miss) classes —
//! and its numbers balance against the batch's request count.

use gmc_expr::{Dim, SymChain, SymFactor, SymOperand};
use gmc_kernels::KernelRegistry;
use gmc_serve::tcp::TcpFrontDoor;
use gmc_serve::{ServeConfig, Server};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn chain() -> SymChain {
    let (n, m, k) = (Dim::var("ls_n"), Dim::var("ls_m"), Dim::var("ls_k"));
    SymChain::new(vec![
        SymFactor::plain(SymOperand::new("A", n, m)),
        SymFactor::plain(SymOperand::new("B", m, k)),
        SymFactor::plain(SymOperand::new("C", k, n)),
    ])
    .unwrap()
}

fn num(v: &Value) -> f64 {
    match v {
        Value::Number(n) => *n,
        other => panic!("expected number, got {other:?}"),
    }
}

#[test]
fn stats_line_reports_consistent_latency() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let server = Server::start(
        registry,
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    server.register("X", chain()).unwrap();
    let door = TcpFrontDoor::bind(server.handle(), "127.0.0.1:0").unwrap();
    let addr = door.local_addr();

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut lines = BufReader::new(stream).lines();
    // 6 requests: 2 identical (coalescable), 1 same-region scale, 1
    // other region, 2 repeats of the first (hits by then or coalesced).
    let requests = [
        "X ls_n=10,ls_m=200,ls_k=30",
        "X ls_n=10,ls_m=200,ls_k=30",
        "X ls_n=20,ls_m=400,ls_k=60",
        "X ls_n=300,ls_m=20,ls_k=100",
        "X ls_n=10,ls_m=200,ls_k=30",
        "X ls_n=30,ls_m=600,ls_k=90",
    ];
    for r in requests {
        writer.write_all(r.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let reply = lines.next().unwrap().unwrap();
        assert!(!reply.contains("error"), "{reply}");
    }
    writer.write_all(b"STATS\n").unwrap();
    writer.flush().unwrap();
    let stats_line = lines.next().unwrap().unwrap();
    drop(writer);
    drop(lines);
    door.shutdown();
    server.shutdown();

    // The line is a single JSON object the shim parser accepts.
    let doc: Value = serde_json::from_str(&stats_line).expect("STATS line parses as JSON");
    let completed = num(doc.get_field("completed").unwrap()) as u64;
    assert_eq!(completed, requests.len() as u64);
    let hits = num(doc.get_field("served_hits").unwrap()) as u64;
    let misses = num(doc.get_field("served_misses").unwrap()) as u64;
    let failed = num(doc.get_field("failed").unwrap()) as u64;
    assert_eq!(hits + misses + failed, completed);
    assert_eq!(num(doc.get_field("rejected").unwrap()) as u64, 0);

    let latency = doc.get_field("latency").unwrap();
    assert_eq!(
        latency.get_field("unit").unwrap(),
        &Value::String("ns".to_owned())
    );
    let total = latency.get_field("total").unwrap();
    let count = num(total.get_field("count").unwrap()) as u64;
    assert_eq!(count, completed, "one latency sample per completed request");
    let p50 = num(total.get_field("p50_ns").unwrap());
    let p90 = num(total.get_field("p90_ns").unwrap());
    let p99 = num(total.get_field("p99_ns").unwrap());
    let max = num(total.get_field("max_ns").unwrap());
    assert!(p50 <= p90 && p90 <= p99 && p99 <= max, "{stats_line}");
    assert!(max > 0.0);

    // Buckets: strictly increasing upper bounds, counts summing to the
    // total count.
    let Value::Array(buckets) = total.get_field("buckets").unwrap() else {
        panic!("buckets is not an array: {stats_line}");
    };
    assert!(!buckets.is_empty());
    let mut last_upper = -1.0f64;
    let mut bucket_total = 0u64;
    for b in buckets {
        let Value::Array(pair) = b else {
            panic!("bucket entry is not a pair: {b:?}");
        };
        assert_eq!(pair.len(), 2);
        let upper = num(&pair[0]);
        assert!(upper > last_upper, "bucket bounds must increase");
        last_upper = upper;
        bucket_total += num(&pair[1]) as u64;
    }
    assert_eq!(bucket_total, count);

    // Queue latency balances too, and the per-class entries cover
    // exactly the successful completions.
    let queue = latency.get_field("queue").unwrap();
    assert_eq!(num(queue.get_field("count").unwrap()) as u64, completed);
    let Value::Array(classes) = latency.get_field("classes").unwrap() else {
        panic!("classes is not an array: {stats_line}");
    };
    let mut class_total = 0u64;
    for c in classes {
        assert_eq!(
            c.get_field("structure").unwrap(),
            &Value::String("X".to_owned())
        );
        let label = c.get_field("class").unwrap();
        assert!(
            label == &Value::String("hit".to_owned()) || label == &Value::String("miss".to_owned())
        );
        class_total += num(c.get_field("count").unwrap()) as u64;
    }
    assert_eq!(class_total, hits + misses);
}
