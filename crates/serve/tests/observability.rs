//! End-to-end tests of the observability layer: the Prometheus
//! `METRICS` exposition, per-stage tracing with the slow-trace ring,
//! the `CACHE` introspection summary, histogram bit-identity across
//! the `gmc-obs`/`gmc-serve` boundary, and the bounded latency-class
//! cardinality.

use gmc_expr::{Dim, DimBindings, SymChain, SymFactor, SymOperand};
use gmc_kernels::KernelRegistry;
use gmc_serve::tcp::TcpFrontDoor;
use gmc_serve::{
    RequestOptions, ServeConfig, Server, SolveFault, MAX_LATENCY_CLASSES, STAGES, TRACE_FORMAT,
};
use serde::Value;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn chain() -> SymChain {
    let (n, m, k) = (Dim::var("ob_n"), Dim::var("ob_m"), Dim::var("ob_k"));
    SymChain::new(vec![
        SymFactor::plain(SymOperand::new("A", n, m)),
        SymFactor::plain(SymOperand::new("B", m, k)),
        SymFactor::plain(SymOperand::new("C", k, n)),
    ])
    .unwrap()
}

fn bindings(n: usize, m: usize, k: usize) -> DimBindings {
    DimBindings::new()
        .with("ob_n", n)
        .with("ob_m", m)
        .with("ob_k", k)
}

/// The value of the unique sample line starting with `prefix ` in a
/// Prometheus exposition (label'd series need the full series as the
/// prefix).
fn sample(text: &str, prefix: &str) -> f64 {
    let line = text
        .lines()
        .find(|l| l.starts_with(prefix) && l[prefix.len()..].starts_with(' '))
        .unwrap_or_else(|| panic!("no sample line starts with `{prefix}` in:\n{text}"));
    line[prefix.len()..].trim().parse().unwrap()
}

/// The single LatencyHistogram implementation now lives in `gmc-obs`;
/// `gmc_serve::histogram` must re-export the *same type* (not a copy),
/// and its log-linear bucket boundaries are pinned by hand-computed
/// values so a future re-implementation cannot silently shift them.
#[test]
fn histogram_is_shared_and_buckets_are_pinned() {
    // Compiles only if the re-export is the identical type.
    fn count_of(h: &gmc_obs::LatencyHistogram) -> u64 {
        h.snapshot().count()
    }
    let via_serve = gmc_serve::histogram::LatencyHistogram::new();
    via_serve.record(7);
    assert_eq!(count_of(&via_serve), 1);

    // (recorded value, inclusive upper bound of its bucket).
    let pinned: [(u64, u64); 10] = [
        (0, 0),
        (1, 1),
        (15, 15),
        (16, 16),
        (17, 17),
        (31, 31),
        (32, 33),
        (1000, 1023),
        (1_000_000, 1_015_807),
        (1_000_000_000, 1_006_632_959),
    ];
    for (value, upper) in pinned {
        for snapshot in [
            {
                let h = gmc_obs::LatencyHistogram::new();
                h.record(value);
                h.snapshot()
            },
            {
                let h = gmc_serve::histogram::LatencyHistogram::new();
                h.record(value);
                h.snapshot()
            },
        ] {
            let buckets: Vec<(u64, u64)> = snapshot.buckets().collect();
            assert_eq!(
                buckets,
                vec![(upper, 1)],
                "value {value} should land in the bucket with upper bound {upper}"
            );
        }
    }
}

/// Under concurrent traffic every `METRICS` scrape balances: the
/// served classes sum to `completed`, and each stage histogram has
/// recorded at most one sample per completed request (exactly one once
/// the burst has drained).
#[test]
fn metrics_balance_under_concurrent_load() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let server = Server::start(
        registry,
        ServeConfig {
            workers: 3,
            ..ServeConfig::default()
        },
    );
    server.register("X", chain()).unwrap();
    let handle = server.handle();

    let threads: Vec<_> = (0..4)
        .map(|t| {
            let handle = handle.clone();
            std::thread::spawn(move || {
                for i in 0..40 {
                    // Mix of repeats (hits/coalesced) and fresh regions.
                    let scale = 1 + (t * 40 + i) % 7;
                    let reply = handle.solve("X", bindings(10 * scale, 200 * scale, 30 * scale));
                    assert!(reply.result.is_ok(), "{:?}", reply.result);
                }
            })
        })
        .collect();

    // Scrape mid-burst: the seqlock'd served counters must balance in
    // every reading, and no stage can be ahead of `completed` (stage
    // samples record after the served counters).
    for _ in 0..50 {
        let stats = handle.stats();
        let served = stats.served;
        assert_eq!(
            served.hits + served.misses + served.failed,
            served.completed,
            "mid-burst scrape must balance"
        );
        assert_eq!(stats.latency.stages.len(), STAGES.len());
        for stage in &stats.latency.stages {
            assert!(
                stage.snapshot.count() <= served.completed,
                "stage {} has {} samples but only {} requests completed",
                stage.stage,
                stage.snapshot.count(),
                served.completed
            );
        }
        std::thread::yield_now();
    }
    for t in threads {
        t.join().unwrap();
    }

    // Quiescent: every completed request left exactly one sample in
    // every stage histogram, and the text exposition agrees.
    let stats = handle.stats();
    let completed = stats.served.completed;
    assert_eq!(completed, 160);
    for stage in &stats.latency.stages {
        assert_eq!(
            stage.snapshot.count(),
            completed,
            "stage {} count",
            stage.stage
        );
    }
    let text = handle.metrics_prometheus();
    assert!(
        text.contains("# TYPE gmc_serve_stage_latency_ns histogram"),
        "{text}"
    );
    assert_eq!(
        sample(&text, "gmc_serve_requests_completed") as u64,
        completed
    );
    let hit = sample(&text, "gmc_serve_requests_served{class=\"hit\"}") as u64;
    let miss = sample(&text, "gmc_serve_requests_served{class=\"miss\"}") as u64;
    let failed = sample(&text, "gmc_serve_requests_served{class=\"failed\"}") as u64;
    assert_eq!(hit + miss + failed, completed);
    for stage in STAGES {
        let count = sample(
            &text,
            &format!("gmc_serve_stage_latency_ns_count{{stage=\"{stage}\"}}"),
        ) as u64;
        assert_eq!(count, completed, "stage {stage} exposition count");
    }
    // Shard counters cover the cache totals.
    let shard_hits: u64 = (0..16)
        .map(|s| sample(&text, &format!("gmc_cache_shard_hits{{shard=\"{s}\"}}")) as u64)
        .sum();
    assert_eq!(shard_hits, stats.cache.hits);
    server.shutdown();
}

/// The wire protocol answers `METRICS` (multi-line, `# EOF`-terminated),
/// `SLOW` (one `gmc-traces/1` JSON line) and `CACHE` (one JSON line).
#[test]
fn wire_metrics_slow_and_cache_round_trip() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let server = Server::start(
        registry,
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    server.register("X", chain()).unwrap();
    let door = TcpFrontDoor::bind(server.handle(), "127.0.0.1:0").unwrap();
    let stream = TcpStream::connect(door.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut lines = BufReader::new(stream).lines();

    for r in [
        "X ob_n=10,ob_m=200,ob_k=30",
        "X ob_n=20,ob_m=400,ob_k=60",
        "X ob_n=10,ob_m=200,ob_k=30",
    ] {
        writer.write_all(r.as_bytes()).unwrap();
        writer.write_all(b"\n").unwrap();
        writer.flush().unwrap();
        let reply = lines.next().unwrap().unwrap();
        assert!(!reply.contains("error"), "{reply}");
    }

    writer.write_all(b"METRICS\n").unwrap();
    writer.flush().unwrap();
    let mut exposition = String::new();
    loop {
        let line = lines.next().unwrap().unwrap();
        if line == "# EOF" {
            break;
        }
        exposition.push_str(&line);
        exposition.push('\n');
    }
    assert!(
        exposition.contains("# TYPE gmc_serve_stage_latency_ns histogram"),
        "{exposition}"
    );
    assert_eq!(sample(&exposition, "gmc_serve_requests_completed"), 3.0);
    assert!(
        sample(
            &exposition,
            "gmc_serve_stage_latency_ns_count{stage=\"solve\"}"
        ) >= 3.0
    );
    assert_eq!(
        sample(&exposition, "gmc_cache_structure_hits{structure=\"X\"}") as u64
            + sample(&exposition, "gmc_cache_structure_misses{structure=\"X\"}") as u64,
        3
    );

    writer.write_all(b"SLOW\n").unwrap();
    writer.flush().unwrap();
    let slow_line = lines.next().unwrap().unwrap();
    let slow: Value = serde_json::from_str(&slow_line).expect("SLOW line parses as JSON");
    let format = match slow.get_field("format").unwrap() {
        Value::String(s) => s.clone(),
        other => panic!("format should be a string, got {other:?}"),
    };
    assert_eq!(format, TRACE_FORMAT);
    let traces = match slow.get_field("traces").unwrap() {
        Value::Array(a) => a.clone(),
        other => panic!("traces should be an array, got {other:?}"),
    };
    assert_eq!(traces.len(), 3, "{slow_line}");

    writer.write_all(b"CACHE\n").unwrap();
    writer.flush().unwrap();
    let cache_line = lines.next().unwrap().unwrap();
    let cache: Value = serde_json::from_str(&cache_line).expect("CACHE line parses as JSON");
    let shards = match cache.get_field("shards").unwrap() {
        Value::Array(a) => a.clone(),
        other => panic!("shards should be an array, got {other:?}"),
    };
    assert_eq!(shards.len(), 16);
    assert!(cache.get_field("totals").is_ok(), "{cache_line}");
    assert!(cache.get_field("structures").is_ok(), "{cache_line}");

    drop(writer);
    drop(lines);
    door.shutdown();
    server.shutdown();
}

/// The slow-trace ring retains the slowest request, and its spans tile
/// the request exactly: stages in [`STAGES`] order, telescoping start
/// offsets, durations summing to the trace total.
#[test]
fn slow_trace_ring_keeps_the_slowest_with_exact_spans() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let server = Server::start(
        registry,
        ServeConfig {
            workers: 2,
            slow_trace_capacity: 1,
            ..ServeConfig::default()
        },
    );
    server.register("X", chain()).unwrap();
    let handle = server.handle();

    // Warm the region, then a burst of fast hits around one delayed
    // request: with capacity 1 only the delayed request survives.
    handle.solve("X", bindings(10, 200, 30));
    for _ in 0..5 {
        handle.solve("X", bindings(10, 200, 30));
    }
    let slow = handle.submit_opts(
        "X",
        bindings(10, 200, 30),
        RequestOptions {
            deadline: None,
            fault: Some(SolveFault::Delay(Duration::from_millis(30))),
        },
    );
    assert!(slow.wait().result.is_ok());
    for _ in 0..5 {
        handle.solve("X", bindings(10, 200, 30));
    }

    let traces = handle.slow_traces();
    assert_eq!(traces.len(), 1);
    let trace = &traces[0];
    assert_eq!(trace.label, "X");
    assert!(
        trace.total_ns >= 25_000_000,
        "the retained trace should be the delayed request, got {}ns",
        trace.total_ns
    );
    assert_eq!(trace.spans.len(), STAGES.len());
    let mut expected_start = 0u64;
    for (span, stage) in trace.spans.iter().zip(STAGES) {
        assert_eq!(span.stage, stage);
        assert_eq!(span.start_ns, expected_start, "spans must telescope");
        expected_start += span.dur_ns;
    }
    assert_eq!(expected_start, trace.total_ns, "durations sum to total");

    let json = handle.slow_traces_json();
    assert!(json.contains(TRACE_FORMAT), "{json}");
    server.shutdown();
}

/// Latency-class cardinality is bounded: past [`MAX_LATENCY_CLASSES`]
/// structures, further classes share one `other` entry and the
/// overflow counter surfaces in the exposition.
#[test]
fn latency_classes_are_bounded_with_shared_overflow() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let server = Server::start(
        registry,
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    );
    let total = MAX_LATENCY_CLASSES + 6;
    for i in 0..total {
        server.register(&format!("S{i:03}"), chain()).unwrap();
    }
    let handle = server.handle();
    for i in 0..total {
        let reply = handle.solve(&format!("S{i:03}"), bindings(10, 200, 30));
        assert!(reply.result.is_ok(), "{:?}", reply.result);
    }

    let stats = handle.stats();
    let mut structures: Vec<&str> = stats
        .latency
        .classes
        .iter()
        .map(|c| c.structure.as_str())
        .collect();
    structures.dedup();
    assert!(
        structures.len() <= MAX_LATENCY_CLASSES + 1,
        "classes must stay bounded, got {} structures",
        structures.len()
    );
    assert!(
        structures.contains(&"other"),
        "overflow structures share the `other` class: {structures:?}"
    );
    let text = handle.metrics_prometheus();
    assert!(sample(&text, "gmc_serve_class_overflow") >= 6.0, "{text}");
    // Every request still lands in exactly one class histogram.
    let class_total: u64 = stats
        .latency
        .classes
        .iter()
        .map(|c| c.snapshot.count())
        .sum();
    assert_eq!(class_total, stats.served.completed);
    server.shutdown();
}
