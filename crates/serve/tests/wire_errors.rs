//! Wire-level error replies: every `ServeError` variant serializes to
//! a stable JSON error line with a machine-readable `code`, and the
//! reachable ones round-trip through a live TCP front door.

use gmc_expr::{Dim, DimBindings, SymChain, SymFactor, SymOperand};
use gmc_kernels::KernelRegistry;
use gmc_plan::PlanError;
use gmc_serve::protocol::reply_to_json;
use gmc_serve::tcp::TcpFrontDoor;
use gmc_serve::{RequestOptions, ServeConfig, ServeError, ServeReply, Server, SolveFault};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn plain(name: &str, r: Dim, c: Dim) -> SymFactor {
    SymFactor::plain(SymOperand::new(name, r, c))
}

fn dense_chain() -> SymChain {
    let (n, m, k) = (Dim::var("we_n"), Dim::var("we_m"), Dim::var("we_k"));
    SymChain::new(vec![plain("A", n, m), plain("B", m, k), plain("C", k, n)]).unwrap()
}

/// Every variant renders `error` plus its stable `code` tag; the codes
/// are part of the wire protocol and must never drift.
#[test]
fn every_variant_serializes_a_stable_code() {
    let cases: Vec<(ServeError, &str)> = vec![
        (
            ServeError::UnknownStructure("X".to_owned()),
            "unknown_structure",
        ),
        (
            ServeError::Plan(PlanError::Enumeration("too large".to_owned())),
            "plan",
        ),
        (ServeError::BadRequest("nope".to_owned()), "bad_request"),
        (ServeError::Closed, "closed"),
        (ServeError::DeadlineExceeded, "deadline_exceeded"),
        (ServeError::QueueFull, "queue_full"),
        (ServeError::Internal("boom".to_owned()), "internal"),
    ];
    for (error, code) in cases {
        let line = reply_to_json(&ServeReply {
            structure: "X".to_owned(),
            result: Err(error),
        });
        assert!(line.contains("\"error\":"), "{line}");
        assert!(
            line.contains(&format!("\"code\":\"{code}\"")),
            "expected code {code} in {line}"
        );
    }
}

#[test]
fn error_codes_round_trip_over_tcp() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let server = Server::start(
        registry,
        ServeConfig {
            queue_capacity: 1,
            workers: 1,
            ..ServeConfig::default()
        },
    );
    server.register("X", dense_chain()).unwrap();
    let handle = server.handle();
    let door = TcpFrontDoor::bind(handle.clone(), "127.0.0.1:0").unwrap();
    let addr = door.local_addr();

    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut lines = BufReader::new(stream).lines();
    let mut ask = |request: &str| -> String {
        writer.write_all(format!("{request}\n").as_bytes()).unwrap();
        writer.flush().unwrap();
        lines.next().unwrap().unwrap()
    };

    // A healthy request first, so errors below are not setup noise.
    let ok = ask("X we_n=10,we_m=20,we_k=30");
    assert!(ok.contains("\"outcome\":"), "{ok}");

    let unknown = ask("Y we_n=10");
    assert!(
        unknown.contains("\"code\":\"unknown_structure\""),
        "{unknown}"
    );

    let bad = ask("X bogus=1");
    assert!(bad.contains("\"code\":\"bad_request\""), "{bad}");

    // Known variable but incomplete bindings: fails at bind time in
    // the dispatcher, a plan-layer error.
    let partial = ask("X we_n=10");
    assert!(partial.contains("\"code\":\"plan\""), "{partial}");

    let expired = ask("X we_n=10,we_m=20,we_k=30,deadline_ms=0");
    assert!(
        expired.contains("\"code\":\"deadline_exceeded\""),
        "{expired}"
    );

    // Occupy the single admission slot from in-process (a delayed
    // solve holds its permit), then the TCP request is shed.
    let slow = RequestOptions {
        fault: Some(SolveFault::Delay(Duration::from_millis(1500))),
        ..RequestOptions::default()
    };
    let holder = handle.submit_opts(
        "X",
        DimBindings::new()
            .with("we_n", 40)
            .with("we_m", 20)
            .with("we_k", 30),
        slow,
    );
    let shed = ask("X we_n=11,we_m=20,we_k=30");
    assert!(shed.contains("\"code\":\"queue_full\""), "{shed}");
    assert!(holder.wait().result.is_ok());

    // Every error above was answered in-band: the same connection
    // still serves normal traffic (hardened tcp loop).
    let after_errors = ask("X we_n=12,we_m=20,we_k=30");
    assert!(after_errors.contains("\"outcome\":"), "{after_errors}");

    // After shutdown the front door still answers, with `closed`.
    let report = server.shutdown();
    assert!(report.is_clean(), "{report:?}");
    let closed = ask("X we_n=10,we_m=20,we_k=30");
    assert!(closed.contains("\"code\":\"closed\""), "{closed}");

    drop(writer);
    drop(lines);
    door.shutdown();
}

#[test]
fn oversized_lines_get_an_error_and_the_connection_survives() {
    let registry = Arc::new(KernelRegistry::blas_lapack());
    let server = Server::start(registry, ServeConfig::default());
    server.register("X", dense_chain()).unwrap();
    let door = TcpFrontDoor::bind_with(
        server.handle(),
        "127.0.0.1:0",
        gmc_serve::tcp::TcpOptions {
            max_line_bytes: 256,
            read_timeout: Some(Duration::from_secs(10)),
        },
    )
    .unwrap();
    let addr = door.local_addr();
    let stream = TcpStream::connect(addr).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut lines = BufReader::new(stream).lines();

    let huge = format!("X {}\n", "we_n=1,".repeat(400));
    writer.write_all(huge.as_bytes()).unwrap();
    writer.flush().unwrap();
    let reply = lines.next().unwrap().unwrap();
    assert!(reply.contains("\"code\":\"bad_request\""), "{reply}");
    assert!(reply.contains("exceeds 256 bytes"), "{reply}");

    // Same connection, normal request: still served.
    writer.write_all(b"X we_n=10,we_m=20,we_k=30\n").unwrap();
    writer.flush().unwrap();
    let reply = lines.next().unwrap().unwrap();
    assert!(reply.contains("\"outcome\":"), "{reply}");

    drop(writer);
    drop(lines);
    door.shutdown();
    server.shutdown();
}
