//! `gmc-serve`: the batching front door over the concurrent plan
//! cache.
//!
//! The GMC compile-time cost pays off when one symbolic solve is
//! amortized over many size-bound requests. This crate turns the
//! [`gmc_plan::PlanCache`] into a serving subsystem:
//!
//! ```text
//!               requests (structure name + dim bindings)
//!  clients ──────────────┐
//!                        ▼
//!                 ┌─────────────┐   groups in-flight requests by
//!                 │ dispatcher  │   (StructureKey, size region),
//!                 └─────────────┘   coalesces identical bindings
//!                        │ batches
//!          ┌─────────────┼─────────────┐
//!          ▼             ▼             ▼
//!      ┌───────┐     ┌───────┐     ┌───────┐    shared, sharded,
//!      │worker0│     │worker1│  …  │workerN│ ─► copy-on-write
//!      └───────┘     └───────┘     └───────┘    PlanCache (hits are
//!          │             │             │        lock-free reads)
//!          └────── replies (cost, parenthesization, kernels) ──►
//! ```
//!
//! * **Parse once per structure.** Chains are registered by name
//!   ([`Server::register`]); requests reference the name and carry only
//!   dimension bindings, so no request ever re-parses a chain.
//! * **Coalescing.** The dispatcher groups queued requests that share a
//!   `(StructureKey, region)` into one batch — a miss is recorded once
//!   for the whole group — and requests with *identical* bindings
//!   collapse into a single instantiate whose result is fanned back
//!   out.
//! * **Pre-enumeration.** [`Server::register_pre_enumerated`] records a
//!   plan for every reachable region of a small chain up front, making
//!   every subsequent request for it a hit.
//! * **No async runtime.** Plain `std::thread` workers and
//!   `std::sync::mpsc` channels (the container has no crates.io
//!   access); the optional TCP listener in [`tcp`] is a thin
//!   line-protocol front end over `std::net::TcpListener`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod faults;
pub mod metrics;
pub mod protocol;
pub mod tcp;

/// Latency histograms live in [`gmc_obs`] since the observability
/// layer landed; re-exported here so existing
/// `gmc_serve::histogram::…` paths keep working (bucket boundaries
/// are unchanged, bit for bit).
pub use gmc_obs::histogram;

pub use admission::SubmitError;
pub use faults::SolveFault;
pub use gmc_obs::trace::{Span, Trace, TRACE_FORMAT};

use admission::{AdmissionGate, Permit};
use faults::FAULT_PANIC_MARKER;
use gmc::{GmcSolution, InferenceMode};
use gmc_expr::{DimBindings, SymChain};
use gmc_kernels::KernelRegistry;
use gmc_obs::trace::SlowTraceRing;
use gmc_obs::{Histogram, HistogramSnapshot, LatencyHistogram, MetricsRegistry};
use gmc_plan::{region_signature, CacheStats, PlanCache, PlanError, PlanOutcome, SolveTiming};
use std::collections::HashMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::Instant;

/// Server configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Number of worker threads instantiating plans.
    pub workers: usize,
    /// Inference mode the shared cache compiles under.
    pub inference: InferenceMode,
    /// Target number of requests the dispatcher drains into one
    /// grouping round. It stops pulling *further* queued messages once
    /// reached; a single [`ServeHandle::submit_batch`] unit is always
    /// grouped whole (that is what makes its coalescing deterministic),
    /// so one oversized batch can exceed this.
    pub max_batch: usize,
    /// Admission capacity: the maximum number of requests in flight
    /// (admitted at submission, released when their reply is sent).
    /// Submissions beyond it are shed newest-first with
    /// [`ServeError::QueueFull`] (ticket paths) or
    /// [`SubmitError::QueueFull`] ([`ServeHandle::try_submit`]).
    /// Clamped to at least 1.
    pub queue_capacity: usize,
    /// How many dead workers the supervisor may respawn over the
    /// server's lifetime. When the budget is exhausted and the last
    /// worker dies, the server closes its admission gate instead of
    /// hanging new requests.
    pub restart_budget: usize,
    /// How many of the slowest request traces the server retains for
    /// [`ServeHandle::slow_traces`] and the `SLOW` wire command.
    /// 0 disables trace retention (per-stage histograms still record).
    pub slow_trace_capacity: usize,
}

/// Upper bound on items per worker job: groups larger than this are
/// split so independent instantiates of one hot region parallelize
/// across the pool.
const MAX_ITEMS_PER_JOB: usize = 16;

/// The request pipeline stages, in order. Every completed request
/// records one span per stage; the spans are consecutive, so their
/// durations sum exactly to the request's end-to-end latency:
///
/// * `admit` — submission call entry to admission + parse done
/// * `queue` — waiting in the dispatcher's inbox
/// * `group` — grouping/coalescing inside the dispatcher
/// * `dispatch` — job channel to a worker picking the job up
/// * `lookup` — locating the cached region plan
/// * `solve` — instantiating the plan (or recording it, on a miss)
/// * `reply` — accounting and fan-out back to the caller
pub const STAGES: [&str; 7] = [
    "admit", "queue", "group", "dispatch", "lookup", "solve", "reply",
];

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            inference: InferenceMode::default(),
            max_batch: 256,
            queue_capacity: 4096,
            restart_budget: 8,
            slow_trace_capacity: 32,
        }
    }
}

/// A successfully served request.
#[derive(Clone, Debug)]
pub struct Served {
    /// How the cache served it (hit, new region, new structure).
    pub outcome: PlanOutcome,
    /// Total cost (FLOPs — the plan layer's metric).
    pub cost: f64,
    /// Total FLOP count.
    pub flops: f64,
    /// The chosen parenthesization.
    pub parenthesization: String,
    /// Kernel names, in execution order.
    pub kernels: Vec<String>,
}

impl Served {
    fn from_solution(solution: &GmcSolution<f64>, outcome: PlanOutcome) -> Served {
        Served {
            outcome,
            cost: solution.cost(),
            flops: solution.flops(),
            parenthesization: solution.parenthesization().to_owned(),
            kernels: solution
                .kernel_names()
                .into_iter()
                .map(str::to_owned)
                .collect(),
        }
    }
}

/// Serving failures.
#[derive(Clone, Debug, PartialEq)]
#[non_exhaustive]
pub enum ServeError {
    /// The request names a structure that was never registered.
    UnknownStructure(String),
    /// The plan layer rejected the request (bad binding, unsolvable
    /// chain, …).
    Plan(PlanError),
    /// The request line itself was malformed.
    BadRequest(String),
    /// The server is shut down.
    Closed,
    /// The request's deadline had already passed when the dispatcher
    /// reached it; it was shed without touching a worker.
    DeadlineExceeded,
    /// The admission queue was at capacity; the request was shed
    /// (newest-first overload policy) without entering the dispatcher.
    QueueFull,
    /// The worker processing the request panicked (the panic was
    /// caught; the pool survives and this request is the only loss).
    Internal(String),
}

impl ServeError {
    /// A stable machine-readable tag for the wire protocol: error
    /// replies carry it as `"code"` so clients can branch without
    /// parsing prose.
    pub fn code(&self) -> &'static str {
        match self {
            ServeError::UnknownStructure(_) => "unknown_structure",
            ServeError::Plan(_) => "plan",
            ServeError::BadRequest(_) => "bad_request",
            ServeError::Closed => "closed",
            ServeError::DeadlineExceeded => "deadline_exceeded",
            ServeError::QueueFull => "queue_full",
            ServeError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownStructure(name) => {
                write!(f, "unknown structure `{name}` (register it first)")
            }
            ServeError::Plan(e) => e.fmt(f),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::Closed => write!(f, "server is shut down"),
            ServeError::DeadlineExceeded => write!(f, "deadline exceeded before dispatch"),
            ServeError::QueueFull => write!(f, "queue full (request shed by admission control)"),
            ServeError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<PlanError> for ServeError {
    fn from(e: PlanError) -> Self {
        ServeError::Plan(e)
    }
}

/// One reply: the structure it answers for and the outcome.
#[derive(Clone, Debug)]
pub struct ServeReply {
    /// The structure name of the originating request.
    pub structure: String,
    /// The served plan, or why it failed.
    pub result: Result<Served, ServeError>,
}

/// Cumulative serving counters.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// The shared plan cache's hit/miss counters. These count cache
    /// *instantiates*, not requests: coalesced requests share one
    /// instantiate, so `cache.requests()` can be below
    /// `served.completed`.
    pub cache: CacheStats,
    /// Requests answered from another in-flight request's instantiate
    /// (identical structure, region and bindings in one batch).
    pub coalesced: u64,
    /// Batches dispatched to workers.
    pub batches: u64,
    /// Registered structures.
    pub structures: usize,
    /// Per-request completion counters, taken as one consistent
    /// snapshot: `hits + misses + failed == completed` holds in every
    /// reading, even mid-burst.
    pub served: ServedCounters,
    /// Latency histogram snapshots (enqueue→complete and
    /// enqueue→dispatch, plus per-(structure, hit/miss) classes).
    pub latency: LatencySnapshot,
    /// Worker-pool supervision counters (panics, respawns, live
    /// workers).
    pub supervision: SupervisionStats,
}

/// Worker-pool health counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SupervisionStats {
    /// Worker threads that died by panic over the server's lifetime.
    pub worker_panics: u64,
    /// Workers the supervisor respawned (bounded by the restart
    /// budget).
    pub respawns: u64,
    /// Workers currently alive.
    pub workers_alive: usize,
}

impl fmt::Display for ServerStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}; {} coalesced, {} batches, {} structures; {}",
            self.cache, self.coalesced, self.batches, self.structures, self.served
        )?;
        if self.supervision.worker_panics > 0 {
            write!(
                f,
                "; {} worker panics, {} respawns, {} alive",
                self.supervision.worker_panics,
                self.supervision.respawns,
                self.supervision.workers_alive
            )?;
        }
        if !self.latency.total.is_empty() {
            write!(
                f,
                "; latency p50 {}ns p99 {}ns max {}ns",
                self.latency.total.quantile(0.5),
                self.latency.total.quantile(0.99),
                self.latency.total.max()
            )?;
        }
        Ok(())
    }
}

/// Per-request completion counters. Unlike the cache counters (which
/// count instantiates), these count *requests*: every submitted
/// request ends up in exactly one of `completed` (reached a worker)
/// or `rejected` (answered before dispatch: unknown structure, bad
/// binding, unbindable sizes), and `completed` splits exactly into
/// `hits + misses + failed`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServedCounters {
    /// Requests a worker answered (successfully or not).
    pub completed: u64,
    /// Completed requests served from a cached region plan.
    pub hits: u64,
    /// Completed requests that recorded a structure or region plan
    /// (coalesced waiters of a miss count with the outcome they
    /// observed).
    pub misses: u64,
    /// Completed requests whose solve failed (plan-layer error) or
    /// whose worker panicked mid-solve (answered
    /// [`ServeError::Internal`]).
    pub failed: u64,
    /// Requests answered before reaching a worker (unknown structure,
    /// unresolvable variable names, unbindable sizes, overload sheds,
    /// expired deadlines). `rejected_overload` and `expired` are
    /// sub-counts of this, so `completed + rejected` still accounts
    /// for every request.
    pub rejected: u64,
    /// Of `rejected`: requests shed because the admission queue was at
    /// capacity.
    pub rejected_overload: u64,
    /// Of `rejected`: requests whose deadline passed before dispatch.
    pub expired: u64,
}

impl fmt::Display for ServedCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} completed ({} hits, {} misses, {} failed), {} rejected",
            self.completed, self.hits, self.misses, self.failed, self.rejected
        )?;
        if self.rejected_overload > 0 || self.expired > 0 {
            write!(
                f,
                " ({} overload, {} expired)",
                self.rejected_overload, self.expired
            )?;
        }
        Ok(())
    }
}

/// The [`ServedCounters`] cell: writers serialize on a short mutex and
/// bump a sequence counter around their updates (a seqlock), so
/// readers get a consistent snapshot — one where
/// `hits + misses + failed == completed` — without ever taking the
/// mutex. Reading the counters as independent relaxed atomics (the
/// pre-ISSUE-6 behavior) could observe `completed` ahead of the class
/// counters mid-update.
#[derive(Debug, Default)]
struct CounterCell {
    /// Even = quiescent; odd = a writer is mid-update.
    seq: AtomicU64,
    /// Serializes writers (the seqlock protocol is single-writer).
    write: Mutex<()>,
    completed: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    failed: AtomicU64,
    rejected: AtomicU64,
    rejected_overload: AtomicU64,
    expired: AtomicU64,
}

/// How a worker (or the submission path) accounts one or more
/// requests in the counter cell.
#[derive(Clone, Copy, Debug)]
enum ServedKind {
    Hit,
    Miss,
    Failed,
    Rejected,
    /// Shed at admission: counts into `rejected` *and*
    /// `rejected_overload` in one frame.
    RejectedOverload,
    /// Shed by the dispatcher's deadline check: counts into `rejected`
    /// *and* `expired` in one frame.
    Expired,
}

impl CounterCell {
    /// Accounts `n` requests of one kind in a single consistent update.
    fn record(&self, kind: ServedKind, n: u64) {
        let _guard = mutex_lock(&self.write);
        self.seq.fetch_add(1, Ordering::SeqCst); // odd: update in flight
        match kind {
            ServedKind::Hit => {
                self.hits.fetch_add(n, Ordering::SeqCst);
                self.completed.fetch_add(n, Ordering::SeqCst);
            }
            ServedKind::Miss => {
                self.misses.fetch_add(n, Ordering::SeqCst);
                self.completed.fetch_add(n, Ordering::SeqCst);
            }
            ServedKind::Failed => {
                self.failed.fetch_add(n, Ordering::SeqCst);
                self.completed.fetch_add(n, Ordering::SeqCst);
            }
            ServedKind::Rejected => {
                self.rejected.fetch_add(n, Ordering::SeqCst);
            }
            ServedKind::RejectedOverload => {
                self.rejected.fetch_add(n, Ordering::SeqCst);
                self.rejected_overload.fetch_add(n, Ordering::SeqCst);
            }
            ServedKind::Expired => {
                self.rejected.fetch_add(n, Ordering::SeqCst);
                self.expired.fetch_add(n, Ordering::SeqCst);
            }
        }
        self.seq.fetch_add(1, Ordering::SeqCst); // even: quiescent
    }

    /// A consistent snapshot: retries until a read frame closes with no
    /// writer in flight. Writers hold the cell only for a handful of
    /// atomic increments, so the retry loop is short.
    fn snapshot(&self) -> ServedCounters {
        loop {
            let before = self.seq.load(Ordering::SeqCst);
            if before % 2 == 1 {
                std::hint::spin_loop();
                continue;
            }
            let snap = ServedCounters {
                completed: self.completed.load(Ordering::SeqCst),
                hits: self.hits.load(Ordering::SeqCst),
                misses: self.misses.load(Ordering::SeqCst),
                failed: self.failed.load(Ordering::SeqCst),
                rejected: self.rejected.load(Ordering::SeqCst),
                rejected_overload: self.rejected_overload.load(Ordering::SeqCst),
                expired: self.expired.load(Ordering::SeqCst),
            };
            if self.seq.load(Ordering::SeqCst) == before {
                return snap;
            }
        }
    }
}

/// Latency snapshots of a running server.
#[derive(Clone, Debug, Default)]
pub struct LatencySnapshot {
    /// Enqueue→complete latency of every worker-completed request.
    pub total: HistogramSnapshot,
    /// Enqueue→dispatch (queueing) latency of the same requests.
    pub queue: HistogramSnapshot,
    /// Enqueue→shed latency of deadline-expired requests (they never
    /// reach a worker, so they appear here instead of `total`).
    pub expired: HistogramSnapshot,
    /// Per-(structure, hit/miss) enqueue→complete histograms, sorted
    /// by structure name then class for deterministic rendering. At
    /// most [`MAX_LATENCY_CLASSES`] distinct structures are tracked;
    /// the excess shares one `other` entry.
    pub classes: Vec<ClassLatency>,
    /// Per-stage span histograms in [`STAGES`] order, recorded once
    /// per completed request.
    pub stages: Vec<StageLatency>,
}

/// One pipeline stage's span histogram.
#[derive(Clone, Debug)]
pub struct StageLatency {
    /// Stage name (one of [`STAGES`]).
    pub stage: &'static str,
    /// Span-duration histogram of the stage across completed requests.
    pub snapshot: HistogramSnapshot,
}

/// One (structure, hit/miss) latency class.
#[derive(Clone, Debug)]
pub struct ClassLatency {
    /// Registered structure name.
    pub structure: String,
    /// `true` for the cache-hit class, `false` for misses.
    pub hit: bool,
    /// Enqueue→complete histogram of this class.
    pub snapshot: HistogramSnapshot,
}

/// Per-structure hit/miss histograms (enqueue→complete).
#[derive(Debug, Default)]
struct ClassHists {
    hit: LatencyHistogram,
    miss: LatencyHistogram,
}

/// Upper bound on distinct structure names tracked in per-class
/// latency histograms. A hostile client registering (or requesting)
/// many structures cannot grow stats memory without bound: structures
/// beyond the cap all record into one shared `other` class.
pub const MAX_LATENCY_CLASSES: usize = 64;

/// The server-wide latency recording layer.
#[derive(Debug, Default)]
struct LatencyBook {
    total: LatencyHistogram,
    queue: LatencyHistogram,
    expired: LatencyHistogram,
    classes: RwLock<HashMap<String, Arc<ClassHists>>>,
    /// The shared overflow class once `classes` holds
    /// [`MAX_LATENCY_CLASSES`] structures. Kept outside the map so it
    /// is reported once (as structure `other`) and never double
    /// counted.
    other: Arc<ClassHists>,
    /// Class lookups funneled into `other`.
    class_overflow: AtomicU64,
}

impl LatencyBook {
    /// The histogram pair for `structure`, creating it on first use
    /// (registration pre-creates it; this covers re-registration
    /// races). Once [`MAX_LATENCY_CLASSES`] structures are tracked,
    /// further structures share the `other` class.
    fn class(&self, structure: &str) -> Arc<ClassHists> {
        if let Some(h) = read_lock(&self.classes).get(structure) {
            return Arc::clone(h);
        }
        let mut map = write_lock(&self.classes);
        if let Some(h) = map.get(structure) {
            return Arc::clone(h);
        }
        if map.len() >= MAX_LATENCY_CLASSES {
            self.class_overflow.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&self.other);
        }
        Arc::clone(map.entry(structure.to_owned()).or_default())
    }

    /// Class lookups that funneled into the shared `other` class.
    fn overflowed(&self) -> u64 {
        self.class_overflow.load(Ordering::Relaxed)
    }

    fn snapshot(&self) -> LatencySnapshot {
        let mut classes: Vec<ClassLatency> = Vec::new();
        {
            let map = read_lock(&self.classes);
            for (name, hists) in map.iter() {
                for (hit, h) in [(true, &hists.hit), (false, &hists.miss)] {
                    let snapshot = h.snapshot();
                    if !snapshot.is_empty() {
                        classes.push(ClassLatency {
                            structure: name.clone(),
                            hit,
                            snapshot,
                        });
                    }
                }
            }
        }
        for (hit, h) in [(true, &self.other.hit), (false, &self.other.miss)] {
            let snapshot = h.snapshot();
            if !snapshot.is_empty() {
                classes.push(ClassLatency {
                    structure: "other".to_owned(),
                    hit,
                    snapshot,
                });
            }
        }
        classes.sort_by(|a, b| (&a.structure, !a.hit).cmp(&(&b.structure, !b.hit)));
        LatencySnapshot {
            total: self.total.snapshot(),
            queue: self.queue.snapshot(),
            expired: self.expired.snapshot(),
            classes,
            stages: Vec::new(),
        }
    }
}

/// Nanoseconds between two instants, saturating into `u64`.
fn nanos_between(earlier: Instant, later: Instant) -> u64 {
    later
        .saturating_duration_since(earlier)
        .as_nanos()
        .min(u64::MAX as u128) as u64
}

/// A pending reply; resolve it with [`Ticket::wait`].
#[derive(Debug)]
pub struct Ticket {
    rx: Receiver<ServeReply>,
    structure: String,
}

impl Ticket {
    /// Blocks until the reply arrives.
    pub fn wait(self) -> ServeReply {
        self.rx.recv().unwrap_or(ServeReply {
            structure: self.structure,
            result: Err(ServeError::Closed),
        })
    }
}

/// The observability layer behind [`Shared`]: the live metrics
/// registry (which owns the per-stage histograms), the slow-trace
/// ring, and the trace-id counter. Everything else the `METRICS`
/// exposition reports is copied from authoritative snapshots at scrape
/// time, so the hot path never writes a counter twice.
struct ObsLayer {
    registry: MetricsRegistry,
    /// Per-stage span histograms, in [`STAGES`] order (live handles
    /// onto the registry's `gmc.serve.stage.latency.ns` family).
    stages: [Histogram; STAGES.len()],
    /// The N slowest completed traces.
    ring: SlowTraceRing,
    trace_ids: AtomicU64,
}

impl ObsLayer {
    fn new(slow_trace_capacity: usize) -> ObsLayer {
        let registry = MetricsRegistry::new();
        let stages = STAGES.map(|stage| {
            registry.histogram(
                "gmc.serve.stage.latency.ns",
                "Per-stage request span duration in nanoseconds",
                &[("stage", stage)],
            )
        });
        ObsLayer {
            registry,
            stages,
            ring: SlowTraceRing::new(slow_trace_capacity),
            trace_ids: AtomicU64::new(0),
        }
    }

    fn next_trace_id(&self) -> u64 {
        self.trace_ids.fetch_add(1, Ordering::Relaxed)
    }

    /// Snapshots of the per-stage histograms, in [`STAGES`] order.
    fn stage_snapshots(&self) -> Vec<StageLatency> {
        STAGES
            .iter()
            .zip(&self.stages)
            .map(|(stage, h)| StageLatency {
                stage,
                snapshot: h.snapshot(),
            })
            .collect()
    }
}

struct Shared {
    cache: PlanCache,
    structures: RwLock<HashMap<String, Arc<SymChain>>>,
    coalesced: AtomicU64,
    batches: AtomicU64,
    served: CounterCell,
    latency: LatencyBook,
    gate: Arc<AdmissionGate>,
    supervision: SupervisionCell,
    obs: ObsLayer,
}

/// Supervision counters behind [`Shared`]; updated only by the
/// supervisor thread, read by any stats snapshot.
#[derive(Debug, Default)]
struct SupervisionCell {
    worker_panics: AtomicU64,
    respawns: AtomicU64,
    workers_alive: AtomicUsize,
}

impl SupervisionCell {
    fn snapshot(&self) -> SupervisionStats {
        SupervisionStats {
            worker_panics: self.worker_panics.load(Ordering::SeqCst),
            respawns: self.respawns.load(Ordering::SeqCst),
            workers_alive: self.workers_alive.load(Ordering::SeqCst),
        }
    }
}

use gmc_plan::sync::{mutex_lock, read_lock, write_lock};

/// Builds concrete bindings from string-named sizes using only the
/// chain's own (already interned) variables.
fn bind_named_vars(chain: &SymChain, vars: &[(String, usize)]) -> Result<DimBindings, String> {
    let vocabulary = chain.vars();
    let mut bindings = DimBindings::new();
    for (name, value) in vars {
        match vocabulary.iter().find(|v| v.name() == name) {
            Some(var) => bindings.set_var(*var, *value),
            None => {
                return Err(format!(
                    "unknown dimension variable `{name}` for this structure"
                ))
            }
        }
    }
    Ok(bindings)
}

impl Shared {
    fn stats(&self) -> ServerStats {
        let mut latency = self.latency.snapshot();
        latency.stages = self.obs.stage_snapshots();
        ServerStats {
            cache: self.cache.stats(),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            structures: read_lock(&self.structures).len(),
            served: self.served.snapshot(),
            latency,
            supervision: self.supervision.snapshot(),
        }
    }
}

/// A raw text-protocol request: structure name, string-named sizes,
/// and submission options (see [`ServeHandle::submit_raw_batch`]).
pub type RawRequest = (String, Vec<(String, usize)>, RequestOptions);

/// Per-request submission options: an optional deadline and an
/// optional injected worker-side fault (chaos testing only).
#[derive(Clone, Copy, Debug, Default)]
pub struct RequestOptions {
    /// If set, the dispatcher sheds the request with
    /// [`ServeError::DeadlineExceeded`] when the deadline has passed
    /// before grouping. Expiry is checked at dispatch, not mid-solve:
    /// a request that made it into a batch is always answered with its
    /// result.
    pub deadline: Option<Instant>,
    /// Deterministic fault the worker executes for this request (see
    /// [`faults`]). `None` in production traffic.
    pub fault: Option<SolveFault>,
}

impl RequestOptions {
    /// Options with a deadline this far in the future.
    pub fn with_deadline_in(timeout: std::time::Duration) -> RequestOptions {
        RequestOptions {
            deadline: Some(Instant::now() + timeout),
            fault: None,
        }
    }
}

/// One parsed request on its way to the dispatcher.
struct Request {
    name: String,
    chain: Arc<SymChain>,
    bindings: DimBindings,
    reply: Sender<ServeReply>,
    /// When the submission call started (trace origin).
    enqueued: Instant,
    /// When the request was handed to the dispatcher (end of the
    /// `admit` span: admission + parse done).
    submitted: Instant,
    /// Monotone per-server trace id.
    trace_id: u64,
    /// Deadline/fault options.
    options: RequestOptions,
    /// The admission slot; released (dropped) right before the reply
    /// is sent.
    permit: Permit,
}

enum Incoming {
    Requests(Vec<Request>),
    Shutdown,
}

enum Job {
    Batch {
        chain: Arc<SymChain>,
        items: Vec<BatchItem>,
        /// When the dispatcher started grouping the round this job
        /// came from (end of the `queue` span).
        grouped: Instant,
        /// When the dispatcher formed this job (per-request queueing
        /// latency is `dispatched - enqueued`).
        dispatched: Instant,
    },
    Stop,
}

struct BatchItem {
    bindings: DimBindings,
    /// All requests wanting exactly these bindings: one instantiate,
    /// fanned back out.
    replies: Vec<ReplySlot>,
    /// The merged injected fault of the coalesced requests (killing
    /// beats caught panic beats the longest delay).
    fault: Option<SolveFault>,
}

/// One pending reply of a coalesced batch item, with the timestamps it
/// was enqueued/submitted at (each coalesced request keeps its own
/// latency and trace).
struct ReplySlot {
    name: String,
    enqueued: Instant,
    submitted: Instant,
    trace_id: u64,
    tx: Sender<ServeReply>,
    permit: Permit,
}

impl ReplySlot {
    /// Sends the reply, releasing the admission slot *first* so a
    /// caller that has received all its replies observes zero of its
    /// permits outstanding (closed-loop replay depends on this for
    /// deterministic admission).
    fn send(self, result: Result<Served, ServeError>) {
        let ReplySlot {
            name, tx, permit, ..
        } = self;
        drop(permit);
        tx.send(ServeReply {
            structure: name,
            result,
        })
        .ok();
    }
}

/// Merges two injected faults for coalesced requests: a kill beats a
/// caught panic beats the longest delay.
fn merge_faults(a: Option<SolveFault>, b: Option<SolveFault>) -> Option<SolveFault> {
    use SolveFault::{Delay, Kill, Panic};
    match (a, b) {
        (None, f) | (f, None) => f,
        (Some(Kill), _) | (_, Some(Kill)) => Some(Kill),
        (Some(Panic), _) | (_, Some(Panic)) => Some(Panic),
        (Some(Delay(x)), Some(Delay(y))) => Some(Delay(x.max(y))),
    }
}

/// A cheap, clonable submission handle onto a running [`Server`].
#[derive(Clone)]
pub struct ServeHandle {
    shared: Arc<Shared>,
    submit: Sender<Incoming>,
}

impl ServeHandle {
    /// Submits one request; returns a [`Ticket`] for the reply.
    pub fn submit(&self, structure: &str, bindings: DimBindings) -> Ticket {
        self.submit_opts(structure, bindings, RequestOptions::default())
    }

    /// Submits one request with explicit [`RequestOptions`].
    pub fn submit_opts(
        &self,
        structure: &str,
        bindings: DimBindings,
        options: RequestOptions,
    ) -> Ticket {
        self.submit_batch_opts(vec![(structure.to_owned(), bindings, options)])
            .pop()
            .expect("one ticket per request")
    }

    /// Submits one request, but reports admission failures to the
    /// *caller* instead of through the ticket: `Err(QueueFull)` when
    /// the in-flight capacity is reached, `Err(ShuttingDown)` when the
    /// server no longer admits work. A refused request is never
    /// counted — from the server's view it was not submitted.
    ///
    /// # Errors
    ///
    /// [`SubmitError`] as above.
    pub fn try_submit(
        &self,
        structure: &str,
        bindings: DimBindings,
        options: RequestOptions,
    ) -> Result<Ticket, SubmitError> {
        let enqueued = Instant::now();
        let permit = self.shared.gate.try_acquire()?;
        let (tx, rx) = channel();
        let ticket = Ticket {
            rx,
            structure: structure.to_owned(),
        };
        let structures = read_lock(&self.shared.structures);
        let Some(chain) = structures.get(structure) else {
            drop(permit);
            self.shared.served.record(ServedKind::Rejected, 1);
            tx.send(ServeReply {
                structure: structure.to_owned(),
                result: Err(ServeError::UnknownStructure(structure.to_owned())),
            })
            .ok();
            return Ok(ticket);
        };
        let request = Request {
            chain: Arc::clone(chain),
            name: structure.to_owned(),
            bindings,
            reply: tx,
            enqueued,
            submitted: Instant::now(),
            trace_id: self.shared.obs.next_trace_id(),
            options,
            permit,
        };
        drop(structures);
        if self.submit.send(Incoming::Requests(vec![request])).is_err() {
            return Err(SubmitError::ShuttingDown);
        }
        Ok(ticket)
    }

    /// Submits several requests at once. They enter the dispatcher as
    /// one unit, so requests in the batch that share a structure and
    /// size region are grouped — and identical bindings coalesce into
    /// a single instantiate.
    pub fn submit_batch(&self, requests: Vec<(String, DimBindings)>) -> Vec<Ticket> {
        self.submit_batch_opts(
            requests
                .into_iter()
                .map(|(name, bindings)| (name, bindings, RequestOptions::default()))
                .collect(),
        )
    }

    /// [`submit_batch`](Self::submit_batch) with per-request options.
    pub fn submit_batch_opts(
        &self,
        requests: Vec<(String, DimBindings, RequestOptions)>,
    ) -> Vec<Ticket> {
        self.submit_with(requests, |_, bindings| Ok(bindings))
    }

    /// Submits and blocks for the reply.
    pub fn solve(&self, structure: &str, bindings: DimBindings) -> ServeReply {
        self.submit(structure, bindings).wait()
    }

    /// Submits requests whose variables are *named by string* — the
    /// untrusted text-protocol path. Names are resolved against the
    /// registered structure's own variable vocabulary; an unknown name
    /// is rejected with [`ServeError::BadRequest`] **without being
    /// interned** (`DimVar` interning is process-wide and permanent,
    /// so a front door must never intern arbitrary client strings).
    pub fn submit_raw_batch(&self, requests: Vec<RawRequest>) -> Vec<Ticket> {
        self.submit_with(requests, |chain, vars| {
            bind_named_vars(chain, &vars).map_err(ServeError::BadRequest)
        })
    }

    /// The shared submission path: per request, create a ticket, look
    /// the structure up, resolve the payload into bindings, acquire an
    /// admission permit, then ship everything admitted to the
    /// dispatcher as one unit. Failures — unknown structure, bad
    /// payload, queue full, shutting down — reply immediately through
    /// the ticket. Admission is decided here, before the dispatcher
    /// sees anything, so within one batch the set of shed requests is
    /// deterministic: with `k` permits free, exactly the first `k`
    /// admissible requests enter.
    fn submit_with<T>(
        &self,
        requests: Vec<(String, T, RequestOptions)>,
        mut resolve: impl FnMut(&SymChain, T) -> Result<DimBindings, ServeError>,
    ) -> Vec<Ticket> {
        let mut tickets = Vec::with_capacity(requests.len());
        let mut parsed = Vec::with_capacity(requests.len());
        let enqueued = Instant::now();
        let mut rejected = 0u64;
        let mut overloaded = 0u64;
        let structures = read_lock(&self.shared.structures);
        for (name, payload, options) in requests {
            let (tx, rx) = channel();
            tickets.push(Ticket {
                rx,
                structure: name.clone(),
            });
            let Some(chain) = structures.get(&name) else {
                rejected += 1;
                tx.send(ServeReply {
                    structure: name.clone(),
                    result: Err(ServeError::UnknownStructure(name)),
                })
                .ok();
                continue;
            };
            let bindings = match resolve(chain, payload) {
                Ok(bindings) => bindings,
                Err(e) => {
                    rejected += 1;
                    tx.send(ServeReply {
                        structure: name,
                        result: Err(e),
                    })
                    .ok();
                    continue;
                }
            };
            let permit = match self.shared.gate.try_acquire() {
                Ok(permit) => permit,
                Err(SubmitError::QueueFull { .. }) => {
                    overloaded += 1;
                    tx.send(ServeReply {
                        structure: name,
                        result: Err(ServeError::QueueFull),
                    })
                    .ok();
                    continue;
                }
                Err(SubmitError::ShuttingDown) => {
                    rejected += 1;
                    tx.send(ServeReply {
                        structure: name,
                        result: Err(ServeError::Closed),
                    })
                    .ok();
                    continue;
                }
            };
            parsed.push(Request {
                chain: Arc::clone(chain),
                name,
                bindings,
                reply: tx,
                enqueued,
                submitted: enqueued, // overwritten below, once per batch
                trace_id: self.shared.obs.next_trace_id(),
                options,
                permit,
            });
        }
        drop(structures);
        if rejected > 0 {
            self.shared.served.record(ServedKind::Rejected, rejected);
        }
        if overloaded > 0 {
            self.shared
                .served
                .record(ServedKind::RejectedOverload, overloaded);
        }
        if !parsed.is_empty() {
            // The whole batch is handed over at one instant; stamping
            // it here (after admission and parsing) closes every
            // request's `admit` span.
            let submitted = Instant::now();
            for request in &mut parsed {
                request.submitted = submitted;
            }
            if self.submit.send(Incoming::Requests(parsed)).is_err() {
                // Server shut down: tickets resolve to `Closed` when
                // their senders (and permits) drop with nothing sent.
            }
        }
        tickets
    }

    /// Blocking single-request form of
    /// [`submit_raw_batch`](Self::submit_raw_batch).
    pub fn solve_raw(
        &self,
        structure: &str,
        vars: Vec<(String, usize)>,
        options: RequestOptions,
    ) -> ServeReply {
        self.submit_raw_batch(vec![(structure.to_owned(), vars, options)])
            .pop()
            .expect("one ticket per request")
            .wait()
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// The names of the registered structures, sorted.
    pub fn structure_names(&self) -> Vec<String> {
        let mut names: Vec<String> = read_lock(&self.shared.structures).keys().cloned().collect();
        names.sort();
        names
    }

    /// The retained slowest traces, slowest first. Capacity is
    /// [`ServeConfig::slow_trace_capacity`]; each trace's spans tile
    /// its total exactly (see [`STAGES`]).
    pub fn slow_traces(&self) -> Vec<Trace> {
        self.shared.obs.ring.snapshot()
    }

    /// The slow traces as a stable [`TRACE_FORMAT`] (`gmc-traces/1`)
    /// JSON document — the `SLOW` wire command's payload.
    pub fn slow_traces_json(&self) -> String {
        gmc_obs::trace::traces_json(&self.slow_traces())
    }

    /// Every metric the server keeps — serve counters, per-stage and
    /// per-class latency histograms, cache/shard/structure counters,
    /// trace-ring counters — rendered as a Prometheus text exposition
    /// (the `METRICS` wire command's payload, without the `# EOF`
    /// terminator).
    pub fn metrics_prometheus(&self) -> String {
        metrics::render_prometheus(&self.shared)
    }

    /// Cache introspection as a single-line JSON document: totals,
    /// per-shard counters, and per-structure hit/miss/region counts
    /// (the `CACHE` wire command's payload).
    pub fn cache_introspection_json(&self) -> String {
        metrics::render_cache(&self.shared)
    }
}

/// The serving front door: worker pool + dispatcher over a shared
/// [`PlanCache`].
///
/// # Example
///
/// ```
/// use gmc_expr::{Dim, DimBindings, SymChain, SymFactor, SymOperand};
/// use gmc_kernels::KernelRegistry;
/// use gmc_serve::{ServeConfig, Server};
/// use std::sync::Arc;
///
/// let registry = Arc::new(KernelRegistry::blas_lapack());
/// let server = Server::start(registry, ServeConfig::default());
/// let (n, m) = (Dim::var("n"), Dim::var("m"));
/// let chain = SymChain::new(vec![
///     SymFactor::plain(SymOperand::new("A", n, m)),
///     SymFactor::plain(SymOperand::new("B", m, n)),
/// ])
/// .unwrap();
/// server.register("X", chain).unwrap();
///
/// let reply = server
///     .handle()
///     .solve("X", DimBindings::new().with("n", 100).with("m", 20));
/// let served = reply.result.unwrap();
/// assert_eq!(served.kernels, vec!["GEMM_NN"]);
/// server.shutdown();
/// ```
pub struct Server {
    shared: Arc<Shared>,
    submit: Sender<Incoming>,
    dispatcher: Option<JoinHandle<()>>,
    supervisor: Option<JoinHandle<()>>,
    /// Every worker thread ever spawned (including respawns); shared
    /// with the supervisor, drained at shutdown.
    worker_handles: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// What a [`WorkerGuard`] reports when its thread ends.
enum WorkerEvent {
    /// The worker unwound out of its loop (a panic escaped).
    Panicked,
    /// The worker exited normally (stop message or closed channel).
    Stopped,
}

/// Sits on a worker thread's stack and reports how the thread ended:
/// its `Drop` runs during unwinding too, so a panicking worker still
/// notifies the supervisor.
struct WorkerGuard {
    events: Sender<WorkerEvent>,
    panicked: bool,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        let event = if self.panicked {
            WorkerEvent::Panicked
        } else {
            WorkerEvent::Stopped
        };
        self.events.send(event).ok();
    }
}

/// Spawns one supervised worker thread.
fn spawn_worker(
    id: usize,
    shared: &Arc<Shared>,
    job_rx: &Arc<Mutex<Receiver<Job>>>,
    events: &Sender<WorkerEvent>,
) -> std::io::Result<JoinHandle<()>> {
    let shared = Arc::clone(shared);
    let job_rx = Arc::clone(job_rx);
    let events = events.clone();
    std::thread::Builder::new()
        .name(format!("gmc-serve-worker-{id}"))
        .spawn(move || {
            let mut guard = WorkerGuard {
                events,
                panicked: true,
            };
            worker_loop(&shared, &job_rx);
            guard.panicked = false;
        })
}

/// How a finished [`Server::shutdown`] went.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShutdownReport {
    /// Worker threads that died by panic over the server's lifetime
    /// (injected faults included).
    pub worker_panics: u64,
    /// Workers the supervisor respawned.
    pub respawns: u64,
    /// Whether the dispatcher thread itself panicked.
    pub dispatcher_panicked: bool,
}

impl ShutdownReport {
    /// Whether the pool stayed healthy end to end.
    pub fn is_clean(&self) -> bool {
        self.worker_panics == 0 && !self.dispatcher_panicked
    }
}

impl fmt::Display for ShutdownReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(f, "clean shutdown")
        } else {
            write!(
                f,
                "shutdown with {} worker panics ({} respawned){}",
                self.worker_panics,
                self.respawns,
                if self.dispatcher_panicked {
                    ", dispatcher panicked"
                } else {
                    ""
                }
            )
        }
    }
}

impl Server {
    /// Starts the worker pool, dispatcher and supervisor.
    pub fn start(registry: Arc<KernelRegistry>, config: ServeConfig) -> Server {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            cache: PlanCache::new(registry, config.inference),
            structures: RwLock::new(HashMap::new()),
            coalesced: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            served: CounterCell::default(),
            latency: LatencyBook::default(),
            gate: Arc::new(AdmissionGate::new(config.queue_capacity)),
            supervision: SupervisionCell::default(),
            obs: ObsLayer::new(config.slow_trace_capacity),
        });
        shared
            .supervision
            .workers_alive
            .store(workers, Ordering::SeqCst);

        let (submit_tx, submit_rx) = channel::<Incoming>();
        let (job_tx, job_rx) = channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let (event_tx, event_rx) = channel::<WorkerEvent>();

        let worker_handles = Arc::new(Mutex::new(Vec::with_capacity(workers)));
        for i in 0..workers {
            let handle = spawn_worker(i, &shared, &job_rx, &event_tx).expect("spawn worker thread");
            mutex_lock(&worker_handles).push(handle);
        }

        let supervisor = {
            let shared = Arc::clone(&shared);
            let job_rx = Arc::clone(&job_rx);
            let worker_handles = Arc::clone(&worker_handles);
            let budget = config.restart_budget;
            std::thread::Builder::new()
                .name("gmc-serve-supervisor".to_owned())
                .spawn(move || {
                    supervisor_loop(
                        &shared,
                        &job_rx,
                        &event_rx,
                        &event_tx,
                        &worker_handles,
                        workers,
                        budget,
                    );
                })
                .expect("spawn supervisor thread")
        };

        let dispatcher = {
            let shared = Arc::clone(&shared);
            let max_batch = config.max_batch.max(1);
            std::thread::Builder::new()
                .name("gmc-serve-dispatcher".to_owned())
                .spawn(move || dispatcher_loop(&shared, &submit_rx, &job_tx, workers, max_batch))
                .expect("spawn dispatcher thread")
        };

        Server {
            shared,
            submit: submit_tx,
            dispatcher: Some(dispatcher),
            supervisor: Some(supervisor),
            worker_handles,
        }
    }

    /// Registers (or replaces) a structure under `name`. This is the
    /// parse-once step: requests reference the name and never carry a
    /// chain.
    ///
    /// # Errors
    ///
    /// Currently infallible; returns `Result` so registration can gain
    /// validation without breaking callers.
    pub fn register(&self, name: &str, chain: SymChain) -> Result<(), ServeError> {
        write_lock(&self.shared.structures).insert(name.to_owned(), Arc::new(chain));
        // Pre-create the latency class so the recording hot path is a
        // read lock.
        self.shared.latency.class(name);
        Ok(())
    }

    /// Registers `name` and pre-records a plan for every size region
    /// the chain can reach, so each request for it is a cache hit.
    /// Returns the number of regions recorded.
    ///
    /// # Errors
    ///
    /// [`PlanError::Enumeration`] if the chain is too large to
    /// enumerate; the structure is still registered in that case (it
    /// just warms up on demand).
    pub fn register_pre_enumerated(&self, name: &str, chain: SymChain) -> Result<usize, PlanError> {
        self.register(name, chain.clone())
            .expect("registration is infallible");
        self.shared.cache.pre_enumerate_regions(&chain)
    }

    /// The shared plan cache (e.g. for warm-starting from a plan store
    /// before traffic arrives, or saving it after).
    pub fn cache(&self) -> &PlanCache {
        &self.shared.cache
    }

    /// A clonable submission handle.
    pub fn handle(&self) -> ServeHandle {
        ServeHandle {
            shared: Arc::clone(&self.shared),
            submit: self.submit.clone(),
        }
    }

    /// Current serving counters.
    pub fn stats(&self) -> ServerStats {
        self.shared.stats()
    }

    /// Stops the dispatcher and workers and waits for them. In-flight
    /// requests are answered first; requests submitted afterwards are
    /// refused at admission ([`ServeError::Closed`]). Never panics:
    /// threads that died by panic are reported in the returned
    /// [`ShutdownReport`] instead.
    pub fn shutdown(mut self) -> ShutdownReport {
        // Close the gate first so the supervisor stops respawning and
        // racing submissions are answered `Closed` instead of queueing
        // behind the shutdown message.
        self.shared.gate.close();
        self.submit.send(Incoming::Shutdown).ok();
        let mut report = ShutdownReport::default();
        if let Some(d) = self.dispatcher.take() {
            report.dispatcher_panicked = d.join().is_err();
        }
        if let Some(s) = self.supervisor.take() {
            // The supervisor exits once every worker reported in; a
            // panicked supervisor would leak workers, but never the
            // process — swallow it like a worker panic.
            s.join().ok();
        }
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *mutex_lock(&self.worker_handles));
        for w in handles {
            // Panicked workers were already counted by their guards.
            w.join().ok();
        }
        let supervision = self.shared.supervision.snapshot();
        report.worker_panics = supervision.worker_panics;
        report.respawns = supervision.respawns;
        report
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        // Best-effort shutdown if `shutdown()` was not called: close
        // admission, ask the dispatcher to stop and detach.
        self.shared.gate.close();
        self.submit.send(Incoming::Shutdown).ok();
    }
}

/// The supervisor: consumes worker-exit events, respawns panicked
/// workers while the restart budget lasts, and closes the admission
/// gate if the pool ever dies entirely (so new submissions fail fast
/// instead of queueing forever). Exits once every worker has reported
/// in after the pool winds down.
fn supervisor_loop(
    shared: &Arc<Shared>,
    job_rx: &Arc<Mutex<Receiver<Job>>>,
    events: &Receiver<WorkerEvent>,
    event_tx: &Sender<WorkerEvent>,
    worker_handles: &Arc<Mutex<Vec<JoinHandle<()>>>>,
    initial_workers: usize,
    restart_budget: usize,
) {
    let mut alive = initial_workers;
    let mut next_id = initial_workers;
    let mut respawns = 0usize;
    while alive > 0 {
        match events.recv() {
            Ok(WorkerEvent::Stopped) => {
                alive -= 1;
                shared
                    .supervision
                    .workers_alive
                    .store(alive, Ordering::SeqCst);
            }
            Ok(WorkerEvent::Panicked) => {
                alive -= 1;
                shared
                    .supervision
                    .worker_panics
                    .fetch_add(1, Ordering::SeqCst);
                let respawn = !shared.gate.is_closed() && respawns < restart_budget;
                if respawn {
                    match spawn_worker(next_id, shared, job_rx, event_tx) {
                        Ok(handle) => {
                            mutex_lock(worker_handles).push(handle);
                            next_id += 1;
                            respawns += 1;
                            alive += 1;
                            shared.supervision.respawns.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(e) => {
                            eprintln!("gmc-serve: respawn failed: {e}");
                        }
                    }
                }
                shared
                    .supervision
                    .workers_alive
                    .store(alive, Ordering::SeqCst);
                if alive == 0 {
                    // Pool dead, budget gone: stop admitting work so
                    // callers get `Closed` instead of a silent hang.
                    shared.gate.close();
                }
            }
            Err(_) => break,
        }
    }
}

fn dispatcher_loop(
    shared: &Shared,
    submit_rx: &Receiver<Incoming>,
    job_tx: &Sender<Job>,
    workers: usize,
    max_batch: usize,
) {
    loop {
        let first = match submit_rx.recv() {
            Ok(msg) => msg,
            Err(_) => break, // all senders gone
        };
        let mut shutdown = false;
        let mut pending: Vec<Request> = Vec::new();
        let absorb = |msg: Incoming, pending: &mut Vec<Request>, shutdown: &mut bool| match msg {
            Incoming::Requests(reqs) => pending.extend(reqs),
            Incoming::Shutdown => *shutdown = true,
        };
        absorb(first, &mut pending, &mut shutdown);
        // Drain whatever else is already queued: the wider the window,
        // the more in-flight requests group and coalesce.
        while pending.len() < max_batch && !shutdown {
            match submit_rx.try_recv() {
                Ok(msg) => absorb(msg, &mut pending, &mut shutdown),
                Err(_) => break,
            }
        }
        if shutdown {
            // Requests accepted before the shutdown message must still
            // be answered: drain everything already queued (later
            // Shutdown duplicates are inert).
            while let Ok(msg) = submit_rx.try_recv() {
                absorb(msg, &mut pending, &mut shutdown);
            }
        }

        // Group by (registered chain, size region); coalesce identical
        // bindings within a group. The chain is identified by its
        // `Arc` pointer — registration hands every request for a name
        // the same `Arc` — so grouping costs one pointer compare plus
        // the region signature, with no per-request structure-key
        // walk. (Two *names* registered with one structure group
        // separately here; the cache's per-shard write mutex still
        // coalesces their recordings.)
        type GroupKey = (usize, Vec<i8>);
        type GroupMap = HashMap<
            GroupKey,
            (
                Arc<SymChain>,
                HashMap<DimBindings, (Vec<ReplySlot>, Option<SolveFault>)>,
            ),
        >;
        let mut groups: GroupMap = HashMap::new();
        let grouped = Instant::now();
        for req in pending {
            // Expired deadline: shed before grouping. The request
            // never reaches a worker, so it is `rejected` (with the
            // `expired` sub-count) and its latency lands in the
            // dedicated `expired` histogram, not `total`.
            if let Some(deadline) = req.options.deadline {
                if grouped >= deadline {
                    shared.served.record(ServedKind::Expired, 1);
                    shared
                        .latency
                        .expired
                        .record(nanos_between(req.enqueued, grouped));
                    let Request {
                        name,
                        reply,
                        permit,
                        ..
                    } = req;
                    drop(permit);
                    reply
                        .send(ServeReply {
                            structure: name,
                            result: Err(ServeError::DeadlineExceeded),
                        })
                        .ok();
                    continue;
                }
            }
            let sizes = match req.chain.bind_dims(&req.bindings) {
                Ok(sizes) => sizes,
                Err(e) => {
                    // Unbindable request: answer immediately, nothing
                    // to dispatch.
                    shared.served.record(ServedKind::Rejected, 1);
                    let Request {
                        name,
                        reply,
                        permit,
                        ..
                    } = req;
                    drop(permit);
                    reply
                        .send(ServeReply {
                            structure: name,
                            result: Err(ServeError::Plan(PlanError::Chain(e.into()))),
                        })
                        .ok();
                    continue;
                }
            };
            let key = (Arc::as_ptr(&req.chain) as usize, region_signature(&sizes));
            let (_, items) = groups
                .entry(key)
                .or_insert_with(|| (Arc::clone(&req.chain), HashMap::new()));
            // Identical bindings coalesce into one instantiate; the
            // hash lookup keeps grouping O(requests).
            let (replies, fault) = items.entry(req.bindings).or_default();
            if !replies.is_empty() {
                shared.coalesced.fetch_add(1, Ordering::Relaxed);
            }
            *fault = merge_faults(*fault, req.options.fault);
            replies.push(ReplySlot {
                name: req.name,
                enqueued: req.enqueued,
                submitted: req.submitted,
                trace_id: req.trace_id,
                tx: req.reply,
                permit: req.permit,
            });
        }
        // Emit each group as jobs of at most MAX_ITEMS_PER_JOB items,
        // so a single hot region's independent hit instantiates spread
        // across the pool instead of serializing on one worker.
        // (Chunks of one miss group may race the recording; the
        // cache's per-shard write mutex still records exactly once and
        // serves the losers as hits.)
        let dispatched = Instant::now();
        for (_, (chain, by_bindings)) in groups {
            let mut items: Vec<BatchItem> = by_bindings
                .into_iter()
                .map(|(bindings, (replies, fault))| BatchItem {
                    bindings,
                    replies,
                    fault,
                })
                .collect();
            while !items.is_empty() {
                let rest = items.split_off(items.len().min(MAX_ITEMS_PER_JOB));
                shared.batches.fetch_add(1, Ordering::Relaxed);
                if job_tx
                    .send(Job::Batch {
                        chain: Arc::clone(&chain),
                        items,
                        grouped,
                        dispatched,
                    })
                    .is_err()
                {
                    return; // workers gone
                }
                items = rest;
            }
        }

        if shutdown {
            for _ in 0..workers {
                job_tx.send(Job::Stop).ok();
            }
            break;
        }
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_owned())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "worker panicked".to_owned())
}

fn worker_loop(shared: &Shared, job_rx: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        let job = {
            let rx = job_rx.lock().unwrap_or_else(|e| e.into_inner());
            rx.recv()
        };
        match job {
            Ok(Job::Batch {
                chain,
                items,
                grouped,
                dispatched,
            }) => {
                // A `Kill` fault takes the worker down *after* the
                // whole job is answered, so no ticket of this job is
                // ever lost; the supervisor respawns the thread.
                let mut kill_after_job = false;
                for item in items {
                    // One instantiate per distinct binding; the first
                    // item of a miss-group records the region, the rest
                    // of the group hits the fresh plan. The solve runs
                    // under `catch_unwind`: a panicking job answers its
                    // tickets `Internal` instead of poisoning the pool.
                    // Injected faults fire before the cache is touched,
                    // so a fault never leaves shared state mid-update.
                    let fault = item.fault;
                    if fault == Some(SolveFault::Kill) {
                        kill_after_job = true;
                    }
                    let solve_started = Instant::now();
                    let outcome = if kill_after_job {
                        // Once a kill is pending, fail the rest of the
                        // job fast: the thread is about to die anyway.
                        Err(format!("{FAULT_PANIC_MARKER}: worker killed"))
                    } else {
                        catch_unwind(AssertUnwindSafe(|| {
                            match fault {
                                Some(SolveFault::Delay(d)) => std::thread::sleep(d),
                                Some(SolveFault::Panic) => {
                                    panic!("{FAULT_PANIC_MARKER}: injected worker panic")
                                }
                                _ => {}
                            }
                            shared.cache.solve_traced(&chain, &item.bindings)
                        }))
                        .map_err(|payload| panic_message(payload.as_ref()))
                    };
                    let kind = match &outcome {
                        Ok(Ok((_, PlanOutcome::Hit, _))) => ServedKind::Hit,
                        Ok(Ok(_)) => ServedKind::Miss,
                        Ok(Err(_)) | Err(_) => ServedKind::Failed,
                    };
                    let solve_done = Instant::now();
                    let timing = match &outcome {
                        Ok(Ok((_, _, t))) => *t,
                        _ => SolveTiming::default(),
                    };
                    let class: &'static str = match &outcome {
                        Ok(Ok((_, oc, _))) => oc.label(),
                        Ok(Err(_)) => "plan",
                        Err(_) => "internal",
                    };
                    // Latency: one sample per *request* (coalesced
                    // waiters each keep their own enqueue time), then
                    // one consistent counter update for the whole item.
                    for slot in &item.replies {
                        let total = nanos_between(slot.enqueued, solve_done);
                        shared.latency.total.record(total);
                        shared
                            .latency
                            .queue
                            .record(nanos_between(slot.enqueued, dispatched));
                        if let Ok(Ok((_, oc, _))) = &outcome {
                            let class = shared.latency.class(&slot.name);
                            if oc.is_hit() {
                                class.hit.record(total);
                            } else {
                                class.miss.record(total);
                            }
                        }
                    }
                    shared.served.record(kind, item.replies.len() as u64);
                    for slot in item.replies {
                        let result = match &outcome {
                            Ok(Ok((solution, outcome, _))) => {
                                Ok(Served::from_solution(solution, *outcome))
                            }
                            Ok(Err(e)) => Err(ServeError::Plan(e.clone())),
                            Err(msg) => Err(ServeError::Internal(msg.clone())),
                        };
                        // Stage spans tile enqueued → done exactly; the
                        // `solve` span subtracts the cache's measured
                        // lookup time so `lookup + solve` equals the
                        // wall time the worker spent in the cache. The
                        // stage histograms record *after* the served
                        // counters, so at quiescence every completed
                        // request has exactly one sample per stage.
                        let done = Instant::now();
                        let durs: [u64; STAGES.len()] = [
                            nanos_between(slot.enqueued, slot.submitted),
                            nanos_between(slot.submitted, grouped),
                            nanos_between(grouped, dispatched),
                            nanos_between(dispatched, solve_started),
                            timing.lookup_ns,
                            nanos_between(solve_started, solve_done)
                                .saturating_sub(timing.lookup_ns),
                            nanos_between(solve_done, done),
                        ];
                        for (hist, dur) in shared.obs.stages.iter().zip(durs) {
                            hist.record(dur);
                        }
                        let total_ns: u64 = durs.iter().sum();
                        shared.obs.ring.offer_with(total_ns, || {
                            let mut start_ns = 0u64;
                            let spans = STAGES
                                .iter()
                                .zip(durs)
                                .map(|(stage, dur_ns)| {
                                    let span = Span {
                                        stage,
                                        start_ns,
                                        dur_ns,
                                    };
                                    start_ns += dur_ns;
                                    span
                                })
                                .collect();
                            Trace {
                                id: slot.trace_id,
                                label: slot.name.clone(),
                                class: class.to_owned(),
                                total_ns,
                                spans,
                            }
                        });
                        slot.send(result);
                    }
                }
                if kill_after_job {
                    // Every ticket of the job was answered above; dying
                    // here loses nothing and exercises the supervisor.
                    panic!("{FAULT_PANIC_MARKER}: injected worker kill");
                }
            }
            Ok(Job::Stop) | Err(_) => break,
        }
    }
}
