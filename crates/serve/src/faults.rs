//! Deterministic fault injection for the serving tier.
//!
//! A [`FaultPlan`] names, by request index, the faults to inject into
//! one replay: caught worker panics, worker-killing panics (to
//! exercise supervision and respawn), artificial solve delays,
//! client-side connection drops (the reply is abandoned), already-
//! expired deadlines, and admission bursts that overflow a small
//! queue. Plans are seeded and serializable (`gmc-faults/1`, the same
//! shim-JSON idiom as `gmc-trace/1`), so a chaos run is replayable
//! evidence exactly like the trace it runs against.
//!
//! The serve layer itself only understands [`SolveFault`] — the
//! per-request worker-side faults carried in
//! [`crate::RequestOptions`]; the replay harness (in `gmc-bench`)
//! translates the other kinds into deadlines, abandoned tickets and
//! batch boundaries.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::BTreeMap;
use std::sync::Once;
use std::time::Duration;

/// The fault-plan format tag; bump when the layout changes.
pub const FAULTS_FORMAT: &str = "gmc-faults/1";

/// Marker carried in every injected panic's payload. The quiet panic
/// hook (see [`silence_injected_panics`]) suppresses only payloads
/// containing it, so real panics still print.
pub const FAULT_PANIC_MARKER: &str = "gmc-serve injected fault";

/// A worker-side fault attached to one request, executed by the worker
/// that picks the request's batch item up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolveFault {
    /// Panic inside the solve (caught by the worker's `catch_unwind`;
    /// the request is answered [`crate::ServeError::Internal`]).
    Panic,
    /// Answer the item [`crate::ServeError::Internal`], then kill the
    /// worker thread after it finishes its current job — the
    /// supervisor must respawn it.
    Kill,
    /// Sleep this long before solving (holds a worker, so a small
    /// admission queue behind it overflows deterministically).
    Delay(Duration),
}

/// One fault kind at the plan level (request indices are attached by
/// [`FaultEntry`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Caught worker panic: the request is answered
    /// `ServeError::Internal`, the pool survives.
    Panic,
    /// Worker-killing panic: answered `Internal`, then the worker
    /// thread dies and the supervisor respawns it.
    Kill,
    /// Artificial solve delay of this many milliseconds.
    Delay {
        /// Sleep length in milliseconds.
        ms: u64,
    },
    /// The client abandons the reply (connection drop): the ticket is
    /// dropped without waiting.
    Drop,
    /// The request arrives with an already-expired deadline; the
    /// dispatcher must shed it with `ServeError::DeadlineExceeded`.
    Expire,
    /// Submit this request and the following `size - 1` as one
    /// admission burst regardless of the replay window, overflowing a
    /// small queue capacity.
    Burst {
        /// Total requests in the burst (including this one).
        size: usize,
    },
}

impl FaultKind {
    /// The worker-side fault this kind translates to, if any.
    pub fn solve_fault(&self) -> Option<SolveFault> {
        match *self {
            FaultKind::Panic => Some(SolveFault::Panic),
            FaultKind::Kill => Some(SolveFault::Kill),
            FaultKind::Delay { ms } => Some(SolveFault::Delay(Duration::from_millis(ms))),
            FaultKind::Drop | FaultKind::Expire | FaultKind::Burst { .. } => None,
        }
    }

    fn label(&self) -> &'static str {
        match self {
            FaultKind::Panic => "panic",
            FaultKind::Kill => "kill",
            FaultKind::Delay { .. } => "delay",
            FaultKind::Drop => "drop",
            FaultKind::Expire => "expire",
            FaultKind::Burst { .. } => "burst",
        }
    }
}

impl Serialize for FaultKind {
    fn to_value(&self) -> Value {
        let mut fields = vec![("kind".to_owned(), Value::String(self.label().to_owned()))];
        match *self {
            FaultKind::Delay { ms } => fields.push(("ms".to_owned(), Value::Number(ms as f64))),
            FaultKind::Burst { size } => {
                fields.push(("size".to_owned(), Value::Number(size as f64)));
            }
            _ => {}
        }
        Value::Object(fields)
    }
}

impl Deserialize for FaultKind {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let kind = String::from_value(v.get_field("kind")?)?;
        match kind.as_str() {
            "panic" => Ok(FaultKind::Panic),
            "kill" => Ok(FaultKind::Kill),
            "delay" => Ok(FaultKind::Delay {
                ms: u64::from_value(v.get_field("ms")?)?,
            }),
            "drop" => Ok(FaultKind::Drop),
            "expire" => Ok(FaultKind::Expire),
            "burst" => Ok(FaultKind::Burst {
                size: usize::from_value(v.get_field("size")?)?,
            }),
            other => Err(DeError(format!("unknown fault kind `{other}`"))),
        }
    }
}

/// One fault pinned to one request index of the trace it runs against.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultEntry {
    /// Index into the trace's request sequence.
    pub request: usize,
    /// What to inject there.
    pub kind: FaultKind,
}

impl Serialize for FaultEntry {
    fn to_value(&self) -> Value {
        let Value::Object(mut fields) = self.kind.to_value() else {
            unreachable!("FaultKind serializes to an object");
        };
        fields.insert(
            0,
            ("request".to_owned(), Value::Number(self.request as f64)),
        );
        Value::Object(fields)
    }
}

impl Deserialize for FaultEntry {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(FaultEntry {
            request: usize::from_value(v.get_field("request")?)?,
            kind: FaultKind::from_value(v)?,
        })
    }
}

/// A complete, replayable fault schedule for one trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The seed the plan was generated from (0 for hand-written plans).
    pub seed: u64,
    /// Admission capacity the replay should run the server at; 0 means
    /// the server default (faults like `Burst` only bite with a small
    /// capacity, so the plan carries it).
    pub queue_capacity: usize,
    /// The schedule, sorted by request index, at most one per index.
    pub entries: Vec<FaultEntry>,
}

impl Serialize for FaultPlan {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("format".to_owned(), Value::String(FAULTS_FORMAT.to_owned())),
            ("seed".to_owned(), Value::Number(self.seed as f64)),
            (
                "queue_capacity".to_owned(),
                Value::Number(self.queue_capacity as f64),
            ),
            ("entries".to_owned(), self.entries.to_value()),
        ])
    }
}

impl Deserialize for FaultPlan {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let format = String::from_value(v.get_field("format")?)?;
        if format != FAULTS_FORMAT {
            return Err(DeError(format!(
                "unsupported fault-plan format `{format}` (expected `{FAULTS_FORMAT}`)"
            )));
        }
        Ok(FaultPlan {
            seed: u64::from_value(v.get_field("seed")?)?,
            queue_capacity: usize::from_value(v.get_field("queue_capacity")?)?,
            entries: Vec::<FaultEntry>::from_value(v.get_field("entries")?)?,
        })
    }
}

/// How many faults of each kind a seeded plan should place; see
/// [`FaultPlan::seeded`].
#[derive(Clone, Copy, Debug)]
pub struct FaultSpec {
    /// Generator seed: the same spec always yields the same plan.
    pub seed: u64,
    /// Length of the trace the plan targets (indices stay below this).
    pub requests: usize,
    /// Caught worker panics.
    pub panics: usize,
    /// Worker-killing panics (exercise supervision respawn).
    pub kills: usize,
    /// Artificial solve delays.
    pub delays: usize,
    /// Length of each delay in milliseconds.
    pub delay_ms: u64,
    /// Abandoned replies (connection drops).
    pub drops: usize,
    /// Already-expired deadlines.
    pub expires: usize,
    /// Admission bursts.
    pub bursts: usize,
    /// Requests per burst.
    pub burst_size: usize,
    /// Admission capacity the replay should use (0 = server default).
    pub queue_capacity: usize,
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            seed: 7,
            requests: 100,
            panics: 2,
            kills: 1,
            delays: 2,
            delay_ms: 10,
            drops: 2,
            expires: 2,
            bursts: 1,
            burst_size: 32,
            queue_capacity: 8,
        }
    }
}

impl FaultPlan {
    /// Builds a deterministic plan from `spec`: burst ranges are placed
    /// first (non-overlapping), then the point faults land on distinct
    /// indices *outside* every burst — an expired or panicking request
    /// inside an overloaded burst could be queue-full-shed before its
    /// own fault fires, which would make the expected reply ambiguous.
    ///
    /// # Errors
    ///
    /// Fails when the requested faults cannot fit the trace length.
    pub fn seeded(spec: &FaultSpec) -> Result<FaultPlan, String> {
        let n = spec.requests;
        let burst_size = spec.burst_size.max(2);
        let point_faults = spec.panics + spec.kills + spec.delays + spec.drops + spec.expires;
        if spec.bursts * burst_size + point_faults > n {
            return Err(format!(
                "fault spec does not fit: {} bursts x {} + {} point faults > {} requests",
                spec.bursts, burst_size, point_faults, n
            ));
        }
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut in_burst = vec![false; n];
        let mut entries: BTreeMap<usize, FaultKind> = BTreeMap::new();
        for _ in 0..spec.bursts {
            // Rejection-sample a start whose whole range is free; fall
            // back to a linear scan so generation never spins forever.
            let start = (0..64)
                .map(|_| rng.gen_range(0..=n - burst_size))
                .find(|&s| in_burst[s..s + burst_size].iter().all(|b| !b))
                .or_else(|| {
                    (0..=n - burst_size).find(|&s| in_burst[s..s + burst_size].iter().all(|b| !b))
                })
                .ok_or("no room left for a burst")?;
            for slot in &mut in_burst[start..start + burst_size] {
                *slot = true;
            }
            entries.insert(start, FaultKind::Burst { size: burst_size });
        }
        let place = |count: usize,
                     kind: FaultKind,
                     rng: &mut StdRng,
                     entries: &mut BTreeMap<usize, FaultKind>|
         -> Result<(), String> {
            for _ in 0..count {
                let i = (0..256)
                    .map(|_| rng.gen_range(0..n))
                    .find(|&i| !in_burst[i] && !entries.contains_key(&i))
                    .or_else(|| (0..n).find(|&i| !in_burst[i] && !entries.contains_key(&i)))
                    .ok_or("no free request index left for a point fault")?;
                entries.insert(i, kind);
            }
            Ok(())
        };
        place(spec.panics, FaultKind::Panic, &mut rng, &mut entries)?;
        place(spec.kills, FaultKind::Kill, &mut rng, &mut entries)?;
        place(
            spec.delays,
            FaultKind::Delay { ms: spec.delay_ms },
            &mut rng,
            &mut entries,
        )?;
        place(spec.drops, FaultKind::Drop, &mut rng, &mut entries)?;
        place(spec.expires, FaultKind::Expire, &mut rng, &mut entries)?;
        Ok(FaultPlan {
            seed: spec.seed,
            queue_capacity: spec.queue_capacity,
            entries: entries
                .into_iter()
                .map(|(request, kind)| FaultEntry { request, kind })
                .collect(),
        })
    }

    /// Serializes to the stable JSON form (pretty-printed, trailing
    /// newline); the same plan always renders the same bytes.
    pub fn to_json_string(&self) -> String {
        let mut s = serde_json::to_string_pretty(&self.to_value()).expect("plan values finite");
        s.push('\n');
        s
    }

    /// Parses and validates a plan from its JSON form.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed part (bad JSON,
    /// unknown format tag or kind, duplicate or unsorted indices).
    pub fn from_json_str(s: &str) -> Result<FaultPlan, String> {
        let value: Value = serde_json::from_str(s).map_err(|e| format!("fault plan JSON: {e}"))?;
        let plan = FaultPlan::from_value(&value).map_err(|e| format!("fault plan JSON: {e}"))?;
        plan.validate()?;
        Ok(plan)
    }

    /// Checks internal consistency: sorted, at most one fault per
    /// request index, bursts at least 2 long, delays nonzero.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        let mut last: Option<usize> = None;
        for e in &self.entries {
            if let Some(prev) = last {
                if e.request <= prev {
                    return Err(format!(
                        "fault entries must be sorted with unique indices \
                         (request {} after {prev})",
                        e.request
                    ));
                }
            }
            last = Some(e.request);
            match e.kind {
                FaultKind::Burst { size } if size < 2 => {
                    return Err(format!("burst at request {} too small ({size})", e.request));
                }
                FaultKind::Delay { ms: 0 } => {
                    return Err(format!("zero-length delay at request {}", e.request));
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// The faults by request index (for O(1) lookup during replay).
    pub fn by_request(&self) -> BTreeMap<usize, FaultKind> {
        self.entries.iter().map(|e| (e.request, e.kind)).collect()
    }

    /// Whether the plan injects any panicking fault (callers should
    /// [`silence_injected_panics`] before replaying such a plan).
    pub fn injects_panics(&self) -> bool {
        self.entries
            .iter()
            .any(|e| matches!(e.kind, FaultKind::Panic | FaultKind::Kill))
    }
}

/// Installs (once, process-wide) a panic hook that suppresses the
/// default backtrace print for *injected* panics — payloads containing
/// [`FAULT_PANIC_MARKER`] — and delegates everything else to the
/// previous hook, so real panics still report. Chaos tests and the
/// replay harness call this before injecting.
pub fn silence_injected_panics() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let payload = info.payload();
            let injected = payload
                .downcast_ref::<&str>()
                .map(|s| s.contains(FAULT_PANIC_MARKER))
                .or_else(|| {
                    payload
                        .downcast_ref::<String>()
                        .map(|s| s.contains(FAULT_PANIC_MARKER))
                })
                .unwrap_or(false);
            if !injected {
                previous(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_plans_are_deterministic_and_valid() {
        let spec = FaultSpec::default();
        let a = FaultPlan::seeded(&spec).unwrap();
        let b = FaultPlan::seeded(&spec).unwrap();
        assert_eq!(a, b);
        a.validate().unwrap();
        assert_eq!(
            a.entries.len(),
            spec.bursts + spec.panics + spec.kills + spec.delays + spec.drops + spec.expires
        );
        assert!(a.injects_panics());
        // Point faults stay clear of burst ranges.
        let bursts: Vec<(usize, usize)> = a
            .entries
            .iter()
            .filter_map(|e| match e.kind {
                FaultKind::Burst { size } => Some((e.request, e.request + size)),
                _ => None,
            })
            .collect();
        for e in &a.entries {
            if !matches!(e.kind, FaultKind::Burst { .. }) {
                assert!(
                    bursts.iter().all(|&(s, t)| e.request < s || e.request >= t),
                    "point fault {e:?} inside burst {bursts:?}"
                );
            }
        }
    }

    #[test]
    fn plan_json_round_trips_byte_identically() {
        let plan = FaultPlan::seeded(&FaultSpec::default()).unwrap();
        let json = plan.to_json_string();
        let back = FaultPlan::from_json_str(&json).unwrap();
        assert_eq!(back, plan);
        assert_eq!(back.to_json_string(), json);
    }

    #[test]
    fn validation_rejects_malformed_plans() {
        let dup = FaultPlan {
            seed: 0,
            queue_capacity: 0,
            entries: vec![
                FaultEntry {
                    request: 3,
                    kind: FaultKind::Panic,
                },
                FaultEntry {
                    request: 3,
                    kind: FaultKind::Drop,
                },
            ],
        };
        assert!(dup.validate().is_err());
        let tiny_burst = FaultPlan {
            seed: 0,
            queue_capacity: 0,
            entries: vec![FaultEntry {
                request: 0,
                kind: FaultKind::Burst { size: 1 },
            }],
        };
        assert!(tiny_burst.validate().is_err());
        assert!(FaultPlan::from_json_str("{\"format\":\"nope/1\"}").is_err());
    }

    #[test]
    fn overfull_specs_error() {
        let spec = FaultSpec {
            requests: 10,
            ..FaultSpec::default()
        };
        assert!(FaultPlan::seeded(&spec).is_err());
    }
}
