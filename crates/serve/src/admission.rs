//! Bounded admission for the serving tier.
//!
//! The submission channel itself is unbounded (`std::sync::mpsc` has
//! no bounded non-blocking sender), so boundedness lives one layer up:
//! an [`AdmissionGate`] counts requests in flight — admitted at submit
//! time, released the moment a reply is sent — and refuses new work
//! beyond its capacity. The overload policy is *shed newest*: the
//! request that would overflow is the one rejected, with
//! [`SubmitError::QueueFull`] (or an immediate
//! [`crate::ServeError::QueueFull`] reply on the ticket paths), so
//! admitted work is never abandoned halfway.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Why a submission was refused at the door.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum SubmitError {
    /// The server already has `capacity` requests in flight; this one
    /// was shed (shed-newest overload policy).
    QueueFull {
        /// The gate's configured capacity.
        capacity: usize,
    },
    /// The server is shutting down (or its worker pool died with the
    /// restart budget exhausted); no new work is admitted.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull { capacity } => {
                write!(f, "queue full ({capacity} requests in flight)")
            }
            SubmitError::ShuttingDown => write!(f, "server is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// The in-flight request counter: a capacity, a counter, and a
/// shutting-down latch. One gate per server, shared by every handle.
#[derive(Debug)]
pub struct AdmissionGate {
    capacity: usize,
    in_flight: AtomicUsize,
    closed: AtomicBool,
}

impl AdmissionGate {
    /// A gate admitting at most `capacity` concurrent requests
    /// (clamped to at least 1).
    pub fn new(capacity: usize) -> AdmissionGate {
        AdmissionGate {
            capacity: capacity.max(1),
            in_flight: AtomicUsize::new(0),
            closed: AtomicBool::new(false),
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Requests currently holding a permit.
    pub fn in_flight(&self) -> usize {
        self.in_flight.load(Ordering::SeqCst)
    }

    /// Latches the gate shut: every later [`try_acquire`]
    /// (`AdmissionGate::try_acquire`) fails with
    /// [`SubmitError::ShuttingDown`]. Permits already out stay valid.
    pub fn close(&self) {
        self.closed.store(true, Ordering::SeqCst);
    }

    /// Whether the gate has been closed.
    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::SeqCst)
    }

    /// Admits one request, or says why not. The returned [`Permit`]
    /// releases its slot on drop.
    pub fn try_acquire(self: &Arc<Self>) -> Result<Permit, SubmitError> {
        if self.is_closed() {
            return Err(SubmitError::ShuttingDown);
        }
        let mut current = self.in_flight.load(Ordering::SeqCst);
        loop {
            if current >= self.capacity {
                return Err(SubmitError::QueueFull {
                    capacity: self.capacity,
                });
            }
            match self.in_flight.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    return Ok(Permit {
                        gate: Arc::clone(self),
                    })
                }
                Err(actual) => current = actual,
            }
        }
    }
}

/// One admitted request's slot; dropping it releases the slot. Held by
/// the request through the dispatcher and workers, and dropped *before*
/// the reply is sent, so a caller that has received all its replies
/// observes zero of its own permits outstanding.
#[derive(Debug)]
pub struct Permit {
    gate: Arc<AdmissionGate>,
}

impl Drop for Permit {
    fn drop(&mut self) {
        self.gate.in_flight.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_admits_up_to_capacity_then_sheds() {
        let gate = Arc::new(AdmissionGate::new(2));
        let a = gate.try_acquire().unwrap();
        let _b = gate.try_acquire().unwrap();
        assert_eq!(gate.in_flight(), 2);
        assert_eq!(
            gate.try_acquire().unwrap_err(),
            SubmitError::QueueFull { capacity: 2 }
        );
        drop(a);
        assert_eq!(gate.in_flight(), 1);
        let _c = gate.try_acquire().unwrap();
    }

    #[test]
    fn closed_gate_refuses_everything() {
        let gate = Arc::new(AdmissionGate::new(8));
        let held = gate.try_acquire().unwrap();
        gate.close();
        assert_eq!(gate.try_acquire().unwrap_err(), SubmitError::ShuttingDown);
        // Outstanding permits still release cleanly.
        drop(held);
        assert_eq!(gate.in_flight(), 0);
    }

    #[test]
    fn capacity_zero_is_clamped_to_one() {
        let gate = Arc::new(AdmissionGate::new(0));
        let _p = gate.try_acquire().unwrap();
        assert!(gate.try_acquire().is_err());
    }
}
